// Quickstart: build AnoT on a tiny hand-written TKG and score a few
// pieces of new knowledge, printing the interpretable evidence.
//
//   ./build/examples/quickstart

#include <cstdio>

#include "core/anot.h"
#include "tkg/graph.h"

using namespace anot;

int main() {
  // A miniature political-events TKG: elections are followed by
  // presidencies, presidencies by outgoing-president events.
  TemporalKnowledgeGraph tkg;
  const char* people[] = {"obama",  "bush",   "clinton", "macron",
                          "merkel", "lula",   "modi",    "ardern"};
  const char* countries[] = {"usa",    "usa",   "usa",   "france",
                             "germany", "brazil", "india", "nz"};
  Timestamp t = 0;
  for (int term = 0; term < 6; ++term) {
    for (int i = 0; i < 8; ++i) {
      tkg.AddFact(people[i], "win_election", countries[i], t + 2 * i);
      tkg.AddFact(people[i], "president_of", countries[i], t + 2 * i + 4);
      tkg.AddFact(people[i], "make_statement", countries[i], t + 2 * i + 5);
      tkg.AddFact(people[i], "make_statement", countries[i], t + 2 * i + 7);
      tkg.AddFact(people[i], "outgoing_president", countries[i],
                  t + 2 * i + 20);
    }
    // Background diplomacy widens the relation universe.
    for (int i = 0; i < 8; ++i) {
      tkg.AddFact(countries[i], "host_visit", countries[(i + 1) % 8],
                  t + 3 * i);
      tkg.AddFact(countries[i], "sign_agreement", countries[(i + 3) % 8],
                  t + 3 * i + 2);
    }
    t += 40;
  }

  AnoTOptions options;
  options.detector.category.min_support = 2;
  options.detector.timespan_tolerance = 3;
  AnoT anot = AnoT::Build(tkg, options);

  std::printf("rule graph: %zu rules, %zu edges; %.0f%% of facts explained\n\n",
              anot.rules().num_rules(), anot.rules().num_edges(),
              100 * anot.report().explained_fraction);

  Explainer explainer = anot.MakeExplainer();
  auto inspect = [&](const char* label, const Fact& fact) {
    Evidence evidence;
    const Scores s = anot.ScoreWithEvidence(fact, &evidence);
    std::printf("--- %s ---\n", label);
    std::printf("%s", explainer.RenderEvidence(fact, evidence).c_str());
    std::printf("static score %.4g | temporal score %.4g\n\n",
                s.static_score, s.temporal_score);
  };

  const EntityId macron = *tkg.entity_dict().TryGet("macron");
  const EntityId france = *tkg.entity_dict().TryGet("france");
  const EntityId usa = *tkg.entity_dict().TryGet("usa");
  const RelationId win = *tkg.relation_dict().TryGet("win_election");
  const RelationId pres = *tkg.relation_dict().TryGet("president_of");

  // 1. Valid knowledge: a presidency 4 ticks after macron's last
  // election (term 5 starts at t=200; macron is slot 3 => win at 206).
  Fact valid(macron, pres, france, 210);
  inspect("valid: macron president_of france shortly after election",
          valid);

  // 2. Conceptual error: a country winning an election over a person.
  Fact conceptual(usa, win, macron, 210);
  inspect("conceptual error: usa win_election macron", conceptual);

  // 3. Time error: presidency long before any election.
  Fact time_error(macron, pres, usa, 1);
  inspect("suspicious: presidency with no supporting precursor",
          time_error);

  return 0;
}
