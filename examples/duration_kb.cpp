// Duration-based knowledge bases (§4.7): build the four rule graphs over
// a Wikidata-like TKG with validity intervals and score interval errors.
//
//   ./build/examples/duration_kb

#include <cstdio>

#include "anomaly/injector.h"
#include "core/duration.h"
#include "datagen/presets.h"
#include "tkg/split.h"

using namespace anot;

int main() {
  GeneratorConfig cfg = DatasetPresets::Wikidata(0.015);
  SyntheticGenerator gen(cfg);
  auto graph = gen.Generate();
  TimeSplit split = SplitByTimestamps(*graph, 0.6, 0.1);
  auto offline = Subgraph(*graph, split.train);

  AnoTOptions options;
  options.detector.timespan_tolerance = 40;
  DurationAnoT model =
      DurationAnoT::Build(*offline, options, DurationStrategy::kFourGraphs);

  std::printf("four rule graphs over %zu duration facts:\n",
              offline->num_facts());
  for (size_t v = 0; v < model.num_views(); ++v) {
    std::printf("  %-6s: %zu rules, %zu edges, %.1f%% associated\n",
                model.view_name(v).c_str(), model.view(v).rules().num_rules(),
                model.view(v).rules().num_edges(),
                100 * model.view(v).report().associated_fraction);
  }

  // Score a window with perturbed start/end times.
  InjectorConfig icfg;
  icfg.perturb_durations = true;
  AnomalyInjector injector(icfg);
  EvalStream stream = injector.Inject(*graph, split.test);

  double valid_mean = 0, anomaly_mean = 0;
  size_t valid_n = 0, anomaly_n = 0;
  for (const auto& lf : stream.arrivals) {
    const Scores s = model.Score(lf.fact);
    if (lf.label == AnomalyType::kValid) {
      valid_mean += s.static_score;
      ++valid_n;
      model.IngestValid(lf.fact);
    } else if (lf.label == AnomalyType::kConceptual) {
      anomaly_mean += s.static_score;
      ++anomaly_n;
    }
  }
  std::printf("\nmean static score: valid %.4g vs conceptual errors %.4g "
              "(%zu vs %zu facts)\n",
              valid_mean / valid_n, anomaly_mean / anomaly_n, valid_n,
              anomaly_n);
  return 0;
}
