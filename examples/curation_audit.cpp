// Offline KG curation: audit a preserved TKG, rank the most suspicious
// knowledge, and print correcting prompts (§4.3.4) a curator could act on.
//
//   ./build/examples/curation_audit

#include <algorithm>
#include <cstdio>

#include "anomaly/injector.h"
#include "core/anot.h"
#include "datagen/presets.h"
#include "tkg/split.h"

using namespace anot;

int main() {
  GeneratorConfig cfg = DatasetPresets::Yago11k(0.04);
  SyntheticGenerator gen(cfg);
  auto graph = gen.Generate();
  TimeSplit split = SplitByTimestamps(*graph, 0.6, 0.1);
  auto preserved = Subgraph(*graph, split.train);

  AnoTOptions options;
  options.detector.timespan_tolerance = 30;
  AnoT anot = AnoT::Build(*preserved, options);
  Explainer explainer = anot.MakeExplainer();

  // Corrupt a slice of the evaluation window to simulate a noisy feed
  // that was bulk-imported without review.
  AnomalyInjector injector(InjectorConfig{});
  EvalStream feed = injector.Inject(*graph, split.test);

  struct Finding {
    double score;
    LabeledFact item;
  };
  std::vector<Finding> findings;
  for (const auto& lf : feed.arrivals) {
    const Scores s = anot.Score(lf.fact);
    findings.push_back({s.static_score, lf});
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return a.score > b.score;
            });

  std::printf("top suspicious imports (of %zu):\n\n", findings.size());
  size_t shown = 0;
  for (const auto& f : findings) {
    if (shown >= 5) break;
    ++shown;
    std::printf("%zu. %s  [true label: %s]\n", shown,
                explainer.DescribeFact(f.item.fact).c_str(),
                AnomalyTypeName(f.item.label));
    auto prompts = explainer.ConceptualPrompts(f.item.fact);
    if (prompts.empty()) {
      std::printf("   no partial pattern match; likely extraction noise\n");
    }
    for (size_t p = 0; p < std::min<size_t>(2, prompts.size()); ++p) {
      std::printf("   correcting prompt: %s\n", prompts[p].c_str());
    }
    std::printf("\n");
  }

  // Missing-knowledge audit: absent tuples with strong pattern support.
  std::printf("missing-knowledge candidates:\n");
  size_t listed = 0;
  for (const auto& lf : feed.missing_candidates) {
    const Scores s = anot.Score(lf.fact);
    if (s.missing_support() < 50) continue;
    std::printf("  %s (support %.0f)  [truth: %s]\n",
                explainer.DescribeFact(lf.fact).c_str(),
                s.missing_support(), AnomalyTypeName(lf.label));
    if (++listed >= 5) break;
  }
  return 0;
}
