// Online monitoring of an ICEWS-like political event stream: the full
// detector-updater-monitor loop of Figure 2, including a monitor-driven
// rule-graph refresh.
//
//   ./build/examples/political_stream

#include <cstdio>

#include "anomaly/injector.h"
#include "core/anot.h"
#include "datagen/presets.h"
#include "eval/metrics.h"
#include "tkg/split.h"

using namespace anot;

int main() {
  // A small ICEWS14-like world.
  GeneratorConfig cfg = DatasetPresets::Icews14(0.06);
  SyntheticGenerator gen(cfg);
  auto graph = gen.Generate();
  TimeSplit split = SplitByTimestamps(*graph, 0.6, 0.1);
  auto offline = Subgraph(*graph, split.train);

  AnoTOptions options;
  options.detector.timespan_tolerance = 10;
  options.monitor.mode = MonitorOptions::Mode::kPerTimestamp;
  options.monitor.slack = 1.5;
  options.auto_refresh = true;  // the monitor may trigger a rebuild
  AnoT anot = AnoT::Build(*offline, options);
  std::printf("offline build: %zu rules, %zu edges (%.1fs)\n",
              anot.rules().num_rules(), anot.rules().num_edges(),
              anot.report().build_seconds);

  // Tune validity thresholds on the validation window.
  AnomalyInjector val_injector(InjectorConfig{.seed = 5});
  EvalStream val = val_injector.Inject(*graph, split.val);
  std::vector<ScoredExample> s_examples, t_examples;
  for (const auto& lf : val.arrivals) {
    const Scores s = anot.Score(lf.fact);
    s_examples.push_back(
        {s.static_score, lf.label == AnomalyType::kConceptual});
    t_examples.push_back({s.temporal_score, lf.label == AnomalyType::kTime});
  }
  const double thr_s = TuneThreshold(s_examples, 0.5).threshold;
  const double thr_t = TuneThreshold(t_examples, 0.5).threshold;
  anot.SetValidityThresholds(thr_s, thr_t);
  std::printf("tuned thresholds: static %.4g, temporal %.4g\n\n", thr_s,
              thr_t);

  // Stream the test window through ProcessArrival.
  AnomalyInjector test_injector(InjectorConfig{});
  EvalStream test = test_injector.Inject(*graph, split.test);
  size_t flagged = 0, correct_flags = 0;
  for (const auto& lf : test.arrivals) {
    const Scores s = anot.ProcessArrival(lf.fact);
    const bool is_flagged =
        s.static_score > thr_s ||
        (s.temporal_evaluated && s.temporal_score > thr_t);
    if (is_flagged) {
      ++flagged;
      correct_flags += lf.label != AnomalyType::kValid;
    }
  }
  std::printf("stream: %zu arrivals, %zu flagged (precision %.3f)\n",
              test.arrivals.size(), flagged,
              flagged > 0 ? static_cast<double>(correct_flags) / flagged
                          : 0.0);
  std::printf("monitor: online negative cost %.0f bits over %zu "
              "timestamps; refreshes triggered: %zu\n",
              anot.monitor().online_negative_bits(),
              anot.monitor().online_timestamps(), anot.refresh_count());
  std::printf("rule graph now: %zu rules, %zu edges (grown online)\n",
              anot.rules().num_rules(), anot.rules().num_edges());
  return 0;
}
