// Checkpoint / warm-restart suite: pins the headline contract — save after
// offline build + N arrivals, load in a fresh detector, and the remaining
// stream's scores, monitor decisions, and pending-rule state are
// bit-identical to never having restarted — plus the canonical-bytes
// property (saving a just-loaded detector reproduces the file byte for
// byte) and every malformed-input failure path as a descriptive Status
// (never a crash, never an abort: all checks run before any
// ANOT_CHECK-bearing constructor).
//
// CI runs this suite under ANOT_THREADS=1 and ANOT_THREADS=4; the env
// value selects the thread schedule exactly as in online_test.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "anomaly/injector.h"
#include "core/anot.h"
#include "datagen/generator.h"
#include "io/checkpoint.h"
#include "serving_test_util.h"
#include "tkg/split.h"

namespace anot {
namespace {

GeneratorConfig CheckpointWorldConfig() {
  GeneratorConfig cfg;
  cfg.num_entities = 150;
  cfg.num_relations = 20;
  cfg.num_timestamps = 100;
  cfg.num_facts = 3000;
  cfg.num_categories = 5;
  cfg.num_chain_rules = 4;
  cfg.num_triadic_rules = 2;
  cfg.chain_follow_prob = 0.7;
  cfg.noise_fraction = 0.03;
  cfg.seed = 1234;
  return cfg;
}

AnoTOptions CheckpointOptions(size_t num_threads) {
  AnoTOptions options;
  options.detector.category.min_support = 4;
  options.detector.timespan_tolerance = 10;
  options.detector.max_recursion_steps = 2;
  options.num_threads = num_threads;
  return options;
}

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string ReadBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

uint32_t ReadU32At(const std::string& b, size_t off) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(b[off + i])) << (8 * i);
  }
  return v;
}

uint64_t ReadU64At(const std::string& b, size_t off) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(b[off + i])) << (8 * i);
  }
  return v;
}

void WriteU64At(std::string* b, size_t off, uint64_t v) {
  for (int i = 0; i < 8; ++i) (*b)[off + i] = static_cast<char>(v >> (8 * i));
}

/// Recomputes the footer after a byte patch, so the test reaches the
/// validation layer it targets instead of tripping the checksum first.
void Rechecksum(std::string* bytes) {
  const uint64_t h =
      Checkpoint::Checksum(bytes->data(), bytes->size() - 8);
  WriteU64At(bytes, bytes->size() - 8, h);
}

/// Walks the section table to the payload of section `want_id`.
size_t SectionPayloadOffset(const std::string& b, uint32_t want_id,
                            uint64_t* len_out) {
  size_t off = 8 + 4 + 4;  // magic + version + section count
  for (;;) {
    const uint32_t id = ReadU32At(b, off);
    const uint64_t len = ReadU64At(b, off + 4);
    if (id == want_id) {
      *len_out = len;
      return off + 12;
    }
    off += 12 + static_cast<size_t>(len);
    EXPECT_LT(off, b.size()) << "section " << want_id << " not found";
  }
}

/// Shared expensive fixture: one world, one split, one labeled stream, and
/// one cached good checkpoint for the failure-path tests to mutate.
class CheckpointFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticGenerator gen(CheckpointWorldConfig());
    graph_ = gen.Generate().release();
    split_ = new TimeSplit(SplitByTimestamps(*graph_, 0.6, 0.1));
    train_ = Subgraph(*graph_, split_->train).release();

    AnomalyInjector injector(InjectorConfig{});
    EvalStream labeled = injector.Inject(*graph_, split_->test);
    stream_ = new std::vector<Fact>();
    for (const LabeledFact& lf : labeled.arrivals) {
      stream_->push_back(lf.fact);
    }

    // One good checkpoint, mid-stream, shared by every corruption test.
    AnoT system = AnoT::Build(*train_, CheckpointOptions(1));
    const size_t n = std::min<size_t>(100, stream_->size());
    for (size_t i = 0; i < n; ++i) system.ProcessArrival((*stream_)[i]);
    const std::string path = TempPath("anot_ckpt_fixture.bin");
    ASSERT_TRUE(system.SaveCheckpoint(path).ok());
    good_bytes_ = new std::string(ReadBytes(path));
    std::filesystem::remove(path);
  }
  static void TearDownTestSuite() {
    delete good_bytes_;
    delete stream_;
    delete train_;
    delete split_;
    delete graph_;
    good_bytes_ = nullptr;
    stream_ = nullptr;
    train_ = nullptr;
    split_ = nullptr;
    graph_ = nullptr;
  }

  /// Writes a (possibly patched) byte string and loads it.
  static Result<AnoT> LoadFromBytes(const std::string& bytes,
                                    const std::string& name) {
    const std::string path = TempPath(name);
    WriteBytes(path, bytes);
    Result<AnoT> r = AnoT::LoadCheckpoint(path);
    std::filesystem::remove(path);
    return r;
  }

  static TemporalKnowledgeGraph* graph_;
  static TimeSplit* split_;
  static TemporalKnowledgeGraph* train_;
  static std::vector<Fact>* stream_;
  static std::string* good_bytes_;
};

TemporalKnowledgeGraph* CheckpointFixture::graph_ = nullptr;
TimeSplit* CheckpointFixture::split_ = nullptr;
TemporalKnowledgeGraph* CheckpointFixture::train_ = nullptr;
std::vector<Fact>* CheckpointFixture::stream_ = nullptr;
std::string* CheckpointFixture::good_bytes_ = nullptr;

// ------------------------------------------------ warm-restart equivalence

/// Processes stream[begin, end) in batches of 32, appending the scores.
void RunRange(AnoT* system, const std::vector<Fact>& stream, size_t begin,
              size_t end, std::vector<Scores>* scores,
              UpdateEffects* effects) {
  std::vector<Fact> batch;
  for (size_t i = begin; i < end; i += 32) {
    const size_t stop = std::min(end, i + 32);
    batch.assign(stream.begin() + i, stream.begin() + stop);
    std::vector<Scores> s = system->ProcessArrivalBatch(batch, effects);
    scores->insert(scores->end(), s.begin(), s.end());
  }
}

TEST_F(CheckpointFixture, WarmRestartBitIdenticalToUninterrupted) {
  for (size_t threads : ThreadCountsUnderTest()) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const AnoTOptions options = CheckpointOptions(threads);

    // Reference: one uninterrupted run over the whole stream.
    AnoT ref = AnoT::Build(*train_, options);
    std::vector<Scores> ref_scores;
    UpdateEffects ref_effects;
    RunRange(&ref, *stream_, 0, stream_->size(), &ref_scores, &ref_effects);
    ValidateAtCommitBoundary(ref);

    // Interrupted run: process to a mid-stream batch boundary past the
    // halfway mark where pending rules exist (so the checkpoint carries
    // live updater state), save, load in a "fresh process", continue.
    AnoT first = AnoT::Build(*train_, options);
    std::vector<Scores> warm_scores;
    UpdateEffects warm_effects;
    const size_t half = stream_->size() / 2;
    size_t saved_at = 0;
    for (size_t i = 0; i < stream_->size() && saved_at == 0; i += 32) {
      const size_t stop = std::min(stream_->size(), i + 32);
      RunRange(&first, *stream_, i, stop, &warm_scores, &warm_effects);
      if (stop >= half && first.updater().pending_rule_count() > 0 &&
          stop < stream_->size()) {
        saved_at = stop;
      }
    }
    ASSERT_GT(saved_at, 0u)
        << "no mid-stream point with pending rules: the warm-restart case "
           "would not exercise updater state";

    const std::string path =
        TempPath("anot_ckpt_warm_" + std::to_string(threads) + ".bin");
    ASSERT_TRUE(first.SaveCheckpoint(path).ok());
    Result<AnoT> loaded = AnoT::LoadCheckpoint(path);
    std::filesystem::remove(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().message();
    AnoT warm = loaded.MoveValue();

    // The restored detector must resume exactly where the first left off.
    EXPECT_EQ(warm.graph().num_facts(), first.graph().num_facts());
    EXPECT_EQ(warm.updater().pending_rule_count(),
              first.updater().pending_rule_count());
    EXPECT_EQ(warm.rules().ToString(), first.rules().ToString());

    RunRange(&warm, *stream_, saved_at, stream_->size(), &warm_scores,
             &warm_effects);
    ValidateAtCommitBoundary(warm);

    ASSERT_EQ(ref_scores.size(), warm_scores.size());
    for (size_t i = 0; i < ref_scores.size(); ++i) {
      ExpectScoresIdentical(ref_scores[i], warm_scores[i], i);
    }
    EXPECT_EQ(ref_effects.facts_ingested, warm_effects.facts_ingested);
    EXPECT_EQ(ref_effects.new_entity_categories,
              warm_effects.new_entity_categories);
    EXPECT_EQ(ref_effects.new_rule_nodes, warm_effects.new_rule_nodes);
    EXPECT_EQ(ref_effects.new_rule_edges, warm_effects.new_rule_edges);
    EXPECT_EQ(ref_effects.timespans_recorded,
              warm_effects.timespans_recorded);
    EXPECT_EQ(ref.refresh_count(), warm.refresh_count());
    EXPECT_EQ(ref.graph().num_facts(), warm.graph().num_facts());
    EXPECT_EQ(ref.rules().ToString(), warm.rules().ToString());
    EXPECT_EQ(ref.updater().pending_rule_count(),
              warm.updater().pending_rule_count());
    EXPECT_EQ(ref.monitor().ShouldRefresh(), warm.monitor().ShouldRefresh());
  }
}

// -------------------------------------------------------- canonical bytes

TEST_F(CheckpointFixture, ResaveOfLoadedDetectorIsByteIdentical) {
  // save(load(save(x))) == save(x): the serialization is canonical, so a
  // checkpoint can be re-saved indefinitely without drift.
  Result<AnoT> loaded = LoadFromBytes(*good_bytes_, "anot_ckpt_canon.bin");
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  const std::string path = TempPath("anot_ckpt_canon2.bin");
  ASSERT_TRUE(loaded.value().SaveCheckpoint(path).ok());
  const std::string resaved = ReadBytes(path);
  std::filesystem::remove(path);
  EXPECT_EQ(*good_bytes_, resaved);
}

TEST_F(CheckpointFixture, FreshBuildRoundTripsBeforeAnyArrival) {
  AnoT system = AnoT::Build(*train_, CheckpointOptions(1));
  const std::string path = TempPath("anot_ckpt_fresh.bin");
  ASSERT_TRUE(system.SaveCheckpoint(path).ok());
  Result<AnoT> loaded = AnoT::LoadCheckpoint(path);
  std::filesystem::remove(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  const size_t n = std::min<size_t>(50, stream_->size());
  for (size_t i = 0; i < n; ++i) {
    ExpectScoresIdentical(system.Score((*stream_)[i]),
                          loaded.value().Score((*stream_)[i]), i);
  }
}

// ------------------------------------------------------- refresh quiesce

TEST_F(CheckpointFixture, SaveDuringInFlightRefreshIsFailedPrecondition) {
  AnoTOptions options = CheckpointOptions(2);
  options.refresh_mode = RefreshMode::kAsynchronous;
  AnoT system = AnoT::Build(*train_, options);
  const size_t n = std::min<size_t>(50, stream_->size());
  for (size_t i = 0; i < n; ++i) system.ProcessArrival((*stream_)[i]);

  system.RefreshAsync();
  const std::string path = TempPath("anot_ckpt_inflight.bin");
  const Status st = system.SaveCheckpoint(path);
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition) << st.message();
  EXPECT_FALSE(std::filesystem::exists(path));

  // After quiescing, saving works and the checkpoint loads.
  system.FinishRefresh();
  ASSERT_TRUE(system.SaveCheckpoint(path).ok());
  Result<AnoT> loaded = AnoT::LoadCheckpoint(path);
  std::filesystem::remove(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ(loaded.value().refresh_count(), system.refresh_count());
}

// -------------------------------------------------- malformed-input paths
//
// Every case must come back as an error Status with a recognizable
// message — no crash, no ANOT_CHECK abort — which is what lets these run
// under ASan/UBSan without death tests.

TEST_F(CheckpointFixture, LoadMissingFileFails) {
  Result<AnoT> r = AnoT::LoadCheckpoint(TempPath("anot_ckpt_missing.bin"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST_F(CheckpointFixture, RejectsFileTooShort) {
  Result<AnoT> r =
      LoadFromBytes(good_bytes_->substr(0, 10), "anot_ckpt_short.bin");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("too short"), std::string::npos)
      << r.status().message();
}

TEST_F(CheckpointFixture, RejectsWrongMagic) {
  std::string bytes = *good_bytes_;
  bytes[0] = 'X';
  Result<AnoT> r = LoadFromBytes(bytes, "anot_ckpt_magic.bin");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("bad magic"), std::string::npos)
      << r.status().message();
}

TEST_F(CheckpointFixture, RejectsTruncatedFile) {
  const std::string bytes = good_bytes_->substr(0, good_bytes_->size() - 9);
  Result<AnoT> r = LoadFromBytes(bytes, "anot_ckpt_trunc.bin");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("checksum"), std::string::npos)
      << r.status().message();
}

TEST_F(CheckpointFixture, RejectsCorruptPayloadByte) {
  std::string bytes = *good_bytes_;
  bytes[bytes.size() / 2] ^= 0x40;
  Result<AnoT> r = LoadFromBytes(bytes, "anot_ckpt_flip.bin");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("checksum"), std::string::npos)
      << r.status().message();
}

TEST_F(CheckpointFixture, RejectsFutureFormatVersion) {
  std::string bytes = *good_bytes_;
  bytes[8] = static_cast<char>(Checkpoint::kFormatVersion + 1);
  Rechecksum(&bytes);
  Result<AnoT> r = LoadFromBytes(bytes, "anot_ckpt_version.bin");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("format version"), std::string::npos)
      << r.status().message();
}

TEST_F(CheckpointFixture, RejectsSectionLengthBeyondFileSize) {
  std::string bytes = *good_bytes_;
  // First section header sits right after magic+version+count; its u64
  // length starts 4 bytes in (after the section id).
  WriteU64At(&bytes, 8 + 4 + 4 + 4, 0x00FFFFFFFFFFull);
  Rechecksum(&bytes);
  Result<AnoT> r = LoadFromBytes(bytes, "anot_ckpt_seclen.bin");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("section length"), std::string::npos)
      << r.status().message();
}

TEST_F(CheckpointFixture, RejectsSemanticallyInvalidMonitorState) {
  // Valid framing and checksum, invalid state: bucket_associated (the
  // last field of the monitor section) greater than bucket_mapped. The
  // decoder must catch it as a Status before any Monitor is constructed —
  // Monitor::CheckInvariants would abort on it.
  std::string bytes = *good_bytes_;
  uint64_t len = 0;
  const size_t payload = SectionPayloadOffset(bytes, /*monitor=*/6, &len);
  bytes[payload + len - 4] = static_cast<char>(0xFF);
  bytes[payload + len - 3] = static_cast<char>(0xFF);
  Rechecksum(&bytes);
  Result<AnoT> r = LoadFromBytes(bytes, "anot_ckpt_monitor.bin");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("monitor"), std::string::npos)
      << r.status().message();
}

TEST_F(CheckpointFixture, RejectsTrailingGarbageInsideSection) {
  // Grow the serving section (the last one) by 8 bytes of zeros and fix
  // up its declared length: framing stays coherent, but the payload now
  // has bytes its decoder never consumes.
  std::string bytes = *good_bytes_;
  uint64_t len = 0;
  const size_t payload = SectionPayloadOffset(bytes, /*serving=*/8, &len);
  bytes.insert(payload + static_cast<size_t>(len), 8, '\0');
  WriteU64At(&bytes, payload - 8, len + 8);
  Rechecksum(&bytes);
  Result<AnoT> r = LoadFromBytes(bytes, "anot_ckpt_trailing.bin");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("trailing bytes"), std::string::npos)
      << r.status().message();
}

}  // namespace
}  // namespace anot
