// Tests for the ANOT_VALIDATE debug invariant validators: every stateful
// subsystem exposes CheckInvariants(), which must stay silent on any state
// reachable through the public API and ANOT_CHECK-fail the moment the
// structure is corrupted. The death tests fabricate corruption (through the
// RuleGraph's mutable edge access and the ledger's test-only back door) and
// pin the failure message, so structural damage fails at the mutation that
// caused it rather than ten goldens later.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "anomaly/injector.h"
#include "core/anot.h"
#include "core/monitor.h"
#include "core/options.h"
#include "datagen/generator.h"
#include "mdl/ledger.h"
#include "rulegraph/rule_graph.h"
#include "tkg/graph.h"
#include "tkg/split.h"

namespace anot {
namespace {

TEST(TkgValidateTest, PassesOnHandBuiltGraph) {
  TemporalKnowledgeGraph graph;
  graph.AddFact("alice", "visits", "berlin", 3);
  graph.AddFact("bob", "visits", "berlin", 1);
  graph.AddFact("alice", "visits", "berlin", 3);   // identical recurrence
  graph.AddFact("alice", "leads", "acme", 2, 9);   // duration fact
  graph.AddFact("bob", "visits", "paris", 5);
  graph.CheckInvariants();
  EXPECT_EQ(graph.num_facts(), 5u);
}

TEST(RuleGraphValidateTest, PassesOnBuiltRuleGraph) {
  RuleGraph rg;
  const RuleId a = rg.AddRule(AtomicRule{0, 0, 1}, /*static_selected=*/true);
  const RuleId b = rg.AddRule(AtomicRule{1, 1, 2}, /*static_selected=*/true);
  const RuleId c = rg.AddRule(AtomicRule{2, 2, 0}, /*static_selected=*/false);
  RuleEdge chain;
  chain.kind = RuleEdgeKind::kChain;
  chain.head = a;
  chain.tail = b;
  chain.timespans = {4, 1, 2};  // AddEdge sorts
  chain.support = 3;
  rg.AddEdge(chain);
  RuleEdge triadic;
  triadic.kind = RuleEdgeKind::kTriadic;
  triadic.head = a;
  triadic.mid = b;
  triadic.tail = c;
  triadic.timespans = {7};
  triadic.support = 1;
  rg.AddEdge(triadic);
  rg.CheckInvariants();
  EXPECT_EQ(rg.num_edges(), 2u);
}

TEST(LedgerValidateTest, PassesThroughApplyAndSetTotal) {
  NegativeErrorLedger ledger(1000.0);
  ledger.SetTimestampTotal(1, 10);
  ledger.SetTimestampTotal(2, 6);
  ledger.Apply(1, 4, 2);
  ledger.Apply(2, 3, 0);
  ledger.Apply(1, -1, -1);
  ledger.SetTimestampTotal(1, 2);  // clamps mapped/associated coherently
  ledger.CheckInvariants();
}

TEST(MonitorValidateTest, PassesAcrossBucketLifecycle) {
  Monitor monitor(120.0, 10, 1000.0, 10.0, MonitorOptions{});
  monitor.CheckInvariants();
  monitor.Observe(1, true, true);
  monitor.Observe(1, false, false);
  monitor.CheckInvariants();  // open bucket
  monitor.Observe(2, true, false);
  monitor.CheckInvariants();  // first bucket closed, second open
  monitor.Flush();
  monitor.CheckInvariants();
  monitor.Reset(80.0, 5);
  monitor.CheckInvariants();
}

// The full system, validated at commit boundaries of a live online run:
// after the offline build, every 50 arrivals, after a mid-stream refresh,
// and after an async refresh completes. This exercises the TKG, rule-graph,
// monitor, and updater validators on organically grown state.
TEST(SystemValidateTest, LiveRunStaysCoherentAtCommitBoundaries) {
  GeneratorConfig cfg;
  cfg.num_entities = 80;
  cfg.num_relations = 12;
  cfg.num_timestamps = 60;
  cfg.num_facts = 1200;
  cfg.num_categories = 4;
  cfg.num_chain_rules = 3;
  cfg.num_triadic_rules = 1;
  cfg.chain_follow_prob = 0.7;
  cfg.noise_fraction = 0.03;
  cfg.seed = 77;
  SyntheticGenerator gen(cfg);
  auto graph = gen.Generate();
  const TimeSplit split = SplitByTimestamps(*graph, 0.6, 0.1);
  auto train = Subgraph(*graph, split.train);

  AnomalyInjector injector(InjectorConfig{});
  EvalStream labeled = injector.Inject(*graph, split.test);

  AnoTOptions options;
  options.detector.category.min_support = 4;
  options.detector.timespan_tolerance = 10;
  options.detector.max_recursion_steps = 2;
  options.num_threads = 2;
  AnoT system = AnoT::Build(*train, options);
  system.CheckInvariants();

  size_t arrivals = 0;
  for (const LabeledFact& lf : labeled.arrivals) {
    system.ProcessArrival(lf.fact);
    if (++arrivals % 50 == 0) system.CheckInvariants();
    if (arrivals == 120) {
      system.Refresh();
      system.CheckInvariants();
    }
    if (arrivals == 240) system.RefreshAsync();
  }
  system.FinishRefresh();
  system.CheckInvariants();
  EXPECT_GT(system.graph().num_facts(), train->num_facts());
}

#ifdef ANOT_VALIDATE

using RuleGraphValidateDeathTest = ::testing::Test;

TEST(RuleGraphValidateDeathTest, UnsortedTimespansAreFatal) {
  RuleGraph rg;
  const RuleId a = rg.AddRule(AtomicRule{0, 0, 1}, true);
  const RuleId b = rg.AddRule(AtomicRule{1, 1, 2}, true);
  RuleEdge edge;
  edge.kind = RuleEdgeKind::kChain;
  edge.head = a;
  edge.tail = b;
  edge.timespans = {1, 2, 3};
  const RuleEdgeId id = rg.AddEdge(edge);
  rg.CheckInvariants();
  // Bypass AddTimespan's sorted insert — the corruption the validator is
  // there to catch (an updater writing through mutable_edge carelessly).
  rg.mutable_edge(id).timespans = {5, 1};
  EXPECT_DEATH(rg.CheckInvariants(), "timespans unsorted");
}

TEST(RuleGraphValidateDeathTest, DanglingEdgeEndpointIsFatal) {
  RuleGraph rg;
  const RuleId a = rg.AddRule(AtomicRule{0, 0, 1}, true);
  const RuleId b = rg.AddRule(AtomicRule{1, 1, 2}, true);
  RuleEdge edge;
  edge.kind = RuleEdgeKind::kChain;
  edge.head = a;
  edge.tail = b;
  edge.timespans = {2};
  const RuleEdgeId id = rg.AddEdge(edge);
  rg.mutable_edge(id).tail = 999;  // no such rule
  EXPECT_DEATH(rg.CheckInvariants(), "references unknown rule");
}

TEST(LedgerValidateDeathTest, CounterRangeViolationIsFatal) {
  NegativeErrorLedger ledger(1000.0);
  ledger.SetTimestampTotal(5, 10);
  ledger.Apply(5, 3, 1);
  ledger.CheckInvariants();
  ledger.TestOnlyCorruptCountersForValidation(5, 10, 11, 1);
  EXPECT_DEATH(ledger.CheckInvariants(), "mapped 11 > total 10");
}

TEST(LedgerValidateDeathTest, StaleCachedCostIsFatal) {
  NegativeErrorLedger ledger(1000.0);
  ledger.SetTimestampTotal(5, 10);
  ledger.Apply(5, 3, 1);
  // Coherent ranges, but the counters moved without a reprice: the cached
  // per-timestamp cost no longer matches a CostAt recompute.
  ledger.TestOnlyCorruptCountersForValidation(5, 10, 7, 2);
  EXPECT_DEATH(ledger.CheckInvariants(), "cached cost stale");
}

#endif  // ANOT_VALIDATE

}  // namespace
}  // namespace anot
