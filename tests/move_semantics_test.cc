// Move-semantics regression suite for the serving objects.
//
// The PR 1 class of bug: an object holds a pointer/reference into a
// *member* of its owner, the owner is returned by value (or stashed in a
// std::optional / vector), and the borrow silently dangles into the
// moved-from temporary. AnoT heap-holds everything its Scorer/Updater
// borrow precisely so those borrows survive moves — this suite pins that
// contract by moving every serving object and demanding *bit-identical*
// scores against an unmoved twin built from the same deterministic world.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/anot.h"
#include "core/scorer.h"
#include "core/updater.h"
#include "datagen/generator.h"
#include "eval/anot_model.h"
#include "eval/protocol.h"
#include "eval/sweep.h"
#include "mining/category_function.h"
#include "rulegraph/rule_graph.h"
#include "tkg/split.h"

namespace anot {
namespace {

GeneratorConfig SmallWorldConfig() {
  GeneratorConfig cfg;
  cfg.num_entities = 120;
  cfg.num_relations = 15;
  cfg.num_timestamps = 80;
  cfg.num_facts = 2500;
  cfg.num_categories = 5;
  cfg.num_chain_rules = 4;
  cfg.num_triadic_rules = 2;
  cfg.chain_follow_prob = 0.7;
  cfg.noise_fraction = 0.03;
  cfg.seed = 99;
  return cfg;
}

AnoTOptions SmallOptions() {
  AnoTOptions options;
  options.detector.category.min_support = 3;
  options.detector.timespan_tolerance = 8;
  options.detector.max_recursion_steps = 2;
  options.num_threads = 1;
  return options;
}

void ExpectSameScores(const Scores& expected, const Scores& actual) {
  EXPECT_EQ(expected.static_score, actual.static_score);
  EXPECT_EQ(expected.temporal_score, actual.temporal_score);
  EXPECT_EQ(expected.static_support, actual.static_support);
  EXPECT_EQ(expected.temporal_support, actual.temporal_support);
  EXPECT_EQ(expected.temporal_conflict, actual.temporal_conflict);
  EXPECT_EQ(expected.out_violations, actual.out_violations);
  EXPECT_EQ(expected.temporal_evaluated, actual.temporal_evaluated);
  EXPECT_EQ(expected.associated, actual.associated);
}

/// Shared expensive fixture: one world, one split, one train subgraph,
/// and the test-window arrival stream every case replays.
class MoveSemanticsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticGenerator gen(SmallWorldConfig());
    graph_ = gen.Generate().release();
    split_ = new TimeSplit(SplitByTimestamps(*graph_, 0.6, 0.1));
    train_ = Subgraph(*graph_, split_->train).release();
    stream_ = new std::vector<Fact>();
    const size_t n = std::min<size_t>(80, split_->test.size());
    for (size_t i = 0; i < n; ++i) {
      stream_->push_back(graph_->fact(split_->test[i]));
    }
    ASSERT_FALSE(stream_->empty());
  }
  static void TearDownTestSuite() {
    delete stream_;
    delete train_;
    delete split_;
    delete graph_;
    stream_ = nullptr;
    train_ = nullptr;
    split_ = nullptr;
    graph_ = nullptr;
  }

  static TemporalKnowledgeGraph* graph_;
  static TimeSplit* split_;
  static TemporalKnowledgeGraph* train_;
  static std::vector<Fact>* stream_;
};

TemporalKnowledgeGraph* MoveSemanticsTest::graph_ = nullptr;
TimeSplit* MoveSemanticsTest::split_ = nullptr;
TemporalKnowledgeGraph* MoveSemanticsTest::train_ = nullptr;
std::vector<Fact>* MoveSemanticsTest::stream_ = nullptr;

// ---------------------------------------------------------------- AnoT

TEST_F(MoveSemanticsTest, MoveConstructedAnoTScoresBitIdentical) {
  // Builds are deterministic, so two builds from the same world are twins.
  AnoT twin = AnoT::Build(*train_, SmallOptions());
  AnoT source = AnoT::Build(*train_, SmallOptions());
  AnoT moved(std::move(source));

  EXPECT_EQ(twin.graph().num_facts(), moved.graph().num_facts());
  EXPECT_EQ(twin.rules().num_rules(), moved.rules().num_rules());
  for (const Fact& fact : *stream_) {
    ExpectSameScores(twin.Score(fact), moved.Score(fact));
  }
}

TEST_F(MoveSemanticsTest, MoveAssignedAnoTServesTheOnlinePathBitIdentical) {
  AnoT twin = AnoT::Build(*train_, SmallOptions());
  // The move-assign target starts as a *different* live system, so the
  // assignment also exercises teardown of the replaced state.
  AnoTOptions other = SmallOptions();
  other.detector.max_recursion_steps = 1;
  AnoT moved = AnoT::Build(*train_, other);
  moved = AnoT::Build(*train_, SmallOptions());

  twin.SetValidityThresholds(0.5, 0.5);
  moved.SetValidityThresholds(0.5, 0.5);
  // The full online step mutates state through the Updater's borrows; a
  // dangling options/graph pointer after the move diverges (or crashes)
  // here rather than in the const scoring path.
  for (const Fact& fact : *stream_) {
    UpdateEffects twin_effects, moved_effects;
    ExpectSameScores(twin.ProcessArrival(fact, &twin_effects),
                     moved.ProcessArrival(fact, &moved_effects));
    EXPECT_EQ(twin_effects.facts_ingested, moved_effects.facts_ingested);
    EXPECT_EQ(twin_effects.new_rule_nodes, moved_effects.new_rule_nodes);
    EXPECT_EQ(twin_effects.timespans_recorded,
              moved_effects.timespans_recorded);
  }
  EXPECT_EQ(twin.graph().num_facts(), moved.graph().num_facts());
  EXPECT_EQ(twin.rules().num_edges(), moved.rules().num_edges());
}

// -------------------------------------------------------------- Scorer

TEST_F(MoveSemanticsTest, MovedScorerMatchesUnmovedTwin) {
  AnoT system = AnoT::Build(*train_, SmallOptions());
  const DetectorOptions& det = system.options().detector;
  const Scorer twin(&system.graph(), &system.categories(), &system.rules(),
                    &det);

  Scorer source(&system.graph(), &system.categories(), &system.rules(),
                &det);
  Scorer moved(std::move(source));
  // Move-assign over a scorer for a different options object too.
  DetectorOptions shallow = det;
  shallow.max_recursion_steps = 1;
  Scorer reassigned(&system.graph(), &system.categories(), &system.rules(),
                    &shallow);
  reassigned = Scorer(&system.graph(), &system.categories(),
                      &system.rules(), &det);

  for (const Fact& fact : *stream_) {
    const Scores expected = twin.Score(fact);
    ExpectSameScores(expected, moved.Score(fact));
    ExpectSameScores(expected, reassigned.Score(fact));
  }
}

// ------------------------------------------------------------- Updater

TEST_F(MoveSemanticsTest, MovedUpdaterIngestsBitIdentical) {
  // Two independent copies of the same built structures, so each updater
  // owns (through its borrows) a private mutable world.
  const AnoTOptions options = SmallOptions();
  CategoryFunction built_categories =
      CategoryFunction::Build(*train_, options.detector.category);
  RuleGraphBuilder builder(*train_, built_categories, options.detector);
  RuleGraphBuilder::Output built = builder.Build();

  TemporalKnowledgeGraph graph_a = *train_;
  CategoryFunction categories_a = built_categories;
  RuleGraph rules_a = *built.rule_graph;
  Updater twin(&graph_a, &categories_a, &rules_a, &options.detector,
               options.updater);

  TemporalKnowledgeGraph graph_b = *train_;
  CategoryFunction categories_b = built_categories;
  RuleGraph rules_b = *built.rule_graph;
  Updater source(&graph_b, &categories_b, &rules_b, &options.detector,
                 options.updater);
  Updater moved(std::move(source));

  for (const Fact& fact : *stream_) {
    const UpdateEffects expected = twin.Ingest(fact);
    const UpdateEffects actual = moved.Ingest(fact);
    EXPECT_EQ(expected.added_fact, actual.added_fact);
    EXPECT_EQ(expected.new_entity_categories, actual.new_entity_categories);
    EXPECT_EQ(expected.new_rule_nodes, actual.new_rule_nodes);
    EXPECT_EQ(expected.new_rule_edges, actual.new_rule_edges);
    EXPECT_EQ(expected.timespans_recorded, actual.timespans_recorded);
  }
  EXPECT_EQ(graph_a.num_facts(), graph_b.num_facts());
  EXPECT_EQ(rules_a.num_rules(), rules_b.num_rules());
  EXPECT_EQ(rules_a.num_edges(), rules_b.num_edges());
  EXPECT_EQ(twin.pending_rule_count(), moved.pending_rule_count());
}

// ------------------------------------------------- sweep per-cell models

TEST_F(MoveSemanticsTest, MovedFittedModelScoresBitIdentical) {
  // The sweep's cells hold their model behind AnomalyModel; AnoTModel is
  // the one whose guts (an AnoT in a std::optional) actually move.
  AnoTModel twin(SmallOptions());
  twin.Fit(*train_);
  AnoTModel source(SmallOptions());
  source.Fit(*train_);
  AnoTModel moved(std::move(source));

  const std::vector<AnomalyModel::TaskScores> expected =
      twin.ScoreBatch(*stream_);
  const std::vector<AnomalyModel::TaskScores> actual =
      moved.ScoreBatch(*stream_);
  ASSERT_EQ(expected.size(), actual.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].conceptual, actual[i].conceptual) << i;
    EXPECT_EQ(expected[i].time, actual[i].time) << i;
    EXPECT_EQ(expected[i].missing, actual[i].missing) << i;
  }
}

TEST_F(MoveSemanticsTest, SweepOverMovedCellsMatchesDirectSweep) {
  auto make_cell = [&](std::string label) {
    SweepCell cell;
    cell.graph = graph_;
    cell.split = split_;
    cell.protocol = ProtocolOptions{};
    cell.dataset = "world";
    cell.label = std::move(label);
    cell.factory = [] {
      return Result<std::unique_ptr<AnomalyModel>>(
          std::unique_ptr<AnomalyModel>(new AnoTModel(SmallOptions())));
    };
    return cell;
  };

  SweepSpec direct;
  direct.num_threads = 1;
  direct.cells.push_back(make_cell("direct"));

  // Shuffle the cell through a move-construct and a move-assign before
  // running it, as vector growth inside a larger grid would.
  SweepCell staged = make_cell("moved");
  SweepCell hop(std::move(staged));
  SweepCell target;
  target = std::move(hop);
  SweepSpec via_moves;
  via_moves.num_threads = 1;
  via_moves.cells.push_back(std::move(target));

  const SweepResult expected = RunSweep(direct);
  const SweepResult actual = RunSweep(via_moves);
  ASSERT_EQ(expected.cells.size(), 1u);
  ASSERT_EQ(actual.cells.size(), 1u);
  ASSERT_TRUE(expected.cells[0].status.ok())
      << expected.cells[0].status.message();
  ASSERT_TRUE(actual.cells[0].status.ok())
      << actual.cells[0].status.message();
  const EvalResult& e = expected.cells[0].result;
  const EvalResult& a = actual.cells[0].result;
  EXPECT_EQ(e.conceptual.pr_auc, a.conceptual.pr_auc);
  EXPECT_EQ(e.time.pr_auc, a.time.pr_auc);
  EXPECT_EQ(e.missing.pr_auc, a.missing.pr_auc);
  EXPECT_EQ(e.conceptual.precision, a.conceptual.precision);
  EXPECT_EQ(e.time.precision, a.time.precision);
  EXPECT_EQ(e.missing.precision, a.missing.precision);
}

}  // namespace
}  // namespace anot
