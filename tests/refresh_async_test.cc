// Equivalence harness for the asynchronous double-buffered refresh: pins
// the determinism contract of AnoT::RefreshAsync as a tested property —
// the post-swap state (scores, rule graph, build report, monitor
// counters, refresh_count) is bit-identical to a synchronous Refresh() at
// the snapshot point followed by IngestValid of the facts ingested since
// the snapshot, with the observation window replayed into the reset
// monitor. Every comparison is exact (EXPECT_EQ on doubles).
//
// CI runs this suite under ANOT_THREADS=1 and ANOT_THREADS=4 (same
// convention as online_test) and again under ThreadSanitizer.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "anomaly/injector.h"
#include "core/anot.h"
#include "datagen/generator.h"
#include "serving_test_util.h"
#include "tkg/split.h"

namespace anot {
namespace {

GeneratorConfig RefreshWorldConfig() {
  GeneratorConfig cfg;
  cfg.num_entities = 120;
  cfg.num_relations = 18;
  cfg.num_timestamps = 80;
  cfg.num_facts = 2000;
  cfg.num_categories = 5;
  cfg.num_chain_rules = 4;
  cfg.num_triadic_rules = 2;
  cfg.chain_follow_prob = 0.7;
  cfg.noise_fraction = 0.03;
  cfg.seed = 4321;
  return cfg;
}

AnoTOptions RefreshOptions(size_t num_threads) {
  AnoTOptions options;
  options.detector.category.min_support = 4;
  options.detector.timespan_tolerance = 10;
  options.detector.max_recursion_steps = 2;
  options.refresh_mode = RefreshMode::kAsynchronous;
  options.num_threads = num_threads;
  return options;
}

/// The validity rule CommitArrival applies at the default thresholds
/// (1.0, 1.0): decides which arrivals the updater ingested.
bool IngestedAtDefaultThresholds(const Scores& s) {
  return s.static_score <= 1.0 &&
         (!s.temporal_evaluated || s.temporal_score <= 1.0);
}

/// Feeds `facts` through ProcessArrivalBatch in chunks of `batch`,
/// appending every returned score to `out`.
void ProcessInChunks(AnoT* system, const std::vector<Fact>& facts,
                     size_t batch, std::vector<Scores>* out) {
  std::vector<Fact> chunk;
  for (size_t begin = 0; begin < facts.size(); begin += batch) {
    const size_t end = std::min(facts.size(), begin + batch);
    chunk.assign(facts.begin() + begin, facts.begin() + end);
    std::vector<Scores> scores = system->ProcessArrivalBatch(chunk);
    out->insert(out->end(), scores.begin(), scores.end());
  }
}

/// Shared expensive fixture: one world, one split, one arrival stream cut
/// into prefix / window / probes, plus the two sequential references.
///
///   prefix  — processed before the snapshot (identical in every run)
///   window  — processed between RefreshAsync() and the swap: scored
///             against the old structures, logged for replay
///             (the last window fact's commit performs the swap)
///   probes  — processed after the swap: scored against the new state
class RefreshAsyncFixture : public ::testing::Test {
 protected:
  static constexpr size_t kPrefix = 80;
  static constexpr size_t kWindow = 30;  // includes the swap-commit fact
  static constexpr size_t kProbes = 20;

  static void SetUpTestSuite() {
    SyntheticGenerator gen(RefreshWorldConfig());
    graph_ = gen.Generate().release();
    split_ = new TimeSplit(SplitByTimestamps(*graph_, 0.6, 0.1));
    train_ = Subgraph(*graph_, split_->train).release();

    AnomalyInjector injector(InjectorConfig{});
    EvalStream labeled = injector.Inject(*graph_, split_->test);
    ASSERT_GE(labeled.arrivals.size(), kPrefix + kWindow + kProbes);
    auto slice = [&](size_t begin, size_t n) {
      std::vector<Fact> out;
      for (size_t i = begin; i < begin + n; ++i) {
        out.push_back(labeled.arrivals[i].fact);
      }
      return out;
    };
    prefix_ = new std::vector<Fact>(slice(0, kPrefix));
    window_ = new std::vector<Fact>(slice(kPrefix, kWindow));
    probes_ = new std::vector<Fact>(slice(kPrefix + kWindow, kProbes));

    // Reference A — the old-structure scores of the window: a sequential
    // system that processes prefix + window with no refresh at all.
    {
      AnoT r = AnoT::Build(*train_, RefreshOptions(1));
      for (const Fact& f : *prefix_) r.ProcessArrival(f);
      ref_window_scores_ = new std::vector<Scores>();
      for (const Fact& f : *window_) {
        ref_window_scores_->push_back(r.ProcessArrival(f));
      }
    }

    // Reference B — the contract's right-hand side: synchronous Refresh()
    // at the snapshot point, then IngestValid of the facts the async run
    // ingests during the window, then the probes.
    {
      ref_ = new AnoT(AnoT::Build(*train_, RefreshOptions(1)));
      for (const Fact& f : *prefix_) ref_->ProcessArrival(f);
      ref_->Refresh();
      // Universe sizes the swap's monitor handoff uses: the snapshot
      // state, before the ingest replay grows the graph (mirrors
      // AnoT::ResetMonitorFromReport).
      ref_tier2_ = std::max<double>(2.0, ref_->graph().num_entities());
      const double r_rels =
          std::max<double>(1.0, ref_->graph().num_relations());
      ref_tier1_ = std::max(ref_tier2_ * ref_tier2_ * r_rels, 4.0);
      size_t replayed = 0;
      for (size_t i = 0; i < window_->size(); ++i) {
        if (IngestedAtDefaultThresholds((*ref_window_scores_)[i])) {
          ref_->IngestValid((*window_)[i]);
          ++replayed;
        }
      }
      // Vacuity guards: the window must exercise both replay branches.
      ASSERT_GT(replayed, 0u) << "window never ingests: replay is vacuous";
      ASSERT_LT(replayed, window_->size())
          << "window always ingests: threshold gate is vacuous";
      ref_probe_scores_ = new std::vector<Scores>();
      for (const Fact& f : *probes_) {
        ref_probe_scores_->push_back(ref_->ProcessArrival(f));
      }
    }
  }

  static void TearDownTestSuite() {
    delete ref_probe_scores_;
    delete ref_;
    delete ref_window_scores_;
    delete probes_;
    delete window_;
    delete prefix_;
    delete train_;
    delete split_;
    delete graph_;
    ref_probe_scores_ = nullptr;
    ref_ = nullptr;
    ref_window_scores_ = nullptr;
    probes_ = nullptr;
    window_ = nullptr;
    prefix_ = nullptr;
    train_ = nullptr;
    split_ = nullptr;
    graph_ = nullptr;
  }

  /// The expected post-swap monitor: reset to the post-refresh budget,
  /// then fed the window observations (recorded from old-structure
  /// scores) and the probe observations (new-structure scores), exactly
  /// as CommitArrival observed them.
  static Monitor ExpectedMonitor() {
    Monitor expected(ref_->report().negative_bits,
                     ref_->report().num_train_timestamps, ref_tier1_,
                     ref_tier2_, RefreshOptions(1).monitor);
    for (size_t i = 0; i < window_->size(); ++i) {
      const Scores& s = (*ref_window_scores_)[i];
      expected.Observe((*window_)[i].time, s.static_support > 0.0,
                       s.associated);
    }
    for (size_t i = 0; i < probes_->size(); ++i) {
      const Scores& s = (*ref_probe_scores_)[i];
      expected.Observe((*probes_)[i].time, s.static_support > 0.0,
                       s.associated);
    }
    return expected;
  }

  static TemporalKnowledgeGraph* graph_;
  static TimeSplit* split_;
  static TemporalKnowledgeGraph* train_;
  static std::vector<Fact>* prefix_;
  static std::vector<Fact>* window_;
  static std::vector<Fact>* probes_;
  static std::vector<Scores>* ref_window_scores_;
  static std::vector<Scores>* ref_probe_scores_;
  static AnoT* ref_;
  static double ref_tier1_;
  static double ref_tier2_;
};

TemporalKnowledgeGraph* RefreshAsyncFixture::graph_ = nullptr;
TimeSplit* RefreshAsyncFixture::split_ = nullptr;
TemporalKnowledgeGraph* RefreshAsyncFixture::train_ = nullptr;
std::vector<Fact>* RefreshAsyncFixture::prefix_ = nullptr;
std::vector<Fact>* RefreshAsyncFixture::window_ = nullptr;
std::vector<Fact>* RefreshAsyncFixture::probes_ = nullptr;
std::vector<Scores>* RefreshAsyncFixture::ref_window_scores_ = nullptr;
std::vector<Scores>* RefreshAsyncFixture::ref_probe_scores_ = nullptr;
AnoT* RefreshAsyncFixture::ref_ = nullptr;
double RefreshAsyncFixture::ref_tier1_ = 0.0;
double RefreshAsyncFixture::ref_tier2_ = 0.0;

// ------------------------------------------- post-swap state equivalence

TEST_F(RefreshAsyncFixture, PostSwapStateBitIdenticalToSyncRefreshPlusReplay) {
  // {1, 4} fallback: each config pays a full offline + background build,
  // so the unset-env sweep stays at one serial and one contended row.
  for (size_t threads : ThreadCountsUnderTest({1, 4})) {
    for (size_t batch : {size_t{1}, size_t{7}, size_t{64}}) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " batch=" + std::to_string(batch));
      AnoT system = AnoT::Build(*train_, RefreshOptions(threads));
      std::vector<Scores> prefix_scores;
      ProcessInChunks(&system, *prefix_, batch, &prefix_scores);
      ASSERT_FALSE(system.refresh_in_flight());
      system.RefreshAsync();
      ASSERT_TRUE(system.refresh_in_flight());

      // Window minus the swap-commit fact: served against the old
      // structures while the build runs. The build (a full offline
      // pipeline, >100ms) cannot finish within these ~30 in-process
      // arrivals (~ms); the assert below would catch it if it ever did.
      std::vector<Scores> window_scores;
      std::vector<Fact> pre_swap(window_->begin(), window_->end() - 1);
      ProcessInChunks(&system, pre_swap, batch, &window_scores);
      ASSERT_TRUE(system.refresh_in_flight())
          << "build finished mid-window; widen the build/serve margin";

      // Deterministic swap point: wait for the staged build, then let the
      // last window fact's commit perform the swap. When batch > 1 the
      // probes ride in the same chunk, so the swap happens mid-batch and
      // the speculative probe scores must be discarded and re-scored.
      system.WaitForRefreshReady();
      ASSERT_TRUE(system.RefreshReady());
      std::vector<Fact> tail;
      tail.push_back(window_->back());
      tail.insert(tail.end(), probes_->begin(), probes_->end());
      std::vector<Scores> tail_scores;
      ProcessInChunks(&system, tail, batch, &tail_scores);
      window_scores.push_back(tail_scores.front());
      std::vector<Scores> probe_scores(tail_scores.begin() + 1,
                                       tail_scores.end());
      ASSERT_FALSE(system.refresh_in_flight());
      EXPECT_EQ(system.refresh_count(), 1u);

      // Window scores: the old structures, bit for bit.
      ASSERT_EQ(window_scores.size(), ref_window_scores_->size());
      for (size_t i = 0; i < window_scores.size(); ++i) {
        ExpectScoresIdentical((*ref_window_scores_)[i], window_scores[i], i);
      }
      // Probe scores: the post-swap structures, bit for bit.
      ASSERT_EQ(probe_scores.size(), ref_probe_scores_->size());
      for (size_t i = 0; i < probe_scores.size(); ++i) {
        ExpectScoresIdentical((*ref_probe_scores_)[i], probe_scores[i], i);
      }
      // Post-swap structures and build report.
      EXPECT_EQ(system.rules().ToString(), ref_->rules().ToString());
      EXPECT_EQ(system.graph().num_facts(), ref_->graph().num_facts());
      EXPECT_EQ(system.categories().num_categories(),
                ref_->categories().num_categories());
      EXPECT_EQ(system.report().negative_bits, ref_->report().negative_bits);
      EXPECT_EQ(system.report().model_bits, ref_->report().model_bits);
      EXPECT_EQ(system.report().num_rules, ref_->report().num_rules);
      EXPECT_EQ(system.report().num_edges, ref_->report().num_edges);
      // Monitor handoff: reset to the new budget + replayed window.
      const Monitor expected = ExpectedMonitor();
      EXPECT_EQ(system.monitor().online_negative_bits(),
                expected.online_negative_bits());
      EXPECT_EQ(system.monitor().online_timestamps(),
                expected.online_timestamps());
      EXPECT_EQ(system.monitor().ShouldRefresh(), expected.ShouldRefresh());
      // The swap is a commit boundary: the adopted structures plus the
      // replayed ingest window must be structurally coherent.
      ValidateAtCommitBoundary(system);
    }
  }
}

// -------------------------------------------------- lifecycle edge cases

TEST_F(RefreshAsyncFixture, EmptyWindowSwapEqualsSynchronousRefresh) {
  AnoT async = AnoT::Build(*train_, RefreshOptions(1));
  AnoT sync = AnoT::Build(*train_, RefreshOptions(1));
  for (const Fact& f : *prefix_) {
    async.ProcessArrival(f);
    sync.ProcessArrival(f);
  }
  async.RefreshAsync();
  EXPECT_TRUE(async.refresh_in_flight());
  EXPECT_TRUE(async.FinishRefresh());
  sync.Refresh();
  ValidateAtCommitBoundary(async);
  ValidateAtCommitBoundary(sync);

  EXPECT_EQ(async.refresh_count(), 1u);
  EXPECT_FALSE(async.refresh_in_flight());
  EXPECT_EQ(async.rules().ToString(), sync.rules().ToString());
  EXPECT_EQ(async.graph().num_facts(), sync.graph().num_facts());
  EXPECT_EQ(async.report().negative_bits, sync.report().negative_bits);
  EXPECT_EQ(async.monitor().online_negative_bits(),
            sync.monitor().online_negative_bits());
  EXPECT_EQ(async.monitor().online_timestamps(),
            sync.monitor().online_timestamps());
}

TEST_F(RefreshAsyncFixture, RequestsCoalesceWhileInFlight) {
  AnoT system = AnoT::Build(*train_, RefreshOptions(1));
  system.RefreshAsync();
  system.RefreshAsync();  // coalesced: still the same in-flight build
  EXPECT_TRUE(system.refresh_in_flight());
  EXPECT_TRUE(system.FinishRefresh());
  EXPECT_EQ(system.refresh_count(), 1u);
  EXPECT_FALSE(system.FinishRefresh()) << "nothing left in flight";
  system.RefreshAsync();  // a new cycle is allowed after the swap
  EXPECT_TRUE(system.FinishRefresh());
  EXPECT_EQ(system.refresh_count(), 2u);
}

TEST_F(RefreshAsyncFixture, SynchronousRefreshAbandonsInFlightBuild) {
  AnoT system = AnoT::Build(*train_, RefreshOptions(1));
  AnoT reference = AnoT::Build(*train_, RefreshOptions(1));
  system.RefreshAsync();
  system.Refresh();  // cancels the background build, rebuilds inline
  reference.Refresh();
  EXPECT_FALSE(system.refresh_in_flight());
  EXPECT_EQ(system.refresh_count(), 1u);
  EXPECT_EQ(system.rules().ToString(), reference.rules().ToString());
}

TEST_F(RefreshAsyncFixture, DestructorAndMoveHandleInFlightBuild) {
  {
    AnoT doomed = AnoT::Build(*train_, RefreshOptions(1));
    doomed.RefreshAsync();
    // Destroyed while the build runs: cancelled and joined, no leak/hang.
  }
  AnoT original = AnoT::Build(*train_, RefreshOptions(1));
  original.RefreshAsync();
  AnoT moved = std::move(original);  // background state survives the move
  EXPECT_TRUE(moved.refresh_in_flight());
  EXPECT_TRUE(moved.FinishRefresh());
  EXPECT_EQ(moved.refresh_count(), 1u);
  const Fact& probe = probes_->front();
  (void)moved.Score(probe);  // serving still works post-swap
}

// ------------------------------------------- auto refresh in async mode

TEST_F(RefreshAsyncFixture, AutoRefreshAsyncKeepsServingWhileRebuilding) {
  AnoTOptions options = RefreshOptions(2);
  options.auto_refresh = true;
  options.monitor.mode = MonitorOptions::Mode::kPerTimestamp;
  AnoT system = AnoT::Build(*train_, options);

  // Real facts, then a garbage flood that blows the per-timestamp budget
  // (fires the monitor => background build), then more real facts served
  // while the build runs. Unlike the synchronous mode, every arrival gets
  // a score without waiting for the rebuild.
  std::vector<Fact> stream = *prefix_;
  const EntityId base = static_cast<EntityId>(graph_->num_entities());
  const Timestamp t0 = graph_->max_time() + 1;
  for (int i = 0; i < 24; ++i) {
    // One dense hot timestamp: its open bucket alone blows the
    // per-timestamp budget.
    stream.push_back(Fact(base + i, 0, base + i + 1, t0));
  }
  stream.insert(stream.end(), window_->begin(), window_->end());

  std::vector<Scores> scores;
  ProcessInChunks(&system, stream, 16, &scores);
  EXPECT_EQ(scores.size(), stream.size());
  const bool launched = system.refresh_in_flight();
  system.FinishRefresh();
  EXPECT_TRUE(launched || system.refresh_count() > 0)
      << "monitor never launched a background refresh: case is vacuous";
  EXPECT_GE(system.refresh_count(), 1u);
  EXPECT_FALSE(system.refresh_in_flight());
  (void)system.Score(probes_->front());  // functional after the swap
}

}  // namespace
}  // namespace anot
