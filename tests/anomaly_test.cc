#include <gtest/gtest.h>

#include <cmath>

#include "anomaly/injector.h"
#include "datagen/generator.h"
#include "tkg/split.h"

namespace anot {
namespace {

class InjectorFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    GeneratorConfig cfg;
    cfg.num_entities = 150;
    cfg.num_relations = 25;
    cfg.num_timestamps = 100;
    cfg.num_facts = 5000;
    cfg.seed = 5;
    SyntheticGenerator gen(cfg);
    graph_ = gen.Generate();
    split_ = SplitByTimestamps(*graph_, 0.6, 0.1);
  }

  std::unique_ptr<TemporalKnowledgeGraph> graph_;
  TimeSplit split_;
};

TEST_F(InjectorFixture, FractionsRespected) {
  InjectorConfig cfg;
  AnomalyInjector injector(cfg);
  EvalStream stream = injector.Inject(*graph_, split_.test);

  const size_t n = split_.test.size();
  size_t conceptual = 0, time_err = 0, valid = 0;
  for (const auto& lf : stream.arrivals) {
    switch (lf.label) {
      case AnomalyType::kConceptual: ++conceptual; break;
      case AnomalyType::kTime: ++time_err; break;
      case AnomalyType::kValid: ++valid; break;
      case AnomalyType::kMissing:
        FAIL() << "missing labels must not appear in arrivals";
        break;
    }
  }
  size_t missing = 0;
  for (const auto& lf : stream.missing_candidates) {
    missing += (lf.label == AnomalyType::kMissing);
  }
  EXPECT_NEAR(static_cast<double>(conceptual) / n, 0.15, 0.01);
  EXPECT_NEAR(static_cast<double>(time_err) / n, 0.15, 0.01);
  EXPECT_NEAR(static_cast<double>(missing) / n, 0.15, 0.01);
  // Arrivals = all window facts minus deleted ones.
  EXPECT_EQ(stream.arrivals.size(), n - missing);
  // One matched negative per missing positive.
  EXPECT_EQ(stream.missing_candidates.size(), 2 * missing);
}

TEST_F(InjectorFixture, ConceptualPerturbationsAreNonFacts) {
  AnomalyInjector injector(InjectorConfig{});
  EvalStream stream = injector.Inject(*graph_, split_.test);
  for (const auto& lf : stream.arrivals) {
    if (lf.label != AnomalyType::kConceptual) continue;
    EXPECT_FALSE(graph_->ContainsTriple(lf.fact.subject, lf.fact.relation,
                                        lf.fact.object))
        << "conceptual anomaly collides with a genuine triple";
    // The perturbation changed relation or object, never subject/time.
    const Fact& orig = graph_->fact(lf.source);
    EXPECT_EQ(lf.fact.subject, orig.subject);
    EXPECT_EQ(lf.fact.time, orig.time);
    EXPECT_TRUE(lf.fact.object != orig.object ||
                lf.fact.relation != orig.relation);
  }
}

TEST_F(InjectorFixture, TimePerturbationsKeepTripleAndShiftFar) {
  AnomalyInjector injector(InjectorConfig{});
  EvalStream stream = injector.Inject(*graph_, split_.test);

  Timestamp wmin = graph_->fact(split_.test.front()).time;
  Timestamp wmax = wmin;
  for (FactId id : split_.test) {
    wmin = std::min(wmin, graph_->fact(id).time);
    wmax = std::max(wmax, graph_->fact(id).time);
  }
  const Timestamp span = wmax - wmin;

  size_t checked = 0;
  for (const auto& lf : stream.arrivals) {
    if (lf.label != AnomalyType::kTime) continue;
    const Fact& orig = graph_->fact(lf.source);
    EXPECT_EQ(lf.fact.subject, orig.subject);
    EXPECT_EQ(lf.fact.relation, orig.relation);
    EXPECT_EQ(lf.fact.object, orig.object);
    EXPECT_NE(lf.fact.time, orig.time);
    // "Large span" between t and t' (allow the far-edge fallback).
    EXPECT_GE(std::llabs(lf.fact.time - orig.time),
              static_cast<Timestamp>(0.25 * span));
    ++checked;
  }
  EXPECT_GT(checked, 0u);
}

TEST_F(InjectorFixture, MissingPositivesAreRealDeletedFacts) {
  AnomalyInjector injector(InjectorConfig{});
  EvalStream stream = injector.Inject(*graph_, split_.test);
  for (const auto& lf : stream.missing_candidates) {
    if (lf.label == AnomalyType::kMissing) {
      // The positive is a genuine fact of the graph...
      EXPECT_TRUE(graph_->Contains(lf.fact));
      // ...that was removed from the arrival stream.
      for (const auto& arr : stream.arrivals) {
        EXPECT_FALSE(arr.fact == lf.fact && arr.source == lf.source);
      }
    } else {
      // Negatives are corrupted tuples.
      EXPECT_FALSE(graph_->ContainsTriple(lf.fact.subject, lf.fact.relation,
                                          lf.fact.object));
    }
  }
}

TEST_F(InjectorFixture, ArrivalsSortedByTime) {
  AnomalyInjector injector(InjectorConfig{});
  EvalStream stream = injector.Inject(*graph_, split_.test);
  for (size_t i = 1; i < stream.arrivals.size(); ++i) {
    EXPECT_LE(stream.arrivals[i - 1].fact.time, stream.arrivals[i].fact.time);
  }
}

TEST_F(InjectorFixture, DeterministicGivenSeed) {
  AnomalyInjector a(InjectorConfig{});
  AnomalyInjector b(InjectorConfig{});
  EvalStream sa = a.Inject(*graph_, split_.test);
  EvalStream sb = b.Inject(*graph_, split_.test);
  ASSERT_EQ(sa.arrivals.size(), sb.arrivals.size());
  for (size_t i = 0; i < sa.arrivals.size(); ++i) {
    EXPECT_TRUE(sa.arrivals[i].fact == sb.arrivals[i].fact);
    EXPECT_EQ(sa.arrivals[i].label, sb.arrivals[i].label);
  }
}

TEST(InjectorTest, EmptyWindowYieldsEmptyStream) {
  TemporalKnowledgeGraph g;
  g.AddFact("a", "r", "b", 1);
  AnomalyInjector injector(InjectorConfig{});
  EvalStream stream = injector.Inject(g, {});
  EXPECT_TRUE(stream.arrivals.empty());
  EXPECT_TRUE(stream.missing_candidates.empty());
}

TEST(InjectorTest, DurationPerturbationKeepsStartBeforeEnd) {
  GeneratorConfig cfg;
  cfg.num_entities = 100;
  cfg.num_relations = 12;
  cfg.num_timestamps = 80;
  cfg.num_facts = 3000;
  cfg.durations = true;
  cfg.mean_duration = 20.0;
  SyntheticGenerator gen(cfg);
  auto graph = gen.Generate();
  TimeSplit split = SplitByTimestamps(*graph, 0.6, 0.1);

  InjectorConfig icfg;
  icfg.perturb_durations = true;
  AnomalyInjector injector(icfg);
  EvalStream stream = injector.Inject(*graph, split.test);
  size_t time_errors = 0;
  for (const auto& lf : stream.arrivals) {
    EXPECT_LE(lf.fact.time, lf.fact.end);
    time_errors += (lf.label == AnomalyType::kTime);
  }
  EXPECT_GT(time_errors, 0u);
}

TEST(InjectorTest, TypeNamesAreStable) {
  EXPECT_STREQ(AnomalyTypeName(AnomalyType::kValid), "valid");
  EXPECT_STREQ(AnomalyTypeName(AnomalyType::kConceptual), "conceptual");
  EXPECT_STREQ(AnomalyTypeName(AnomalyType::kTime), "time");
  EXPECT_STREQ(AnomalyTypeName(AnomalyType::kMissing), "missing");
}

}  // namespace
}  // namespace anot
