#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.h"

namespace anot {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { ++counter; });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, SingleWorkerPreservesSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&order, i] { order.push_back(i); });
  }
  pool.Wait();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { ++counter; });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, ConcurrentSubmitFromManyThreads) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < 8; ++t) {
    submitters.emplace_back([&pool, &counter] {
      for (int i = 0; i < 250; ++i) {
        pool.Submit([&counter] { ++counter; });
      }
    });
  }
  for (auto& t : submitters) t.join();
  pool.Wait();
  EXPECT_EQ(counter.load(), 8 * 250);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.Submit([&counter] { ++counter; });
    }
    // No Wait(): destruction must still run every queued task.
  }
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, TaskExceptionDoesNotDeadlockAndRethrowsOnWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([] { throw std::runtime_error("boom"); });
  for (int i = 0; i < 20; ++i) {
    pool.Submit([&counter] { ++counter; });
  }
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  EXPECT_EQ(counter.load(), 20);

  // The pool stays usable and a clean Wait() no longer throws.
  pool.Submit([&counter] { ++counter; });
  EXPECT_NO_THROW(pool.Wait());
  EXPECT_EQ(counter.load(), 21);
}

TEST(ThreadPoolTest, WaitWithNothingPendingReturnsImmediately) {
  ThreadPool pool(2);
  EXPECT_NO_THROW(pool.Wait());
}

// Stress case for the annotated Mutex/CondVar wrappers: many submitter
// threads race Wait() on the main thread while some tasks throw. Pins the
// contract that (a) Submit is safe concurrently with Wait, (b) every
// non-throwing task runs exactly once even when Wait drains mid-stream,
// (c) task exceptions surface on the waiting thread instead of killing a
// worker, and (d) the pool stays usable afterwards. Runs under the TSan
// CI job, which checks the same interleavings dynamically.
TEST(ThreadPoolTest, ConcurrentSubmitRacingWaitStress) {
  constexpr int kSubmitters = 4;
  constexpr int kTasksEach = 500;
  constexpr int kThrowEvery = 100;  // kSubmitters * 5 throwing tasks total
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  std::atomic<int> live_submitters{kSubmitters};
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&pool, &ran, &live_submitters] {
      for (int i = 0; i < kTasksEach; ++i) {
        if (i % kThrowEvery == 0) {
          pool.Submit([] { throw std::runtime_error("stress"); });
        } else {
          pool.Submit([&ran] { ++ran; });
        }
      }
      --live_submitters;
    });
  }
  // Race Wait() against the submitters: each call drains whatever was
  // pending at that moment and rethrows the first task exception captured
  // since the previous Wait. Exceptions between two Waits coalesce to
  // one, so the caught count is only bounded, not exact.
  int caught = 0;
  while (live_submitters.load() > 0) {
    try {
      pool.Wait();
    } catch (const std::runtime_error&) {
      ++caught;
    }
  }
  for (auto& t : submitters) t.join();
  // Final drain: everything submitted is now visible; loop until a Wait
  // completes without rethrowing, which by contract means the queue is
  // empty and no exception is pending.
  for (;;) {
    try {
      pool.Wait();
      break;
    } catch (const std::runtime_error&) {
      ++caught;
    }
  }
  const int throwing = kSubmitters * (kTasksEach / kThrowEvery);
  EXPECT_EQ(ran.load(), kSubmitters * kTasksEach - throwing);
  EXPECT_GE(caught, 1);
  EXPECT_LE(caught, throwing);

  // Drain ordering: the pool is fully usable after the storm, and a clean
  // Wait() no longer throws.
  std::atomic<int> after{0};
  pool.Submit([&after] { ++after; });
  EXPECT_NO_THROW(pool.Wait());
  EXPECT_EQ(after.load(), 1);
}

// A pool destroyed with a captured-but-unobserved task exception (no
// final Wait) must not rethrow from the destructor: the exception is
// logged and dropped, and the queued work still drains. Surfaced while
// annotating the destructor's error_ read (it is guarded data even after
// the joins).
TEST(ThreadPoolTest, DestructorWithUnobservedExceptionLogsAndDrains) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    pool.Submit([] { throw std::runtime_error("unobserved"); });
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { ++counter; });
    }
    // No Wait(): destruction must drain the queue and swallow the error.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ResolveNumThreadsTest, ZeroMeansHardwareConcurrency) {
  EXPECT_GE(ResolveNumThreads(0), 1u);
  EXPECT_EQ(ResolveNumThreads(3), 3u);
}

TEST(DeterministicShardCountTest, DependsOnlyOnDataSize) {
  EXPECT_EQ(DeterministicShardCount(0), 1u);
  EXPECT_EQ(DeterministicShardCount(1), 1u);
  EXPECT_EQ(DeterministicShardCount(256), 1u);
  EXPECT_EQ(DeterministicShardCount(257), 2u);
  EXPECT_EQ(DeterministicShardCount(1u << 20), 32u);
}

TEST(ParallelForShardsTest, CoversEveryIndexExactlyOnce) {
  for (size_t threads : {size_t{0}, size_t{1}, size_t{4}}) {
    std::unique_ptr<ThreadPool> pool;
    if (threads > 0) pool = std::make_unique<ThreadPool>(threads);
    const size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h = 0;
    ParallelForShards(pool.get(), n, 7,
                      [&hits](size_t /*shard*/, size_t begin, size_t end) {
                        for (size_t i = begin; i < end; ++i) ++hits[i];
                      });
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ParallelForShardsTest, SerialFallbackRunsShardsInOrder) {
  std::vector<size_t> shard_order;
  ParallelForShards(nullptr, 100, 5,
                    [&shard_order](size_t shard, size_t, size_t) {
                      shard_order.push_back(shard);
                    });
  ASSERT_EQ(shard_order.size(), 5u);
  for (size_t s = 0; s < 5; ++s) EXPECT_EQ(shard_order[s], s);
}

TEST(ParallelForShardsTest, EmptyRangeStillInvokesNothingHarmful) {
  ThreadPool pool(2);
  std::atomic<size_t> visited{0};
  ParallelForShards(&pool, 0, 4,
                    [&visited](size_t, size_t begin, size_t end) {
                      visited += end - begin;
                    });
  EXPECT_EQ(visited.load(), 0u);
}

}  // namespace
}  // namespace anot
