// Helpers shared by the serving-path equivalence suites (online_test,
// refresh_async_test): the ANOT_THREADS schedule convention and the
// exact, field-complete Scores comparison. Kept in one place so a new
// score component or a change to the thread-sweep convention updates
// every suite in lockstep.
#pragma once

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "core/anot.h"
#include "core/scorer.h"

namespace anot {

/// Thread counts every equivalence case runs at. When ANOT_THREADS is set
/// (CI's serial/contended double run) it *selects* the schedule — {1} for
/// a pure serial pass, {1, N} otherwise, so the env value genuinely
/// changes what runs; unset falls back to `fallback`.
inline std::vector<size_t> ThreadCountsUnderTest(
    std::vector<size_t> fallback = {1, 2, 4}) {
  const char* raw = std::getenv("ANOT_THREADS");
  if (raw != nullptr && *raw != '\0') {
    char* end = nullptr;
    const unsigned long value = std::strtoul(raw, &end, 10);
    if (end != raw && *raw != '-' && value > 0 && value <= 64) {
      if (value == 1) return {1};
      return {1, static_cast<size_t>(value)};
    }
  }
  return fallback;
}

/// Commit-boundary invariant sweep for the serving suites: validates the
/// full system (TKG, rule graph, monitor, updater) so structural
/// corruption aborts at the run that caused it. A no-op without
/// ANOT_VALIDATE. Call between arrivals/batches, never mid-mutation.
inline void ValidateAtCommitBoundary(const AnoT& system) {
  system.CheckInvariants();
}

/// Bitwise comparison of every Scores field (EXPECT_EQ on doubles: the
/// equivalence contracts are exact, not approximate).
inline void ExpectScoresIdentical(const Scores& a, const Scores& b,
                                  size_t i) {
  ASSERT_EQ(a.static_score, b.static_score) << "fact " << i;
  ASSERT_EQ(a.temporal_score, b.temporal_score) << "fact " << i;
  ASSERT_EQ(a.static_support, b.static_support) << "fact " << i;
  ASSERT_EQ(a.temporal_support, b.temporal_support) << "fact " << i;
  ASSERT_EQ(a.temporal_conflict, b.temporal_conflict) << "fact " << i;
  ASSERT_EQ(a.out_violations, b.out_violations) << "fact " << i;
  ASSERT_EQ(a.temporal_evaluated, b.temporal_evaluated) << "fact " << i;
  ASSERT_EQ(a.associated, b.associated) << "fact " << i;
}

}  // namespace anot
