#include "util/containers.h"

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <unordered_map>
#include <vector>

namespace anot {
namespace {

// ------------------------------------------------------------- dense_map

TEST(DenseMapTest, InsertFindEraseBasics) {
  dense_map<int, std::string> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.find(1), m.end());

  m[1] = "one";
  m[2] = "two";
  auto [it, inserted] = m.try_emplace(3, "three");
  EXPECT_TRUE(inserted);
  EXPECT_EQ(it->second, "three");
  EXPECT_EQ(m.size(), 3u);

  // try_emplace on an existing key neither inserts nor overwrites.
  auto [it2, inserted2] = m.try_emplace(2, "TWO");
  EXPECT_FALSE(inserted2);
  EXPECT_EQ(it2->second, "two");

  EXPECT_TRUE(m.contains(1));
  EXPECT_EQ(m.count(1), 1u);
  EXPECT_EQ(m.count(9), 0u);
  EXPECT_EQ(m.at(1), "one");
  EXPECT_THROW(m.at(9), std::out_of_range);

  EXPECT_EQ(m.erase(2), 1u);
  EXPECT_EQ(m.erase(2), 0u);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_FALSE(m.contains(2));
  EXPECT_EQ(m.at(1), "one");
  EXPECT_EQ(m.at(3), "three");

  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_FALSE(m.contains(1));
}

TEST(DenseMapTest, IterationIsInsertionOrder) {
  dense_map<int, int> m;
  const std::vector<int> keys = {42, 7, 19, 3, 100, 55};
  for (size_t i = 0; i < keys.size(); ++i) m[keys[i]] = static_cast<int>(i);
  std::vector<int> seen;
  for (const auto& [k, v] : m) seen.push_back(k);
  EXPECT_EQ(seen, keys);
}

TEST(DenseMapTest, EraseSwapsLastSlotIntoHole) {
  dense_map<int, int> m;
  for (int k = 0; k < 6; ++k) m[k] = k * 10;
  m.erase(1);
  // The last inserted entry (5) moved into the erased entry's position;
  // every other entry keeps its relative order.
  std::vector<int> seen;
  for (const auto& [k, v] : m) seen.push_back(k);
  EXPECT_EQ(seen, (std::vector<int>{0, 5, 2, 3, 4}));
  for (int k : seen) EXPECT_EQ(m.at(k), k * 10);
}

TEST(DenseMapTest, GrowsThroughManyInsertsAndAgreesWithStd) {
  dense_map<uint64_t, uint64_t> m;
  std::unordered_map<uint64_t, uint64_t> ref;
  std::mt19937_64 rng(12345);
  for (int i = 0; i < 20000; ++i) {
    const uint64_t k = rng() % 8192;
    if (rng() % 4 == 0) {
      EXPECT_EQ(m.erase(k), ref.erase(k));
    } else {
      const uint64_t v = rng();
      m[k] = v;
      ref[k] = v;
    }
  }
  ASSERT_EQ(m.size(), ref.size());
  for (const auto& [k, v] : ref) {
    auto it = m.find(k);
    ASSERT_NE(it, m.end()) << "missing key " << k;
    EXPECT_EQ(it->second, v);
  }
}

TEST(DenseMapTest, ReserveAvoidsInvalidationDuringBulkLoad) {
  dense_map<int, int> m;
  m.reserve(1000);
  m[0] = 0;
  const auto* stable = &*m.find(0);
  for (int k = 1; k < 1000; ++k) m[k] = k;
  // No rehash/regrow happened, so the first slot never moved.
  EXPECT_EQ(stable, &*m.find(0));
  EXPECT_EQ(m.size(), 1000u);
}

TEST(DenseMapTest, OperatorBracketDefaultConstructs) {
  dense_map<int, std::vector<int>> m;
  m[7].push_back(1);
  m[7].push_back(2);
  EXPECT_EQ(m.at(7).size(), 2u);
}

// ------------------------------------------------------------- dense_set

TEST(DenseSetTest, InsertCountErase) {
  dense_set<uint64_t> s;
  EXPECT_TRUE(s.insert(5).second);
  EXPECT_FALSE(s.insert(5).second);
  EXPECT_TRUE(s.insert(6).second);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.contains(5));
  EXPECT_EQ(s.count(7), 0u);
  EXPECT_EQ(s.erase(5), 1u);
  EXPECT_FALSE(s.contains(5));
  EXPECT_TRUE(s.contains(6));
}

TEST(DenseSetTest, OrderInsensitiveEquality) {
  dense_set<int> a;
  dense_set<int> b;
  a.insert(1);
  a.insert(2);
  a.insert(3);
  b.insert(3);
  b.insert(1);
  b.insert(2);
  EXPECT_EQ(a, b);
  b.insert(4);
  EXPECT_NE(a, b);
}

// ------------------------------------------------------------ string_map

TEST(StringMapTest, TransparentStringViewProbes) {
  string_map<int> m;
  m.try_emplace("alpha", 1);
  m.try_emplace(std::string("beta"), 2);
  // Probes through string_view / char* find entries interned as
  // std::string.
  EXPECT_NE(m.find(std::string_view("alpha")), m.end());
  EXPECT_NE(m.find("beta"), m.end());
  EXPECT_EQ(m.find(std::string_view("alpha"))->second, 1);
  // A non-NUL-terminated view into a larger buffer.
  const std::string buf = "alphabet";
  EXPECT_EQ(m.find(std::string_view(buf).substr(0, 5))->second, 1);
  EXPECT_EQ(m.find(std::string_view(buf)), m.end());
  // operator[] with a string_view inserts a std::string key.
  m[std::string_view("gamma")] = 3;
  EXPECT_EQ(m.at("gamma"), 3);
  EXPECT_EQ(m.size(), 3u);
}

TEST(StringSetTest, HeterogeneousInsertAndLookup) {
  string_set s;
  EXPECT_TRUE(s.insert(std::string_view("x")).second);
  EXPECT_FALSE(s.insert("x").second);
  EXPECT_TRUE(s.contains(std::string_view("x")));
  EXPECT_FALSE(s.contains("y"));
}

// -------------------------------------------------------------- small_vec

TEST(SmallVecTest, StaysInlineUpToN) {
  small_vec<int, 4> v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.capacity(), 4u);
  for (int i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_EQ(v.capacity(), 4u);  // still inline
  v.push_back(4);
  EXPECT_GT(v.capacity(), 4u);  // spilled to the heap
  ASSERT_EQ(v.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(v[i], i);
}

TEST(SmallVecTest, InitializerListAndVectorInterop) {
  small_vec<int, 4> v{1, 2, 3};
  EXPECT_EQ(v, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ((std::vector<int>{1, 2, 3}), v);
  EXPECT_NE(v, (std::vector<int>{1, 2}));
  v = std::vector<int>{9, 8, 7, 6, 5};
  ASSERT_EQ(v.size(), 5u);
  EXPECT_EQ(v.front(), 9);
  EXPECT_EQ(v.back(), 5);
  v = {1};
  EXPECT_EQ(v, (std::vector<int>{1}));
}

TEST(SmallVecTest, CopyAndMoveBothStates) {
  small_vec<std::string, 2> inline_v{"a", "b"};
  small_vec<std::string, 2> heap_v{"a", "b", "c", "d"};

  small_vec<std::string, 2> c1 = inline_v;
  small_vec<std::string, 2> c2 = heap_v;
  EXPECT_EQ(c1, inline_v);
  EXPECT_EQ(c2, heap_v);

  small_vec<std::string, 2> m1 = std::move(c1);
  small_vec<std::string, 2> m2 = std::move(c2);
  EXPECT_EQ(m1, inline_v);
  EXPECT_EQ(m2, heap_v);
  EXPECT_TRUE(c1.empty());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(c2.empty());  // NOLINT(bugprone-use-after-move)

  m1 = inline_v;
  m2 = std::move(m1);
  EXPECT_EQ(m2, inline_v);
}

TEST(SmallVecTest, SortedInsertAndRangeErase) {
  small_vec<int, 4> v;
  for (int x : {5, 1, 9, 3, 7}) {
    v.insert(std::upper_bound(v.begin(), v.end(), x), x);
  }
  EXPECT_EQ(v, (std::vector<int>{1, 3, 5, 7, 9}));
  // sort + unique idiom used by Scorer::MapToRules.
  small_vec<int, 4> d{3, 1, 3, 2, 1};
  std::sort(d.begin(), d.end());
  d.erase(std::unique(d.begin(), d.end()), d.end());
  EXPECT_EQ(d, (std::vector<int>{1, 2, 3}));
  d.erase(d.begin(), d.end());
  EXPECT_TRUE(d.empty());
}

TEST(SmallVecTest, PopBackAndClearDestroyElements) {
  small_vec<std::string, 2> v{"x", "y", "z"};
  v.pop_back();
  EXPECT_EQ(v, (std::vector<std::string>{"x", "y"}));
  v.clear();
  EXPECT_TRUE(v.empty());
  v.push_back("fresh");
  EXPECT_EQ(v.back(), "fresh");
}

}  // namespace
}  // namespace anot
