// Equivalence harness for the batched online serving path: pins
// "parallel == sequential, bit for bit" as a tested property of
// AnoT::ScoreBatch / AnoT::ProcessArrivalBatch. Every comparison is exact
// (EXPECT_EQ on doubles): ordered commit plus speculative re-scoring must
// reproduce the sequential loop's state machine, not approximate it.
//
// CI runs this suite under ANOT_THREADS=1 and ANOT_THREADS=4; the env
// value is folded into the tested thread counts so the equivalence cases
// always exercise both a serial and a contended schedule.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "anomaly/injector.h"
#include "core/anot.h"
#include "datagen/generator.h"
#include "serving_test_util.h"
#include "tkg/split.h"

namespace anot {
namespace {

GeneratorConfig OnlineWorldConfig() {
  GeneratorConfig cfg;
  cfg.num_entities = 150;
  cfg.num_relations = 20;
  cfg.num_timestamps = 100;
  cfg.num_facts = 3000;
  cfg.num_categories = 5;
  cfg.num_chain_rules = 4;
  cfg.num_triadic_rules = 2;
  cfg.chain_follow_prob = 0.7;
  cfg.noise_fraction = 0.03;
  cfg.seed = 1234;
  return cfg;
}

AnoTOptions OnlineOptions(size_t num_threads) {
  AnoTOptions options;
  options.detector.category.min_support = 4;
  options.detector.timespan_tolerance = 10;
  options.detector.max_recursion_steps = 2;
  options.num_threads = num_threads;
  return options;
}

/// What the sequential loop left behind, for exact comparison.
struct RunOutcome {
  std::vector<Scores> scores;
  UpdateEffects effects;
  size_t refresh_count = 0;
  size_t num_facts = 0;
  std::string rules;  // serialized rule graph
};

RunOutcome RunSequential(const TemporalKnowledgeGraph& train,
                         const AnoTOptions& options,
                         const std::vector<Fact>& stream) {
  AnoT system = AnoT::Build(train, options);
  RunOutcome out;
  out.scores.reserve(stream.size());
  for (const Fact& f : stream) {
    out.scores.push_back(system.ProcessArrival(f, &out.effects));
  }
  ValidateAtCommitBoundary(system);
  out.refresh_count = system.refresh_count();
  out.num_facts = system.graph().num_facts();
  out.rules = system.rules().ToString();
  return out;
}

RunOutcome RunBatched(const TemporalKnowledgeGraph& train,
                      const AnoTOptions& options,
                      const std::vector<Fact>& stream, size_t batch_size) {
  AnoT system = AnoT::Build(train, options);
  RunOutcome out;
  out.scores.reserve(stream.size());
  std::vector<Fact> batch;
  batch.reserve(batch_size);
  for (size_t begin = 0; begin < stream.size(); begin += batch_size) {
    const size_t end = std::min(stream.size(), begin + batch_size);
    batch.assign(stream.begin() + begin, stream.begin() + end);
    std::vector<Scores> scores =
        system.ProcessArrivalBatch(batch, &out.effects);
    out.scores.insert(out.scores.end(), scores.begin(), scores.end());
  }
  ValidateAtCommitBoundary(system);
  out.refresh_count = system.refresh_count();
  out.num_facts = system.graph().num_facts();
  out.rules = system.rules().ToString();
  return out;
}

void ExpectOutcomesIdentical(const RunOutcome& ref, const RunOutcome& got,
                             size_t threads, size_t batch) {
  SCOPED_TRACE("threads=" + std::to_string(threads) +
               " batch=" + std::to_string(batch));
  ASSERT_EQ(ref.scores.size(), got.scores.size());
  for (size_t i = 0; i < ref.scores.size(); ++i) {
    ExpectScoresIdentical(ref.scores[i], got.scores[i], i);
  }
  EXPECT_EQ(ref.effects.facts_ingested, got.effects.facts_ingested);
  EXPECT_EQ(ref.effects.new_entity_categories,
            got.effects.new_entity_categories);
  EXPECT_EQ(ref.effects.new_rule_nodes, got.effects.new_rule_nodes);
  EXPECT_EQ(ref.effects.new_rule_edges, got.effects.new_rule_edges);
  EXPECT_EQ(ref.effects.timespans_recorded, got.effects.timespans_recorded);
  EXPECT_EQ(ref.refresh_count, got.refresh_count);
  EXPECT_EQ(ref.num_facts, got.num_facts);
  EXPECT_EQ(ref.rules, got.rules);
}

/// Shared expensive fixture: one world, one split, one labeled stream.
class OnlineFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticGenerator gen(OnlineWorldConfig());
    graph_ = gen.Generate().release();
    split_ = new TimeSplit(SplitByTimestamps(*graph_, 0.6, 0.1));
    train_ = Subgraph(*graph_, split_->train).release();

    AnomalyInjector injector(InjectorConfig{});
    EvalStream labeled = injector.Inject(*graph_, split_->test);
    stream_ = new std::vector<Fact>();
    for (const LabeledFact& lf : labeled.arrivals) {
      stream_->push_back(lf.fact);
    }
  }
  static void TearDownTestSuite() {
    delete stream_;
    delete train_;
    delete split_;
    delete graph_;
    stream_ = nullptr;
    train_ = nullptr;
    split_ = nullptr;
    graph_ = nullptr;
  }

  static TemporalKnowledgeGraph* graph_;
  static TimeSplit* split_;
  static TemporalKnowledgeGraph* train_;
  static std::vector<Fact>* stream_;
};

TemporalKnowledgeGraph* OnlineFixture::graph_ = nullptr;
TimeSplit* OnlineFixture::split_ = nullptr;
TemporalKnowledgeGraph* OnlineFixture::train_ = nullptr;
std::vector<Fact>* OnlineFixture::stream_ = nullptr;

// ------------------------------------------------------- const ScoreBatch

TEST_F(OnlineFixture, ScoreBatchMatchesScalarScoreAndIsPure) {
  for (size_t threads : ThreadCountsUnderTest()) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    AnoT system = AnoT::Build(*train_, OnlineOptions(threads));
    const size_t count = std::min<size_t>(200, stream_->size());
    std::vector<Fact> facts(stream_->begin(), stream_->begin() + count);
    const std::vector<Scores> batched = system.ScoreBatch(facts);
    ASSERT_EQ(batched.size(), facts.size());
    for (size_t i = 0; i < facts.size(); ++i) {
      ExpectScoresIdentical(system.Score(facts[i]), batched[i], i);
    }
    // Scoring is const: a second pass is bitwise identical.
    const std::vector<Scores> again = system.ScoreBatch(facts);
    for (size_t i = 0; i < facts.size(); ++i) {
      ExpectScoresIdentical(batched[i], again[i], i);
    }
  }
}

TEST_F(OnlineFixture, EmptyAndSingletonBatches) {
  AnoT system = AnoT::Build(*train_, OnlineOptions(2));
  EXPECT_TRUE(system.ScoreBatch({}).empty());
  EXPECT_TRUE(system.ProcessArrivalBatch({}).empty());
  const std::vector<Scores> one =
      system.ProcessArrivalBatch({stream_->front()});
  ASSERT_EQ(one.size(), 1u);
}

// --------------------------------------------- ordered-commit equivalence

TEST_F(OnlineFixture, BatchedArrivalsBitIdenticalToSequential) {
  const AnoTOptions sequential_options = OnlineOptions(1);
  const RunOutcome ref = RunSequential(*train_, sequential_options, *stream_);
  ASSERT_GT(ref.effects.facts_ingested, 0u)
      << "stream never ingests: the equivalence case is vacuous";
  ASSERT_LT(ref.effects.facts_ingested, stream_->size())
      << "stream always ingests: the speculative path is never exercised";

  for (size_t threads : ThreadCountsUnderTest()) {
    for (size_t batch : {size_t{1}, size_t{7}, size_t{64}}) {
      const RunOutcome got =
          RunBatched(*train_, OnlineOptions(threads), *stream_, batch);
      ExpectOutcomesIdentical(ref, got, threads, batch);
    }
  }
}

// ------------------------------------------------- refresh mid-stream

TEST_F(OnlineFixture, AutoRefreshMidBatchBitIdenticalToSequential) {
  AnoTOptions options = OnlineOptions(1);
  options.auto_refresh = true;
  options.monitor.mode = MonitorOptions::Mode::kPerTimestamp;

  // A prefix of real (ingestable) facts, then a dense flood of
  // unknown-entity garbage that blows the per-timestamp budget so Refresh
  // fires *inside* a batch, then more real facts scored against the
  // rebuilt rule graph. The ingested prefix makes the refreshed graph
  // differ from the offline build.
  std::vector<Fact> stream;
  const EntityId base = static_cast<EntityId>(graph_->num_entities());
  const Timestamp t0 = graph_->max_time() + 1;
  const size_t prefix = std::min<size_t>(60, split_->test.size());
  for (size_t i = 0; i < prefix; ++i) {
    stream.push_back(graph_->fact(split_->test[i]));
  }
  // Kept short: in kPerTimestamp mode every few unexplained facts re-fire
  // the monitor after a refresh, and each refresh is a full rebuild.
  for (int i = 0; i < 24; ++i) {
    stream.push_back(Fact(base + i, 0, base + i + 1, t0 + i / 80));
  }
  for (size_t i = prefix; i < std::min<size_t>(prefix + 40, split_->test.size());
       ++i) {
    stream.push_back(graph_->fact(split_->test[i]));
  }

  const RunOutcome ref = RunSequential(*train_, options, stream);
  ASSERT_GT(ref.refresh_count, 0u) << "monitor never fired: case is vacuous";

  for (size_t threads : ThreadCountsUnderTest()) {
    AnoTOptions par = options;
    par.num_threads = threads;
    for (size_t batch : {size_t{7}, size_t{64}}) {
      const RunOutcome got = RunBatched(*train_, par, stream, batch);
      ExpectOutcomesIdentical(ref, got, threads, batch);
    }
  }
}

}  // namespace
}  // namespace anot
