#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "anomaly/injector.h"
#include "core/anot.h"
#include "core/builder.h"
#include "core/candidates.h"
#include "core/duration.h"
#include "datagen/generator.h"
#include "serving_test_util.h"
#include "tkg/split.h"

namespace anot {
namespace {

GeneratorConfig TestWorldConfig() {
  GeneratorConfig cfg;
  cfg.num_entities = 250;
  cfg.num_relations = 30;
  cfg.num_timestamps = 150;
  cfg.num_facts = 8000;
  cfg.num_categories = 6;
  cfg.num_chain_rules = 6;
  cfg.num_triadic_rules = 3;
  cfg.chain_follow_prob = 0.7;
  cfg.noise_fraction = 0.03;
  cfg.secondary_category_prob = 0.1;
  cfg.seed = 77;
  return cfg;
}

DetectorOptions TestDetectorOptions() {
  DetectorOptions opts;
  opts.category.min_support = 4;
  // Smaller than the injector's minimum time shift (0.3 x window span),
  // so genuinely shifted facts disagree with preserved timespans.
  opts.timespan_tolerance = 10;
  opts.max_recursion_steps = 2;
  return opts;
}

/// Shared expensive fixture: one synthetic world + one build.
class CoreFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    gen_ = new SyntheticGenerator(TestWorldConfig());
    graph_ = gen_->Generate().release();
    split_ = new TimeSplit(SplitByTimestamps(*graph_, 0.6, 0.1));
    train_ = Subgraph(*graph_, split_->train).release();

    AnoTOptions options;
    options.detector = TestDetectorOptions();
    anot_ = new AnoT(AnoT::Build(*train_, options));
  }
  static void TearDownTestSuite() {
    delete anot_;
    delete train_;
    delete split_;
    delete graph_;
    delete gen_;
    anot_ = nullptr;
    train_ = nullptr;
    split_ = nullptr;
    graph_ = nullptr;
    gen_ = nullptr;
  }

  static SyntheticGenerator* gen_;
  static TemporalKnowledgeGraph* graph_;
  static TimeSplit* split_;
  static TemporalKnowledgeGraph* train_;
  static AnoT* anot_;
};

SyntheticGenerator* CoreFixture::gen_ = nullptr;
TemporalKnowledgeGraph* CoreFixture::graph_ = nullptr;
TimeSplit* CoreFixture::split_ = nullptr;
TemporalKnowledgeGraph* CoreFixture::train_ = nullptr;
AnoT* CoreFixture::anot_ = nullptr;

// ----------------------------------------------------------- Candidates

TEST_F(CoreFixture, CandidateGenerationProducesRulesAndEdges) {
  auto categories =
      CategoryFunction::Build(*train_, TestDetectorOptions().category);
  DetectorOptions opts = TestDetectorOptions();
  CandidateGenerator generator(*train_, categories, opts);
  CandidatePool pool = generator.Generate();

  EXPECT_GT(pool.rules.size(), 20u);
  EXPECT_GT(pool.edges.size(), 20u);
  // Every assertion maps back to a fact the rule actually describes.
  for (const auto& c : pool.rules) {
    ASSERT_FALSE(c.assertions.empty());
    for (FactId f : c.assertions) {
      EXPECT_EQ(train_->fact(f).relation, c.rule.relation);
    }
    EXPECT_EQ(c.subject_entropy.total(), c.assertions.size());
  }
  // Edge endpoints reference valid rule candidates; timespans nonnegative.
  bool saw_triadic = false;
  for (const auto& e : pool.edges) {
    EXPECT_LT(e.head, pool.rules.size());
    EXPECT_LT(e.tail, pool.rules.size());
    saw_triadic |= (e.kind == RuleEdgeKind::kTriadic);
    for (Timestamp s : e.timespans) EXPECT_GE(s, 0);
    EXPECT_EQ(e.tail_facts.size(), e.timespans.size());
  }
  EXPECT_TRUE(saw_triadic);
}

TEST_F(CoreFixture, CandidateEdgeCapRespected) {
  auto categories =
      CategoryFunction::Build(*train_, TestDetectorOptions().category);
  DetectorOptions opts = TestDetectorOptions();
  opts.max_candidate_edges = 50;
  CandidateGenerator generator(*train_, categories, opts);
  CandidatePool pool = generator.Generate();
  EXPECT_LE(pool.edges.size(), 50u);
}

// --------------------------------------------------------------- Builder

TEST_F(CoreFixture, BuildReportIsCoherent) {
  const BuildReport& report = anot_->report();
  EXPECT_GT(report.num_rules, 0u);
  EXPECT_GT(report.num_edges, 0u);
  EXPECT_GT(report.num_candidate_rules, report.num_rules);
  EXPECT_GT(report.explained_fraction, 0.5)
      << "planted schemas should make most facts mappable";
  EXPECT_LE(report.explained_fraction, 1.0);
  EXPECT_GE(report.explained_fraction, report.associated_fraction);
  EXPECT_GT(report.model_bits, 0.0);
  EXPECT_GT(report.negative_bits, 0.0);
  EXPECT_GT(report.build_seconds, 0.0);
}

TEST_F(CoreFixture, SelectionShrinksDescriptionLength) {
  // An empty model prices everything as tier-1 errors; the built model
  // must cost strictly less in total.
  const BuildReport& report = anot_->report();
  const double e = static_cast<double>(train_->num_entities());
  const double r = static_cast<double>(train_->num_relations());
  NegativeErrorLedger empty_ledger(e * e * r, e);
  for (const auto& [t, ids] : train_->by_time()) {
    empty_ledger.SetTimestampTotal(t, static_cast<uint32_t>(ids.size()));
  }
  EXPECT_LT(report.total_bits(), empty_ledger.total_cost());
}

TEST_F(CoreFixture, RuleSupportsArePositive) {
  const RuleGraph& rules = anot_->rules();
  for (RuleId id = 0; id < rules.num_rules(); ++id) {
    EXPECT_GT(rules.support(id), 0u);
  }
}

TEST_F(CoreFixture, DeterministicBuild) {
  AnoTOptions options;
  options.detector = TestDetectorOptions();
  AnoT second = AnoT::Build(*train_, options);
  EXPECT_EQ(second.rules().num_rules(), anot_->rules().num_rules());
  EXPECT_EQ(second.rules().num_edges(), anot_->rules().num_edges());
  EXPECT_DOUBLE_EQ(second.report().negative_bits,
                   anot_->report().negative_bits);
}

// ------------------------------------------- parallel build determinism
//
// The parallel offline pipeline guarantees bit-identical output for every
// thread count (deterministic sharding + ordered merges + entropy replay).
// These tests pin that contract on the datagen test world. EXPECT_EQ on
// doubles is deliberate: byte-identity, not tolerance.

void ExpectPoolsIdentical(const CandidatePool& a, const CandidatePool& b) {
  ASSERT_EQ(a.rules.size(), b.rules.size());
  for (size_t i = 0; i < a.rules.size(); ++i) {
    const RuleCandidate& ra = a.rules[i];
    const RuleCandidate& rb = b.rules[i];
    ASSERT_TRUE(ra.rule == rb.rule) << "rule " << i;
    ASSERT_EQ(ra.assertions, rb.assertions) << "rule " << i;
    ASSERT_EQ(ra.subject_entropy.TotalBits(), rb.subject_entropy.TotalBits())
        << "rule " << i;
    ASSERT_EQ(ra.object_entropy.TotalBits(), rb.object_entropy.TotalBits())
        << "rule " << i;
  }
  ASSERT_EQ(a.edges.size(), b.edges.size());
  for (size_t i = 0; i < a.edges.size(); ++i) {
    const EdgeCandidate& ea = a.edges[i];
    const EdgeCandidate& eb = b.edges[i];
    ASSERT_EQ(ea.kind, eb.kind) << "edge " << i;
    ASSERT_EQ(ea.head, eb.head) << "edge " << i;
    ASSERT_EQ(ea.mid, eb.mid) << "edge " << i;
    ASSERT_EQ(ea.tail, eb.tail) << "edge " << i;
    ASSERT_EQ(ea.tail_facts, eb.tail_facts) << "edge " << i;
    ASSERT_EQ(ea.timespans, eb.timespans) << "edge " << i;
    ASSERT_EQ(ea.timespan_entropy.TotalBits(),
              eb.timespan_entropy.TotalBits())
        << "edge " << i;
  }
}

void ExpectRuleGraphsIdentical(const RuleGraph& a, const RuleGraph& b) {
  ASSERT_EQ(a.num_rules(), b.num_rules());
  ASSERT_EQ(a.num_static_rules(), b.num_static_rules());
  for (RuleId r = 0; r < a.num_rules(); ++r) {
    ASSERT_TRUE(a.rule(r) == b.rule(r)) << "rule " << r;
    ASSERT_EQ(a.support(r), b.support(r)) << "rule " << r;
    ASSERT_EQ(a.static_selected(r), b.static_selected(r)) << "rule " << r;
    ASSERT_EQ(a.recurrent(r), b.recurrent(r)) << "rule " << r;
  }
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (RuleEdgeId e = 0; e < a.num_edges(); ++e) {
    const RuleEdge& ea = a.edge(e);
    const RuleEdge& eb = b.edge(e);
    ASSERT_EQ(ea.kind, eb.kind) << "edge " << e;
    ASSERT_EQ(ea.head, eb.head) << "edge " << e;
    ASSERT_EQ(ea.mid, eb.mid) << "edge " << e;
    ASSERT_EQ(ea.tail, eb.tail) << "edge " << e;
    ASSERT_EQ(ea.support, eb.support) << "edge " << e;
    ASSERT_EQ(ea.timespans, eb.timespans) << "edge " << e;
  }
}

TEST_F(CoreFixture, CandidatePoolIdenticalAcrossThreadCounts) {
  auto categories =
      CategoryFunction::Build(*train_, TestDetectorOptions().category);
  DetectorOptions opts = TestDetectorOptions();
  CandidatePool serial =
      CandidateGenerator(*train_, categories, opts, /*num_threads=*/1)
          .Generate();
  CandidatePool parallel =
      CandidateGenerator(*train_, categories, opts, /*num_threads=*/8)
          .Generate();
  ExpectPoolsIdentical(serial, parallel);
}

TEST_F(CoreFixture, RuleGraphIdenticalAcrossThreadCounts) {
  AnoTOptions options;
  options.detector = TestDetectorOptions();
  options.num_threads = 1;
  AnoT serial = AnoT::Build(*train_, options);
  options.num_threads = 8;
  AnoT parallel = AnoT::Build(*train_, options);

  ExpectRuleGraphsIdentical(serial.rules(), parallel.rules());
  EXPECT_EQ(serial.report().model_bits, parallel.report().model_bits);
  EXPECT_EQ(serial.report().assertion_bits,
            parallel.report().assertion_bits);
  EXPECT_EQ(serial.report().negative_bits, parallel.report().negative_bits);
  EXPECT_EQ(serial.report().explained_fraction,
            parallel.report().explained_fraction);
  EXPECT_EQ(serial.report().associated_fraction,
            parallel.report().associated_fraction);
}

TEST_F(CoreFixture, RefreshMidStreamIdenticalAcrossThreadCounts) {
  // Refresh rebuilds the category function and the rule graph from the
  // *grown* TKG; both rebuild stages shard, so the refreshed model must
  // stay bit-identical across thread counts too.
  auto run = [&](size_t threads) {
    AnoTOptions options;
    options.detector = TestDetectorOptions();
    options.num_threads = threads;
    auto system = std::make_unique<AnoT>(AnoT::Build(*train_, options));
    size_t replayed = 0;
    for (FactId id : split_->val) {
      system->IngestValid(graph_->fact(id));
      if (++replayed >= 300) break;
    }
    system->Refresh();
    return system;
  };
  auto serial = run(1);
  auto parallel = run(8);
  EXPECT_EQ(serial->refresh_count(), parallel->refresh_count());
  EXPECT_EQ(serial->categories().num_categories(),
            parallel->categories().num_categories());
  ExpectRuleGraphsIdentical(serial->rules(), parallel->rules());
  EXPECT_EQ(serial->report().negative_bits, parallel->report().negative_bits);
}

TEST_F(CoreFixture, SpeculativeSelectionMatchesSerialLoop) {
  // Speculative Δ-evaluation (parallel per-sweep candidate deltas, serial
  // rank-order admission with dirty-timestamp recomputation) must select
  // exactly what the reference serial loop selects — byte-identical rule
  // graph, identical report bits — at every thread count. The thread
  // sweep follows the ANOT_THREADS CI convention, so both the serial and
  // the contended schedule exercise these goldens.
  for (size_t threads : ThreadCountsUnderTest({1, 4})) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    AnoTOptions serial_options;
    serial_options.detector = TestDetectorOptions();
    serial_options.detector.speculative_selection = false;
    serial_options.num_threads = threads;
    AnoT serial = AnoT::Build(*train_, serial_options);

    AnoTOptions speculative_options = serial_options;
    speculative_options.detector.speculative_selection = true;
    AnoT speculative = AnoT::Build(*train_, speculative_options);

    ExpectRuleGraphsIdentical(serial.rules(), speculative.rules());
    EXPECT_EQ(serial.report().model_bits, speculative.report().model_bits);
    EXPECT_EQ(serial.report().assertion_bits,
              speculative.report().assertion_bits);
    EXPECT_EQ(serial.report().negative_bits,
              speculative.report().negative_bits);
    EXPECT_EQ(serial.report().explained_fraction,
              speculative.report().explained_fraction);
    EXPECT_EQ(serial.report().associated_fraction,
              speculative.report().associated_fraction);
  }
}

// ---------------------------------------------------------------- Scoring

TEST_F(CoreFixture, ValidFactsScoreLowerThanConceptualAnomalies) {
  InjectorConfig icfg;
  AnomalyInjector injector(icfg);
  EvalStream stream = injector.Inject(*graph_, split_->test);

  std::vector<double> valid_scores, anomaly_scores;
  for (const auto& lf : stream.arrivals) {
    const Scores s = anot_->Score(lf.fact);
    if (lf.label == AnomalyType::kValid) {
      valid_scores.push_back(s.static_score);
    } else if (lf.label == AnomalyType::kConceptual) {
      anomaly_scores.push_back(s.static_score);
    }
  }
  ASSERT_GT(valid_scores.size(), 100u);
  ASSERT_GT(anomaly_scores.size(), 50u);
  const double valid_mean =
      std::accumulate(valid_scores.begin(), valid_scores.end(), 0.0) /
      valid_scores.size();
  const double anomaly_mean =
      std::accumulate(anomaly_scores.begin(), anomaly_scores.end(), 0.0) /
      anomaly_scores.size();
  EXPECT_LT(valid_mean, anomaly_mean * 0.5)
      << "static score fails to separate conceptual errors";
}

TEST_F(CoreFixture, TimeAnomaliesRankAboveValidTemporally) {
  // Realistic online protocol: the model keeps ingesting knowledge it
  // deems valid; we then check the temporal score *ranks* time errors
  // above valid facts better than chance (PR-AUC vs base rate).
  AnoTOptions options;
  options.detector = TestDetectorOptions();
  AnoT online = AnoT::Build(*train_, options);
  for (FactId id : split_->val) online.IngestValid(graph_->fact(id));

  InjectorConfig icfg;
  AnomalyInjector injector(icfg);
  EvalStream stream = injector.Inject(*graph_, split_->test);

  std::vector<std::pair<double, int>> scored;  // (score, is_time_error)
  for (const auto& lf : stream.arrivals) {
    const Scores s = online.Score(lf.fact);
    if (lf.label == AnomalyType::kValid) online.IngestValid(lf.fact);
    if (lf.label == AnomalyType::kConceptual) continue;
    scored.push_back({s.temporal_score, lf.label == AnomalyType::kTime});
  }
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  double tp = 0, fp = 0, auc = 0, prev_recall = 0, total_pos = 0;
  for (const auto& [score, pos] : scored) total_pos += pos;
  ASSERT_GT(total_pos, 20);
  for (const auto& [score, pos] : scored) {
    if (pos) ++tp; else ++fp;
    auc += (tp / (tp + fp)) * (tp / total_pos - prev_recall);
    prev_recall = tp / total_pos;
  }
  const double base_rate = total_pos / static_cast<double>(scored.size());
  // Time shifts on *recurrent* facts are intrinsically hard to detect
  // (any shift lands near some plausible precursor), so the aggregate
  // lift is moderate; the chain-pattern subset separates strongly.
  EXPECT_GT(auc, 1.3 * base_rate)
      << "temporal ranking barely better than chance (AUC " << auc
      << " vs base rate " << base_rate << ")";
}

TEST_F(CoreFixture, MissingFactsHaveHigherSupportThanCorruptions) {
  InjectorConfig icfg;
  AnomalyInjector injector(icfg);
  EvalStream stream = injector.Inject(*graph_, split_->test);

  double missing_support = 0.0, corrupted_support = 0.0;
  size_t n_missing = 0, n_corrupted = 0;
  for (const auto& lf : stream.missing_candidates) {
    const Scores s = anot_->Score(lf.fact);
    if (lf.label == AnomalyType::kMissing) {
      missing_support += s.missing_support();
      ++n_missing;
    } else {
      corrupted_support += s.missing_support();
      ++n_corrupted;
    }
  }
  ASSERT_GT(n_missing, 20u);
  EXPECT_GT(missing_support / n_missing,
            corrupted_support / std::max<size_t>(1, n_corrupted))
      << "missing-error support signal inverted";
}

TEST_F(CoreFixture, UnknownEntityGetsMaximalStaticScore) {
  Fact unknown(static_cast<EntityId>(graph_->num_entities() + 5), 0,
               static_cast<EntityId>(graph_->num_entities() + 6), 10);
  const Scores s = anot_->Score(unknown);
  EXPECT_EQ(s.static_support, 0.0);
  EXPECT_GT(s.static_score, 1e6);
  EXPECT_FALSE(s.temporal_evaluated);  // λ gate
}

TEST_F(CoreFixture, LambdaGateSkipsTemporalScoring) {
  AnoTOptions options;
  options.detector = TestDetectorOptions();
  options.detector.lambda = 1e12;  // nothing clears the gate
  AnoT gated = AnoT::Build(*train_, options);
  const Fact& f = graph_->fact(split_->test.front());
  const Scores s = gated.Score(f);
  EXPECT_FALSE(s.temporal_evaluated);
  EXPECT_EQ(s.temporal_support, 0.0);
}

TEST_F(CoreFixture, EvidenceIsPopulated) {
  // A valid test fact should map to rules and usually find precursors.
  Evidence evidence;
  const Fact& f = graph_->fact(split_->test[split_->test.size() / 2]);
  const Scores s = anot_->ScoreWithEvidence(f, &evidence);
  if (s.static_support > 0) {
    EXPECT_FALSE(evidence.mapped.empty());
  }
  // Rendering never crashes and mentions the fact's subject.
  Explainer explainer = anot_->MakeExplainer();
  std::string rendered = explainer.RenderEvidence(f, evidence);
  EXPECT_NE(rendered.find(graph_->EntityName(f.subject)),
            std::string::npos);
}

TEST_F(CoreFixture, ScoreIsPureFunction) {
  const Fact& f = graph_->fact(split_->test.front());
  const Scores a = anot_->Score(f);
  const Scores b = anot_->Score(f);
  EXPECT_DOUBLE_EQ(a.static_score, b.static_score);
  EXPECT_DOUBLE_EQ(a.temporal_score, b.temporal_score);
}

// ---------------------------------------------------------------- Updater

TEST_F(CoreFixture, IngestAddsFactAndSupports) {
  AnoTOptions options;
  options.detector = TestDetectorOptions();
  AnoT local = AnoT::Build(*train_, options);
  const size_t facts_before = local.graph().num_facts();

  const Fact& f = graph_->fact(split_->test.front());
  UpdateEffects effects = local.IngestValid(f);
  EXPECT_TRUE(effects.added_fact);
  EXPECT_EQ(local.graph().num_facts(), facts_before + 1);
}

TEST_F(CoreFixture, RepeatedNewPatternBecomesRule) {
  AnoTOptions options;
  options.detector = TestDetectorOptions();
  options.updater.new_rule_min_support = 3;
  AnoT local = AnoT::Build(*train_, options);

  // A brand-new relation repeatedly used between two known categories.
  const RelationId fresh_rel =
      static_cast<RelationId>(local.graph().num_relations());
  const size_t rules_before = local.rules().num_rules();
  uint32_t new_nodes = 0;
  Timestamp t = local.graph().max_time() + 1;
  for (int i = 0; i < 8; ++i) {
    // Vary entities so this is a pattern, not a single pair.
    EntityId s = static_cast<EntityId>(2 * i);
    EntityId o = static_cast<EntityId>(2 * i + 1);
    UpdateEffects effects =
        local.IngestValid(Fact(s, fresh_rel, o, t + i));
    new_nodes += effects.new_rule_nodes;
  }
  EXPECT_GT(new_nodes, 0u) << "recurring unseen pattern never admitted";
  EXPECT_GT(local.rules().num_rules(), rules_before);
}

TEST_F(CoreFixture, IngestRecordsTimespansOnInstantiatedEdges) {
  AnoTOptions options;
  options.detector = TestDetectorOptions();
  AnoT local = AnoT::Build(*train_, options);

  // Replay real future facts; some must instantiate in-edges.
  uint32_t recorded = 0;
  size_t replayed = 0;
  for (FactId id : split_->val) {
    recorded += local.IngestValid(graph_->fact(id)).timespans_recorded;
    if (++replayed > 400) break;
  }
  EXPECT_GT(recorded, 0u);
}

TEST_F(CoreFixture, RepeatedIdenticalFactWiresChainEdges) {
  // Regression: the chain-edge scan used to skip *every* fact equal to
  // the new arrival, so a recurring identical fact (same s, r, o, t
  // re-reported) never wired chain edges when its pattern was admitted.
  // Only the just-appended instance may be skipped.
  AnoTOptions options;
  options.detector = TestDetectorOptions();
  options.updater.new_rule_min_support = 3;
  AnoT local = AnoT::Build(*train_, options);

  const RelationId fresh_rel =
      static_cast<RelationId>(local.graph().num_relations());
  const Fact dup(0, fresh_rel, 1, local.graph().max_time() + 1);
  UpdateEffects total;
  for (int i = 0; i < 3; ++i) total.Accumulate(local.IngestValid(dup));
  EXPECT_GT(total.new_rule_nodes, 0u);
  EXPECT_GT(total.new_rule_edges, 0u)
      << "distinct earlier occurrences of an identical fact are real "
         "precursors and must wire chain edges";
}

/// Hand-built world for the scorer identity-vs-equality regressions: the
/// pair (0, 10) holds one prior occurrence of the exact fact under test,
/// the rule graph one atomic rule over it with a self-loop chain edge.
struct RecurrenceWorld {
  TemporalKnowledgeGraph graph;
  CategoryFunction categories;
  RuleGraph rules;
  RuleId rule = kInvalidId;
};

void MakeRecurrenceWorld(RecurrenceWorld* w) {
  // The prior occurrence of the recurring fact, plus sibling pairs that
  // give the entities categories.
  w->graph.AddFact(Fact(0, 0, 10, 100));
  for (EntityId i = 1; i < 4; ++i) {
    w->graph.AddFact(Fact(i, 0, 10 + i, 80 + static_cast<Timestamp>(i)));
  }
  CategoryFunctionOptions copts;
  copts.min_support = 3;
  w->categories = CategoryFunction::Build(w->graph, copts);
  ASSERT_FALSE(w->categories.Categories(0).empty());
  ASSERT_FALSE(w->categories.Categories(10).empty());
  const CategoryId cs = w->categories.Categories(0).front();
  const CategoryId co = w->categories.Categories(10).front();
  w->rule = w->rules.AddRule(AtomicRule{cs, 0, co}, /*static_selected=*/true);
  w->rules.SetSupport(w->rule, 4);
  RuleEdge self_loop;
  self_loop.kind = RuleEdgeKind::kChain;
  self_loop.head = w->rule;
  self_loop.tail = w->rule;
  self_loop.timespans = {0};
  self_loop.support = 1;
  w->rules.AddEdge(self_loop);
}

TEST(ScorerRecurrenceTest, IdenticalRecurringFactCanBeItsOwnWitness) {
  // Regression: the witness scans skipped `g == fact` by *value*, so a
  // re-reported recurring fact — identical to an occurrence already in
  // the graph — could never use that distinct earlier occurrence as a
  // chain witness and was penalized as if the pattern had never been
  // seen. Witness exclusion is by id; an arrival scored before ingestion
  // excludes nothing.
  RecurrenceWorld w;
  ASSERT_NO_FATAL_FAILURE(MakeRecurrenceWorld(&w));
  DetectorOptions dopts;
  dopts.timespan_tolerance = 5;
  Scorer scorer(&w.graph, &w.categories, &w.rules, &dopts);

  const Scores s = scorer.Score(Fact(0, 0, 10, 100));
  EXPECT_GT(s.temporal_support, 0.0)
      << "the identical earlier occurrence must instantiate the self-loop";
  EXPECT_TRUE(s.associated);
  EXPECT_LT(s.temporal_score, 1.0);
}

TEST(ScorerRecurrenceTest, UpdaterTimespanScanExcludesOnlyTheNewInstance) {
  // The updater runs the same witness scan *after* the arrival has been
  // ingested: only the just-added instance may be excluded (by id), while
  // a distinct identical earlier occurrence is a real witness whose
  // timespan must be recorded — and a first occurrence must not witness
  // itself.
  RecurrenceWorld w;
  ASSERT_NO_FATAL_FAILURE(MakeRecurrenceWorld(&w));
  DetectorOptions dopts;
  dopts.timespan_tolerance = 5;
  UpdaterOptions uopts;
  Updater updater(&w.graph, &w.categories, &w.rules, &dopts, uopts);

  // Exact duplicate of the t=100 occurrence: the earlier copy witnesses.
  const UpdateEffects duplicate = updater.Ingest(Fact(0, 0, 10, 100));
  EXPECT_GT(duplicate.timespans_recorded, 0u)
      << "identical recurring fact never records timespans";

  // Fresh pair (1, 10): the newly added instance is the only fact in the
  // pair sequence and must not instantiate the self-loop edge itself.
  const UpdateEffects first = updater.Ingest(Fact(1, 0, 10, 200));
  EXPECT_EQ(first.timespans_recorded, 0u)
      << "a first occurrence must not witness itself";
}

TEST(ScorerAssociationTest, AssociatedFlagSurvivesVisitedSkip) {
  // An in-edge consumed as a *recursive* child of an earlier mapped
  // rule's walk is skipped by the visited filter when its own depth-0
  // turn comes. The association flag must still reflect its successful
  // instantiation: the scorer now records each edge's single
  // TryInstantiate outcome during the walk instead of re-instantiating
  // every in-edge in a second pass (which ignored `visited` and thereby
  // caught this case — the cheap replacement must not regress it).
  TemporalKnowledgeGraph g;
  // Token Out(0) for subjects {0,1,2,3}; objects {20..23} carry In(0).
  for (EntityId i = 0; i < 4; ++i) g.AddFact(Fact(i, 0, 20 + i, 10));
  // Token Out(1) for subjects {0,4,5,6}: low member overlap with Out(0)
  // keeps the two combinations from aggregating into one category.
  g.AddFact(Fact(0, 1, 30, 10));
  for (EntityId i = 4; i < 7; ++i) g.AddFact(Fact(i, 1, 20 + i, 10));
  // The witness: a relation-0 fact on pair (0, 10) just before the probe.
  g.AddFact(Fact(0, 0, 10, 99));

  CategoryFunctionOptions copts;
  copts.min_support = 3;
  auto categories = CategoryFunction::Build(g, copts);
  // Entity 0's two categories, keyed by their defining token.
  CategoryId ca = kInvalidId, cb = kInvalidId;
  for (CategoryId c : categories.Categories(0)) {
    const auto& tokens = categories.Combination(c);
    if (std::find(tokens.begin(), tokens.end(), OutRelationToken(0)) !=
        tokens.end()) {
      ca = c;
    }
    if (std::find(tokens.begin(), tokens.end(), OutRelationToken(1)) !=
        tokens.end()) {
      cb = c;
    }
  }
  ASSERT_NE(ca, kInvalidId);
  ASSERT_NE(cb, kInvalidId);
  ASSERT_NE(ca, cb);
  ASSERT_FALSE(categories.Categories(10).empty());
  const CategoryId cc = categories.Categories(10).front();

  RuleGraph rules;
  const RuleId r1 = rules.AddRule(AtomicRule{ca, 1, cc}, true);
  const RuleId r2 = rules.AddRule(AtomicRule{cb, 1, cc}, true);
  const RuleId head = rules.AddRule(AtomicRule{ca, 0, cc}, true);
  rules.SetSupport(r1, 3);
  rules.SetSupport(r2, 3);
  rules.SetSupport(head, 3);
  // Walk order: r1 (lowest id) is processed first; its in-edge fails to
  // instantiate (no prior relation-1 fact on the pair) and recursion
  // consumes X at depth 1 — so X is already visited when r2's depth-0
  // turn reaches it.
  RuleEdge e1;
  e1.kind = RuleEdgeKind::kChain;
  e1.head = r2;
  e1.tail = r1;
  e1.timespans = {1};
  e1.support = 1;
  rules.AddEdge(e1);
  RuleEdge x;
  x.kind = RuleEdgeKind::kChain;
  x.head = head;
  x.tail = r2;
  x.timespans = {1};
  x.support = 1;
  rules.AddEdge(x);

  DetectorOptions dopts;
  dopts.timespan_tolerance = 5;
  Scorer scorer(&g, &categories, &rules, &dopts);
  const Scores s = scorer.Score(Fact(0, 1, 10, 100));
  EXPECT_GT(s.temporal_support, 0.0);
  EXPECT_TRUE(s.associated)
      << "in-edge instantiated at recursion depth 1 and visited-skipped "
         "at depth 0 must still set the association flag";
}

TEST(UpdaterDurationTest, EndAnchoredChainScanCoversFullWindow) {
  // Regression: the chain-edge scan `break`s at the first pair whose head
  // gap exceeds the tolerance. The pair sequence is sorted by *start*
  // time, so with an end-anchored head on a duration TKG the gap is not
  // monotone: a long-running earlier fact can end nearer the tail than a
  // later short one, and the break skipped it.
  TemporalKnowledgeGraph g;
  // Pair (0, 10): a long-runner starting early but ending near t=120, and
  // a later short fact ending far from it. Sorted by start time the short
  // fact is scanned first and is out of tolerance.
  g.AddFact(Fact(0, 0, 10, 90, 118));   // end within tolerance of 120
  g.AddFact(Fact(0, 0, 10, 100, 100));  // end 20 ticks before 120
  // Category support: three more subjects/objects sharing relation 0.
  for (EntityId i = 1; i < 4; ++i) {
    g.AddFact(Fact(i, 0, 10 + i, 80 + static_cast<Timestamp>(i),
                   80 + static_cast<Timestamp>(i)));
  }

  CategoryFunctionOptions copts;
  copts.min_support = 3;
  auto categories = CategoryFunction::Build(g, copts);
  ASSERT_FALSE(categories.Categories(0).empty());
  ASSERT_FALSE(categories.Categories(10).empty());
  const CategoryId cs = categories.Categories(0).front();
  const CategoryId co = categories.Categories(10).front();

  RuleGraph rules;
  const RuleId head = rules.AddRule(AtomicRule{cs, 0, co},
                                    /*static_selected=*/true);
  rules.SetSupport(head, 5);

  DetectorOptions dopts;
  dopts.head_anchor = TimeAnchor::kEnd;
  dopts.tail_anchor = TimeAnchor::kStart;
  dopts.timespan_tolerance = 5;
  UpdaterOptions uopts;
  uopts.new_rule_min_support = 3;
  Updater updater(&g, &categories, &rules, &dopts, uopts);

  // Two support-building ingests on sibling pairs, then the admitting
  // ingest on (0, 10) whose chain scan must reach past the short fact to
  // the long-runner (end 118, gap 2 <= 5) and wire an edge to `head`.
  const RelationId fresh_rel = 1;
  updater.Ingest(Fact(1, fresh_rel, 11, 119));
  updater.Ingest(Fact(2, fresh_rel, 12, 119));
  const UpdateEffects effects = updater.Ingest(Fact(0, fresh_rel, 10, 120));
  EXPECT_GT(effects.new_rule_nodes, 0u);
  EXPECT_GT(effects.new_rule_edges, 0u)
      << "end-anchored scan stopped at the first out-of-tolerance start";
}

TEST_F(CoreFixture, PendingRuleTableStaysBounded) {
  // A hostile stream minting a fresh, never-repeating pattern per arrival
  // must not grow the pending-candidate table without bound.
  AnoTOptions options;
  options.detector = TestDetectorOptions();
  options.updater.max_pending_rules = 64;
  AnoT local = AnoT::Build(*train_, options);

  const RelationId base_rel =
      static_cast<RelationId>(local.graph().num_relations());
  const Timestamp t0 = local.graph().max_time() + 1;
  for (uint32_t i = 0; i < 500; ++i) {
    const EntityId s = static_cast<EntityId>((2 * i) % 200);
    const EntityId o = static_cast<EntityId>((2 * i + 1) % 200);
    local.IngestValid(Fact(s, base_rel + i, o, t0 + i));
    ASSERT_LE(local.updater().pending_rule_count(), 64u) << "arrival " << i;
  }
  EXPECT_GT(local.updater().pending_rule_count(), 0u);
}

TEST_F(CoreFixture, UpdaterImprovesScoresOnNewPatterns) {
  // Without the updater the fresh relation stays maximally anomalous;
  // with it the pattern is learned.
  AnoTOptions options;
  options.detector = TestDetectorOptions();
  AnoT local = AnoT::Build(*train_, options);
  const RelationId fresh_rel =
      static_cast<RelationId>(local.graph().num_relations());
  Timestamp t = local.graph().max_time() + 1;
  Fact probe(0, fresh_rel, 1, t + 50);
  const double score_before = local.Score(probe).static_score;
  for (int i = 0; i < 10; ++i) {
    local.IngestValid(Fact(static_cast<EntityId>(2 * i), fresh_rel,
                           static_cast<EntityId>(2 * i + 1), t + i));
  }
  const double score_after = local.Score(probe).static_score;
  EXPECT_LT(score_after, score_before);
}

// ---------------------------------------------------------------- Monitor

TEST(MonitorTest, RefreshFiresWhenBudgetExceeded) {
  MonitorOptions mopts;
  mopts.mode = MonitorOptions::Mode::kTotalBudget;
  Monitor monitor(/*training_negative_bits=*/100.0,
                  /*training_timestamps=*/10, 1e8, 1e3, mopts);
  EXPECT_FALSE(monitor.ShouldRefresh());
  // Stream fully unexplained facts until the budget is blown.
  Timestamp t = 0;
  while (!monitor.ShouldRefresh() && t < 1000) {
    for (int i = 0; i < 5; ++i) monitor.Observe(t, false, false);
    ++t;
  }
  EXPECT_TRUE(monitor.ShouldRefresh());
  EXPECT_LT(t, 1000) << "monitor never fired";
}

TEST(MonitorTest, WellExplainedStreamDoesNotFire) {
  MonitorOptions mopts;
  Monitor monitor(100.0, 10, 1e8, 1e3, mopts);
  for (Timestamp t = 0; t < 50; ++t) {
    for (int i = 0; i < 5; ++i) monitor.Observe(t, true, true);
  }
  monitor.Flush();
  EXPECT_DOUBLE_EQ(monitor.online_negative_bits(), 0.0);
  EXPECT_FALSE(monitor.ShouldRefresh());
}

TEST(MonitorTest, PerTimestampModeComparesMeans) {
  MonitorOptions mopts;
  mopts.mode = MonitorOptions::Mode::kPerTimestamp;
  // Training mean: 100 bits over 10 timestamps = 10 bits/ts.
  Monitor monitor(100.0, 10, 1e8, 1e3, mopts);
  // One bad timestamp: 5 unexplained facts cost >> 10 bits.
  for (int i = 0; i < 5; ++i) monitor.Observe(0, false, false);
  monitor.Flush();
  EXPECT_TRUE(monitor.ShouldRefresh());
}

TEST(MonitorTest, ResetAdoptsNewBudget) {
  MonitorOptions mopts;
  Monitor monitor(1.0, 1, 1e8, 1e3, mopts);
  for (int i = 0; i < 5; ++i) monitor.Observe(0, false, false);
  monitor.Flush();
  EXPECT_TRUE(monitor.ShouldRefresh());
  monitor.Reset(1e9, 1);
  EXPECT_FALSE(monitor.ShouldRefresh());
  EXPECT_DOUBLE_EQ(monitor.online_negative_bits(), 0.0);
}

TEST(MonitorTest, PerTimestampSlackScalesTheFiringThreshold) {
  // Training mean: 10 bits/timestamp. One bad tick costs ~2 log2(1e8)
  // ≈ 53 bits: above the mean at slack 1, far below it at slack 1000.
  MonitorOptions tight_opts;
  tight_opts.mode = MonitorOptions::Mode::kPerTimestamp;
  tight_opts.slack = 1.0;
  MonitorOptions loose_opts = tight_opts;
  loose_opts.slack = 1000.0;
  Monitor tight(100.0, 10, 1e8, 1e3, tight_opts);
  Monitor loose(100.0, 10, 1e8, 1e3, loose_opts);
  for (int i = 0; i < 2; ++i) {
    tight.Observe(0, false, false);
    loose.Observe(0, false, false);
  }
  tight.Flush();
  loose.Flush();
  EXPECT_TRUE(tight.ShouldRefresh());
  EXPECT_FALSE(loose.ShouldRefresh());
}

TEST(MonitorTest, ShouldRefreshPricesThePendingOpenBucket) {
  // Facts stream within a single timestamp: the bucket is still open, so
  // nothing is priced into the accumulators yet — but ShouldRefresh must
  // already see the pending cost, or a single-timestamp burst could never
  // fire the monitor.
  MonitorOptions mopts;
  Monitor monitor(1.0, 1, 1e8, 1e3, mopts);
  for (int i = 0; i < 5; ++i) monitor.Observe(7, false, false);
  EXPECT_DOUBLE_EQ(monitor.online_negative_bits(), 0.0);
  EXPECT_EQ(monitor.online_timestamps(), 0u);
  EXPECT_TRUE(monitor.ShouldRefresh());
  monitor.Flush();
  EXPECT_GT(monitor.online_negative_bits(), 1.0);
  EXPECT_EQ(monitor.online_timestamps(), 1u);
  EXPECT_TRUE(monitor.ShouldRefresh());
}

TEST(MonitorTest, ResetPlusReplayEqualsFreshMonitor) {
  // The async swap's handoff: Reset to the new budget, Replay the window
  // observed since the snapshot. Must be bit-identical to a fresh monitor
  // that lived through the same window — including the still-open bucket.
  const std::vector<MonitorObservation> window = {
      {100, false, false}, {100, true, false},  {101, true, true},
      {101, false, false}, {102, false, false},
  };
  MonitorOptions mopts;
  Monitor live(50.0, 5, 1e8, 1e3, mopts);
  for (Timestamp t = 0; t < 4; ++t) live.Observe(t, false, false);

  live.Reset(123.0, 7);
  live.Replay(window);
  Monitor fresh(123.0, 7, 1e8, 1e3, mopts);
  for (const MonitorObservation& o : window) {
    fresh.Observe(o.time, o.mapped, o.associated);
  }
  EXPECT_EQ(live.online_negative_bits(), fresh.online_negative_bits());
  EXPECT_EQ(live.online_timestamps(), fresh.online_timestamps());
  EXPECT_EQ(live.ShouldRefresh(), fresh.ShouldRefresh());

  // The replayed bucket at t=102 is still open: further observations at
  // the same timestamp merge into it on both monitors.
  live.Observe(102, true, true);
  fresh.Observe(102, true, true);
  live.Flush();
  fresh.Flush();
  EXPECT_EQ(live.online_negative_bits(), fresh.online_negative_bits());
  EXPECT_EQ(live.online_timestamps(), fresh.online_timestamps());
}

TEST_F(CoreFixture, ProcessArrivalFeedsMonitorAndAutoRefreshes) {
  AnoTOptions options;
  options.detector = TestDetectorOptions();
  options.monitor.mode = MonitorOptions::Mode::kPerTimestamp;
  options.auto_refresh = true;
  AnoT local = AnoT::Build(*train_, options);
  local.SetValidityThresholds(1.0, 1.0);

  // Stream dense garbage (unknown entities) to blow the per-timestamp
  // budget: each tick's unexplained cost must exceed the training mean.
  const EntityId base = static_cast<EntityId>(local.graph().num_entities());
  Timestamp t = local.graph().max_time() + 1;
  for (int i = 0; i < 400 && local.refresh_count() == 0; ++i) {
    local.ProcessArrival(Fact(base + i, 0, base + i + 1, t + i / 80));
  }
  EXPECT_GT(local.refresh_count(), 0u);
}

// --------------------------------------------------------------- Ablations

TEST_F(CoreFixture, AblationsStillBuildAndScore) {
  const Fact& probe = graph_->fact(split_->test.front());
  for (int variant = 0; variant < 4; ++variant) {
    AnoTOptions options;
    options.detector = TestDetectorOptions();
    switch (variant) {
      case 0: options.detector.use_triadic = false; break;
      case 1: options.detector.use_recursion = false; break;
      case 2: options.detector.unit_rule_weight = true; break;
      case 3:
        options.detector.ranking = RankingMode::kAssertionsOnly;
        break;
    }
    AnoT variant_model = AnoT::Build(*train_, options);
    EXPECT_GT(variant_model.rules().num_rules(), 0u) << variant;
    const Scores s = variant_model.Score(probe);
    EXPECT_GE(s.static_score, 0.0) << variant;
  }
}

TEST_F(CoreFixture, NoTriadicMeansNoTriadicEdges) {
  AnoTOptions options;
  options.detector = TestDetectorOptions();
  options.detector.use_triadic = false;
  AnoT no_triadic = AnoT::Build(*train_, options);
  for (RuleEdgeId e = 0; e < no_triadic.rules().num_edges(); ++e) {
    EXPECT_EQ(no_triadic.rules().edge(e).kind, RuleEdgeKind::kChain);
  }
}

TEST_F(CoreFixture, ThetaModesDiffer) {
  AnoTOptions printed;
  printed.detector = TestDetectorOptions();
  printed.detector.theta_mode = ThetaMode::kAsPrinted;
  AnoT printed_model = AnoT::Build(*train_, printed);

  // Same rule graph, different temporal weighting.
  EXPECT_EQ(printed_model.rules().num_rules(), anot_->rules().num_rules());
  bool any_diff = false;
  for (FactId id : split_->test) {
    const Fact& f = graph_->fact(id);
    const Scores a = anot_->Score(f);
    const Scores b = printed_model.Score(f);
    if (a.temporal_evaluated && b.temporal_evaluated &&
        a.temporal_support != b.temporal_support) {
      any_diff = true;
      break;
    }
  }
  EXPECT_TRUE(any_diff);
}

// ---------------------------------------------------------------- Duration

TEST(DurationTest, FourGraphsBuildAndScore) {
  GeneratorConfig cfg = TestWorldConfig();
  cfg.num_facts = 4000;
  cfg.durations = true;
  cfg.mean_duration = 20.0;
  SyntheticGenerator gen(cfg);
  auto graph = gen.Generate();
  TimeSplit split = SplitByTimestamps(*graph, 0.6, 0.1);
  auto train = Subgraph(*graph, split.train);

  AnoTOptions options;
  options.detector = TestDetectorOptions();
  DurationAnoT model = DurationAnoT::Build(*train, options);
  ASSERT_EQ(model.num_views(), 4u);
  EXPECT_EQ(model.view_name(0), "ST-ST");
  EXPECT_EQ(model.view_name(3), "ED-ST");

  const Fact& f = graph->fact(split.test.front());
  const Scores s = model.Score(f);
  EXPECT_GE(s.static_score, 0.0);

  // Ingest flows into all views.
  const size_t before = model.view(0).graph().num_facts();
  model.IngestValid(f);
  for (size_t i = 0; i < model.num_views(); ++i) {
    EXPECT_EQ(model.view(i).graph().num_facts(), before + 1);
  }
}

TEST(DurationTest, SingleViewStrategies) {
  GeneratorConfig cfg = TestWorldConfig();
  cfg.num_facts = 3000;
  cfg.durations = true;
  SyntheticGenerator gen(cfg);
  auto graph = gen.Generate();
  TimeSplit split = SplitByTimestamps(*graph, 0.6, 0.1);
  auto train = Subgraph(*graph, split.train);

  AnoTOptions options;
  options.detector = TestDetectorOptions();
  for (DurationStrategy strategy :
       {DurationStrategy::kStartOnly, DurationStrategy::kEndOnly,
        DurationStrategy::kAverage}) {
    DurationAnoT model = DurationAnoT::Build(*train, options, strategy);
    EXPECT_EQ(model.num_views(), 1u) << DurationStrategyName(strategy);
    const Scores s = model.Score(graph->fact(split.test.front()));
    EXPECT_GE(s.static_score, 0.0);
  }
}

TEST(DurationTest, StrategyNamesAreStable) {
  EXPECT_STREQ(DurationStrategyName(DurationStrategy::kFourGraphs),
               "four-graphs");
  EXPECT_STREQ(DurationStrategyName(DurationStrategy::kAverage),
               "midpoint-average");
}

TEST(DurationTest, ScoresIdenticalAcrossThreadCounts) {
  GeneratorConfig cfg = TestWorldConfig();
  cfg.num_facts = 3000;
  cfg.durations = true;
  cfg.mean_duration = 20.0;
  SyntheticGenerator gen(cfg);
  auto graph = gen.Generate();
  TimeSplit split = SplitByTimestamps(*graph, 0.6, 0.1);
  auto train = Subgraph(*graph, split.train);

  AnoTOptions options;
  options.detector = TestDetectorOptions();
  options.num_threads = 1;
  DurationAnoT serial = DurationAnoT::Build(*train, options);
  options.num_threads = 8;
  DurationAnoT parallel = DurationAnoT::Build(*train, options);

  ASSERT_EQ(serial.num_views(), parallel.num_views());
  for (size_t v = 0; v < serial.num_views(); ++v) {
    EXPECT_EQ(serial.view_name(v), parallel.view_name(v));
    ExpectRuleGraphsIdentical(serial.view(v).rules(),
                              parallel.view(v).rules());
  }
  const size_t count = std::min<size_t>(100, split.test.size());
  for (size_t i = 0; i < count; ++i) {
    const Fact& f = graph->fact(split.test[i]);
    const Scores a = serial.Score(f);
    const Scores b = parallel.Score(f);
    ASSERT_EQ(a.static_score, b.static_score) << "fact " << i;
    ASSERT_EQ(a.temporal_score, b.temporal_score) << "fact " << i;
    ASSERT_EQ(a.static_support, b.static_support) << "fact " << i;
    ASSERT_EQ(a.temporal_support, b.temporal_support) << "fact " << i;
    ASSERT_EQ(a.out_violations, b.out_violations) << "fact " << i;
    ASSERT_EQ(a.temporal_evaluated, b.temporal_evaluated) << "fact " << i;
    ASSERT_EQ(a.associated, b.associated) << "fact " << i;
  }
}

}  // namespace
}  // namespace anot
