#include <gtest/gtest.h>

#include <unordered_set>

#include "datagen/generator.h"
#include "datagen/presets.h"
#include "tkg/stats.h"

namespace anot {
namespace {

GeneratorConfig SmallConfig() {
  GeneratorConfig cfg;
  cfg.num_entities = 200;
  cfg.num_relations = 30;
  cfg.num_timestamps = 120;
  cfg.num_facts = 6000;
  cfg.num_categories = 6;
  cfg.num_chain_rules = 5;
  cfg.num_triadic_rules = 3;
  cfg.seed = 99;
  return cfg;
}

TEST(GeneratorTest, Deterministic) {
  SyntheticGenerator g1(SmallConfig());
  SyntheticGenerator g2(SmallConfig());
  auto a = g1.Generate();
  auto b = g2.Generate();
  ASSERT_EQ(a->num_facts(), b->num_facts());
  for (size_t i = 0; i < a->num_facts(); ++i) {
    EXPECT_TRUE(a->fact(i) == b->fact(i)) << "diverged at fact " << i;
  }
}

TEST(GeneratorTest, SeedChangesOutput) {
  auto cfg = SmallConfig();
  SyntheticGenerator g1(cfg);
  cfg.seed = 100;
  SyntheticGenerator g2(cfg);
  auto a = g1.Generate();
  auto b = g2.Generate();
  bool differs = a->num_facts() != b->num_facts();
  if (!differs) {
    for (size_t i = 0; i < a->num_facts(); ++i) {
      if (!(a->fact(i) == b->fact(i))) {
        differs = true;
        break;
      }
    }
  }
  EXPECT_TRUE(differs);
}

TEST(GeneratorTest, HitsFactBudgetApproximately) {
  auto cfg = SmallConfig();
  SyntheticGenerator gen(cfg);
  auto graph = gen.Generate();
  double ratio = static_cast<double>(graph->num_facts()) /
                 static_cast<double>(cfg.num_facts);
  EXPECT_GT(ratio, 0.75) << graph->num_facts();
  EXPECT_LT(ratio, 1.3) << graph->num_facts();
}

TEST(GeneratorTest, RespectsUniverseBounds) {
  auto cfg = SmallConfig();
  SyntheticGenerator gen(cfg);
  auto graph = gen.Generate();
  EXPECT_LE(graph->num_entities(), cfg.num_entities);
  EXPECT_LE(graph->num_relations(), cfg.num_relations);
  for (const Fact& f : graph->facts()) {
    EXPECT_LT(f.subject, cfg.num_entities);
    EXPECT_LT(f.object, cfg.num_entities);
    EXPECT_LT(f.relation, cfg.num_relations);
    EXPECT_GE(f.time, 0);
    EXPECT_LT(f.time, static_cast<Timestamp>(cfg.num_timestamps));
    EXPECT_NE(f.subject, f.object);
  }
}

TEST(GeneratorTest, WorldModelConsistent) {
  auto cfg = SmallConfig();
  SyntheticGenerator gen(cfg);
  const WorldModel& world = gen.world();
  EXPECT_EQ(world.entity_primary_category.size(), cfg.num_entities);
  EXPECT_EQ(world.relation_schema.size(), cfg.num_relations);
  // Extensions may add length-3 links beyond the configured pair count.
  EXPECT_GE(world.chain_rules.size(), cfg.num_chain_rules);
  EXPECT_EQ(world.triadic_rules.size(), cfg.num_triadic_rules);
  // Every category is inhabited.
  for (const auto& members : world.category_members) {
    EXPECT_FALSE(members.empty());
  }
  // Chain tails share the head's schema.
  for (const auto& rule : world.chain_rules) {
    EXPECT_EQ(world.relation_schema[rule.head],
              world.relation_schema[rule.tail]);
    EXPECT_NE(rule.head, rule.tail);
  }
  // Chain tails are distinct and never equal their head; a relation may
  // appear as both the tail of one rule and the head of its length-3
  // extension, but triadic rules stay disjoint from everything.
  std::unordered_set<RelationId> tails;
  std::unordered_set<RelationId> chain_relations;
  for (const auto& rule : world.chain_rules) {
    EXPECT_NE(rule.head, rule.tail);
    EXPECT_TRUE(tails.insert(rule.tail).second);
    chain_relations.insert(rule.head);
    chain_relations.insert(rule.tail);
  }
  for (const auto& rule : world.triadic_rules) {
    for (RelationId r : {rule.head, rule.mid, rule.close}) {
      EXPECT_EQ(chain_relations.count(r), 0u);
      EXPECT_TRUE(chain_relations.insert(r).second);
    }
  }
}

TEST(GeneratorTest, PlantedChainsActuallyOccur) {
  auto cfg = SmallConfig();
  cfg.chain_follow_prob = 0.9;
  SyntheticGenerator gen(cfg);
  auto graph = gen.Generate();
  const WorldModel& world = gen.world();
  // Count (s, head, o, t1) followed by (s, tail, o, t2 > t1).
  size_t chains_observed = 0;
  const auto& rule = world.chain_rules.front();
  for (const Fact& f : graph->facts()) {
    if (f.relation != rule.head) continue;
    const auto* seq = graph->FactsForPair(f.subject, f.object);
    if (seq == nullptr) continue;
    for (FactId id : *seq) {
      const Fact& g = graph->fact(id);
      if (g.relation == rule.tail && g.time > f.time) {
        ++chains_observed;
        break;
      }
    }
  }
  EXPECT_GT(chains_observed, 5u);
}

TEST(GeneratorTest, EntityNamesEncodeCategory) {
  SyntheticGenerator gen(SmallConfig());
  auto graph = gen.Generate();
  const WorldModel& world = gen.world();
  for (EntityId e = 0; e < 20; ++e) {
    const std::string name = graph->EntityName(e);
    const std::string cat =
        world.category_names[world.entity_primary_category[e]];
    EXPECT_EQ(name.rfind(cat, 0), 0u)
        << name << " should start with " << cat;
  }
}

TEST(GeneratorTest, DurationModeProducesDurations) {
  auto cfg = SmallConfig();
  cfg.durations = true;
  cfg.mean_duration = 15.0;
  SyntheticGenerator gen(cfg);
  auto graph = gen.Generate();
  EXPECT_TRUE(graph->has_durations());
  size_t with_span = 0;
  for (const Fact& f : graph->facts()) {
    EXPECT_GE(f.end, f.time);
    with_span += (f.end > f.time);
  }
  EXPECT_GT(with_span, graph->num_facts() / 2);
}

// ---------------------------------------------------------------- Presets

TEST(PresetTest, ByNameResolvesAllFive) {
  for (const char* name :
       {"icews14", "icews05-15", "yago11k", "gdelt", "wikidata"}) {
    auto cfg = DatasetPresets::ByName(name);
    ASSERT_TRUE(cfg.ok()) << name;
    EXPECT_FALSE(cfg.value().name.empty());
  }
  EXPECT_FALSE(DatasetPresets::ByName("freebase").ok());
}

TEST(PresetTest, FullScaleMatchesTable1) {
  auto cfg = DatasetPresets::Icews14(1.0);
  EXPECT_EQ(cfg.num_entities, 7128u);
  EXPECT_EQ(cfg.num_relations, 230u);
  EXPECT_EQ(cfg.num_timestamps, 365u);
  EXPECT_EQ(cfg.num_facts, 90730u);

  auto gdelt = DatasetPresets::Gdelt(1.0);
  EXPECT_EQ(gdelt.num_facts, 3419607u);
  auto wiki = DatasetPresets::Wikidata(1.0);
  EXPECT_TRUE(wiki.durations);
}

TEST(PresetTest, ScaleShrinksEntitiesAndFacts) {
  auto full = DatasetPresets::Icews14(1.0);
  auto small = DatasetPresets::Icews14(0.1);
  EXPECT_LT(small.num_entities, full.num_entities);
  EXPECT_LT(small.num_facts, full.num_facts);
  EXPECT_EQ(small.num_relations, full.num_relations);
  EXPECT_EQ(small.num_timestamps, full.num_timestamps);
}

TEST(PresetTest, MainSuiteIsFourPointDatasets) {
  auto suite = DatasetPresets::MainBenchmarkSuite();
  ASSERT_EQ(suite.size(), 4u);
  for (const auto& cfg : suite) EXPECT_FALSE(cfg.durations);
}

TEST(PresetTest, SmallPresetGeneratesQuickly) {
  auto cfg = DatasetPresets::Yago11k(0.02);
  SyntheticGenerator gen(cfg);
  auto graph = gen.Generate();
  TkgStats stats = ComputeStats(*graph);
  EXPECT_GT(stats.num_facts, 1000u);
  EXPECT_EQ(stats.num_relations, 10u);
}

}  // namespace
}  // namespace anot
