#include <gtest/gtest.h>

#include "rulegraph/rule_graph.h"

namespace anot {
namespace {

AtomicRule MakeRule(CategoryId cs, RelationId r, CategoryId co) {
  AtomicRule rule;
  rule.subject_category = cs;
  rule.relation = r;
  rule.object_category = co;
  return rule;
}

TEST(RuleGraphTest, AddAndFindRules) {
  RuleGraph g;
  RuleId a = g.AddRule(MakeRule(0, 1, 2), true);
  RuleId b = g.AddRule(MakeRule(0, 1, 3), true);
  EXPECT_NE(a, b);
  EXPECT_EQ(g.num_rules(), 2u);
  EXPECT_EQ(*g.FindRule(MakeRule(0, 1, 2)), a);
  EXPECT_FALSE(g.FindRule(MakeRule(9, 9, 9)).has_value());
}

TEST(RuleGraphTest, AddRuleIsIdempotentAndUpgradesStaticFlag) {
  RuleGraph g;
  RuleId a = g.AddRule(MakeRule(0, 1, 2), /*static_selected=*/false);
  EXPECT_FALSE(g.static_selected(a));
  EXPECT_EQ(g.num_static_rules(), 0u);
  // Re-adding as static upgrades the flag; id is stable.
  RuleId again = g.AddRule(MakeRule(0, 1, 2), /*static_selected=*/true);
  EXPECT_EQ(a, again);
  EXPECT_TRUE(g.static_selected(a));
  EXPECT_EQ(g.num_static_rules(), 1u);
  EXPECT_EQ(g.num_rules(), 1u);
}

TEST(RuleGraphTest, SupportTracking) {
  RuleGraph g;
  RuleId a = g.AddRule(MakeRule(1, 1, 1), true);
  EXPECT_EQ(g.support(a), 0u);
  g.SetSupport(a, 10);
  g.AddSupport(a, 5);
  EXPECT_EQ(g.support(a), 15u);
}

TEST(RuleGraphTest, ChainEdgeAdjacency) {
  RuleGraph g;
  RuleId h = g.AddRule(MakeRule(0, 0, 1), true);
  RuleId t = g.AddRule(MakeRule(0, 1, 1), true);
  RuleEdge e;
  e.kind = RuleEdgeKind::kChain;
  e.head = h;
  e.tail = t;
  e.timespans = {5, 3, 7};
  e.support = 3;
  RuleEdgeId id = g.AddEdge(e);

  ASSERT_EQ(g.InEdges(t).size(), 1u);
  EXPECT_EQ(g.InEdges(t)[0], id);
  ASSERT_EQ(g.OutEdges(h).size(), 1u);
  EXPECT_TRUE(g.InEdges(h).empty());
  EXPECT_TRUE(g.OutEdges(t).empty());
  // Timespans sorted on insert.
  EXPECT_EQ(g.edge(id).timespans, (std::vector<Timestamp>{3, 5, 7}));
}

TEST(RuleGraphTest, TriadicEdgeAdjacency) {
  RuleGraph g;
  RuleId h = g.AddRule(MakeRule(0, 0, 2), true);
  RuleId m = g.AddRule(MakeRule(1, 1, 2), true);
  RuleId t = g.AddRule(MakeRule(0, 2, 1), true);
  RuleEdge e;
  e.kind = RuleEdgeKind::kTriadic;
  e.head = h;
  e.mid = m;
  e.tail = t;
  RuleEdgeId id = g.AddEdge(e);

  EXPECT_EQ(g.InEdges(t).size(), 1u);
  // Both head and mid see the edge as outgoing.
  EXPECT_EQ(g.OutEdges(h).size(), 1u);
  EXPECT_EQ(g.OutEdges(m).size(), 1u);
  EXPECT_EQ(g.edge(id).kind, RuleEdgeKind::kTriadic);
}

TEST(RuleGraphTest, DuplicateEdgeMergesTimespansAndSupport) {
  RuleGraph g;
  RuleId h = g.AddRule(MakeRule(0, 0, 1), true);
  RuleId t = g.AddRule(MakeRule(0, 1, 1), true);
  RuleEdge e1;
  e1.head = h;
  e1.tail = t;
  e1.timespans = {4};
  e1.support = 1;
  RuleEdge e2 = e1;
  e2.timespans = {2, 9};
  e2.support = 2;
  RuleEdgeId a = g.AddEdge(e1);
  RuleEdgeId b = g.AddEdge(e2);
  EXPECT_EQ(a, b);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.edge(a).timespans, (std::vector<Timestamp>{2, 4, 9}));
  EXPECT_EQ(g.edge(a).support, 3u);
}

TEST(RuleGraphTest, FindEdgeDistinguishesKindAndMid) {
  RuleGraph g;
  RuleId a = g.AddRule(MakeRule(0, 0, 1), true);
  RuleId b = g.AddRule(MakeRule(0, 1, 1), true);
  RuleId c = g.AddRule(MakeRule(1, 2, 1), true);
  RuleEdge chain;
  chain.head = a;
  chain.tail = b;
  g.AddEdge(chain);

  EXPECT_TRUE(g.FindEdge(RuleEdgeKind::kChain, a, kInvalidId, b).has_value());
  EXPECT_FALSE(g.FindEdge(RuleEdgeKind::kChain, b, kInvalidId, a).has_value());
  EXPECT_FALSE(g.FindEdge(RuleEdgeKind::kTriadic, a, c, b).has_value());
}

TEST(RuleGraphTest, AddTimespanKeepsSorted) {
  RuleGraph g;
  RuleId h = g.AddRule(MakeRule(0, 0, 1), true);
  RuleId t = g.AddRule(MakeRule(0, 1, 1), true);
  RuleEdge e;
  e.head = h;
  e.tail = t;
  RuleEdgeId id = g.AddEdge(e);
  g.AddTimespan(id, 9);
  g.AddTimespan(id, 1);
  g.AddTimespan(id, 5);
  EXPECT_EQ(g.edge(id).timespans, (std::vector<Timestamp>{1, 5, 9}));
}

TEST(RuleGraphTest, ToStringMentionsCounts) {
  RuleGraph g;
  g.AddRule(MakeRule(0, 1, 2), true);
  std::string s = g.ToString();
  EXPECT_NE(s.find("1 rules"), std::string::npos);
}

}  // namespace
}  // namespace anot
