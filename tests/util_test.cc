#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <sstream>

#include "util/logging.h"
#include "util/math_util.h"
#include "util/random.h"
#include "util/result.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "util/tsv.h"

namespace anot {
namespace {

// --------------------------------------------------------------- Logging

TEST(LoggingTest, LevelFilterSuppressesBelowMinLevel) {
  std::ostringstream captured;
  std::streambuf* old = std::cerr.rdbuf(captured.rdbuf());
  const LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::kWarn);
  ANOT_LOG(Info) << "dropped-line";
  ANOT_LOG(Warn) << "kept-line";
  SetLogLevel(prev);
  std::cerr.rdbuf(old);
  EXPECT_EQ(captured.str().find("dropped-line"), std::string::npos);
  EXPECT_NE(captured.str().find("kept-line"), std::string::npos);
}

TEST(LoggingTest, FilteredMacroDoesNotEvaluateStreamExpression) {
  // The ANOT_LOG fast path short-circuits on one relaxed atomic load
  // before the LogMessage (and its ostringstream) exists, so a filtered
  // call site must not evaluate its stream operands at all.
  const LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto touch = [&evaluations] {
    ++evaluations;
    return "side-effect";
  };
  ANOT_LOG(Debug) << touch();
  ANOT_LOG(Info) << touch();
  SetLogLevel(prev);
  EXPECT_EQ(evaluations, 0);
}

TEST(LoggingTest, SetLogLevelRoundTrips) {
  const LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(prev);
  EXPECT_EQ(GetLogLevel(), prev);
}

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad k");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad k");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

Status ReturnsEarly(bool fail) {
  ANOT_RETURN_NOT_OK(fail ? Status::Internal("boom") : Status::OK());
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(ReturnsEarly(false).ok());
  EXPECT_EQ(ReturnsEarly(true).code(), StatusCode::kInternal);
}

// ---------------------------------------------------------------- Result

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.ValueOr(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, MoveValueTransfersOwnership) {
  Result<std::string> r(std::string("payload"));
  std::string s = r.MoveValue();
  EXPECT_EQ(s, "payload");
}

// ------------------------------------------------------------------- Rng

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Uniform(17), 17u);
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.UniformDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, NormalMoments) {
  Rng rng(11);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal(2.0, 3.0);
    sum += v;
    sq += v * v;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.5);
}

TEST(RngTest, ZipfFavoursLowRanks) {
  Rng rng(13);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.Zipf(10, 1.2)];
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[0], counts[9]);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(17);
  for (size_t k : {0u, 3u, 50u, 100u}) {
    auto sample = rng.SampleWithoutReplacement(100, k);
    EXPECT_EQ(sample.size(), k);
    std::sort(sample.begin(), sample.end());
    EXPECT_EQ(std::adjacent_find(sample.begin(), sample.end()),
              sample.end());
    for (size_t v : sample) EXPECT_LT(v, 100u);
  }
}

TEST(RngTest, WeightedNeverPicksZeroWeight) {
  Rng rng(19);
  std::vector<double> w{0.0, 5.0, 0.0, 1.0};
  for (int i = 0; i < 500; ++i) {
    size_t pick = rng.Weighted(w);
    EXPECT_TRUE(pick == 1 || pick == 3);
  }
}

TEST(ZipfSamplerTest, MatchesRngZipfDistributionShape) {
  Rng rng(23);
  ZipfSampler sampler(50, 1.0);
  std::vector<int> counts(50, 0);
  for (int i = 0; i < 30000; ++i) ++counts[sampler.Sample(&rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[1], counts[30]);
}

// ------------------------------------------------------------- math_util

TEST(MathTest, Log2Basics) {
  EXPECT_DOUBLE_EQ(Log2(8.0), 3.0);
  EXPECT_DOUBLE_EQ(Log2(1.0), 0.0);
  EXPECT_DOUBLE_EQ(Log2(0.0), 0.0);   // guarded
  EXPECT_DOUBLE_EQ(Log2(-3.0), 0.0);  // guarded
}

TEST(MathTest, Log2FactorialSmallValuesExact) {
  EXPECT_DOUBLE_EQ(Log2Factorial(0), 0.0);
  EXPECT_DOUBLE_EQ(Log2Factorial(1), 0.0);
  EXPECT_NEAR(Log2Factorial(4), std::log2(24.0), 1e-9);
  EXPECT_NEAR(Log2Factorial(10), std::log2(3628800.0), 1e-9);
}

TEST(MathTest, Log2BinomialMatchesDirectComputation) {
  // C(10, 3) = 120.
  EXPECT_NEAR(Log2Binomial(10, 3), std::log2(120.0), 1e-9);
  // Degenerate choices carry no information.
  EXPECT_DOUBLE_EQ(Log2Binomial(10, 0), 0.0);
  EXPECT_DOUBLE_EQ(Log2Binomial(10, 10), 0.0);
  EXPECT_DOUBLE_EQ(Log2Binomial(10, 12), 0.0);
}

TEST(MathTest, Log2BinomialSymmetry) {
  for (int b = 1; b < 20; ++b) {
    EXPECT_NEAR(Log2Binomial(20, b), Log2Binomial(20, 20 - b), 1e-7);
  }
}

TEST(MathTest, PrefixCodeBits) {
  EXPECT_NEAR(PrefixCodeBits(1, 2), 1.0, 1e-12);
  EXPECT_NEAR(PrefixCodeBits(1, 8), 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(PrefixCodeBits(0, 8), 0.0);
  EXPECT_DOUBLE_EQ(PrefixCodeBits(8, 8), 0.0);
}

TEST(MathTest, UniversalIntBitsMonotone) {
  double prev = UniversalIntBits(0);
  EXPECT_GE(prev, 1.0);
  for (uint64_t n : {1ull, 2ull, 10ull, 100ull, 10000ull}) {
    double bits = UniversalIntBits(n);
    EXPECT_GT(bits, prev);
    prev = bits;
  }
}

TEST(MathTest, EntropyBits) {
  EXPECT_DOUBLE_EQ(EntropyBits({1, 1}), 1.0);
  EXPECT_DOUBLE_EQ(EntropyBits({4}), 0.0);
  EXPECT_DOUBLE_EQ(EntropyBits({}), 0.0);
  EXPECT_NEAR(EntropyBits({1, 1, 1, 1}), 2.0, 1e-12);
}

TEST(MathTest, Log2AddCommutes) {
  EXPECT_NEAR(Log2Add(3, 3), 4.0, 1e-12);
  EXPECT_NEAR(Log2Add(10, 0), Log2Add(0, 10), 1e-12);
}

// ------------------------------------------------------------ string_util

TEST(StringTest, SplitKeepsEmptyFields) {
  auto parts = Split("a\t\tb", '\t');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringTest, SplitSingleField) {
  auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringTest, JoinRoundTrip) {
  std::vector<std::string> v{"x", "y", "z"};
  EXPECT_EQ(Join(v, ", "), "x, y, z");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringTest, Trim) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StringTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("icews14", "ice"));
  EXPECT_FALSE(StartsWith("ice", "icews"));
  EXPECT_TRUE(EndsWith("table2.tsv", ".tsv"));
  EXPECT_FALSE(EndsWith("a", "ab"));
}

TEST(StringTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
}

TEST(StringTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(0.12345, 3), "0.123");
  EXPECT_EQ(FormatDouble(2.0, 1), "2.0");
}

// ------------------------------------------------------------------- TSV

TEST(TsvTest, WriteThenReadRoundTrip) {
  auto path = std::filesystem::temp_directory_path() / "anot_tsv_test.tsv";
  std::vector<std::vector<std::string>> rows{{"a", "r1", "b", "3"},
                                             {"c", "r2", "d", "5"}};
  ASSERT_TRUE(TsvWriter::WriteAll(path.string(), rows).ok());

  std::vector<std::vector<std::string>> read;
  auto st = TsvReader::ForEachRow(
      path.string(), [&](const std::vector<std::string>& row) {
        read.push_back(row);
        return Status::OK();
      });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(read, rows);
  std::filesystem::remove(path);
}

TEST(TsvTest, SkipsCommentsAndBlankLines) {
  auto path = std::filesystem::temp_directory_path() / "anot_tsv_cmt.tsv";
  {
    std::ofstream out(path);
    out << "# comment\n\nx\ty\n";
  }
  int rows = 0;
  ASSERT_TRUE(TsvReader::ForEachRow(path.string(),
                                    [&](const std::vector<std::string>&) {
                                      ++rows;
                                      return Status::OK();
                                    })
                  .ok());
  EXPECT_EQ(rows, 1);
  std::filesystem::remove(path);
}

TEST(TsvTest, MissingFileIsIoError) {
  auto st = TsvReader::ForEachRow("/nonexistent/definitely/missing.tsv",
                                  [](const std::vector<std::string>&) {
                                    return Status::OK();
                                  });
  EXPECT_EQ(st.code(), StatusCode::kIoError);
}

TEST(TsvTest, CallbackErrorStopsRead) {
  auto path = std::filesystem::temp_directory_path() / "anot_tsv_err.tsv";
  {
    std::ofstream out(path);
    out << "1\n2\n3\n";
  }
  int rows = 0;
  auto st = TsvReader::ForEachRow(path.string(),
                                  [&](const std::vector<std::string>&) {
                                    ++rows;
                                    return rows == 2
                                               ? Status::Internal("stop")
                                               : Status::OK();
                                  });
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(rows, 2);
  std::filesystem::remove(path);
}

// ----------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

// ----------------------------------------------------------------- Timer

TEST(TimerTest, ElapsedIsNonNegativeAndMonotone) {
  WallTimer timer;
  double a = timer.ElapsedSeconds();
  double b = timer.ElapsedSeconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
  timer.Restart();
  EXPECT_LT(timer.ElapsedSeconds(), 1.0);
}

}  // namespace
}  // namespace anot
