#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "datagen/generator.h"
#include "mining/category_function.h"
#include "mining/prefixspan.h"
#include "util/thread_pool.h"

namespace anot {
namespace {

// -------------------------------------------------------------- PrefixSpan

TEST(PrefixSpanTest, FindsAllFrequentSubsets) {
  // Transactions over items {1,2,3}: {1,2,3} x3, {1,2} x1, {3} x1.
  std::vector<std::vector<uint32_t>> txns{
      {1, 2, 3}, {1, 2, 3}, {1, 2, 3}, {1, 2}, {3}};
  PrefixSpan::Options opts;
  opts.min_support = 3;
  auto patterns = PrefixSpan::Mine(txns, opts);

  std::set<std::vector<uint32_t>> found;
  for (const auto& p : patterns) found.insert(p.items);
  // Frequent (support >= 3): {1},{2},{3},{1,2},{1,3},{2,3},{1,2,3}.
  EXPECT_EQ(found.size(), 7u);
  EXPECT_TRUE(found.count({1}));
  EXPECT_TRUE(found.count({1, 2}));
  EXPECT_TRUE(found.count({1, 2, 3}));
  EXPECT_TRUE(found.count({2, 3}));
}

TEST(PrefixSpanTest, SupportCountsAndOwnersCorrect) {
  std::vector<std::vector<uint32_t>> txns{{1, 2}, {1}, {2}, {1, 2}};
  PrefixSpan::Options opts;
  opts.min_support = 2;
  auto patterns = PrefixSpan::Mine(txns, opts);
  for (const auto& p : patterns) {
    if (p.items == std::vector<uint32_t>{1, 2}) {
      EXPECT_EQ(p.support(), 2u);
      EXPECT_EQ(p.owners, (std::vector<uint32_t>{0, 3}));
    }
    if (p.items == std::vector<uint32_t>{1}) {
      EXPECT_EQ(p.support(), 3u);
    }
  }
}

TEST(PrefixSpanTest, MinSupportFilters) {
  std::vector<std::vector<uint32_t>> txns{{1, 2}, {1}, {3}};
  PrefixSpan::Options opts;
  opts.min_support = 2;
  auto patterns = PrefixSpan::Mine(txns, opts);
  for (const auto& p : patterns) {
    EXPECT_GE(p.support(), 2u);
    EXPECT_NE(p.items, std::vector<uint32_t>{3});
  }
}

TEST(PrefixSpanTest, MaxLengthBoundsPatternSize) {
  std::vector<std::vector<uint32_t>> txns{
      {1, 2, 3, 4, 5}, {1, 2, 3, 4, 5}, {1, 2, 3, 4, 5}};
  PrefixSpan::Options opts;
  opts.min_support = 2;
  opts.max_length = 2;
  auto patterns = PrefixSpan::Mine(txns, opts);
  for (const auto& p : patterns) EXPECT_LE(p.items.size(), 2u);
  // 5 singletons + C(5,2)=10 pairs.
  EXPECT_EQ(patterns.size(), 15u);
}

TEST(PrefixSpanTest, MaxPatternsCapStopsMining) {
  std::vector<std::vector<uint32_t>> txns{
      {1, 2, 3, 4, 5, 6, 7, 8}, {1, 2, 3, 4, 5, 6, 7, 8}};
  PrefixSpan::Options opts;
  opts.min_support = 2;
  opts.max_patterns = 5;
  auto patterns = PrefixSpan::Mine(txns, opts);
  EXPECT_EQ(patterns.size(), 5u);
}

TEST(PrefixSpanTest, EmptyInput) {
  PrefixSpan::Options opts;
  EXPECT_TRUE(PrefixSpan::Mine({}, opts).empty());
  EXPECT_TRUE(PrefixSpan::Mine({{}, {}}, opts).empty());
}

TEST(PrefixSpanTest, ItemsAreAscendingInEveryPattern) {
  std::vector<std::vector<uint32_t>> txns{
      {2, 5, 9}, {2, 5, 9}, {2, 9}, {5, 9}};
  PrefixSpan::Options opts;
  opts.min_support = 2;
  auto patterns = PrefixSpan::Mine(txns, opts);
  for (const auto& p : patterns) {
    EXPECT_TRUE(std::is_sorted(p.items.begin(), p.items.end()));
  }
}

// -------------------------------------------------------- CategoryFunction

/// Builds a graph with two clear latent categories:
///  - "athletes" interact as subjects of r0 (born) and r1 (plays_for)
///  - "directors" interact as subjects of r0 (born) and r2 (directs)
class CategoryFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    // 8 athletes, 8 directors, shared object entities.
    for (int i = 0; i < 8; ++i) {
      std::string a = "athlete" + std::to_string(i);
      g_.AddFact(a, "born_in", "country", 10 + i);
      g_.AddFact(a, "plays_for", "club", 20 + i);
    }
    for (int i = 0; i < 8; ++i) {
      std::string d = "director" + std::to_string(i);
      g_.AddFact(d, "born_in", "country", 10 + i);
      g_.AddFact(d, "directs", "movie", 30 + i);
    }
    opts_.min_support = 3;
    opts_.max_categories_per_entity = 3;
  }

  TemporalKnowledgeGraph g_;
  CategoryFunctionOptions opts_;
};

TEST_F(CategoryFixture, EveryActiveEntityGetsACategory) {
  auto fn = CategoryFunction::Build(g_, opts_);
  for (EntityId e = 0; e < g_.num_entities(); ++e) {
    EXPECT_FALSE(fn.Categories(e).empty()) << g_.EntityName(e);
    EXPECT_LE(fn.Categories(e).size(), opts_.max_categories_per_entity);
  }
}

TEST_F(CategoryFixture, AthletesAndDirectorsShareCategories) {
  auto fn = CategoryFunction::Build(g_, opts_);
  EntityId a0 = *g_.entity_dict().TryGet("athlete0");
  EntityId a1 = *g_.entity_dict().TryGet("athlete5");
  EntityId d0 = *g_.entity_dict().TryGet("director0");

  // Two athletes share at least one category.
  std::vector<CategoryId> shared;
  const auto& ca0 = fn.Categories(a0);
  const auto& ca1 = fn.Categories(a1);
  std::set_intersection(ca0.begin(), ca0.end(), ca1.begin(), ca1.end(),
                        std::back_inserter(shared));
  EXPECT_FALSE(shared.empty());

  // An athlete and a director must not share the *athlete-specific*
  // category (born+plays_for).
  RelationId plays = *g_.relation_dict().TryGet("plays_for");
  const uint32_t plays_token = OutRelationToken(plays);
  for (CategoryId c : fn.Categories(d0)) {
    const auto& combo = fn.Combination(c);
    EXPECT_FALSE(std::binary_search(combo.begin(), combo.end(), plays_token))
        << "director got an athlete category";
  }
}

TEST_F(CategoryFixture, CombinationTokensMatchEntityBehaviour) {
  auto fn = CategoryFunction::Build(g_, opts_);
  // Every category of every entity must be a subset of the entity's tokens.
  for (EntityId e = 0; e < g_.num_entities(); ++e) {
    const auto& tokens = g_.RelationTokens(e);
    for (CategoryId c : fn.Categories(e)) {
      for (uint32_t t : fn.Combination(c)) {
        EXPECT_TRUE(tokens.count(t) > 0)
            << g_.EntityName(e) << " category " << c
            << " demands a token the entity lacks";
      }
    }
  }
}

TEST_F(CategoryFixture, MembersListsMatchAssignments) {
  auto fn = CategoryFunction::Build(g_, opts_);
  for (EntityId e = 0; e < g_.num_entities(); ++e) {
    for (CategoryId c : fn.Categories(e)) {
      const auto& members = fn.Members(c);
      EXPECT_TRUE(std::binary_search(members.begin(), members.end(), e));
    }
  }
}

TEST_F(CategoryFixture, DescribeRendersRelationNames) {
  auto fn = CategoryFunction::Build(g_, opts_);
  EntityId a0 = *g_.entity_dict().TryGet("athlete0");
  ASSERT_FALSE(fn.Categories(a0).empty());
  std::string desc = fn.Describe(fn.Categories(a0).front(), g_);
  EXPECT_FALSE(desc.empty());
  // Mentions at least one of the athlete relations.
  EXPECT_TRUE(desc.find("born_in") != std::string::npos ||
              desc.find("plays_for") != std::string::npos)
      << desc;
}

TEST_F(CategoryFixture, KLimitsCategoriesPerEntity) {
  opts_.max_categories_per_entity = 1;
  auto fn = CategoryFunction::Build(g_, opts_);
  for (EntityId e = 0; e < g_.num_entities(); ++e) {
    EXPECT_LE(fn.Categories(e).size(), 1u);
  }
}

TEST_F(CategoryFixture, UpdateEntityAddsCategoryForNewToken) {
  auto fn = CategoryFunction::Build(g_, opts_);
  // A director starts playing for a club: new out-token plays_for.
  EntityId d0 = *g_.entity_dict().TryGet("director0");
  RelationId plays = *g_.relation_dict().TryGet("plays_for");
  const size_t before = fn.Categories(d0).size();
  g_.AddFact("director0", "plays_for", "club", 99);
  CategoryId added = fn.UpdateEntity(d0, OutRelationToken(plays), g_);
  EXPECT_NE(added, kInvalidId);
  EXPECT_GT(fn.Categories(d0).size(), before);
  // The entity is now a member of the added category.
  const auto& members = fn.Members(added);
  EXPECT_TRUE(std::binary_search(members.begin(), members.end(), d0));
}

TEST_F(CategoryFixture, UpdateEntityUnknownTokenCreatesSingleton) {
  auto fn = CategoryFunction::Build(g_, opts_);
  const size_t cats_before = fn.num_categories();
  EntityId a0 = *g_.entity_dict().TryGet("athlete0");
  g_.AddFact("athlete0", "retires_from", "club", 99);
  RelationId retire = *g_.relation_dict().TryGet("retires_from");
  CategoryId added = fn.UpdateEntity(a0, OutRelationToken(retire), g_);
  EXPECT_NE(added, kInvalidId);
  EXPECT_EQ(fn.num_categories(), cats_before + 1);
  EXPECT_EQ(fn.Combination(added).size(), 1u);
}

TEST_F(CategoryFixture, UpdateEntityIdempotent) {
  auto fn = CategoryFunction::Build(g_, opts_);
  EntityId d0 = *g_.entity_dict().TryGet("director0");
  RelationId plays = *g_.relation_dict().TryGet("plays_for");
  g_.AddFact("director0", "plays_for", "club", 99);
  CategoryId first = fn.UpdateEntity(d0, OutRelationToken(plays), g_);
  EXPECT_NE(first, kInvalidId);
  // Re-applying the same token is a no-op.
  EXPECT_EQ(fn.UpdateEntity(d0, OutRelationToken(plays), g_), kInvalidId);
}

TEST_F(CategoryFixture, NewEntityGetsCategoriesViaUpdate) {
  auto fn = CategoryFunction::Build(g_, opts_);
  const EntityId fresh = static_cast<EntityId>(g_.num_entities());
  g_.AddFact("newcomer", "plays_for", "club", 100);
  RelationId plays = *g_.relation_dict().TryGet("plays_for");
  EXPECT_TRUE(fn.Categories(fresh).empty());
  CategoryId added = fn.UpdateEntity(fresh, OutRelationToken(plays), g_);
  EXPECT_NE(added, kInvalidId);
  EXPECT_FALSE(fn.Categories(fresh).empty());
}

TEST(CategoryFunctionTest, BuildIdenticalAcrossWorkerCounts) {
  // The token pass and the aggregation rounds shard onto a worker pool;
  // ordered merge replay must keep the built function bit-identical to
  // the serial build (the same contract as candidate generation).
  GeneratorConfig cfg;
  cfg.num_entities = 300;
  cfg.num_relations = 24;
  cfg.num_timestamps = 80;
  cfg.num_facts = 6000;
  cfg.num_categories = 6;
  cfg.seed = 91;
  SyntheticGenerator gen(cfg);
  auto graph = gen.Generate();

  CategoryFunctionOptions opts;
  opts.min_support = 3;
  // Force several aggregation rounds with plenty of pairwise merges.
  opts.max_aggregation_rounds = 4;

  auto serial = CategoryFunction::Build(*graph, opts, nullptr);
  for (size_t threads : {2u, 8u}) {
    ThreadPool pool(threads);
    auto parallel = CategoryFunction::Build(*graph, opts, &pool);
    ASSERT_EQ(serial.num_categories(), parallel.num_categories())
        << threads << " workers";
    for (CategoryId c = 0; c < serial.num_categories(); ++c) {
      ASSERT_EQ(serial.Combination(c), parallel.Combination(c))
          << "category " << c << " @ " << threads << " workers";
      ASSERT_EQ(serial.Members(c), parallel.Members(c))
          << "category " << c << " @ " << threads << " workers";
    }
    for (EntityId e = 0; e < graph->num_entities(); ++e) {
      ASSERT_EQ(serial.Categories(e), parallel.Categories(e))
          << "entity " << e << " @ " << threads << " workers";
    }
  }
}

TEST(CategoryFunctionTest, RecoversPlantedCategoriesOnSyntheticData) {
  GeneratorConfig cfg;
  cfg.num_entities = 300;
  cfg.num_relations = 40;
  cfg.num_timestamps = 150;
  cfg.num_facts = 9000;
  cfg.num_categories = 5;
  cfg.secondary_category_prob = 0.0;  // crisp ground truth
  cfg.noise_fraction = 0.02;
  cfg.seed = 31;
  SyntheticGenerator gen(cfg);
  auto graph = gen.Generate();
  const WorldModel& world = gen.world();

  CategoryFunctionOptions opts;
  opts.min_support = 5;
  auto fn = CategoryFunction::Build(*graph, opts);
  EXPECT_GT(fn.num_categories(), 0u);

  // Entities sharing a planted category should share a mined category far
  // more often than entities from different planted categories.
  Rng rng(7);
  auto share = [&](EntityId a, EntityId b) {
    const auto& ca = fn.Categories(a);
    const auto& cb = fn.Categories(b);
    std::vector<CategoryId> inter;
    std::set_intersection(ca.begin(), ca.end(), cb.begin(), cb.end(),
                          std::back_inserter(inter));
    return !inter.empty();
  };
  int same_shared = 0, diff_shared = 0, trials = 300;
  for (int i = 0; i < trials; ++i) {
    EntityId a = static_cast<EntityId>(rng.Uniform(cfg.num_entities));
    EntityId b = static_cast<EntityId>(rng.Uniform(cfg.num_entities));
    if (a == b) continue;
    const bool same_truth = world.entity_primary_category[a] ==
                            world.entity_primary_category[b];
    if (share(a, b)) (same_truth ? same_shared : diff_shared)++;
  }
  EXPECT_GT(same_shared, diff_shared)
      << "mined categories do not track planted categories";
}

}  // namespace
}  // namespace anot
