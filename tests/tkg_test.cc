#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <limits>

#include "tkg/dictionary.h"
#include "tkg/graph.h"
#include "tkg/loader.h"
#include "tkg/split.h"
#include "tkg/stats.h"
#include "tkg/types.h"

namespace anot {
namespace {

// ------------------------------------------------------------ Dictionary

TEST(DictionaryTest, AssignsDenseIdsInFirstSeenOrder) {
  Dictionary dict;
  EXPECT_EQ(dict.GetOrAdd("a"), 0u);
  EXPECT_EQ(dict.GetOrAdd("b"), 1u);
  EXPECT_EQ(dict.GetOrAdd("a"), 0u);
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.Name(0), "a");
  EXPECT_EQ(dict.Name(1), "b");
}

TEST(DictionaryTest, TryGetMissing) {
  Dictionary dict;
  dict.GetOrAdd("x");
  EXPECT_TRUE(dict.TryGet("x").has_value());
  EXPECT_FALSE(dict.TryGet("y").has_value());
}

TEST(DictionaryTest, HeterogeneousStringViewLookups) {
  Dictionary dict;
  // Interning and probing through every string-ish spelling must agree:
  // the transparent hasher compares string_views, never a temporary
  // std::string.
  const std::string owned = "barack_obama";
  EXPECT_EQ(dict.GetOrAdd(owned), 0u);
  EXPECT_EQ(dict.GetOrAdd(std::string_view("barack_obama")), 0u);
  EXPECT_EQ(dict.GetOrAdd("barack_obama"), 0u);
  ASSERT_TRUE(dict.TryGet(std::string_view("barack_obama")).has_value());
  EXPECT_EQ(*dict.TryGet(std::string_view("barack_obama")), 0u);
  EXPECT_EQ(*dict.TryGet("barack_obama"), 0u);
  // A view into a larger buffer (no NUL terminator at the end of the
  // token) — exactly what a zero-copy TSV scanner would probe with.
  const std::string line = "barack_obama\tpresident_of\tusa";
  EXPECT_EQ(*dict.TryGet(std::string_view(line).substr(0, 12)), 0u);
  EXPECT_FALSE(dict.TryGet(std::string_view(line).substr(0, 6)).has_value());
  EXPECT_EQ(dict.size(), 1u);
  EXPECT_EQ(dict.Name(0), "barack_obama");
}

TEST(DictionaryTest, ReserveKeepsContents) {
  Dictionary dict;
  dict.GetOrAdd("a");
  dict.Reserve(1000);
  EXPECT_EQ(dict.GetOrAdd("a"), 0u);
  EXPECT_EQ(dict.GetOrAdd("b"), 1u);
  EXPECT_EQ(dict.Name(0), "a");
}

// ----------------------------------------------------------------- types

TEST(TypesTest, DirectedRelationTokens) {
  EXPECT_EQ(OutRelationToken(5), 10u);
  EXPECT_EQ(InRelationToken(5), 11u);
  EXPECT_TRUE(IsOutToken(OutRelationToken(7)));
  EXPECT_FALSE(IsOutToken(InRelationToken(7)));
  EXPECT_EQ(TokenRelation(OutRelationToken(9)), 9u);
  EXPECT_EQ(TokenRelation(InRelationToken(9)), 9u);
}

TEST(TypesTest, PairKeyUnique) {
  EXPECT_NE(PairKey(1, 2), PairKey(2, 1));
  EXPECT_EQ(PairKey(3, 4), PairKey(3, 4));
}

TEST(TypesTest, FactEqualityIncludesDuration) {
  Fact a(1, 2, 3, 10);
  Fact b(1, 2, 3, 10, 20);
  EXPECT_FALSE(a == b);
  b.end = 10;
  EXPECT_TRUE(a == b);
}

// ----------------------------------------------------------------- Graph

class GraphFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    // A small political-events toy graph.
    g_.AddFact("obama", "win_election", "usa", 100);
    g_.AddFact("obama", "president_of", "usa", 105);
    g_.AddFact("obama", "make_statement", "usa", 110);
    g_.AddFact("china", "host_visit", "saudi", 102);
    g_.AddFact("china", "host_visit", "iran", 102);
    g_.AddFact("saudi", "sign_agreement", "iran", 106);
  }
  TemporalKnowledgeGraph g_;
};

TEST_F(GraphFixture, UniverseSizes) {
  EXPECT_EQ(g_.num_facts(), 6u);
  EXPECT_EQ(g_.num_entities(), 5u);   // obama, usa, china, saudi, iran
  EXPECT_EQ(g_.num_relations(), 5u);
  EXPECT_EQ(g_.num_timestamps(), 5u); // 100,102,105,106,110
  EXPECT_EQ(g_.min_time(), 100);
  EXPECT_EQ(g_.max_time(), 110);
  EXPECT_FALSE(g_.has_durations());
}

TEST_F(GraphFixture, FactsAtTimestamp) {
  EXPECT_EQ(g_.FactsAt(102).size(), 2u);
  EXPECT_EQ(g_.FactsAt(100).size(), 1u);
  EXPECT_TRUE(g_.FactsAt(999).empty());
}

TEST_F(GraphFixture, PairInteractionSequenceSortedByTime) {
  EntityId obama = *g_.entity_dict().TryGet("obama");
  EntityId usa = *g_.entity_dict().TryGet("usa");
  const auto* seq = g_.FactsForPair(obama, usa);
  ASSERT_NE(seq, nullptr);
  ASSERT_EQ(seq->size(), 3u);
  Timestamp prev = kNoTimestamp;
  for (FactId id : *seq) {
    EXPECT_GE(g_.fact(id).time, prev);
    prev = g_.fact(id).time;
  }
  // Reverse pair never interacted.
  EXPECT_EQ(g_.FactsForPair(usa, obama), nullptr);
}

TEST_F(GraphFixture, SubjectAndObjectIndexes) {
  EntityId china = *g_.entity_dict().TryGet("china");
  EntityId iran = *g_.entity_dict().TryGet("iran");
  ASSERT_NE(g_.FactsBySubject(china), nullptr);
  EXPECT_EQ(g_.FactsBySubject(china)->size(), 2u);
  ASSERT_NE(g_.FactsByObject(iran), nullptr);
  EXPECT_EQ(g_.FactsByObject(iran)->size(), 2u);
}

TEST_F(GraphFixture, RelationTokensAreDirectional) {
  EntityId obama = *g_.entity_dict().TryGet("obama");
  EntityId usa = *g_.entity_dict().TryGet("usa");
  RelationId win = *g_.relation_dict().TryGet("win_election");
  EXPECT_TRUE(g_.RelationTokens(obama).count(OutRelationToken(win)));
  EXPECT_FALSE(g_.RelationTokens(obama).count(InRelationToken(win)));
  EXPECT_TRUE(g_.RelationTokens(usa).count(InRelationToken(win)));
}

TEST_F(GraphFixture, MembershipQueries) {
  EntityId obama = *g_.entity_dict().TryGet("obama");
  EntityId usa = *g_.entity_dict().TryGet("usa");
  RelationId win = *g_.relation_dict().TryGet("win_election");
  EXPECT_TRUE(g_.Contains(Fact(obama, win, usa, 100)));
  EXPECT_FALSE(g_.Contains(Fact(obama, win, usa, 101)));
  EXPECT_TRUE(g_.ContainsTriple(obama, win, usa));
  EXPECT_EQ(g_.TripleCount(obama, win, usa), 1u);
  EXPECT_EQ(g_.TripleCount(usa, win, obama), 0u);
}

TEST_F(GraphFixture, NamesRoundTrip) {
  EntityId obama = *g_.entity_dict().TryGet("obama");
  EXPECT_EQ(g_.EntityName(obama), "obama");
  // Fallback names for ids beyond the dictionary.
  EXPECT_EQ(g_.EntityName(900), "E900");
  EXPECT_EQ(g_.RelationName(900), "R900");
}

TEST(GraphTest, OutOfOrderInsertKeepsPairSequenceSorted) {
  TemporalKnowledgeGraph g;
  g.AddFact("a", "r", "b", 50);
  g.AddFact("a", "r2", "b", 10);
  g.AddFact("a", "r3", "b", 30);
  EntityId a = *g.entity_dict().TryGet("a");
  EntityId b = *g.entity_dict().TryGet("b");
  const auto* seq = g.FactsForPair(a, b);
  ASSERT_EQ(seq->size(), 3u);
  EXPECT_EQ(g.fact((*seq)[0]).time, 10);
  EXPECT_EQ(g.fact((*seq)[1]).time, 30);
  EXPECT_EQ(g.fact((*seq)[2]).time, 50);
}

TEST(GraphTest, DurationFactsDetected) {
  TemporalKnowledgeGraph g;
  g.AddFact("bill", "married_to", "melinda", 100, 400);
  EXPECT_TRUE(g.has_durations());
  EXPECT_EQ(g.fact(0).end, 400);
}

TEST(GraphTest, DuplicateFactsAllowedAndCounted) {
  TemporalKnowledgeGraph g;
  g.AddFact("a", "r", "b", 1);
  g.AddFact("a", "r", "b", 1);
  EXPECT_EQ(g.num_facts(), 2u);
  EntityId a = *g.entity_dict().TryGet("a");
  EntityId b = *g.entity_dict().TryGet("b");
  RelationId r = *g.relation_dict().TryGet("r");
  EXPECT_EQ(g.TripleCount(a, r, b), 2u);
}

// ---------------------------------------------------------------- Loader

TEST(LoaderTest, ParseTimeIntegerAndIsoDate) {
  EXPECT_EQ(TkgIo::ParseTime("12345").value(), 12345);
  EXPECT_EQ(TkgIo::ParseTime("-7").value(), -7);
  // 1970-01-01 is day 0; 1970-01-02 is day 1.
  EXPECT_EQ(TkgIo::ParseTime("1970-01-01").value(), 0);
  EXPECT_EQ(TkgIo::ParseTime("1970-01-02").value(), 1);
  // A known anchor: 2000-03-01 is day 11017.
  EXPECT_EQ(TkgIo::ParseTime("2000-03-01").value(), 11017);
  EXPECT_FALSE(TkgIo::ParseTime("not-a-date").ok());
  EXPECT_FALSE(TkgIo::ParseTime("").ok());
  EXPECT_FALSE(TkgIo::ParseTime("2020-13-01").ok());
}

TEST(LoaderTest, ParseTimeRejectsImpossibleCalendarDates) {
  // Regression: DaysFromCivil silently normalizes day-of-month overflow
  // (2023-02-31 -> 2023-03-03), so these used to load "successfully" at
  // a timestamp not present in the source data.
  EXPECT_FALSE(TkgIo::ParseTime("2023-02-31").ok());
  EXPECT_FALSE(TkgIo::ParseTime("2023-02-30").ok());
  EXPECT_FALSE(TkgIo::ParseTime("2021-04-31").ok());  // April has 30 days
  EXPECT_FALSE(TkgIo::ParseTime("2023-02-29").ok());  // not a leap year
  EXPECT_FALSE(TkgIo::ParseTime("1900-02-29").ok());  // century non-leap
  // The valid leap-day neighbors stay accepted.
  EXPECT_TRUE(TkgIo::ParseTime("2024-02-29").ok());   // leap year
  EXPECT_TRUE(TkgIo::ParseTime("2000-02-29").ok());   // 400-year leap
  EXPECT_TRUE(TkgIo::ParseTime("2023-02-28").ok());
  EXPECT_TRUE(TkgIo::ParseTime("2021-04-30").ok());
  EXPECT_TRUE(TkgIo::ParseTime("2023-12-31").ok());
  // Leap-day arithmetic stays exact: 2024-02-29 and 2024-03-01 are
  // adjacent days.
  EXPECT_EQ(TkgIo::ParseTime("2024-03-01").value(),
            TkgIo::ParseTime("2024-02-29").value() + 1);
}

TEST(LoaderTest, RejectsImpossibleDateInTsvRow) {
  auto dir = std::filesystem::temp_directory_path();
  auto path = (dir / "anot_loader_baddate.tsv").string();
  {
    std::ofstream out(path);
    out << "a\tr\tb\t2023-02-31\n";
  }
  auto loaded = TkgIo::LoadTsv(path);
  EXPECT_FALSE(loaded.ok());
  std::filesystem::remove(path);
}

TEST(LoaderTest, LoadTsvGoldenIdsAndTimestamps) {
  // Golden check that the container overhaul (pre-sizing, dense indexes,
  // transparent interning) left loader semantics untouched: ids are
  // assigned in first-seen order and timestamps parse to the same values.
  auto dir = std::filesystem::temp_directory_path();
  auto path = (dir / "anot_loader_golden.tsv").string();
  {
    std::ofstream out(path);
    out << "# comment line\n"
        << "obama\twin_election\tusa\t1970-01-02\n"
        << "china\thost_visit\tiran\t12\n"
        << "obama\tpresident_of\tusa\t15\n";
  }
  auto loaded = TkgIo::LoadTsv(path);
  ASSERT_TRUE(loaded.ok());
  const TemporalKnowledgeGraph& g = *loaded.value();
  ASSERT_EQ(g.num_facts(), 3u);
  // Entity ids in first-seen order: obama=0, usa=1, china=2, iran=3.
  EXPECT_EQ(*g.entity_dict().TryGet("obama"), 0u);
  EXPECT_EQ(*g.entity_dict().TryGet("usa"), 1u);
  EXPECT_EQ(*g.entity_dict().TryGet("china"), 2u);
  EXPECT_EQ(*g.entity_dict().TryGet("iran"), 3u);
  EXPECT_EQ(*g.relation_dict().TryGet("win_election"), 0u);
  EXPECT_EQ(*g.relation_dict().TryGet("host_visit"), 1u);
  EXPECT_EQ(*g.relation_dict().TryGet("president_of"), 2u);
  EXPECT_EQ(g.fact(0), Fact(0, 0, 1, 1));  // 1970-01-02 == day 1
  EXPECT_EQ(g.fact(1), Fact(2, 1, 3, 12));
  EXPECT_EQ(g.fact(2), Fact(0, 2, 1, 15));
  g.CheckInvariants();
  std::filesystem::remove(path);
}

TEST(LoaderTest, QuadrupleRoundTrip) {
  auto dir = std::filesystem::temp_directory_path();
  auto path = (dir / "anot_loader_quad.tsv").string();
  TemporalKnowledgeGraph g;
  g.AddFact("s1", "r1", "o1", 3);
  g.AddFact("s2", "r1", "o2", 5);
  ASSERT_TRUE(TkgIo::SaveTsv(g, path).ok());

  auto loaded = TkgIo::LoadTsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value()->num_facts(), 2u);
  EXPECT_EQ(loaded.value()->fact(0).time, 3);
  EXPECT_FALSE(loaded.value()->has_durations());
  std::filesystem::remove(path);
}

TEST(LoaderTest, QuintupleRoundTrip) {
  auto dir = std::filesystem::temp_directory_path();
  auto path = (dir / "anot_loader_quint.tsv").string();
  TemporalKnowledgeGraph g;
  g.AddFact("s1", "married_to", "o1", 3, 9);
  ASSERT_TRUE(TkgIo::SaveTsv(g, path).ok());

  auto loaded = TkgIo::LoadTsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value()->has_durations());
  EXPECT_EQ(loaded.value()->fact(0).end, 9);
  std::filesystem::remove(path);
}

TEST(LoaderTest, RejectsBadArity) {
  auto dir = std::filesystem::temp_directory_path();
  auto path = (dir / "anot_loader_bad.tsv").string();
  {
    std::ofstream out(path);
    out << "a\tb\tc\n";
  }
  EXPECT_FALSE(TkgIo::LoadTsv(path).ok());
  std::filesystem::remove(path);
}

TEST(LoaderTest, ParseTimeRejectsNonCanonicalFields) {
  // Regression: strtoll accepted whitespace, '+', and trailing junk —
  // encodings a canonical SaveTsv never writes — and silently clamped
  // out-of-range values to LLONG_MAX.
  EXPECT_FALSE(TkgIo::ParseTime(" 12").ok());
  EXPECT_FALSE(TkgIo::ParseTime("12 ").ok());
  EXPECT_FALSE(TkgIo::ParseTime("+5").ok());
  EXPECT_FALSE(TkgIo::ParseTime("1e5").ok());
  EXPECT_FALSE(TkgIo::ParseTime("0x10").ok());
  EXPECT_FALSE(TkgIo::ParseTime("-").ok());
  EXPECT_FALSE(TkgIo::ParseTime("--5").ok());
  EXPECT_FALSE(TkgIo::ParseTime("12\t").ok());
  // Date components are held to the same strictness.
  EXPECT_FALSE(TkgIo::ParseTime("2020- 1-01").ok());
  EXPECT_FALSE(TkgIo::ParseTime("2020-+1-01").ok());
  EXPECT_FALSE(TkgIo::ParseTime(" 2020-01-01").ok());
  EXPECT_FALSE(TkgIo::ParseTime("2020-01-01 ").ok());
  // Leading zeros are canonical in dates ("01") and stay accepted.
  EXPECT_EQ(TkgIo::ParseTime("007").value(), 7);
}

TEST(LoaderTest, ParseTimeOverflowIsAnErrorNotAClamp) {
  // Exact int64 bounds round-trip for ticks...
  EXPECT_EQ(TkgIo::ParseTime("9223372036854775807").value(),
            std::numeric_limits<int64_t>::max());
  EXPECT_EQ(TkgIo::ParseTime("-9223372036854775808").value(),
            std::numeric_limits<int64_t>::min());
  // ...one past them is an error (strtoll used to clamp).
  EXPECT_FALSE(TkgIo::ParseTime("9223372036854775808").ok());
  EXPECT_FALSE(TkgIo::ParseTime("-9223372036854775809").ok());
  EXPECT_FALSE(TkgIo::ParseTime("99999999999999999999999").ok());
  // Years are capped well below the point where the civil-days
  // conversion's era arithmetic could overflow.
  EXPECT_TRUE(TkgIo::ParseTime("1000000000-01-01").ok());
  EXPECT_FALSE(TkgIo::ParseTime("1000000001-01-01").ok());
  EXPECT_FALSE(TkgIo::ParseTime("9223372036854775807-01-01").ok());
}

TEST(LoaderTest, SaveTsvRejectsNamesThatCannotRoundTrip) {
  // Regression: a tab inside a name used to split the row into extra
  // columns and a leading '#' on the subject made the reloaded line a
  // comment — both silently corrupted the round trip. Now rejected with
  // InvalidArgument before anything is written.
  auto dir = std::filesystem::temp_directory_path();
  auto path = (dir / "anot_loader_advname.tsv").string();

  const auto expect_rejected = [&](const TemporalKnowledgeGraph& g) {
    const Status st = TkgIo::SaveTsv(g, path);
    EXPECT_FALSE(st.ok());
    EXPECT_FALSE(std::filesystem::exists(path)) << st.message();
  };

  TemporalKnowledgeGraph tab_in_entity;
  tab_in_entity.AddFact("a\tb", "r", "c", 1);
  expect_rejected(tab_in_entity);

  TemporalKnowledgeGraph newline_in_object;
  newline_in_object.AddFact("a", "r", "c\nd", 1);
  expect_rejected(newline_in_object);

  TemporalKnowledgeGraph cr_in_relation;
  cr_in_relation.AddFact("a", "r\r", "c", 1);
  expect_rejected(cr_in_relation);

  TemporalKnowledgeGraph comment_subject;
  comment_subject.AddFact("#a", "r", "c", 1);
  expect_rejected(comment_subject);

  // '#' is only special at the start of a line: as an object (or inside a
  // name) it round-trips fine.
  TemporalKnowledgeGraph hash_elsewhere;
  hash_elsewhere.AddFact("a#b", "r#", "#c", 7);
  ASSERT_TRUE(TkgIo::SaveTsv(hash_elsewhere, path).ok());
  auto loaded = TkgIo::LoadTsv(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value()->num_facts(), 1u);
  EXPECT_EQ(loaded.value()->EntityName(loaded.value()->fact(0).object),
            "#c");
  std::filesystem::remove(path);
}

TEST(LoaderTest, RejectsEndBeforeStart) {
  auto dir = std::filesystem::temp_directory_path();
  auto path = (dir / "anot_loader_rev.tsv").string();
  {
    std::ofstream out(path);
    out << "a\tr\tb\t9\t3\n";
  }
  EXPECT_FALSE(TkgIo::LoadTsv(path).ok());
  std::filesystem::remove(path);
}

// ----------------------------------------------------------------- Split

TEST(SplitTest, PartitionsByDistinctTimestamps) {
  TemporalKnowledgeGraph g;
  // Ten distinct timestamps, two facts each.
  for (Timestamp t = 0; t < 10; ++t) {
    g.AddFact("a" + std::to_string(t), "r", "b", t);
    g.AddFact("c" + std::to_string(t), "r", "d", t);
  }
  TimeSplit split = SplitByTimestamps(g, 0.6, 0.1);
  EXPECT_EQ(split.train.size(), 12u);  // 6 timestamps
  EXPECT_EQ(split.val.size(), 2u);     // 1 timestamp
  EXPECT_EQ(split.test.size(), 6u);    // 3 timestamps
  EXPECT_EQ(split.train_end, 5);
  EXPECT_EQ(split.val_end, 6);
  // Every train fact precedes every test fact in time.
  for (FactId tr : split.train) {
    for (FactId te : split.test) {
      EXPECT_LT(g.fact(tr).time, g.fact(te).time);
    }
  }
}

TEST(SplitTest, SubgraphPreservesSymbolsAndOrder) {
  TemporalKnowledgeGraph g;
  g.AddFact("x", "r", "y", 5);
  g.AddFact("y", "r", "z", 2);
  auto sub = Subgraph(g, {0, 1});
  EXPECT_EQ(sub->num_facts(), 2u);
  // Sorted by time inside the subgraph.
  EXPECT_EQ(sub->fact(0).time, 2);
  EXPECT_EQ(sub->fact(1).time, 5);
  // Same symbol table: "x" has the same id.
  EXPECT_EQ(*sub->entity_dict().TryGet("x"), *g.entity_dict().TryGet("x"));
}

// ----------------------------------------------------------------- Stats

TEST(StatsTest, ComputesTable1Columns) {
  TemporalKnowledgeGraph g;
  g.AddFact("a", "r1", "b", 0);
  g.AddFact("a", "r1", "b", 1);
  g.AddFact("c", "r2", "d", 1);
  TkgStats stats = ComputeStats(g);
  EXPECT_EQ(stats.num_entities, 4u);
  EXPECT_EQ(stats.num_relations, 2u);
  EXPECT_EQ(stats.num_timestamps, 2u);
  EXPECT_EQ(stats.num_facts, 3u);
  EXPECT_DOUBLE_EQ(stats.mean_facts_per_timestamp, 1.5);
  EXPECT_DOUBLE_EQ(stats.mean_pair_sequence_length, 1.5);
  EXPECT_FALSE(stats.ToString().empty());
}

}  // namespace
}  // namespace anot
