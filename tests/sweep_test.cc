#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "baselines/registry.h"
#include "datagen/generator.h"
#include "eval/protocol.h"
#include "eval/report.h"
#include "eval/sweep.h"
#include "tkg/split.h"

namespace anot {
namespace {

/// The sweep's contract is *byte*-identity of every metric field against
/// the reference serial loop; timing fields (fit/test seconds,
/// throughput, latency percentiles) are the only ones allowed to differ.
void ExpectSameMetrics(const EvalResult& expected, const EvalResult& actual) {
  EXPECT_EQ(expected.model, actual.model);
  EXPECT_EQ(expected.dataset, actual.dataset);
  EXPECT_EQ(expected.score_batch_size, actual.score_batch_size);
  auto expect_task = [](const TaskResult& e, const TaskResult& a,
                        const char* task) {
    EXPECT_EQ(e.precision, a.precision) << task;
    EXPECT_EQ(e.f_beta, a.f_beta) << task;
    EXPECT_EQ(e.pr_auc, a.pr_auc) << task;
  };
  expect_task(expected.conceptual, actual.conceptual, "conceptual");
  expect_task(expected.time, actual.time, "time");
  expect_task(expected.missing, actual.missing, "missing");
}

struct TestWorkload {
  std::unique_ptr<TemporalKnowledgeGraph> graph;
  TimeSplit split;
  std::string name;
};

class SweepTest : public ::testing::Test {
 protected:
  // One (workload, model) grid of ten cells, mixing deterministic
  // (F-FADE, DynAnom) and stochastic (DE, TA, TADDY) models over two
  // distinct shared-const worlds.
  static constexpr size_t kNumCells = 10;
  static constexpr const char* kModels[5] = {"F-FADE", "DynAnom", "DE",
                                             "TA", "TADDY"};

  static void SetUpTestSuite() {
    workloads_ = new std::vector<TestWorkload>();
    for (int i = 0; i < 2; ++i) {
      GeneratorConfig cfg;
      cfg.num_entities = 100;
      cfg.num_relations = 12;
      cfg.num_timestamps = 60;
      cfg.num_facts = 1000;
      cfg.num_categories = 4;
      cfg.num_chain_rules = 3;
      cfg.num_triadic_rules = 1;
      cfg.seed = 71 + i;
      SyntheticGenerator gen(cfg);
      TestWorkload w;
      w.graph = gen.Generate();
      w.split = SplitByTimestamps(*w.graph, 0.6, 0.1);
      w.name = "world" + std::to_string(i);
      workloads_->push_back(std::move(w));
    }
    // The reference: the pre-sweep serial harness loop, one model at a
    // time on the calling thread.
    reference_ = new std::vector<EvalResult>();
    for (size_t i = 0; i < kNumCells; ++i) {
      const TestWorkload& w = (*workloads_)[i / 5];
      auto model = MakeBaseline(kModels[i % 5]).MoveValue();
      EvalResult r =
          RunProtocol(*w.graph, w.split, model.get(), ProtocolOptions{});
      r.dataset = w.name;
      reference_->push_back(std::move(r));
    }
  }

  static void TearDownTestSuite() {
    delete reference_;
    delete workloads_;
    reference_ = nullptr;
    workloads_ = nullptr;
  }

  /// Cell i of the canonical ten-cell grid.
  static SweepCell CellAt(size_t i) {
    const TestWorkload& w = (*workloads_)[i / 5];
    const std::string name = kModels[i % 5];
    SweepCell cell;
    cell.graph = w.graph.get();
    cell.split = &w.split;
    cell.protocol = ProtocolOptions{};
    cell.dataset = w.name;
    cell.label = name;
    cell.factory = [name] { return MakeBaseline(name); };
    return cell;
  }

  static SweepSpec SpecWith(size_t num_cells, size_t num_threads) {
    SweepSpec spec;
    spec.num_threads = num_threads;
    for (size_t i = 0; i < num_cells; ++i) spec.cells.push_back(CellAt(i));
    return spec;
  }

  static std::vector<TestWorkload>* workloads_;
  static std::vector<EvalResult>* reference_;
};

std::vector<TestWorkload>* SweepTest::workloads_ = nullptr;
std::vector<EvalResult>* SweepTest::reference_ = nullptr;
constexpr const char* SweepTest::kModels[5];

TEST_F(SweepTest, MatchesSerialReferenceAcrossThreadAndCellCounts) {
  for (size_t threads : {1u, 2u, 4u}) {
    for (size_t cells : {1u, 3u, 10u}) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " cells=" + std::to_string(cells));
      const SweepResult sweep = RunSweep(SpecWith(cells, threads));
      EXPECT_EQ(sweep.num_threads, threads);
      ASSERT_EQ(sweep.cells.size(), cells);
      EXPECT_EQ(sweep.num_failed(), 0u);
      for (size_t i = 0; i < cells; ++i) {
        SCOPED_TRACE("cell=" + std::to_string(i));
        ASSERT_TRUE(sweep.cells[i].status.ok())
            << sweep.cells[i].status.ToString();
        ExpectSameMetrics((*reference_)[i], sweep.cells[i].result);
        EXPECT_EQ(sweep.cells[i].label, kModels[i % 5]);
        EXPECT_EQ(sweep.cells[i].dataset, (*workloads_)[i / 5].name);
      }
      // Results() preserves declared cell order.
      const std::vector<EvalResult> results = sweep.Results();
      ASSERT_EQ(results.size(), cells);
      for (size_t i = 0; i < cells; ++i) {
        EXPECT_EQ(results[i].model, (*reference_)[i].model);
      }
    }
  }
}

TEST_F(SweepTest, FailedFactoryCellDoesNotPoisonOthers) {
  SweepSpec spec = SpecWith(kNumCells, 4);
  // An unknown registry name: the factory itself reports the error.
  spec.cells[4].label = "nope";
  spec.cells[4].factory = [] { return MakeBaseline("nope"); };
  const SweepResult sweep = RunSweep(spec);
  ASSERT_EQ(sweep.cells.size(), kNumCells);
  EXPECT_EQ(sweep.num_failed(), 1u);
  EXPECT_FALSE(sweep.cells[4].status.ok());
  EXPECT_EQ(sweep.cells[4].status.code(), StatusCode::kNotFound);
  for (size_t i = 0; i < kNumCells; ++i) {
    if (i == 4) continue;
    SCOPED_TRACE("cell=" + std::to_string(i));
    ASSERT_TRUE(sweep.cells[i].status.ok());
    ExpectSameMetrics((*reference_)[i], sweep.cells[i].result);
  }
  // Results() drops the failed cell but keeps declared order.
  const std::vector<EvalResult> results = sweep.Results();
  ASSERT_EQ(results.size(), kNumCells - 1);
  for (size_t i = 0, k = 0; i < kNumCells; ++i) {
    if (i == 4) continue;
    EXPECT_EQ(results[k++].model, (*reference_)[i].model);
  }
}

TEST_F(SweepTest, ThrowingFactoryIsSurfacedAsInternalError) {
  SweepSpec spec = SpecWith(3, 2);
  spec.cells[1].factory =
      []() -> Result<std::unique_ptr<AnomalyModel>> {
    throw std::runtime_error("boom");
  };
  const SweepResult sweep = RunSweep(spec);
  EXPECT_EQ(sweep.num_failed(), 1u);
  EXPECT_EQ(sweep.cells[1].status.code(), StatusCode::kInternal);
  EXPECT_NE(sweep.cells[1].status.message().find("boom"), std::string::npos);
  ExpectSameMetrics((*reference_)[0], sweep.cells[0].result);
  ExpectSameMetrics((*reference_)[2], sweep.cells[2].result);
}

TEST_F(SweepTest, MisconfiguredCellsAreInvalidArgument) {
  SweepSpec spec = SpecWith(2, 1);
  spec.cells[0].graph = nullptr;    // no workload
  spec.cells[1].factory = nullptr;  // no factory
  const SweepResult sweep = RunSweep(spec);
  EXPECT_EQ(sweep.num_failed(), 2u);
  EXPECT_EQ(sweep.cells[0].status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(sweep.cells[1].status.code(), StatusCode::kInvalidArgument);
}

TEST_F(SweepTest, TimingAndSpeedupArePopulated) {
  const SweepResult sweep = RunSweep(SpecWith(3, 2));
  EXPECT_GT(sweep.wall_seconds, 0.0);
  EXPECT_GT(sweep.serial_seconds, 0.0);
  EXPECT_GT(sweep.Speedup(), 0.0);
  for (const SweepCellResult& cell : sweep.cells) {
    EXPECT_GT(cell.cell_seconds, 0.0);
  }
  const std::string rendered = Reporter::RenderSweepTiming(sweep);
  EXPECT_NE(rendered.find("sweep: 3 cells"), std::string::npos);
  EXPECT_NE(rendered.find("F-FADE"), std::string::npos);
}

TEST_F(SweepTest, EmptySweepIsANoOp) {
  const SweepResult sweep = RunSweep(SweepSpec{});
  EXPECT_TRUE(sweep.cells.empty());
  EXPECT_EQ(sweep.num_failed(), 0u);
  EXPECT_TRUE(sweep.Results().empty());
}

}  // namespace
}  // namespace anot
