#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "baselines/registry.h"
#include "datagen/generator.h"
#include "eval/metrics.h"
#include "eval/protocol.h"
#include "nn/nn.h"
#include "tkg/split.h"
#include "util/thread_pool.h"

namespace anot {
namespace {

// --------------------------------------------------------------------- nn

TEST(EmbeddingTableTest, InitAndLookup) {
  Rng rng(5);
  EmbeddingTable table(10, 4, 0.5, &rng);
  EXPECT_EQ(table.rows(), 10u);
  EXPECT_EQ(table.dim(), 4u);
  const float* row = table.Row(3);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_LE(std::abs(row[i]), 0.5f);
  }
}

TEST(EmbeddingTableTest, GrowsLazily) {
  Rng rng(5);
  EmbeddingTable table(2, 4, 0.5, &rng);
  table.Row(10);
  EXPECT_GE(table.rows(), 11u);
}

TEST(EmbeddingTableTest, UpdateMovesAgainstGradient) {
  Rng rng(5);
  EmbeddingTable table(1, 2, 0.5, &rng);
  const float before = table.Row(0)[0];
  table.Update(0, {1.0f, 0.0f}, 0.1f);
  EXPECT_LT(table.Row(0)[0], before);
}

TEST(MlpTest, LearnsLinearlySeparableData) {
  Mlp mlp(2, 8, 7);
  Rng rng(9);
  for (int step = 0; step < 4000; ++step) {
    const float x = static_cast<float>(rng.UniformDouble() * 2 - 1);
    const float y = static_cast<float>(rng.UniformDouble() * 2 - 1);
    mlp.TrainStep({x, y}, x + y > 0 ? 1.0f : 0.0f, 0.05f);
  }
  int correct = 0;
  for (int i = 0; i < 200; ++i) {
    const float x = static_cast<float>(rng.UniformDouble() * 2 - 1);
    const float y = static_cast<float>(rng.UniformDouble() * 2 - 1);
    const bool predicted = mlp.Forward({x, y}) > 0;
    correct += (predicted == (x + y > 0));
  }
  EXPECT_GT(correct, 170);
}

TEST(NnTest, SigmoidBounds) {
  EXPECT_NEAR(Sigmoid(0.0f), 0.5f, 1e-6f);
  EXPECT_GT(Sigmoid(20.0f), 0.999f);
  EXPECT_LT(Sigmoid(-20.0f), 0.001f);
}

// ---------------------------------------------------------------- registry

TEST(RegistryTest, AllNineBaselinesConstruct) {
  const auto names = AllBaselineNames();
  ASSERT_EQ(names.size(), 9u);
  for (const auto& name : names) {
    auto model = MakeBaseline(name);
    ASSERT_TRUE(model.ok()) << name;
    EXPECT_EQ(model.value()->name(), name);
    // The seeded overload constructs every name too.
    auto seeded = MakeBaseline(name, BaselineConfig{/*seed=*/12345});
    ASSERT_TRUE(seeded.ok()) << name;
    EXPECT_EQ(seeded.value()->name(), name);
  }
  EXPECT_FALSE(MakeBaseline("GPT").ok());
}

TEST(RegistryTest, UnknownNameIsNotFoundOnBothOverloads) {
  const auto plain = MakeBaseline("nope");
  ASSERT_FALSE(plain.ok());
  EXPECT_EQ(plain.status().code(), StatusCode::kNotFound);
  EXPECT_NE(plain.status().message().find("nope"), std::string::npos);
  const auto seeded = MakeBaseline("nope", BaselineConfig{/*seed=*/7});
  ASSERT_FALSE(seeded.ok());
  EXPECT_EQ(seeded.status().code(), StatusCode::kNotFound);
}

// Golden: the registry order IS the paper's Table 2 row order; the sweep
// harnesses and the comparison tables rely on it.
TEST(RegistryTest, NamesPinTable2RowOrder) {
  const std::vector<std::string> expected = {
      "DE",     "TA",      "Timeplex", "TNT",  "TELM",
      "RE-GCN", "DynAnom", "F-FADE",   "TADDY"};
  EXPECT_EQ(AllBaselineNames(), expected);
}

// ------------------------------------------------------------ behavioural

class BaselineFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    GeneratorConfig cfg;
    cfg.num_entities = 150;
    cfg.num_relations = 20;
    cfg.num_timestamps = 100;
    cfg.num_facts = 4000;
    cfg.num_categories = 5;
    cfg.num_chain_rules = 4;
    cfg.num_triadic_rules = 2;
    cfg.seed = 51;
    gen_ = new SyntheticGenerator(cfg);
    graph_ = gen_->Generate().release();
    split_ = new TimeSplit(SplitByTimestamps(*graph_, 0.6, 0.1));
    train_ = Subgraph(*graph_, split_->train).release();
  }
  static void TearDownTestSuite() {
    delete train_;
    delete split_;
    delete graph_;
    delete gen_;
    train_ = nullptr;
    split_ = nullptr;
    graph_ = nullptr;
    gen_ = nullptr;
  }

  /// Trains `name` and checks the conceptual task beats random ranking.
  static double ConceptualAuc(const std::string& name) {
    auto model = MakeBaseline(name).MoveValue();
    model->Fit(*train_);
    Rng rng(1234);
    std::vector<ScoredExample> examples;
    for (FactId id : split_->test) {
      const Fact& f = graph_->fact(id);
      examples.push_back({model->Score(f).conceptual, false});
      // Corrupted counterpart.
      Fact neg = f;
      neg.object = static_cast<EntityId>(rng.Uniform(graph_->num_entities()));
      if (neg.object == neg.subject) neg.object = (neg.object + 1) % 150;
      examples.push_back({model->Score(neg).conceptual, true});
    }
    return PrAuc(examples);
  }

  static SyntheticGenerator* gen_;
  static TemporalKnowledgeGraph* graph_;
  static TimeSplit* split_;
  static TemporalKnowledgeGraph* train_;
};

SyntheticGenerator* BaselineFixture::gen_ = nullptr;
TemporalKnowledgeGraph* BaselineFixture::graph_ = nullptr;
TimeSplit* BaselineFixture::split_ = nullptr;
TemporalKnowledgeGraph* BaselineFixture::train_ = nullptr;

// Base rate of the corrupted-vs-valid task is 0.5; every baseline must
// clear it by a margin (they all model plausibility somehow).
TEST_F(BaselineFixture, DeBeatsRandomOnConceptual) {
  EXPECT_GT(ConceptualAuc("DE"), 0.6);
}
TEST_F(BaselineFixture, TaBeatsRandomOnConceptual) {
  EXPECT_GT(ConceptualAuc("TA"), 0.6);
}
TEST_F(BaselineFixture, TntBeatsRandomOnConceptual) {
  EXPECT_GT(ConceptualAuc("TNT"), 0.6);
}
TEST_F(BaselineFixture, TimeplexBeatsRandomOnConceptual) {
  EXPECT_GT(ConceptualAuc("Timeplex"), 0.6);
}
TEST_F(BaselineFixture, TelmBeatsRandomOnConceptual) {
  EXPECT_GT(ConceptualAuc("TELM"), 0.6);
}
TEST_F(BaselineFixture, RegcnBeatsRandomOnConceptual) {
  EXPECT_GT(ConceptualAuc("RE-GCN"), 0.55);
}
TEST_F(BaselineFixture, DynAnomBeatsRandomOnConceptual) {
  EXPECT_GT(ConceptualAuc("DynAnom"), 0.55);
}
// F-FADE's frequency channels are weak on conceptual errors — matching
// the paper (Table 2: 0.509-0.627 AUC across datasets).
TEST_F(BaselineFixture, FFadeIsNearRandomOnConceptualAsInPaper) {
  const double auc = ConceptualAuc("F-FADE");
  EXPECT_GT(auc, 0.42);
  EXPECT_LT(auc, 0.8);
}
// TADDY's anonymized structural features barely beat chance on event-KG
// conceptual errors — matching the paper (Table 2: 0.508 AUC on ICEWS14).
TEST_F(BaselineFixture, TaddyIsNearRandomOnConceptualAsInPaper) {
  const double auc = ConceptualAuc("TADDY");
  EXPECT_GT(auc, 0.42);
  EXPECT_LT(auc, 0.75);
}

TEST_F(BaselineFixture, ObserveValidUpdatesOnlineModels) {
  auto model = MakeBaseline("F-FADE").MoveValue();
  model->Fit(*train_);
  // A brand-new pair interacting repeatedly becomes less surprising.
  Fact f(0, 0, 149, train_->max_time() + 1);
  const double before = model->Score(f).conceptual;
  for (int i = 0; i < 6; ++i) {
    Fact seen = f;
    seen.time = f.time + i;
    model->ObserveValid(seen);
  }
  Fact later = f;
  later.time = f.time + 7;
  EXPECT_LT(model->Score(later).conceptual, before);
}

TEST_F(BaselineFixture, MissingScoreIsNegatedAnomaly) {
  auto model = MakeBaseline("DE").MoveValue();
  model->Fit(*train_);
  const Fact& f = graph_->fact(split_->test.front());
  auto s = model->Score(f);
  EXPECT_DOUBLE_EQ(s.missing, -s.conceptual);
}

// ------------------------------------------------------------ determinism
//
// The experiment sweep runs one model per pool worker against a shared
// const workload; its byte-identity guarantee rests on (a) every model
// being a pure function of (train graph, seed) and (b) Fit reading the
// graph through const accessors only. Both are pinned here, on a smaller
// world than the AUC fixture so the 9-model matrix stays cheap.

class BaselineDeterminismFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    GeneratorConfig cfg;
    cfg.num_entities = 100;
    cfg.num_relations = 12;
    cfg.num_timestamps = 60;
    cfg.num_facts = 1500;
    cfg.num_categories = 4;
    cfg.num_chain_rules = 3;
    cfg.num_triadic_rules = 1;
    cfg.seed = 81;
    SyntheticGenerator gen(cfg);
    graph_ = gen.Generate().release();
    split_ = new TimeSplit(SplitByTimestamps(*graph_, 0.6, 0.1));
    train_ = Subgraph(*graph_, split_->train).release();
    // Probe set: test-window facts plus corrupted counterparts, so both
    // on-manifold and off-manifold scores are compared.
    probes_ = new std::vector<Fact>();
    Rng rng(4321);
    for (size_t i = 0; i < split_->test.size() && probes_->size() < 40;
         i += 7) {
      const Fact& f = graph_->fact(split_->test[i]);
      probes_->push_back(f);
      Fact neg = f;
      neg.object =
          static_cast<EntityId>(rng.Uniform(graph_->num_entities()));
      probes_->push_back(neg);
    }
  }

  static void TearDownTestSuite() {
    delete probes_;
    delete train_;
    delete split_;
    delete graph_;
    probes_ = nullptr;
    train_ = nullptr;
    split_ = nullptr;
    graph_ = nullptr;
  }

  /// Fits a fresh model (seed 0 = the paper default) on the shared const
  /// train graph and flattens the probe scores for exact comparison.
  static std::vector<double> FitAndScore(const std::string& name,
                                         uint64_t seed) {
    auto model = MakeBaseline(name, BaselineConfig{seed}).MoveValue();
    model->Fit(*train_);
    std::vector<double> out;
    out.reserve(probes_->size() * 3);
    for (const Fact& f : *probes_) {
      const auto s = model->Score(f);
      out.push_back(s.conceptual);
      out.push_back(s.time);
      out.push_back(s.missing);
    }
    return out;
  }

  static TemporalKnowledgeGraph* graph_;
  static TimeSplit* split_;
  static TemporalKnowledgeGraph* train_;
  static std::vector<Fact>* probes_;
};

TemporalKnowledgeGraph* BaselineDeterminismFixture::graph_ = nullptr;
TimeSplit* BaselineDeterminismFixture::split_ = nullptr;
TemporalKnowledgeGraph* BaselineDeterminismFixture::train_ = nullptr;
std::vector<Fact>* BaselineDeterminismFixture::probes_ = nullptr;

/// The models whose scores are a function of the graph alone — no RNG in
/// fit — so seed overrides must be no-ops for them.
bool IsSeedFree(const std::string& name) {
  return name == "DynAnom" || name == "F-FADE";
}

TEST_F(BaselineDeterminismFixture, SameSeedRefitsAreBitIdentical) {
  for (const auto& name : AllBaselineNames()) {
    SCOPED_TRACE(name);
    const std::vector<double> first = FitAndScore(name, 0);
    const std::vector<double> second = FitAndScore(name, 0);
    EXPECT_EQ(first, second);
  }
}

TEST_F(BaselineDeterminismFixture, SeedOverridePerturbsStochasticModels) {
  for (const auto& name : AllBaselineNames()) {
    SCOPED_TRACE(name);
    const std::vector<double> default_seed = FitAndScore(name, 0);
    const std::vector<double> other_seed = FitAndScore(name, 1000003);
    if (IsSeedFree(name)) {
      EXPECT_EQ(default_seed, other_seed);
    } else {
      EXPECT_NE(default_seed, other_seed);
    }
  }
}

// Two pool workers fit the same baseline concurrently against one shared
// const graph (the sweep's memory-sharing pattern); both must reproduce
// the serial fit exactly. Run under TSan in CI to guard the const-read
// contract of TemporalKnowledgeGraph.
TEST_F(BaselineDeterminismFixture,
       ConcurrentFitsOnSharedConstGraphMatchSerial) {
  for (const auto& name : AllBaselineNames()) {
    SCOPED_TRACE(name);
    const std::vector<double> serial = FitAndScore(name, 0);
    std::vector<std::vector<double>> concurrent(2);
    ThreadPool pool(2);
    for (size_t t = 0; t < concurrent.size(); ++t) {
      pool.Submit([&concurrent, &name, t] {
        concurrent[t] = FitAndScore(name, 0);
      });
    }
    pool.Wait();
    EXPECT_EQ(concurrent[0], serial);
    EXPECT_EQ(concurrent[1], serial);
  }
}

}  // namespace
}  // namespace anot
