#include <gtest/gtest.h>

#include "baselines/registry.h"
#include "datagen/generator.h"
#include "eval/metrics.h"
#include "eval/protocol.h"
#include "nn/nn.h"
#include "tkg/split.h"

namespace anot {
namespace {

// --------------------------------------------------------------------- nn

TEST(EmbeddingTableTest, InitAndLookup) {
  Rng rng(5);
  EmbeddingTable table(10, 4, 0.5, &rng);
  EXPECT_EQ(table.rows(), 10u);
  EXPECT_EQ(table.dim(), 4u);
  const float* row = table.Row(3);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_LE(std::abs(row[i]), 0.5f);
  }
}

TEST(EmbeddingTableTest, GrowsLazily) {
  Rng rng(5);
  EmbeddingTable table(2, 4, 0.5, &rng);
  table.Row(10);
  EXPECT_GE(table.rows(), 11u);
}

TEST(EmbeddingTableTest, UpdateMovesAgainstGradient) {
  Rng rng(5);
  EmbeddingTable table(1, 2, 0.5, &rng);
  const float before = table.Row(0)[0];
  table.Update(0, {1.0f, 0.0f}, 0.1f);
  EXPECT_LT(table.Row(0)[0], before);
}

TEST(MlpTest, LearnsLinearlySeparableData) {
  Mlp mlp(2, 8, 7);
  Rng rng(9);
  for (int step = 0; step < 4000; ++step) {
    const float x = static_cast<float>(rng.UniformDouble() * 2 - 1);
    const float y = static_cast<float>(rng.UniformDouble() * 2 - 1);
    mlp.TrainStep({x, y}, x + y > 0 ? 1.0f : 0.0f, 0.05f);
  }
  int correct = 0;
  for (int i = 0; i < 200; ++i) {
    const float x = static_cast<float>(rng.UniformDouble() * 2 - 1);
    const float y = static_cast<float>(rng.UniformDouble() * 2 - 1);
    const bool predicted = mlp.Forward({x, y}) > 0;
    correct += (predicted == (x + y > 0));
  }
  EXPECT_GT(correct, 170);
}

TEST(NnTest, SigmoidBounds) {
  EXPECT_NEAR(Sigmoid(0.0f), 0.5f, 1e-6f);
  EXPECT_GT(Sigmoid(20.0f), 0.999f);
  EXPECT_LT(Sigmoid(-20.0f), 0.001f);
}

// ---------------------------------------------------------------- registry

TEST(RegistryTest, AllNineBaselinesConstruct) {
  const auto names = AllBaselineNames();
  ASSERT_EQ(names.size(), 9u);
  for (const auto& name : names) {
    auto model = MakeBaseline(name);
    ASSERT_TRUE(model.ok()) << name;
    EXPECT_EQ(model.value()->name(), name);
  }
  EXPECT_FALSE(MakeBaseline("GPT").ok());
}

// ------------------------------------------------------------ behavioural

class BaselineFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    GeneratorConfig cfg;
    cfg.num_entities = 150;
    cfg.num_relations = 20;
    cfg.num_timestamps = 100;
    cfg.num_facts = 4000;
    cfg.num_categories = 5;
    cfg.num_chain_rules = 4;
    cfg.num_triadic_rules = 2;
    cfg.seed = 51;
    gen_ = new SyntheticGenerator(cfg);
    graph_ = gen_->Generate().release();
    split_ = new TimeSplit(SplitByTimestamps(*graph_, 0.6, 0.1));
    train_ = Subgraph(*graph_, split_->train).release();
  }
  static void TearDownTestSuite() {
    delete train_;
    delete split_;
    delete graph_;
    delete gen_;
    train_ = nullptr;
    split_ = nullptr;
    graph_ = nullptr;
    gen_ = nullptr;
  }

  /// Trains `name` and checks the conceptual task beats random ranking.
  static double ConceptualAuc(const std::string& name) {
    auto model = MakeBaseline(name).MoveValue();
    model->Fit(*train_);
    Rng rng(1234);
    std::vector<ScoredExample> examples;
    for (FactId id : split_->test) {
      const Fact& f = graph_->fact(id);
      examples.push_back({model->Score(f).conceptual, false});
      // Corrupted counterpart.
      Fact neg = f;
      neg.object = static_cast<EntityId>(rng.Uniform(graph_->num_entities()));
      if (neg.object == neg.subject) neg.object = (neg.object + 1) % 150;
      examples.push_back({model->Score(neg).conceptual, true});
    }
    return PrAuc(examples);
  }

  static SyntheticGenerator* gen_;
  static TemporalKnowledgeGraph* graph_;
  static TimeSplit* split_;
  static TemporalKnowledgeGraph* train_;
};

SyntheticGenerator* BaselineFixture::gen_ = nullptr;
TemporalKnowledgeGraph* BaselineFixture::graph_ = nullptr;
TimeSplit* BaselineFixture::split_ = nullptr;
TemporalKnowledgeGraph* BaselineFixture::train_ = nullptr;

// Base rate of the corrupted-vs-valid task is 0.5; every baseline must
// clear it by a margin (they all model plausibility somehow).
TEST_F(BaselineFixture, DeBeatsRandomOnConceptual) {
  EXPECT_GT(ConceptualAuc("DE"), 0.6);
}
TEST_F(BaselineFixture, TaBeatsRandomOnConceptual) {
  EXPECT_GT(ConceptualAuc("TA"), 0.6);
}
TEST_F(BaselineFixture, TntBeatsRandomOnConceptual) {
  EXPECT_GT(ConceptualAuc("TNT"), 0.6);
}
TEST_F(BaselineFixture, TimeplexBeatsRandomOnConceptual) {
  EXPECT_GT(ConceptualAuc("Timeplex"), 0.6);
}
TEST_F(BaselineFixture, TelmBeatsRandomOnConceptual) {
  EXPECT_GT(ConceptualAuc("TELM"), 0.6);
}
TEST_F(BaselineFixture, RegcnBeatsRandomOnConceptual) {
  EXPECT_GT(ConceptualAuc("RE-GCN"), 0.55);
}
TEST_F(BaselineFixture, DynAnomBeatsRandomOnConceptual) {
  EXPECT_GT(ConceptualAuc("DynAnom"), 0.55);
}
// F-FADE's frequency channels are weak on conceptual errors — matching
// the paper (Table 2: 0.509-0.627 AUC across datasets).
TEST_F(BaselineFixture, FFadeIsNearRandomOnConceptualAsInPaper) {
  const double auc = ConceptualAuc("F-FADE");
  EXPECT_GT(auc, 0.42);
  EXPECT_LT(auc, 0.8);
}
// TADDY's anonymized structural features barely beat chance on event-KG
// conceptual errors — matching the paper (Table 2: 0.508 AUC on ICEWS14).
TEST_F(BaselineFixture, TaddyIsNearRandomOnConceptualAsInPaper) {
  const double auc = ConceptualAuc("TADDY");
  EXPECT_GT(auc, 0.42);
  EXPECT_LT(auc, 0.75);
}

TEST_F(BaselineFixture, ObserveValidUpdatesOnlineModels) {
  auto model = MakeBaseline("F-FADE").MoveValue();
  model->Fit(*train_);
  // A brand-new pair interacting repeatedly becomes less surprising.
  Fact f(0, 0, 149, train_->max_time() + 1);
  const double before = model->Score(f).conceptual;
  for (int i = 0; i < 6; ++i) {
    Fact seen = f;
    seen.time = f.time + i;
    model->ObserveValid(seen);
  }
  Fact later = f;
  later.time = f.time + 7;
  EXPECT_LT(model->Score(later).conceptual, before);
}

TEST_F(BaselineFixture, MissingScoreIsNegatedAnomaly) {
  auto model = MakeBaseline("DE").MoveValue();
  model->Fit(*train_);
  const Fact& f = graph_->fact(split_->test.front());
  auto s = model->Score(f);
  EXPECT_DOUBLE_EQ(s.missing, -s.conceptual);
}

}  // namespace
}  // namespace anot
