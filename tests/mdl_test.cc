#include <gtest/gtest.h>

#include <cmath>

#include "mdl/encoding.h"
#include "mdl/ledger.h"

namespace anot {
namespace {

MdlUniverse SmallUniverse() {
  MdlUniverse u;
  u.num_entities = 100;
  u.num_relations = 20;
  u.num_categories = 8;
  u.num_facts = 5000;
  u.num_candidate_rules = 64;
  return u;
}

// ---------------------------------------------------------------- encoding

TEST(EncodingTest, ModelHeaderPositiveAndMonotoneInCategories) {
  MdlUniverse u = SmallUniverse();
  double small = ModelHeaderBits(u);
  EXPECT_GT(small, 0.0);
  u.num_categories = 16;
  EXPECT_GT(ModelHeaderBits(u), small);
}

TEST(EncodingTest, AtomicRuleBitsRareRuleCostsMore) {
  MdlUniverse u = SmallUniverse();
  // Frequent categories and relation -> cheap code.
  double frequent = AtomicRuleBits(u, 1000, 5000, 1000, 5000, 2000);
  double rare = AtomicRuleBits(u, 5, 5000, 5, 5000, 3);
  EXPECT_GT(rare, frequent);
  EXPECT_GT(frequent, 1.0);  // at least direction bit + category id
}

TEST(EncodingTest, RuleEdgeBitsTriadicCostsMoreThanChain) {
  MdlUniverse u = SmallUniverse();
  EXPECT_GT(RuleEdgeBits(u, /*triadic=*/true),
            RuleEdgeBits(u, /*triadic=*/false));
}

TEST(EncodingTest, NegativeErrorZeroWhenFullyExplained) {
  EXPECT_DOUBLE_EQ(NegativeErrorBitsAt(1e9, 1e3, 10, 10, 10), 0.0);
  EXPECT_DOUBLE_EQ(NegativeErrorBitsAt(1e9, 1e3, 0, 0, 0), 0.0);
}

TEST(EncodingTest, NegativeErrorDecreasesWithMapping) {
  const double u1 = 1e9, u2 = 1e3;
  double unmapped = NegativeErrorBitsAt(u1, u2, 10, 0, 0);
  double half_mapped = NegativeErrorBitsAt(u1, u2, 10, 5, 0);
  double mapped = NegativeErrorBitsAt(u1, u2, 10, 10, 0);
  double assoc = NegativeErrorBitsAt(u1, u2, 10, 10, 10);
  EXPECT_GT(unmapped, half_mapped);
  EXPECT_GT(half_mapped, mapped);
  EXPECT_GT(mapped, assoc);
  EXPECT_DOUBLE_EQ(assoc, 0.0);
}

TEST(EncodingTest, MappingSavesMoreThanAssociation) {
  // Tier-1 errors (unmapped) are costlier than tier-2 (unassociated):
  // explaining concepts buys more than explaining order, matching the
  // paper's rules-then-edges selection order.
  const double u1 = 1e9, u2 = 1e3;
  double tier1_saving = NegativeErrorBitsAt(u1, u2, 10, 0, 0) -
                        NegativeErrorBitsAt(u1, u2, 10, 10, 0);
  double tier2_saving = NegativeErrorBitsAt(u1, u2, 10, 10, 0) -
                        NegativeErrorBitsAt(u1, u2, 10, 10, 10);
  EXPECT_GT(tier1_saving, 0.0);
  EXPECT_GT(tier2_saving, 0.0);
  EXPECT_GT(tier1_saving, tier2_saving);
}

// ------------------------------------------------------ EntropyAccumulator

TEST(EntropyTest, UniformSymbolsOneBitEach) {
  EntropyAccumulator acc;
  acc.Add(1);
  acc.Add(2);
  // Two distinct symbols: 2 * H = 2 * 1 bit.
  EXPECT_NEAR(acc.TotalBits(), 2.0, 1e-9);
  acc.Add(1);
  acc.Add(2);
  EXPECT_NEAR(acc.TotalBits(), 4.0, 1e-9);
}

TEST(EntropyTest, SingleSymbolIsFree) {
  EntropyAccumulator acc;
  for (int i = 0; i < 10; ++i) acc.Add(42);
  EXPECT_NEAR(acc.TotalBits(), 0.0, 1e-9);
  EXPECT_EQ(acc.total(), 10u);
}

TEST(EntropyTest, MatchesDirectEntropyComputation) {
  // Distribution {a:3, b:1}: H = 0.811278 bits, total = 4H.
  EntropyAccumulator acc;
  acc.Add(7);
  acc.Add(7);
  acc.Add(7);
  acc.Add(9);
  const double h = -(0.75 * std::log2(0.75) + 0.25 * std::log2(0.25));
  EXPECT_NEAR(acc.TotalBits(), 4.0 * h, 1e-9);
}

TEST(EntropyTest, EmptyIsZero) {
  EntropyAccumulator acc;
  EXPECT_DOUBLE_EQ(acc.TotalBits(), 0.0);
}

TEST(EntropyTest, DropReplayLogAfterMergePreservesTotals) {
  EntropyAccumulator a, b;
  a.Add(1);
  a.Add(2);
  b.Add(2);
  b.Add(2);
  b.Add(3);
  a.Merge(b);
  const double bits_before = a.TotalBits();
  const uint64_t total_before = a.total();
  EXPECT_FALSE(a.replay_log_dropped());
  a.DropReplayLog();
  EXPECT_TRUE(a.replay_log_dropped());
  EXPECT_EQ(a.TotalBits(), bits_before);
  EXPECT_EQ(a.total(), total_before);
  // Counting keeps working after the drop; only replayability is gone.
  a.Add(3);
  EXPECT_EQ(a.total(), total_before + 1);
  EXPECT_GT(a.TotalBits(), 0.0);
}

TEST(EntropyDeathTest, MergeAfterDropIsFatal) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EntropyAccumulator dropped, intact;
  dropped.Add(1);
  dropped.DropReplayLog();
  intact.Add(2);
  // A dropped source cannot be replayed...
  EXPECT_DEATH(intact.Merge(dropped), "DropReplayLog");
  // ...and a dropped target would end up with a partial log.
  EXPECT_DEATH(dropped.Merge(intact), "DropReplayLog");
}

// ------------------------------------------------------------------ Ledger

TEST(LedgerTest, TotalCostTracksTimestamps) {
  NegativeErrorLedger ledger(1e8);
  EXPECT_DOUBLE_EQ(ledger.total_cost(), 0.0);
  ledger.SetTimestampTotal(5, 10);
  EXPECT_GT(ledger.total_cost(), 0.0);
  const double one_ts = ledger.total_cost();
  ledger.SetTimestampTotal(6, 10);
  EXPECT_NEAR(ledger.total_cost(), 2 * one_ts, 1e-6);
}

TEST(LedgerTest, ApplyReducesCost) {
  NegativeErrorLedger ledger(1e8);
  ledger.SetTimestampTotal(1, 10);
  const double before = ledger.total_cost();
  ledger.Apply(1, +5, 0);
  EXPECT_LT(ledger.total_cost(), before);
  EXPECT_EQ(ledger.mapped_at(1), 5u);
  ledger.Apply(1, 0, +5);
  EXPECT_EQ(ledger.associated_at(1), 5u);
}

TEST(LedgerTest, FullExplanationReachesZero) {
  NegativeErrorLedger ledger(1e8);
  ledger.SetTimestampTotal(1, 4);
  ledger.Apply(1, +4, +4);
  EXPECT_NEAR(ledger.total_cost(), 0.0, 1e-9);
}

TEST(LedgerTest, CostDeltaMatchesApply) {
  NegativeErrorLedger ledger(1e8);
  ledger.SetTimestampTotal(1, 10);
  ledger.SetTimestampTotal(2, 8);
  ledger.Apply(1, +2, 0);

  std::unordered_map<Timestamp, NegativeErrorLedger::Delta> deltas;
  deltas[1] = {+3, +1};
  deltas[2] = {+4, 0};
  const double predicted = ledger.CostDelta(deltas);
  const double before = ledger.total_cost();
  ledger.Apply(1, +3, +1);
  ledger.Apply(2, +4, 0);
  EXPECT_NEAR(ledger.total_cost() - before, predicted, 1e-9);
  EXPECT_LT(predicted, 0.0);
}

TEST(LedgerTest, SpanCostDeltaMatchesUnorderedOverloadAndApply) {
  // The span overload (the builder's speculative path) must price a batch
  // exactly like the unordered_map overload and like actually applying it.
  NegativeErrorLedger ledger(1e8);
  ledger.SetTimestampTotal(1, 10);
  ledger.SetTimestampTotal(2, 8);
  ledger.Apply(1, +2, 0);

  std::vector<NegativeErrorLedger::TimestampDelta> span{{1, {+3, +1}},
                                                        {2, {+4, 0}}};
  std::unordered_map<Timestamp, NegativeErrorLedger::Delta> map;
  for (const auto& td : span) map[td.t] = td.d;
  const double predicted = ledger.CostDelta(span);
  EXPECT_NEAR(ledger.CostDelta(map), predicted, 1e-9);

  const double before = ledger.total_cost();
  ledger.Apply(1, +3, +1);
  ledger.Apply(2, +4, 0);
  EXPECT_NEAR(ledger.total_cost() - before, predicted, 1e-9);
}

TEST(LedgerTest, EpochsTrackTimestampMutations) {
  NegativeErrorLedger ledger(1e8);
  EXPECT_EQ(ledger.epoch(), 0u);
  EXPECT_EQ(ledger.epoch_at(7), 0u);
  ledger.SetTimestampTotal(7, 4);
  ledger.SetTimestampTotal(8, 4);
  const uint64_t snapshot = ledger.epoch();
  ledger.Apply(8, +1, 0);
  EXPECT_GT(ledger.epoch(), snapshot);
  EXPECT_GT(ledger.epoch_at(8), snapshot) << "applied timestamp is dirty";
  EXPECT_LE(ledger.epoch_at(7), snapshot) << "untouched timestamp is clean";
  // Previews never advance epochs.
  const uint64_t after_apply = ledger.epoch();
  std::vector<NegativeErrorLedger::TimestampDelta> preview{{7, {+1, 0}}};
  (void)ledger.CostDelta(preview);
  EXPECT_EQ(ledger.epoch(), after_apply);
  EXPECT_EQ(ledger.epoch_at(7), 1u);
}

TEST(LedgerDeathTest, PreviewEnforcesApplyRangeChecks) {
  // Regression: CostDelta used to clamp out-of-range deltas silently
  // while Apply CHECK-failed on them, so an admission previewed as
  // affordable could crash the moment it was applied. Preview and apply
  // now enforce the same invariants.
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  NegativeErrorLedger ledger(1e8);
  ledger.SetTimestampTotal(1, 5);
  ledger.Apply(1, +2, 0);
  std::unordered_map<Timestamp, NegativeErrorLedger::Delta> over_mapped;
  over_mapped[1] = {+4, 0};  // 2 + 4 > total 5
  EXPECT_DEATH((void)ledger.CostDelta(over_mapped), "previewed mapped");
  std::vector<NegativeErrorLedger::TimestampDelta> over_assoc{{1, {+1, +4}}};
  EXPECT_DEATH((void)ledger.CostDelta(over_assoc), "previewed associated");
}

TEST(LedgerTest, CostDeltaIgnoresUnknownTimestamps) {
  NegativeErrorLedger ledger(1e8);
  ledger.SetTimestampTotal(1, 5);
  std::unordered_map<Timestamp, NegativeErrorLedger::Delta> deltas;
  deltas[99] = {+3, 0};
  EXPECT_DOUBLE_EQ(ledger.CostDelta(deltas), 0.0);
}

TEST(LedgerTest, CostAtIsStateless) {
  NegativeErrorLedger ledger(1e8);
  const double a = ledger.CostAt(10, 2, 1);
  ledger.SetTimestampTotal(3, 10);
  ledger.Apply(3, 2, 1);
  EXPECT_DOUBLE_EQ(ledger.CostAt(10, 2, 1), a);
}

TEST(LedgerTest, LargerUniverseCostsMorePerError) {
  NegativeErrorLedger small(1e4);
  NegativeErrorLedger big(1e10);
  small.SetTimestampTotal(0, 5);
  big.SetTimestampTotal(0, 5);
  EXPECT_GT(big.total_cost(), small.total_cost());
}

}  // namespace
}  // namespace anot
