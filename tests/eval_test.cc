#include <gtest/gtest.h>

#include "datagen/generator.h"
#include "eval/anot_model.h"
#include "eval/metrics.h"
#include "eval/protocol.h"
#include "eval/report.h"
#include "tkg/split.h"

namespace anot {
namespace {

// ----------------------------------------------------------------- PR-AUC

TEST(PrAucTest, PerfectRankingIsOne) {
  std::vector<ScoredExample> ex{{0.9, true}, {0.8, true}, {0.2, false},
                                {0.1, false}};
  EXPECT_DOUBLE_EQ(PrAuc(ex), 1.0);
}

TEST(PrAucTest, InvertedRankingIsPoor) {
  std::vector<ScoredExample> ex{{0.9, false}, {0.8, false}, {0.2, true},
                                {0.1, true}};
  EXPECT_LT(PrAuc(ex), 0.55);
}

TEST(PrAucTest, RandomScoresNearBaseRate) {
  Rng rng(3);
  std::vector<ScoredExample> ex;
  for (int i = 0; i < 4000; ++i) {
    ex.push_back({rng.UniformDouble(), rng.Bernoulli(0.2)});
  }
  EXPECT_NEAR(PrAuc(ex), 0.2, 0.04);
}

TEST(PrAucTest, NoPositivesIsZero) {
  EXPECT_DOUBLE_EQ(PrAuc({{0.5, false}}), 0.0);
  EXPECT_DOUBLE_EQ(PrAuc({}), 0.0);
}

TEST(PrAucTest, TiesHandledAsBlock) {
  // All scores equal: AUC == base rate regardless of input order.
  std::vector<ScoredExample> ex{{0.5, true}, {0.5, false}, {0.5, false},
                                {0.5, true}};
  EXPECT_DOUBLE_EQ(PrAuc(ex), 0.5);
}

// ----------------------------------------------------------------- F-beta

TEST(FBetaTest, KnownValues) {
  EXPECT_DOUBLE_EQ(FBeta(1.0, 1.0, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(FBeta(0.0, 1.0, 0.5), 0.0);
  // beta=0.5 weights precision more: P=1,R=0.5 scores higher than
  // P=0.5,R=1.
  EXPECT_GT(FBeta(1.0, 0.5, 0.5), FBeta(0.5, 1.0, 0.5));
  // beta=1 is symmetric.
  EXPECT_DOUBLE_EQ(FBeta(1.0, 0.5, 1.0), FBeta(0.5, 1.0, 1.0));
}

// ------------------------------------------------------------- thresholds

TEST(ThresholdTest, TuneFindsSeparatingThreshold) {
  std::vector<ScoredExample> ex{{0.9, true},  {0.85, true}, {0.8, true},
                                {0.3, false}, {0.2, false}, {0.1, false}};
  auto best = TuneThreshold(ex, 0.5);
  EXPECT_DOUBLE_EQ(best.precision, 1.0);
  EXPECT_DOUBLE_EQ(best.recall, 1.0);
  EXPECT_DOUBLE_EQ(best.f_beta, 1.0);
  EXPECT_GE(best.threshold, 0.8);

  auto at = MetricsAtThreshold(ex, best.threshold, 0.5);
  EXPECT_DOUBLE_EQ(at.f_beta, 1.0);
}

TEST(ThresholdTest, MetricsAtExtremeThresholds) {
  std::vector<ScoredExample> ex{{0.9, true}, {0.1, false}};
  auto none = MetricsAtThreshold(ex, 10.0, 0.5);
  EXPECT_DOUBLE_EQ(none.precision, 0.0);
  auto all = MetricsAtThreshold(ex, -10.0, 0.5);
  EXPECT_DOUBLE_EQ(all.precision, 0.5);
  EXPECT_DOUBLE_EQ(all.recall, 1.0);
}

TEST(ThresholdTest, EmptyAndDegenerateInputs) {
  EXPECT_DOUBLE_EQ(TuneThreshold({}, 0.5).f_beta, 0.0);
  EXPECT_DOUBLE_EQ(TuneThreshold({{0.5, false}}, 0.5).f_beta, 0.0);
}

// --------------------------------------------------------------- Reporter

TEST(ReporterTest, RenderTableAligns) {
  std::string out = Reporter::RenderTable({"a", "model"},
                                          {{"1", "AnoT"}, {"22", "DE"}});
  EXPECT_NE(out.find("| a  | model |"), std::string::npos);
  EXPECT_NE(out.find("| 22 | DE    |"), std::string::npos);
}

TEST(ReporterTest, ComparisonGroupsByDataset) {
  EvalResult r;
  r.model = "AnoT";
  r.dataset = "ICEWS14";
  r.conceptual = {0.9, 0.8, 0.95};
  std::string out = Reporter::RenderComparison({r});
  EXPECT_NE(out.find("== ICEWS14 =="), std::string::npos);
  EXPECT_NE(out.find("AnoT"), std::string::npos);
  EXPECT_NE(out.find("0.950"), std::string::npos);
}

// ------------------------------------------- micro-batching invariance

/// Records the model-visible call sequence — Score and ObserveValid, in
/// order — plus every ScoreBatch window size. Scores are a deterministic
/// function of the fact, so threshold tuning has something to rank.
class ProbeModel : public AnomalyModel {
 public:
  std::string name() const override { return "probe"; }
  void Fit(const TemporalKnowledgeGraph& train) override { (void)train; }

  TaskScores Score(const Fact& fact) override {
    sequence.push_back("S:" + Key(fact));
    const double x =
        static_cast<double>((fact.subject * 31 + fact.object * 7 +
                             static_cast<uint64_t>(fact.time)) %
                            1000) /
        1000.0;
    return TaskScores{x, 1.0 - x, x};
  }

  std::vector<TaskScores> ScoreBatch(
      const std::vector<Fact>& facts) override {
    batch_sizes.push_back(facts.size());
    return AnomalyModel::ScoreBatch(facts);
  }

  void ObserveValid(const Fact& fact) override {
    sequence.push_back("V:" + Key(fact));
  }

  static std::string Key(const Fact& f) {
    return std::to_string(f.subject) + "_" + std::to_string(f.relation) +
           "_" + std::to_string(f.object) + "_" + std::to_string(f.time);
  }

  std::vector<std::string> sequence;
  std::vector<size_t> batch_sizes;
};

GeneratorConfig SmallProtocolWorld() {
  GeneratorConfig cfg;
  cfg.num_entities = 150;
  cfg.num_relations = 18;
  cfg.num_timestamps = 90;
  cfg.num_facts = 3000;
  cfg.num_categories = 5;
  cfg.num_chain_rules = 4;
  cfg.seed = 13;
  return cfg;
}

TEST(ProtocolTest, ObserveValidOrderingPreservedAcrossBatchBoundaries) {
  SyntheticGenerator gen(SmallProtocolWorld());
  auto graph = gen.Generate();
  TimeSplit split = SplitByTimestamps(*graph, 0.6, 0.1);

  auto run = [&](size_t batch_size) {
    ProbeModel model;
    ProtocolOptions popts;
    popts.score_batch_size = batch_size;
    RunProtocol(*graph, split, &model, popts);
    return model;
  };
  const ProbeModel sequential = run(1);
  const ProbeModel batched = run(64);

  // The model-visible call sequence — every Score, every ObserveValid, in
  // order — is invariant: the batch boundary sits exactly at each ingest.
  ASSERT_FALSE(sequential.sequence.empty());
  EXPECT_EQ(sequential.sequence, batched.sequence);
  // And batching genuinely engaged: multi-fact windows within the cap.
  size_t max_batch = 0;
  for (size_t b : batched.batch_sizes) max_batch = std::max(max_batch, b);
  EXPECT_GT(max_batch, 1u);
  EXPECT_LE(max_batch, 64u);
  for (size_t b : sequential.batch_sizes) EXPECT_EQ(b, 1u);
}

TEST(ProtocolTest, MetricsIdenticalWithMicroBatchingOnAndOff) {
  SyntheticGenerator gen(SmallProtocolWorld());
  auto graph = gen.Generate();
  TimeSplit split = SplitByTimestamps(*graph, 0.6, 0.1);

  AnoTOptions options;
  options.detector.category.min_support = 4;
  options.detector.timespan_tolerance = 5;

  auto run = [&](size_t batch_size, size_t threads) {
    AnoTOptions o = options;
    o.num_threads = threads;
    AnoTModel model(o);
    ProtocolOptions popts;
    popts.score_batch_size = batch_size;
    return RunProtocol(*graph, split, &model, popts);
  };
  const EvalResult off = run(1, 1);
  EXPECT_EQ(off.score_batch_size, 1u);

  for (size_t threads : {size_t{1}, size_t{4}}) {
    const EvalResult on = run(64, threads);
    EXPECT_EQ(on.score_batch_size, 64u);
    // Bitwise equality: micro-batching must not change a single metric.
    EXPECT_EQ(off.conceptual.pr_auc, on.conceptual.pr_auc) << threads;
    EXPECT_EQ(off.conceptual.precision, on.conceptual.precision) << threads;
    EXPECT_EQ(off.conceptual.f_beta, on.conceptual.f_beta) << threads;
    EXPECT_EQ(off.time.pr_auc, on.time.pr_auc) << threads;
    EXPECT_EQ(off.time.precision, on.time.precision) << threads;
    EXPECT_EQ(off.time.f_beta, on.time.f_beta) << threads;
    EXPECT_EQ(off.missing.pr_auc, on.missing.pr_auc) << threads;
    EXPECT_EQ(off.missing.precision, on.missing.precision) << threads;
    EXPECT_EQ(off.missing.f_beta, on.missing.f_beta) << threads;
    EXPECT_GT(on.throughput, 0.0);
    EXPECT_GT(on.test_seconds, 0.0);
    // Per-arrival latency tail is captured over the same window and is
    // internally consistent: p50 <= p99 <= max.
    EXPECT_GT(on.latency_p50_us, 0.0);
    EXPECT_LE(on.latency_p50_us, on.latency_p99_us);
    EXPECT_LE(on.latency_p99_us, on.latency_max_us);
  }
}

// ------------------------------------------------------ protocol + AnoT

TEST(ProtocolTest, AnoTEndToEndProducesSaneMetrics) {
  GeneratorConfig cfg;
  cfg.num_entities = 200;
  cfg.num_relations = 24;
  cfg.num_timestamps = 120;
  cfg.num_facts = 6000;
  cfg.num_categories = 6;
  cfg.num_chain_rules = 5;
  cfg.num_triadic_rules = 2;
  cfg.seed = 41;
  SyntheticGenerator gen(cfg);
  auto graph = gen.Generate();
  TimeSplit split = SplitByTimestamps(*graph, 0.6, 0.1);

  AnoTOptions options;
  options.detector.category.min_support = 4;
  options.detector.timespan_tolerance = 5;
  AnoTModel model(options);
  ProtocolOptions popts;
  EvalResult result = RunProtocol(*graph, split, &model, popts);

  // Conceptual detection must be strong on planted-schema data.
  EXPECT_GT(result.conceptual.pr_auc, 0.5);
  EXPECT_GT(result.conceptual.precision, 0.4);
  // Missing detection should beat the 50% base rate of its candidate set.
  EXPECT_GT(result.missing.pr_auc, 0.6);
  // Time detection beats its ~0.176 base rate (time errors on recurrent
  // facts are intrinsically hard; see DESIGN.md).
  EXPECT_GT(result.time.pr_auc, 0.18);
  EXPECT_GT(result.throughput, 100.0);
  EXPECT_GT(result.fit_seconds, 0.0);
}

}  // namespace
}  // namespace anot
