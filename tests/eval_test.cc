#include <gtest/gtest.h>

#include "datagen/generator.h"
#include "eval/anot_model.h"
#include "eval/metrics.h"
#include "eval/protocol.h"
#include "eval/report.h"
#include "tkg/split.h"

namespace anot {
namespace {

// ----------------------------------------------------------------- PR-AUC

TEST(PrAucTest, PerfectRankingIsOne) {
  std::vector<ScoredExample> ex{{0.9, true}, {0.8, true}, {0.2, false},
                                {0.1, false}};
  EXPECT_DOUBLE_EQ(PrAuc(ex), 1.0);
}

TEST(PrAucTest, InvertedRankingIsPoor) {
  std::vector<ScoredExample> ex{{0.9, false}, {0.8, false}, {0.2, true},
                                {0.1, true}};
  EXPECT_LT(PrAuc(ex), 0.55);
}

TEST(PrAucTest, RandomScoresNearBaseRate) {
  Rng rng(3);
  std::vector<ScoredExample> ex;
  for (int i = 0; i < 4000; ++i) {
    ex.push_back({rng.UniformDouble(), rng.Bernoulli(0.2)});
  }
  EXPECT_NEAR(PrAuc(ex), 0.2, 0.04);
}

TEST(PrAucTest, NoPositivesIsZero) {
  EXPECT_DOUBLE_EQ(PrAuc({{0.5, false}}), 0.0);
  EXPECT_DOUBLE_EQ(PrAuc({}), 0.0);
}

TEST(PrAucTest, TiesHandledAsBlock) {
  // All scores equal: AUC == base rate regardless of input order.
  std::vector<ScoredExample> ex{{0.5, true}, {0.5, false}, {0.5, false},
                                {0.5, true}};
  EXPECT_DOUBLE_EQ(PrAuc(ex), 0.5);
}

// ----------------------------------------------------------------- F-beta

TEST(FBetaTest, KnownValues) {
  EXPECT_DOUBLE_EQ(FBeta(1.0, 1.0, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(FBeta(0.0, 1.0, 0.5), 0.0);
  // beta=0.5 weights precision more: P=1,R=0.5 scores higher than
  // P=0.5,R=1.
  EXPECT_GT(FBeta(1.0, 0.5, 0.5), FBeta(0.5, 1.0, 0.5));
  // beta=1 is symmetric.
  EXPECT_DOUBLE_EQ(FBeta(1.0, 0.5, 1.0), FBeta(0.5, 1.0, 1.0));
}

// ------------------------------------------------------------- thresholds

TEST(ThresholdTest, TuneFindsSeparatingThreshold) {
  std::vector<ScoredExample> ex{{0.9, true},  {0.85, true}, {0.8, true},
                                {0.3, false}, {0.2, false}, {0.1, false}};
  auto best = TuneThreshold(ex, 0.5);
  EXPECT_DOUBLE_EQ(best.precision, 1.0);
  EXPECT_DOUBLE_EQ(best.recall, 1.0);
  EXPECT_DOUBLE_EQ(best.f_beta, 1.0);
  EXPECT_GE(best.threshold, 0.8);

  auto at = MetricsAtThreshold(ex, best.threshold, 0.5);
  EXPECT_DOUBLE_EQ(at.f_beta, 1.0);
}

TEST(ThresholdTest, MetricsAtExtremeThresholds) {
  std::vector<ScoredExample> ex{{0.9, true}, {0.1, false}};
  auto none = MetricsAtThreshold(ex, 10.0, 0.5);
  EXPECT_DOUBLE_EQ(none.precision, 0.0);
  auto all = MetricsAtThreshold(ex, -10.0, 0.5);
  EXPECT_DOUBLE_EQ(all.precision, 0.5);
  EXPECT_DOUBLE_EQ(all.recall, 1.0);
}

TEST(ThresholdTest, EmptyAndDegenerateInputs) {
  EXPECT_DOUBLE_EQ(TuneThreshold({}, 0.5).f_beta, 0.0);
  EXPECT_DOUBLE_EQ(TuneThreshold({{0.5, false}}, 0.5).f_beta, 0.0);
}

// --------------------------------------------------------------- Reporter

TEST(ReporterTest, RenderTableAligns) {
  std::string out = Reporter::RenderTable({"a", "model"},
                                          {{"1", "AnoT"}, {"22", "DE"}});
  EXPECT_NE(out.find("| a  | model |"), std::string::npos);
  EXPECT_NE(out.find("| 22 | DE    |"), std::string::npos);
}

TEST(ReporterTest, ComparisonGroupsByDataset) {
  EvalResult r;
  r.model = "AnoT";
  r.dataset = "ICEWS14";
  r.conceptual = {0.9, 0.8, 0.95};
  std::string out = Reporter::RenderComparison({r});
  EXPECT_NE(out.find("== ICEWS14 =="), std::string::npos);
  EXPECT_NE(out.find("AnoT"), std::string::npos);
  EXPECT_NE(out.find("0.950"), std::string::npos);
}

// ------------------------------------------------------ protocol + AnoT

TEST(ProtocolTest, AnoTEndToEndProducesSaneMetrics) {
  GeneratorConfig cfg;
  cfg.num_entities = 200;
  cfg.num_relations = 24;
  cfg.num_timestamps = 120;
  cfg.num_facts = 6000;
  cfg.num_categories = 6;
  cfg.num_chain_rules = 5;
  cfg.num_triadic_rules = 2;
  cfg.seed = 41;
  SyntheticGenerator gen(cfg);
  auto graph = gen.Generate();
  TimeSplit split = SplitByTimestamps(*graph, 0.6, 0.1);

  AnoTOptions options;
  options.detector.category.min_support = 4;
  options.detector.timespan_tolerance = 5;
  AnoTModel model(options);
  ProtocolOptions popts;
  EvalResult result = RunProtocol(*graph, split, &model, popts);

  // Conceptual detection must be strong on planted-schema data.
  EXPECT_GT(result.conceptual.pr_auc, 0.5);
  EXPECT_GT(result.conceptual.precision, 0.4);
  // Missing detection should beat the 50% base rate of its candidate set.
  EXPECT_GT(result.missing.pr_auc, 0.6);
  // Time detection beats its ~0.176 base rate (time errors on recurrent
  // facts are intrinsically hard; see DESIGN.md).
  EXPECT_GT(result.time.pr_auc, 0.18);
  EXPECT_GT(result.throughput, 100.0);
  EXPECT_GT(result.fit_seconds, 0.0);
}

}  // namespace
}  // namespace anot
