// Negative fixture for the ANOT_LIFETIME compile-fail harness: discards a
// Status returned by a fallible call. Configure fails if the toolchain
// ACCEPTS this file — the class-level ANOT_NODISCARD on Status (or
// -Werror=unused-result) would then be silently off.

#include "util/status.h"

namespace {

anot::Status Fallible() {
  return anot::Status::InvalidArgument("always fails");
}

}  // namespace

void IgnoreFailure() {
  Fallible();  // fallible result dropped on the floor
}
