// Positive control for the ANOT_LIFETIME compile-fail harness: correct
// lifetime and error handling must build cleanly under the promoted
// warning set (-Werror=dangling -Werror=return-stack-address
// -Werror=unused-result). If this file fails, the harness flags are
// broken, not the code under test.

#include "util/containers.h"
#include "util/status.h"

namespace {

anot::small_vec<int, 4> MakeVec() { return {1, 2, 3}; }

anot::Status Fallible(bool fail) {
  if (fail) return anot::Status::InvalidArgument("requested failure");
  return anot::Status::OK();
}

}  // namespace

int UseAll(bool fail) {
  // The owner outlives the borrow: no dangling diagnostic.
  anot::small_vec<int, 4> v = MakeVec();
  const int& first = v[0];
  // The fallible result is consumed: no unused-result diagnostic.
  anot::Status st = Fallible(fail);
  if (!st.ok()) return -1;
  return first;
}
