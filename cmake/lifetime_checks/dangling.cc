// Negative fixture for the ANOT_LIFETIME compile-fail harness: binds a
// reference through an ANOT_LIFETIME_BOUND accessor of a temporary, so the
// referent dies at the end of the full-expression. Configure fails if the
// toolchain ACCEPTS this file — the [[clang::lifetimebound]] plumbing (or
// -Werror=dangling) would then be silently off.

#include "util/containers.h"

namespace {

anot::small_vec<int, 4> MakeVec() { return {1, 2, 3}; }

}  // namespace

int ReadDangling() {
  const int& first = MakeVec()[0];  // temporary destroyed here
  return first;                     // read through a dangling reference
}
