// Self-test fixtures for tools/lifetime_lint.py — the MUST-PASS half.
// None of these may produce a finding: owning members, contract-carrying
// borrows, annotated view returns, audited static-storage returns,
// convention operators, out-of-line definitions of annotated
// declarations, and by-value pool tasks. This file is a lint fixture,
// not part of the build.

#include <memory>
#include <string>
#include <vector>

#include "util/lifetime.h"
#include "util/thread_pool.h"

namespace lint_fixture {

// Owning members: values, containers, smart pointers — never flagged
// (the '*' / '&' inside template arguments does not count).
class Owner {
 public:
  const std::string& name() const ANOT_LIFETIME_BOUND { return name_; }
  std::string CopyName() const { return name_; }
  bool empty() const { return name_.empty(); }

 private:
  std::string name_;
  std::vector<int> items_;
  std::unique_ptr<std::string> heap_;
};

// Borrowed members WITH the mandatory contract pass.
class AuditedBorrower {
 public:
  explicit AuditedBorrower(const Owner& owner) : owner_(owner) {}

 private:
  // anot-own: the Owner is constructed before and destroyed after every
  // AuditedBorrower (caller-enforced scope nesting in this fixture).
  const Owner& owner_;
};

// not_null documents non-null; the owner contract still rides along.
class NotNullBorrower {
 public:
  explicit NotNullBorrower(const Owner* owner) : owner_(owner) {}

 private:
  // anot-own: the Owner outlives this borrower by construction order.
  anot::not_null<const Owner*> owner_;
};

// Static-storage returns audited with lifetime-ok pass.
// anot-lint: lifetime-ok returns a string literal (immortal storage)
const char* KindName(int kind);

// Convention operators returning *this / the caller's stream: excluded.
class Chainable {
 public:
  Chainable& operator=(const Chainable& other) = default;
  Chainable& operator+=(int delta) {
    total_ += delta;
    return *this;
  }

 private:
  int total_ = 0;
};

// Out-of-line definition of an accessor annotated at its declaration:
// the annotation lives on the declaration, the definition passes.
class Declared {
 public:
  const std::string& label() const ANOT_LIFETIME_BOUND;

 private:
  std::string label_;
};
const std::string& Declared::label() const { return label_; }

// Locals inside function bodies are not members — never flagged.
inline int SumFirst(const std::vector<int>& v) {
  const std::vector<int>& alias = v;
  const int* first = alias.empty() ? nullptr : &alias[0];
  return first ? *first : 0;
}

// By-value pool tasks own their state; `this`-free captures pass.
inline void RunDetachedWork(anot::ThreadPool* pool) {
  int snapshot = 42;
  pool->Submit([snapshot] { (void)snapshot; });
}

// A `this` capture WITH the ownership note passes.
class AuditedAsync {
 public:
  void Kick(anot::ThreadPool* pool) {
    // anot-own: the destructor calls pool->Wait() before `this` dies.
    pool->Submit([this] { ++generation_; });
  }

 private:
  int generation_ = 0;
};

}  // namespace lint_fixture
