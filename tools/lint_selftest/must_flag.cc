// Self-test fixtures for tools/determinism_lint.py — the MUST-FLAG half.
// Every line marked `// expect-flag: <rule>` must fire exactly that rule;
// any other finding in this file fails the self-test. The snippets are
// distilled from bugs this repo has had or nearly had: hash-order escaping
// into output, float reductions over hash order, and pointer-keyed
// ordering. This file is a lint fixture, not part of the build.

#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace lint_fixture {

// Ordering keyed by pointers replays the allocator's address assignment
// into iteration order — different every run.
std::map<int*, int> votes_by_node;  // expect-flag: pointer-key

struct Node {
  double weight = 0.0;
};
std::set<const Node*> frontier;  // expect-flag: pointer-key

struct AddressOrdered {
  std::less<Node*> before;  // expect-flag: pointer-key
};

// Hash-order iteration escaping into an output list (the merge/output
// pattern: callers see a different order every run).
void CollectSeen(const std::unordered_set<int>& seen, std::vector<int>* out) {
  for (int v : seen) {  // expect-flag: unordered-iter
    out->push_back(v);
  }
}

// Hash-order iteration folded into a merge target.
std::vector<int> MergeCounts(const std::unordered_map<int, int>& counts) {
  std::vector<int> merged;
  for (const auto& [key, count] : counts) {  // expect-flag: unordered-iter
    merged.push_back(key + count);
  }
  return merged;
}

// Iterator-form loop over an unordered container: same hazard, different
// syntax.
int FirstPositive(const std::unordered_map<int, int>& counts) {
  for (auto it = counts.begin(); it != counts.end(); ++it) {  // expect-flag: unordered-iter
    if (it->second > 0) return it->first;
  }
  return -1;
}

// Floating-point reduction in hash order: the element set is fixed but
// float addition is not associative, so the sum's bit pattern depends on
// iteration order. Must be the float-accum rule, not plain unordered-iter.
double TotalWeight(const std::unordered_map<int, double>& weights) {
  double total = 0.0;
  for (const auto& [key, w] : weights) {  // expect-flag: float-accum
    total += w;
  }
  return total;
}

// A member declared here, iterated in a later function — the symbol table
// must resolve the member, not just locals.
class Tally {
 public:
  void Emit(std::vector<int>* out) const;

 private:
  std::unordered_map<int, int> buckets_;
  friend void EmitTally(const Tally&, std::vector<int>*);
};

void Tally::Emit(std::vector<int>* out) const {
  for (const auto& [bucket, count] : buckets_) {  // expect-flag: unordered-iter
    out->push_back(bucket * count);
  }
}

// An annotation WITHOUT the mandatory reason does not suppress.
void AnnotatedWithoutReason(const std::unordered_set<int>& seen,
                            std::vector<int>* out) {
  // anot-lint: ordered-ok
  for (int v : seen) {  // expect-flag: unordered-iter
    out->push_back(v);
  }
}

}  // namespace lint_fixture
