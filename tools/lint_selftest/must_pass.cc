// Self-test fixtures for tools/determinism_lint.py — the MUST-PASS half.
// None of these may produce a finding: deterministic containers, sorted
// collect-then-reduce, and properly annotated audited sites. This file is
// a lint fixture, not part of the build.

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

namespace lint_fixture {

// Ordered containers iterate deterministically.
std::map<int, int> ordered_counts;
std::set<std::pair<int, int>> ordered_pairs;  // value keys, not pointers

int SumOrdered() {
  int sum = 0;
  for (const auto& [key, count] : ordered_counts) {
    sum += count;
  }
  return sum;
}

// Vectors are deterministic, including float reductions over them.
double SumVector(const std::vector<double>& values) {
  double total = 0.0;
  for (double v : values) {
    total += v;
  }
  return total;
}

// The deterministic rewrite of hash-order iteration: collect, sort, then
// let the order escape.
std::vector<int> SortedKeys(const std::unordered_map<int, int>& counts) {
  std::vector<int> keys;
  keys.reserve(counts.size());
  // anot-lint: ordered-ok keys are collected here and sorted below before
  // any order-dependent use
  for (const auto& [key, count] : counts) {
    keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

// An audited site: order-insensitive effect (pure membership test), with
// the annotation on the flagged line itself.
bool ContainsNegative(const std::unordered_set<int>& seen) {
  for (int v : seen) {  // anot-lint: ordered-ok existence check is order-insensitive
    if (v < 0) return true;
  }
  return false;
}

// Lookups (find/count/at) on unordered containers are fine — only
// iteration order is hazardous.
int Lookup(const std::unordered_map<int, int>& counts, int key) {
  auto it = counts.find(key);
  return it == counts.end() ? 0 : it->second;
}

// Integer accumulation in hash order is order-insensitive (associative),
// but still requires the audit annotation on the iteration itself.
int SumCounts(const std::unordered_map<int, int>& counts) {
  int sum = 0;
  // anot-lint: ordered-ok integer addition is associative; the sum is
  // order-independent
  for (const auto& [key, count] : counts) {
    sum += count;
  }
  return sum;
}

// The vendored dense containers (util/containers.h) iterate in insertion
// order — a deterministic function of the operation history, never of
// hash seeds or library versions — so the lint must NOT treat them as
// unordered containers: bare iteration (even a float reduction) needs no
// annotation.
anot::dense_map<int, double> dense_counts;
anot::dense_set<int> dense_seen;
anot::string_map<int> dense_names;
anot::small_vec<int, 4> inline_list;

double SumDense() {
  double total = 0.0;
  for (const auto& [key, count] : dense_counts) {
    total += count;  // insertion-order iteration: deterministic
  }
  for (int v : dense_seen) {
    total += v;
  }
  for (const auto& [name, id] : dense_names) {
    total += id;
  }
  for (int v : inline_list) {
    total += v;
  }
  return total;
}

}  // namespace lint_fixture
