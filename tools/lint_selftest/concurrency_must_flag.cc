// Self-test fixtures for tools/concurrency_lint.py — the MUST-FLAG half.
// Every line marked `// expect-flag: <rule>` must fire exactly that rule;
// any other finding in this file fails the self-test. The snippets are
// the concurrency hazards the lint exists to catch: raw std primitives
// the capability analysis cannot see, thread ownership without a join
// path, by-reference captures shipped to the pool, and atomics without a
// publication contract. This file is a lint fixture, not part of the
// build. NOTE: no line in this file may call .join() — the
// unjoined-thread rule is per-file.

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "util/thread_pool.h"

namespace lint_fixture {

// Raw primitives outside thread_annotations.h: invisible to
// -Wthread-safety, so GUARDED_BY contracts cannot attach to them.
std::mutex raw_mu;  // expect-flag: raw-sync

struct RawCondition {
  std::condition_variable cv;  // expect-flag: raw-sync
};

void LockRaw() {
  std::lock_guard<std::mutex> lock(raw_mu);  // expect-flag: raw-sync
}

void WaitRaw() {
  std::unique_lock<std::mutex> lock(raw_mu);  // expect-flag: raw-sync
}

// An annotation WITHOUT the mandatory reason does not suppress.
// anot-lint: raw-sync-ok
std::shared_mutex unreasoned_mu;  // expect-flag: raw-sync

// Thread ownership without a join path: nothing in this file ever calls
// .join(), so both the member and the detach are findings.
class FireAndForget {
 public:
  void Start() {
    runner_ = std::thread([] {});
    runner_.detach();  // expect-flag: detached-thread
  }

 private:
  std::thread runner_;  // expect-flag: unjoined-thread
};

std::vector<std::thread> orphan_workers;  // expect-flag: unjoined-thread

// A by-reference capture handed to the pool without a lifetime argument:
// the task shares `total` with every worker and with this frame.
void SharedByReference(anot::ThreadPool* pool) {
  int total = 0;
  pool->Submit([&total] { ++total; });  // expect-flag: shared-capture
}

void SharedByDefaultCapture(anot::ThreadPool* pool) {
  int total = 0;
  pool->Submit([&] { ++total; });  // expect-flag: shared-capture
}

// Atomics bypass the capability analysis entirely, so a declaration
// without its anot-sync publication contract is a finding.
std::atomic<bool> naked_flag{false};  // expect-flag: atomic-contract

class Handoff {
  std::atomic<int> epoch_ = 0;  // expect-flag: atomic-contract
};

}  // namespace lint_fixture
