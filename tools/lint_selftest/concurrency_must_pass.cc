// Self-test fixtures for tools/concurrency_lint.py — the MUST-PASS half.
// None of these may produce a finding: the annotated wrappers, joined
// thread ownership, by-value or audited captures, contract-carrying
// atomics, and audited raw-primitive sites. This file is a lint fixture,
// not part of the build.

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace lint_fixture {

// The annotated wrappers are the sanctioned spelling — never flagged.
class Counter {
 public:
  void Add(int delta) {
    anot::MutexLock lock(mu_);
    value_ += delta;
  }

 private:
  anot::Mutex mu_;
  anot::CondVar cv_;
  int value_ ANOT_GUARDED_BY(mu_) = 0;
};

// Thread ownership with a join path in the same file.
class Joined {
 public:
  ~Joined() {
    if (worker_.joinable()) worker_.join();
    for (auto& t : helpers_) t.join();
  }

 private:
  std::thread worker_;
  std::vector<std::thread> helpers_;
};

// By-value captures: the task owns its state, nothing is shared.
void OwnedCapture(anot::ThreadPool* pool, int seed) {
  pool->Submit([seed] { (void)(seed + 1); });
}

// An audited by-reference capture: reason on the comment block above.
void AuditedCapture(anot::ThreadPool* pool, std::vector<int>* out) {
  // anot-lint: shared-ok out outlives the task — Wait() below joins it
  // before this frame returns, and only this task writes slot 0
  pool->Submit([&out] { (*out)[0] = 1; });
  pool->Wait();
}

// An atomic with its publication contract documented at the declaration.
// anot-sync: monotonically set true by the producer with release after
// its last write; consumer acquires before reading the payload.
std::atomic<bool> published{false};

class Stage {
  /// anot-sync: cancellation knob, relaxed both sides — carries no
  /// payload, the join is the synchronization point.
  std::atomic<bool> cancel_{false};
};

// Pointers/references to atomics are parameters, not owned state — the
// contract lives at the owning declaration.
bool Poll(const std::atomic<bool>* cancel) {
  return cancel != nullptr && cancel->load(std::memory_order_relaxed);
}

// An audited raw-primitive site (e.g. interop with an external API that
// demands a std::mutex) keeps its reason.
// anot-lint: raw-sync-ok fixture stand-in for third-party interop that
// takes a std::mutex by contract
std::mutex third_party_mu;

}  // namespace lint_fixture
