// Self-test fixtures for tools/lifetime_lint.py — the MUST-FLAG half.
// Every line marked `// expect-flag: <rule>` must fire exactly that rule;
// any other finding in this file fails the self-test. The snippets are
// the lifetime hazards the lint exists to catch: borrowed data members
// without an ownership contract, view-returning functions Clang cannot
// check because they lack ANOT_LIFETIME_BOUND, and `this` shipped to the
// pool. This file is a lint fixture, not part of the build.

#include <string>
#include <string_view>
#include <vector>

#include "util/lifetime.h"
#include "util/thread_pool.h"

namespace lint_fixture {

// Borrowed members without the anot-own contract: nothing says who owns
// the referenced storage or why it outlives this holder — the exact shape
// of the PR 1 Scorer/Updater dangling-options bug.
class Borrower {
 public:
  explicit Borrower(const std::string& owner) : ref_(owner) {}

 private:
  const std::string& ref_;            // expect-flag: ptr-member
  const std::vector<int>* items_ = nullptr;  // expect-flag: ptr-member
  std::string_view view_;             // expect-flag: ptr-member
};

// Public struct members borrow too — the rule is convention-independent
// (no trailing underscore required).
struct BorrowingCell {
  const std::string* name = nullptr;  // expect-flag: ptr-member
};

// An annotation WITHOUT the mandatory reason does not suppress.
// anot-own:
struct Unreasoned {
  const int* p = nullptr;  // expect-flag: ptr-member
};

// View-returning functions without ANOT_LIFETIME_BOUND: a caller binding
// `const auto& x = MakeHolder().name();` dangles with no diagnostic.
class Holder {
 public:
  const std::string& name() const {  // expect-flag: ref-return
    return name_;
  }
  const char* c_name() const {  // expect-flag: ref-return
    return name_.c_str();
  }
  std::string_view view_name() const {  // expect-flag: ref-return
    return name_;
  }
  int& operator[](int) {  // expect-flag: ref-return
    return scratch_;
  }

 private:
  std::string name_;
  int scratch_ = 0;
};

// Free functions are covered too (namespace scope, declaration or
// definition).
const std::string& PickFirst(const std::vector<std::string>& v);  // expect-flag: ref-return

// A `this` capture shipped to the pool without an ownership note: the
// task can outlive the object whose state it reads.
class AsyncRefresher {
 public:
  void Kick(anot::ThreadPool* pool) {
    pool->Submit([this] { ++generation_; });  // expect-flag: this-capture
  }

 private:
  int generation_ = 0;
};

}  // namespace lint_fixture
