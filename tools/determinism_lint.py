#!/usr/bin/env python3
"""Repo-custom determinism lint for the AnoT codebase.

Every parallel path in this repo (offline build, batched serving, async
refresh, speculative selection, sweeps) is pinned bit-identical to a serial
reference.  The classes of code that have broken — or nearly broken — that
contract are mechanical to spot:

  unordered-iter   iteration over a std::unordered_{map,set,multimap,multiset}
                   whose per-element effects can escape into merges,
                   accumulation, or output.  Hash-table iteration order is
                   unspecified and varies across libstdc++ versions, seeds,
                   and insertion histories.
  float-accum      a floating-point reduction (`x += ...` into a float/double)
                   inside such a loop: even when the element *set* is fixed,
                   float addition is not associative, so hash order changes
                   the sum bit pattern.  Deterministic float reductions
                   belong in an EntropyAccumulator-style replay log or a
                   sorted collect-then-reduce.
  pointer-key      std::{map,set,multimap,multiset} keyed by a pointer (or a
                   std::less<T*> comparator): iteration order replays the
                   allocator's address assignment, which varies run to run.

The checker is a lexical (regex + balanced-scan) engine over the same
patterns a clang-query AST matcher would bind: declarations and accessors
with unordered types feed a symbol table; range-for / .begin() loops whose
range resolves to that table are findings.  The engine itself lives in
tools/lint_common.py, shared with the concurrency and lifetime lints.
It is intentionally conservative: *every* unordered iteration must either
be rewritten over a deterministic order or carry an audited-site annotation

    // anot-lint: ordered-ok <why iteration order cannot escape>

on the flagged line or the line directly above it.  The reason is
mandatory; an annotation without one stays a finding.

Usage:
    determinism_lint.py [paths...]     lint .h/.cc files (dirs recurse);
                                       exit 1 when findings remain
    determinism_lint.py --self-test    run the fixture suite under
                                       tools/lint_selftest/ (must_flag.cc
                                       lines marked `// expect-flag: <rule>`
                                       must each fire exactly that rule;
                                       must_pass.cc must stay silent)
"""

import argparse
import os
import re
import sys
from typing import List, Set

from lint_common import (
    EXPECT_RE,
    Finding,
    annotation_near,
    find_loop_body_span,
    line_of,
    load_files,
    match_paren,
    run_fixture_selftest,
    scan_balanced_angles,
    strip_comments,
    top_level_colon,
)

# Re-exported for backward compatibility: earlier revisions of
# tools/concurrency_lint.py imported the engine from this module.
__all__ = [
    "EXPECT_RE",
    "Finding",
    "SymbolTable",
    "annotation_near",
    "line_of",
    "load_files",
    "run_lint",
    "strip_comments",
]

UNORDERED_DECL_RE = re.compile(r"\bunordered_(?:multi)?(?:map|set)\s*<")
POINTER_KEY_RE = re.compile(
    r"\bstd\s*::\s*(?:multi)?(?:map|set)\s*<\s*(?:const\s+)?[\w:]+\s*\*"
)
POINTER_LESS_RE = re.compile(r"\bstd\s*::\s*less\s*<\s*[\w:]+\s*\*\s*>")
FLOAT_DECL_RE = re.compile(r"\b(?:double|float)\s+(&?\s*)?([A-Za-z_]\w*)\b")
ANNOTATION_RE = re.compile(r"anot-lint:\s*ordered-ok(?:\s+(\S.*))?")

RULES = ("unordered-iter", "float-accum", "pointer-key")


class SymbolTable:
    """Identifiers that resolve to unordered containers: variable /
    parameter / member names, and accessor functions returning one."""

    def __init__(self) -> None:
        self.variables: Set[str] = set()
        self.functions: Set[str] = set()

    def collect(self, code: str) -> None:
        for m in UNORDERED_DECL_RE.finditer(code):
            open_pos = code.index("<", m.start())
            end = scan_balanced_angles(code, open_pos)
            rest = code[end:]
            dm = re.match(
                r"\s*[&*]?\s*(?:const\s+)?([A-Za-z_]\w*)\s*([;,=({)\[]|$)",
                rest,
                re.MULTILINE,
            )
            if not dm:
                continue
            name, delim = dm.group(1), dm.group(2)
            if delim == "(":
                self.functions.add(name)
            else:
                self.variables.add(name)

    def resolves_unordered(self, range_expr: str) -> bool:
        expr = range_expr.strip().lstrip("*&").strip()
        # Trailing call: obj.accessor() / accessor()
        call = re.search(r"([A-Za-z_]\w*)\s*\(\s*\)\s*$", expr)
        if call:
            return call.group(1) in self.functions
        tail = re.search(r"([A-Za-z_]\w*)\s*$", expr)
        return bool(tail) and tail.group(1) in self.variables


def collect_float_vars(code: str) -> Set[str]:
    out: Set[str] = set()
    for m in FLOAT_DECL_RE.finditer(code):
        out.add(m.group(2))
    return out


def lint_file(path: str, text: str, symbols: SymbolTable) -> List[Finding]:
    code = strip_comments(text)
    lines = text.splitlines()
    float_vars = collect_float_vars(code)
    findings: List[Finding] = []

    def emit(lineno: int, rule: str, message: str) -> None:
        has_note, reason = annotation_near(lines, lineno, ANNOTATION_RE)
        if has_note and reason:
            return  # audited site
        if has_note and not reason:
            message += " (ordered-ok annotation present but missing the" \
                       " mandatory reason)"
        findings.append(Finding(path, lineno, rule, message))

    # ---- pointer-keyed ordering ------------------------------------------
    for m in POINTER_KEY_RE.finditer(code):
        emit(
            line_of(code, m.start()),
            "pointer-key",
            "ordered container keyed by a pointer: iteration order replays "
            "allocator addresses, which vary run to run",
        )
    for m in POINTER_LESS_RE.finditer(code):
        emit(
            line_of(code, m.start()),
            "pointer-key",
            "std::less over a pointer type orders by address, which varies "
            "run to run",
        )

    # ---- unordered iteration ---------------------------------------------
    for m in re.finditer(r"\bfor\s*\(", code):
        open_paren = code.index("(", m.start())
        close_paren = match_paren(code, open_paren)
        header = code[open_paren + 1 : close_paren]
        lineno = line_of(code, m.start())

        range_expr = None
        colon = top_level_colon(header)
        if colon >= 0:
            range_expr = header[colon + 1 :]
        else:
            it = re.search(
                r"=\s*([A-Za-z_][\w.\->]*(?:\(\s*\))?)\s*[.]\s*c?begin\s*\(",
                header,
            )
            if it:
                range_expr = it.group(1)
        if range_expr is None or not symbols.resolves_unordered(range_expr):
            continue

        body_begin, body_end = find_loop_body_span(code, close_paren)
        body = code[body_begin:body_end]
        accum = None
        for fm in re.finditer(r"([A-Za-z_]\w*)\s*\+=", body):
            if fm.group(1) in float_vars:
                accum = fm.group(1)
                break
        if accum is not None:
            emit(
                lineno,
                "float-accum",
                f"floating-point reduction into '{accum}' over an unordered "
                "container: float addition is not associative, so hash order "
                "changes the sum — use a sorted collect-then-reduce or an "
                "EntropyAccumulator replay log",
            )
        else:
            emit(
                lineno,
                "unordered-iter",
                "iteration over an unordered container: hash order is "
                "unspecified — sort before the effects escape, or annotate "
                "'// anot-lint: ordered-ok <reason>' after auditing",
            )
    return findings


def run_lint(paths: List[str]) -> List[Finding]:
    files = load_files(paths)
    # Pass 1: one shared symbol table, so a .cc iterating a member declared
    # in its header (or an accessor like pair_sequences()) still resolves.
    symbols = SymbolTable()
    for text in files.values():
        symbols.collect(strip_comments(text))
    # Pass 2: findings.
    findings: List[Finding] = []
    for path, text in files.items():
        findings.extend(lint_file(path, text, symbols))
    return findings


def self_test() -> int:
    here = os.path.dirname(os.path.abspath(__file__))
    fixture_dir = os.path.join(here, "lint_selftest")
    return run_fixture_selftest(
        "determinism_lint",
        RULES,
        os.path.join(fixture_dir, "must_flag.cc"),
        os.path.join(fixture_dir, "must_pass.cc"),
        run_lint,
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("paths", nargs="*", help=".h/.cc files or directories")
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="run the fixture suite under tools/lint_selftest/",
    )
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.paths:
        parser.error("no paths given (and --self-test not requested)")

    findings = run_lint(args.paths)
    for f in findings:
        print(f)
    if findings:
        print(
            f"\n{len(findings)} determinism finding(s). Rewrite over a "
            "deterministic order, or audit the site and annotate it with "
            "'// anot-lint: ordered-ok <reason>'."
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
