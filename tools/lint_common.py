#!/usr/bin/env python3
"""Shared lexical engine for the AnoT repo lints.

Three lints ride on this module — tools/determinism_lint.py,
tools/concurrency_lint.py, and tools/lifetime_lint.py.  Each owns its
rules and annotation tags; everything mechanical lives here:

  strip_comments       comment/string blanking that preserves offsets and
                       newlines, so byte offsets map back to line numbers
  scan_balanced        generic balanced-delimiter scan ((), [], {})
  scan_balanced_angles template-argument <> scan
  match_paren          index of the ')' matching an '('
  top_level_colon      range-for ':' detection at nesting depth 0
  find_loop_body_span  extent of a loop body (braced block or statement)
  line_of              offset -> 1-based line number
  annotation_near      audited-site lookup: the flagged line or the
                       contiguous `//` block above it; the reason capture
                       (group 1) is mandatory for the site to pass
  load_files           .h/.cc/.cpp/.hpp collection with stable ordering
  Finding              one finding: path, 1-based line, rule, message
  run_fixture_selftest the shared `--self-test` driver: every
                       `// expect-flag: <rule>` line in the must-flag
                       fixture must fire exactly that rule, nothing else
                       may fire, and the must-pass fixture must be silent
"""

import os
import re
from typing import Callable, Dict, List, Optional, Sequence, Tuple

EXPECT_RE = re.compile(r"expect-flag:\s*([\w-]+)")


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line  # 1-based
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments(text: str) -> str:
    """Replaces comment and string-literal bodies with spaces, preserving
    offsets and newlines so line numbers survive."""
    out = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif ch == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append("".join(c if c == "\n" else " " for c in text[i:j]))
            i = j
        elif ch in "\"'":
            quote = ch
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(quote + " " * (j - i - 2) + (quote if j - i >= 2 else ""))
            i = j
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def scan_balanced(code: str, open_pos: int, open_ch: str, close_ch: str) -> int:
    """Index one past the delimiter matching code[open_pos]."""
    depth = 0
    for j in range(open_pos, len(code)):
        if code[j] == open_ch:
            depth += 1
        elif code[j] == close_ch:
            depth -= 1
            if depth == 0:
                return j + 1
    return len(code)


def scan_balanced_angles(text: str, open_pos: int) -> int:
    """Given text[open_pos] == '<', returns the index one past the matching
    '>' (template-argument context: only <> nest)."""
    return scan_balanced(text, open_pos, "<", ">")


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def match_paren(code: str, open_pos: int) -> int:
    depth = 0
    for j in range(open_pos, len(code)):
        if code[j] == "(":
            depth += 1
        elif code[j] == ")":
            depth -= 1
            if depth == 0:
                return j
    return len(code) - 1


def top_level_colon(header: str) -> int:
    """Position of a range-for ':' at paren/angle depth 0 (not '::')."""
    depth = 0
    i = 0
    n = len(header)
    while i < n:
        c = header[i]
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
        elif c == "<":
            depth += 1
        elif c == ">":
            depth = max(0, depth - 1)
        elif c == ":" and depth == 0:
            if i + 1 < n and header[i + 1] == ":":
                i += 2
                continue
            if i > 0 and header[i - 1] == ":":
                i += 1
                continue
            return i
        i += 1
    return -1


def find_loop_body_span(code: str, close_paren: int) -> Tuple[int, int]:
    """Extent of the loop body following a for(...) header: a braced block
    or a single statement."""
    i = close_paren + 1
    n = len(code)
    while i < n and code[i] in " \t\n":
        i += 1
    if i < n and code[i] == "{":
        depth = 0
        j = i
        while j < n:
            if code[j] == "{":
                depth += 1
            elif code[j] == "}":
                depth -= 1
                if depth == 0:
                    return (i, j + 1)
            j += 1
        return (i, n)
    j = code.find(";", i)
    return (i, n if j < 0 else j + 1)


def annotation_near(
    lines: List[str], lineno: int, annotation_re: "re.Pattern[str]"
) -> Tuple[bool, Optional[str]]:
    """Whether the 1-based flagged line, or the contiguous `//` comment
    block directly above it, matches `annotation_re` (group 1 = reason);
    returns (found, reason)."""
    if 1 <= lineno <= len(lines):
        m = annotation_re.search(lines[lineno - 1])
        if m:
            return True, m.group(1)
    idx = lineno - 2
    while 0 <= idx < len(lines) and lines[idx].strip().startswith("//"):
        m = annotation_re.search(lines[idx])
        if m:
            return True, m.group(1)
        idx -= 1
    return False, None


def load_files(paths: List[str]) -> Dict[str, str]:
    files: Dict[str, str] = {}
    for p in paths:
        if os.path.isdir(p):
            for root, _dirs, names in os.walk(p):
                for name in sorted(names):
                    if name.endswith((".h", ".cc", ".cpp", ".hpp")):
                        full = os.path.join(root, name)
                        with open(full, encoding="utf-8") as f:
                            files[full] = f.read()
        else:
            with open(p, encoding="utf-8") as f:
                files[p] = f.read()
    return dict(sorted(files.items()))


def run_fixture_selftest(
    lint_name: str,
    rules: Sequence[str],
    must_flag: str,
    must_pass: str,
    run_lint: Callable[[List[str]], List[Finding]],
) -> int:
    """The shared --self-test driver: every `// expect-flag: <rule>` line
    in `must_flag` must fire exactly that rule, nothing unexpected may
    fire, and `must_pass` must stay silent."""
    failures: List[str] = []

    with open(must_flag, encoding="utf-8") as f:
        flag_lines = f.read().splitlines()
    expected: Dict[int, str] = {}
    for i, line in enumerate(flag_lines, start=1):
        m = EXPECT_RE.search(line)
        if m:
            if m.group(1) not in rules:
                failures.append(f"{must_flag}:{i}: unknown rule in marker")
            expected[i] = m.group(1)
    got = {(f.line, f.rule) for f in run_lint([must_flag])}
    for lineno, rule in sorted(expected.items()):
        if (lineno, rule) not in got:
            failures.append(
                f"{must_flag}:{lineno}: expected [{rule}] did not fire"
            )
    for lineno, rule in sorted(got):
        if expected.get(lineno) != rule:
            failures.append(
                f"{must_flag}:{lineno}: unexpected finding [{rule}]"
            )

    for f in run_lint([must_pass]):
        failures.append(f"must_pass fixture flagged: {f}")

    if failures:
        print(f"{lint_name} self-test FAILED:")
        for msg in failures:
            print("  " + msg)
        return 1
    print(
        f"{lint_name} self-test OK: {len(expected)} must-flag "
        "fixtures fired, must-pass fixtures silent"
    )
    return 0
