#!/usr/bin/env python3
"""Repo-custom lifetime/ownership lint for the AnoT codebase.

Clang's lifetime analysis (`-DANOT_LIFETIME=ON`, see src/util/lifetime.h)
reports a dangling reference at the call site — but only when the accessor
is annotated `ANOT_LIFETIME_BOUND`, and only for the statement-local
patterns the compiler can see.  A raw pointer member that silently
outlives its owner (the PR 1 Scorer/Updater bug) needs a *contract*, not a
diagnostic.  This lint closes both gaps lexically, riding the shared
engine in tools/lint_common.py:

  ptr-member    a raw pointer / reference / string_view *data member* at
                class scope.  The member borrows storage it does not own,
                so the declaration must say who the owner is and why it
                outlives the holder:
                    // anot-own: <owner outlives holder because ...>
                (std::unique_ptr / std::optional / containers pass: they
                own.  `not_null<T*>` documents non-null but still borrows —
                spell the owner.)
  ref-return    a function declared to return a reference, pointer, or
                string_view without `ANOT_LIFETIME_BOUND` in its
                declaration.  Unannotated, Clang cannot connect the
                returned view to the owner argument, and a caller binding
                `const auto& x = MakeOwner().accessor();` dangles with no
                diagnostic.  Returns of static-storage data (string
                literals, function-local statics) are audited instead:
                    // anot-lint: lifetime-ok <why the referent is immortal>
  this-capture  a lambda capturing `this` handed to ThreadPool::Submit.
                The task may outlive the object whose `this` it captured;
                the site needs an `// anot-own: <reason>` note naming what
                keeps the object alive until the pool drains.

The reason is mandatory; an annotation without one stays a finding.

Usage:
    lifetime_lint.py [paths...]     lint .h/.cc files (dirs recurse);
                                    exit 1 when findings remain
    lifetime_lint.py --self-test    run the fixture suite under
                                    tools/lint_selftest/
                                    (lifetime_must_flag.cc lines marked
                                    `// expect-flag: <rule>` must each
                                    fire exactly that rule;
                                    lifetime_must_pass.cc must stay
                                    silent)
"""

import argparse
import os
import re
import sys
from typing import List, Set, Tuple

from lint_common import (
    Finding,
    annotation_near,
    line_of,
    load_files,
    run_fixture_selftest,
    scan_balanced,
    strip_comments,
)

RULES = ("ptr-member", "ref-return", "this-capture")

ANOT_OWN_RE = re.compile(r"anot-own:(?:\s+(\S.*))?")
LIFETIME_OK_RE = re.compile(r"anot-lint:\s*lifetime-ok(?:\s+(\S.*))?")
SUBMIT_RE = re.compile(r"\bSubmit\s*\(")
# Repo annotation macros are transparent for declaration parsing:
# ANOT_GUARDED_BY(mu_) on a member, ANOT_REQUIRES(...) on a function.
ANOT_MACRO_RE = re.compile(r"\bANOT_[A-Z_]+\s*\([^()]*\)|\bANOT_[A-Z_]+\b")
ACCESS_LABEL_RE = re.compile(r"^\s*(?:(?:public|private|protected)\s*:\s*)*")
# Statement kinds that are never borrowed data members / accessors.
SKIP_STMT_RE = re.compile(
    r"^\s*(?:using\b|typedef\b|friend\b|static_assert\b|#|"
    r"enum\b|class\b|struct\b|namespace\b|extern\b)"
)
TEMPLATE_PREFIX_RE = re.compile(r"^\s*template\s*<")
IDENT_BEFORE_PAREN_RE = re.compile(r"([A-Za-z_][\w]*|operator\s*[^\s(]+)\s*\($")
# Assignment/stream operators conventionally return *this / the stream the
# caller passed in; annotating them buys nothing (the returned ref is the
# argument itself, visible at the call site).
CONVENTION_OPERATOR_RE = re.compile(
    r"operator\s*(?:=|<<|>>|\+=|-=|\*=|/=|%=|&=|\|=|\^=|<<=|>>=|\+\+|--)\s*$"
)


def classify_brace(code: str, open_pos: int) -> str:
    """Scope kind introduced by the '{' at open_pos: the stretch back to
    the previous ';' / '{' / '}' names it (class/struct -> "class",
    namespace -> "namespace", enum / function body / initializer ->
    "other")."""
    i = open_pos - 1
    while i >= 0 and code[i] not in ";{}":
        i -= 1
    stretch = code[i + 1 : open_pos]
    # Drop template-parameter/argument lists so `template <class T>` ahead
    # of a function body does not read as a class head.
    depth = 0
    flat: List[str] = []
    for ch in stretch:
        if ch == "<":
            depth += 1
        elif ch == ">":
            depth = max(0, depth - 1)
        elif depth == 0:
            flat.append(ch)
    stretch = "".join(flat)
    if re.search(r"\benum\b", stretch):
        return "other"
    if "(" in stretch:
        return "other"  # parameter list: a function body, not a type head
    if re.search(r"\b(?:class|struct|union)\b", stretch):
        return "class"
    if re.search(r"\bnamespace\b", stretch):
        return "namespace"
    return "other"


def declaration_statements(code: str) -> List[Tuple[str, str, int, bool]]:
    """Statements at class or namespace scope, as
    (scope_kind, text, start_offset, ends_with_brace).  Function bodies
    ("other" scopes) are skipped wholesale; a statement ends at ';' or at
    the '{' opening a nested scope."""
    out: List[Tuple[str, str, int, bool]] = []
    stack: List[str] = []
    stmt_start = 0
    i, n = 0, len(code)
    while i < n:
        c = code[i]
        if c == "{":
            kind = classify_brace(code, i)
            scope = stack[-1] if stack else "namespace"
            if scope in ("class", "namespace"):
                out.append((scope, code[stmt_start:i], stmt_start, True))
            stack.append(kind)
            stmt_start = i + 1
        elif c == "}":
            if stack:
                stack.pop()
            stmt_start = i + 1
        elif c == ";":
            scope = stack[-1] if stack else "namespace"
            if scope in ("class", "namespace"):
                out.append((scope, code[stmt_start:i], stmt_start, False))
            stmt_start = i + 1
        i += 1
    return out


def strip_anot_macros(stmt: str) -> str:
    return ANOT_MACRO_RE.sub(" ", stmt)


def strip_template_prefix(stmt: str) -> str:
    """Drops leading `template <...>` heads (member templates declare
    view-returning accessors too — dense_map::at / operator[])."""
    while True:
        m = TEMPLATE_PREFIX_RE.match(stmt)
        if not m:
            return stmt
        open_pos = stmt.index("<", m.start())
        stmt = stmt[scan_balanced(stmt, open_pos, "<", ">"):]


def angle_depth0_has_ptr_or_ref(s: str) -> bool:
    """Whether '*' or '&' occurs outside template argument lists (so
    unique_ptr<T> passes but `T* p` and `const T& r` do not)."""
    depth = 0
    for idx, c in enumerate(s):
        if c == "<":
            depth += 1
        elif c == ">":
            depth = max(0, depth - 1)
        elif c in "*&" and depth == 0:
            # '&&' in a default initializer is a logical and; a member
            # cannot be an rvalue reference, so treat '&&' as non-decl.
            if c == "&" and (s[idx + 1 : idx + 2] == "&" or
                             s[idx - 1 : idx] == "&"):
                continue
            return True
    return False


def split_signature(stmt: str) -> Tuple[str, str]:
    """For a statement containing '(', returns (return_type_text, name).
    The name is the identifier (or operator token) directly before the
    first top-level '('."""
    # First '(' at angle depth 0.
    depth = 0
    paren = -1
    for idx, c in enumerate(stmt):
        if c == "<":
            depth += 1
        elif c == ">":
            depth = max(0, depth - 1)
        elif c == "(" and depth == 0:
            paren = idx
            break
    if paren < 0:
        return "", ""
    head = stmt[:paren].rstrip()
    m = re.search(r"(operator\s*[^\s]*|[A-Za-z_~][\w]*)$", head)
    if not m:
        return "", ""
    name = m.group(1)
    ret = head[: m.start()].rstrip()
    return ret, name


def collect_annotated_names(code: str, lines: List[str]) -> Set[str]:
    """Names of functions whose declaration carries ANOT_LIFETIME_BOUND or
    an audited lifetime-ok annotation — their out-of-line / .cc
    definitions need no second annotation."""
    names: Set[str] = set()
    for _scope, stmt, start, _brace in declaration_statements(code):
        if "(" not in stmt:
            continue
        ret, name = split_signature(stmt)
        if not name:
            continue
        label = ACCESS_LABEL_RE.match(stmt)
        off = label.end() if label else 0
        rest = stmt[off:]
        lineno = line_of(code, start + off + len(rest) - len(rest.lstrip()))
        has_note, reason = annotation_near(lines, lineno, LIFETIME_OK_RE)
        if "ANOT_LIFETIME_BOUND" in stmt or (has_note and reason):
            names.add(name.replace(" ", ""))
    return names


def lint_file(path: str, text: str, annotated_names: Set[str]) -> List[Finding]:
    code = strip_comments(text)
    lines = text.splitlines()
    findings: List[Finding] = []
    seen: Set[Tuple[int, str]] = set()

    def emit(lineno: int, rule: str, message: str,
             annotation_re: "re.Pattern[str]") -> None:
        has_note, reason = annotation_near(lines, lineno, annotation_re)
        if has_note and reason:
            return  # audited site
        if has_note and not reason:
            message += " (annotation present but missing the mandatory" \
                       " reason)"
        if (lineno, rule) in seen:
            return
        seen.add((lineno, rule))
        findings.append(Finding(path, lineno, rule, message))

    for scope, stmt, start, ends_with_brace in declaration_statements(code):
        # Line of the declaration itself: skip leading whitespace AND any
        # access labels, so the flag (and the annotation lookup) lands on
        # the member/function line, not on `private:` above it.
        label = ACCESS_LABEL_RE.match(stmt)
        off = label.end() if label else 0
        body = stmt[off:]
        stripped = strip_template_prefix(body)
        off += len(body) - len(stripped)
        body = stripped
        lineno = line_of(code, start + off + len(body) - len(body.lstrip()))
        if SKIP_STMT_RE.match(body):
            continue
        clean = strip_anot_macros(body)

        # ---- ptr-member: borrowed-storage data members -------------------
        if (scope == "class" and not ends_with_brace
                and "(" not in clean
                and not re.search(r"\b(?:static|constexpr)\b", clean)
                and (angle_depth0_has_ptr_or_ref(clean)
                     or re.search(r"\bstring_view\b", clean))):
            emit(
                lineno,
                "ptr-member",
                "raw pointer/reference/string_view data member: it borrows "
                "storage it does not own — declare the contract with "
                "'// anot-own: <owner outlives holder because ...>'",
                ANOT_OWN_RE,
            )
            continue

        # ---- ref-return: view-returning functions ------------------------
        if "(" in clean:
            ret, name = split_signature(clean)
            if not ret or not name:
                continue
            if "ANOT_LIFETIME_BOUND" in stmt:
                continue
            if CONVENTION_OPERATOR_RE.search(name):
                continue
            # Out-of-line definitions (Class::member, ns-qualified): the
            # annotation lives on the in-class/header declaration.
            tail = clean[: clean.rindex(name)] if name in clean else ""
            if tail.rstrip().endswith("::"):
                continue
            if name.replace(" ", "") in annotated_names:
                continue
            returns_view = (
                ret.endswith("*") or ret.endswith("&")
                or re.search(r"\bstring_view\s*$", ret)
            )
            if not returns_view:
                continue
            emit(
                lineno,
                "ref-return",
                f"'{name}' returns a reference/pointer/view without "
                "ANOT_LIFETIME_BOUND: Clang cannot tie the result to its "
                "owner, so call-site dangles go undiagnosed — annotate the "
                "declaration, or audit a static-storage return with "
                "'// anot-lint: lifetime-ok <reason>'",
                LIFETIME_OK_RE,
            )

    # ---- this-capturing lambdas into ThreadPool::Submit ------------------
    for m in SUBMIT_RE.finditer(code):
        open_paren = code.index("(", m.start())
        cap_open = open_paren + 1
        while cap_open < len(code) and code[cap_open] in " \t\n":
            cap_open += 1
        if cap_open >= len(code) or code[cap_open] != "[":
            continue  # not an inline lambda
        cap_end = scan_balanced(code, cap_open, "[", "]")
        capture_list = code[cap_open:cap_end]
        if not re.search(r"\bthis\b", capture_list):
            continue
        emit(
            line_of(code, m.start()),
            "this-capture",
            "lambda capturing `this` handed to ThreadPool::Submit: the "
            "task can outlive the object — note what keeps it alive until "
            "the pool drains with '// anot-own: <reason>'",
            ANOT_OWN_RE,
        )

    return findings


def run_lint(paths: List[str]) -> List[Finding]:
    files = load_files(paths)
    # Pass 1: a shared table of annotated function names, so a .cc
    # definition of a header-annotated accessor is not re-flagged.
    annotated_names: Set[str] = set()
    for text in files.values():
        annotated_names |= collect_annotated_names(
            strip_comments(text), text.splitlines()
        )
    # Pass 2: findings.
    findings: List[Finding] = []
    for path, text in files.items():
        findings.extend(lint_file(path, text, annotated_names))
    return findings


def self_test() -> int:
    here = os.path.dirname(os.path.abspath(__file__))
    fixture_dir = os.path.join(here, "lint_selftest")
    return run_fixture_selftest(
        "lifetime_lint",
        RULES,
        os.path.join(fixture_dir, "lifetime_must_flag.cc"),
        os.path.join(fixture_dir, "lifetime_must_pass.cc"),
        run_lint,
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("paths", nargs="*", help=".h/.cc files or directories")
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="run the fixture suite under tools/lint_selftest/",
    )
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.paths:
        parser.error("no paths given (and --self-test not requested)")

    findings = run_lint(args.paths)
    for f in findings:
        print(f)
    if findings:
        print(
            f"\n{len(findings)} lifetime finding(s). Annotate the accessor "
            "with ANOT_LIFETIME_BOUND (src/util/lifetime.h), declare the "
            "member's owner with '// anot-own: <reason>', or audit a "
            "static-storage return with "
            "'// anot-lint: lifetime-ok <reason>'."
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
