#!/usr/bin/env python3
"""Repo-custom concurrency lint for the AnoT codebase.

The Clang thread-safety analysis (`-DANOT_THREAD_SAFETY=ON`, see
src/util/thread_annotations.h) checks lock discipline at compile time —
but only for capabilities it can see.  A raw std::mutex is invisible to
it, a detached thread outlives every annotation, and a by-reference
lambda shipped to the ThreadPool can share anything with anyone.  This
lint closes those escape hatches lexically, riding the shared
comment-stripping / annotation engine in tools/lint_common.py:

  raw-sync         std::mutex / std::lock_guard / std::unique_lock /
                   std::condition_variable (and friends) outside
                   src/util/thread_annotations.h.  Shared state must go
                   through the annotated anot::Mutex / MutexLock /
                   CondVar wrappers so the capability analysis covers it.
  detached-thread  a .detach() call: a detached thread cannot be joined,
                   so nothing orders its writes before process teardown.
  unjoined-thread  a std::thread (or std::vector<std::thread>) member or
                   global declared in a file that never calls .join():
                   ownership without a join path is a leak of execution.
  shared-capture   a by-reference lambda capture handed to
                   ThreadPool::Submit.  The task may run after the
                   captured frame is gone, and `&` shares every named
                   local with every worker; each such site needs an
                   explicit lifetime/ownership argument.
  atomic-contract  a std::atomic object declared without a structured
                   `anot-sync:` contract comment.  Atomics are the one
                   synchronization tool the capability analysis cannot
                   model, so the publication contract (who stores, who
                   loads, which memory order, and why it suffices) must
                   be written where the analysis would otherwise check.

Audited sites carry an annotation on the flagged line or the contiguous
`//` comment block directly above it — the reason is mandatory, an
annotation without one stays a finding:

    // anot-lint: raw-sync-ok <why the wrapper cannot be used here>
    // anot-lint: thread-ok   <who joins this thread, and when>
    // anot-lint: shared-ok   <why the captured state outlives the task>
    // anot-sync: <the atomic's publication contract>

Usage:
    concurrency_lint.py [paths...]     lint .h/.cc files (dirs recurse);
                                       exit 1 when findings remain
    concurrency_lint.py --self-test    run the fixture suite under
                                       tools/lint_selftest/
                                       (concurrency_must_flag.cc lines
                                       marked `// expect-flag: <rule>`
                                       must each fire exactly that rule;
                                       concurrency_must_pass.cc must
                                       stay silent)
"""

import argparse
import os
import re
import sys
from typing import List, Set, Tuple

from lint_common import (
    Finding,
    annotation_near,
    line_of,
    load_files,
    run_fixture_selftest,
    scan_balanced,
    strip_comments,
)

RULES = (
    "raw-sync",
    "detached-thread",
    "unjoined-thread",
    "shared-capture",
    "atomic-contract",
)

# The one file allowed to touch the std primitives: it wraps them in the
# annotated capability types everything else must use.
WRAPPER_HEADER = "thread_annotations.h"

RAW_SYNC_RE = re.compile(
    r"\bstd\s*::\s*("
    r"mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|"
    r"condition_variable(?:_any)?|"
    r"lock_guard|unique_lock|scoped_lock|shared_lock"
    r")\b"
)
DETACH_RE = re.compile(r"\.\s*detach\s*\(")
THREAD_DECL_RE = re.compile(
    r"\b(?:std\s*::\s*vector\s*<\s*)?std\s*::\s*thread\s*>?\s+"
    r"([A-Za-z_]\w*)\s*[;{=]"
)
JOIN_RE = re.compile(r"\.\s*join\s*\(")
SUBMIT_RE = re.compile(r"\bSubmit\s*\(")
ATOMIC_RE = re.compile(r"\bstd\s*::\s*atomic\s*<")

RAW_SYNC_OK_RE = re.compile(r"anot-lint:\s*raw-sync-ok(?:\s+(\S.*))?")
THREAD_OK_RE = re.compile(r"anot-lint:\s*thread-ok(?:\s+(\S.*))?")
SHARED_OK_RE = re.compile(r"anot-lint:\s*shared-ok(?:\s+(\S.*))?")
ANOT_SYNC_RE = re.compile(r"anot-sync:(?:\s+(\S.*))?")


def lint_file(path: str, text: str) -> List[Finding]:
    code = strip_comments(text)
    lines = text.splitlines()
    findings: List[Finding] = []
    seen: Set[Tuple[int, str]] = set()

    def emit(lineno: int, rule: str, message: str,
             annotation_re: "re.Pattern[str]") -> None:
        has_note, reason = annotation_near(lines, lineno, annotation_re)
        if has_note and reason:
            return  # audited site
        if has_note and not reason:
            message += " (annotation present but missing the mandatory" \
                       " reason)"
        if (lineno, rule) in seen:
            return
        seen.add((lineno, rule))
        findings.append(Finding(path, lineno, rule, message))

    # ---- raw std synchronization primitives ------------------------------
    if os.path.basename(path) != WRAPPER_HEADER:
        for m in RAW_SYNC_RE.finditer(code):
            emit(
                line_of(code, m.start()),
                "raw-sync",
                f"raw std::{m.group(1)} outside {WRAPPER_HEADER}: the "
                "thread-safety analysis cannot see it — use the annotated "
                "anot::Mutex / MutexLock / CondVar wrappers",
                RAW_SYNC_OK_RE,
            )

    # ---- detached / unjoined threads -------------------------------------
    for m in DETACH_RE.finditer(code):
        emit(
            line_of(code, m.start()),
            "detached-thread",
            "detached thread: nothing can join it, so no happens-before "
            "edge orders its writes — keep the handle and join it",
            THREAD_OK_RE,
        )
    has_join = JOIN_RE.search(code) is not None
    for m in THREAD_DECL_RE.finditer(code) if not has_join else ():
        emit(
            line_of(code, m.start()),
            "unjoined-thread",
            f"std::thread '{m.group(1)}' declared but this file never "
            "calls .join(): thread ownership needs a join path (or an "
            "audited '// anot-lint: thread-ok <who joins it>')",
            THREAD_OK_RE,
        )

    # ---- by-reference captures into ThreadPool::Submit -------------------
    for m in SUBMIT_RE.finditer(code):
        open_paren = code.index("(", m.start())
        cap_open = open_paren + 1
        while cap_open < len(code) and code[cap_open] in " \t\n":
            cap_open += 1
        if cap_open >= len(code) or code[cap_open] != "[":
            continue  # not an inline lambda
        cap_end = scan_balanced(code, cap_open, "[", "]")
        capture_list = code[cap_open:cap_end]
        if "&" not in capture_list:
            continue  # by-value captures: the task owns its state
        emit(
            line_of(code, m.start()),
            "shared-capture",
            "by-reference capture handed to ThreadPool::Submit: the task "
            "shares the captured frame with every worker — justify the "
            "lifetime with '// anot-lint: shared-ok <reason>' or capture "
            "by value",
            SHARED_OK_RE,
        )

    # ---- atomics without a publication contract --------------------------
    for m in ATOMIC_RE.finditer(code):
        open_angle = code.index("<", m.start())
        end = scan_balanced(code, open_angle, "<", ">")
        rest = code[end:]
        dm = re.match(r"\s*([A-Za-z_]\w*)\s*[;{=]", rest)
        if not dm:
            continue  # pointer/reference params, template args, casts
        emit(
            line_of(code, m.start()),
            "atomic-contract",
            f"std::atomic '{dm.group(1)}' declared without an "
            "'// anot-sync: <contract>' comment: atomics bypass the "
            "capability analysis, so the store/load pairing, memory "
            "orders, and what they publish must be documented at the "
            "declaration",
            ANOT_SYNC_RE,
        )

    return findings


def run_lint(paths: List[str]) -> List[Finding]:
    files = load_files(paths)
    findings: List[Finding] = []
    for path, text in files.items():
        findings.extend(lint_file(path, text))
    return findings


def self_test() -> int:
    here = os.path.dirname(os.path.abspath(__file__))
    fixture_dir = os.path.join(here, "lint_selftest")
    return run_fixture_selftest(
        "concurrency_lint",
        RULES,
        os.path.join(fixture_dir, "concurrency_must_flag.cc"),
        os.path.join(fixture_dir, "concurrency_must_pass.cc"),
        run_lint,
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("paths", nargs="*", help=".h/.cc files or directories")
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="run the fixture suite under tools/lint_selftest/",
    )
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.paths:
        parser.error("no paths given (and --self-test not requested)")

    findings = run_lint(args.paths)
    for f in findings:
        print(f)
    if findings:
        print(
            f"\n{len(findings)} concurrency finding(s). Move onto the "
            "annotated wrappers (src/util/thread_annotations.h), or audit "
            "the site and annotate it with the matching "
            "'// anot-lint: ...-ok <reason>' / '// anot-sync: <contract>'."
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
