#!/usr/bin/env bash
# Runs clang-tidy (profile: .clang-tidy at the repo root) over src/ using
# the compile_commands.json exported by CMake.
#
# Usage:
#   tools/run_clang_tidy.sh <build-dir> [file ...]
#
# With no file arguments every .cc under src/ is checked. CI passes the
# changed files of the PR instead, so the job stays fast while local runs
# can sweep the whole tree.
set -euo pipefail

if [[ $# -lt 1 ]]; then
  echo "usage: $0 <build-dir> [file ...]" >&2
  exit 2
fi

build_dir=$1
shift

repo_root=$(cd "$(dirname "$0")/.." && pwd)

tidy_bin=${CLANG_TIDY:-}
if [[ -z "${tidy_bin}" ]]; then
  for candidate in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
      clang-tidy-15 clang-tidy-14; do
    if command -v "${candidate}" >/dev/null 2>&1; then
      tidy_bin=${candidate}
      break
    fi
  done
fi
if [[ -z "${tidy_bin}" ]]; then
  echo "run_clang_tidy.sh: no clang-tidy binary found (set CLANG_TIDY)" >&2
  exit 3
fi

if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "run_clang_tidy.sh: ${build_dir}/compile_commands.json missing —" \
       "configure with cmake first (CMAKE_EXPORT_COMPILE_COMMANDS is on" \
       "by default)" >&2
  exit 3
fi

files=("$@")
if [[ ${#files[@]} -eq 0 ]]; then
  mapfile -t files < <(find "${repo_root}/src" -name '*.cc' | sort)
fi

# Keep only translation units that are actually in the compilation
# database (headers and test-only files are covered transitively via
# HeaderFilterRegex).
checked=()
for f in "${files[@]}"; do
  abs=$(realpath "${f}")
  if [[ "${abs}" == "${repo_root}/src/"*.cc ]] &&
     grep -Fq "${abs}" "${build_dir}/compile_commands.json"; then
    checked+=("${abs}")
  fi
done

if [[ ${#checked[@]} -eq 0 ]]; then
  echo "run_clang_tidy.sh: no src/ translation units among the inputs —" \
       "nothing to check"
  exit 0
fi

echo "run_clang_tidy.sh: ${tidy_bin} over ${#checked[@]} file(s)"
status=0
for f in "${checked[@]}"; do
  echo "  ${f#${repo_root}/}"
  "${tidy_bin}" -p "${build_dir}" --quiet "${f}" || status=1
done
exit ${status}
