// Table 6: interpretability of the rule graph — example chain and triadic
// rule edges in human-readable form.

#include "common.h"

using namespace anot;
using namespace anot::bench;

int main() {
  PrintHeader("Table 6: example rule edges");
  Workload w = MakeWorkload("icews14");
  auto train = Subgraph(*w.graph, w.split.train);
  AnoT system = AnoT::Build(*train, DefaultAnoTOptions(w.config.name));
  Explainer explainer = system.MakeExplainer();
  const RuleGraph& rules = system.rules();

  // Highest-support chain edges (excluding self-recurrence for variety).
  std::vector<std::pair<uint32_t, RuleEdgeId>> chain, triadic;
  for (RuleEdgeId e = 0; e < rules.num_edges(); ++e) {
    const RuleEdge& edge = rules.edge(e);
    if (edge.kind == RuleEdgeKind::kChain && edge.head != edge.tail) {
      chain.push_back({edge.support, e});
    } else if (edge.kind == RuleEdgeKind::kTriadic) {
      triadic.push_back({edge.support, e});
    }
  }
  std::sort(chain.rbegin(), chain.rend());
  std::sort(triadic.rbegin(), triadic.rend());

  std::printf("chain rule edges:\n");
  for (size_t i = 0; i < std::min<size_t>(4, chain.size()); ++i) {
    const RuleEdge& edge = rules.edge(chain[i].second);
    std::printf("  %s -> %s  [support %u, median timespan %lld]\n",
                explainer.DescribeRule(edge.head).c_str(),
                explainer.DescribeRule(edge.tail).c_str(), edge.support,
                static_cast<long long>(
                    edge.timespans[edge.timespans.size() / 2]));
  }
  std::printf("\ntriadic rule edges:\n");
  for (size_t i = 0; i < std::min<size_t>(4, triadic.size()); ++i) {
    const RuleEdge& edge = rules.edge(triadic[i].second);
    std::printf("  (%s, %s) -> %s  [support %u]\n",
                explainer.DescribeRule(edge.head).c_str(),
                explainer.DescribeRule(edge.mid).c_str(),
                explainer.DescribeRule(edge.tail).c_str(), edge.support);
  }
  if (triadic.empty()) std::printf("  (none selected at this scale)\n");
  return 0;
}
