// Figure 10a: duration-adaptation strategies (midpoint average /
// start-only / end-only / the paper's four rule graphs) on Wikidata.
// Figure 10b: proportion of facts each of the four rule graphs explains,
// as k grows.

#include "common.h"

using namespace anot;
using namespace anot::bench;

int main() {
  PrintHeader("Figure 10: duration-TKG strategies");
  Workload w = MakeWorkload("wikidata");
  ProtocolOptions popts;
  popts.injector.perturb_durations = true;

  // ---- (a) adaptation strategies: one sweep cell per strategy -------------
  std::vector<SweepCell> cells;
  for (DurationStrategy strategy :
       {DurationStrategy::kAverage, DurationStrategy::kStartOnly,
        DurationStrategy::kEndOnly, DurationStrategy::kFourGraphs}) {
    AnoTOptions options = SweepCellAnoTOptions(w.config.name);
    cells.push_back(MakeCell(
        w, popts, DurationStrategyName(strategy),
        ModelFactory<DurationAnoTModel>(
            options, strategy, std::string(DurationStrategyName(strategy)))));
  }
  const std::vector<EvalResult> results =
      RunHarnessSweep(std::move(cells)).Results();
  std::vector<std::vector<std::string>> rows_a;
  for (const EvalResult& r : results) {
    rows_a.push_back({r.model, FormatDouble(r.time.f_beta, 3),
                      FormatDouble(r.missing.f_beta, 3)});
  }
  std::printf("(a) adaptation strategies:\n%s\n",
              Reporter::RenderTable(
                  {"strategy", "time F0.5", "missing F0.5"}, rows_a)
                  .c_str());

  // ---- (b) per-rule-graph association coverage vs k -------------------------
  std::vector<std::vector<std::string>> rows_b;
  auto train = Subgraph(*w.graph, w.split.train);
  for (size_t k : {1u, 3u, 5u, 10u}) {
    AnoTOptions options = DefaultAnoTOptions(w.config.name);
    options.detector.category.max_categories_per_entity = k;
    DurationAnoT system =
        DurationAnoT::Build(*train, options, DurationStrategy::kFourGraphs);
    std::vector<std::string> row{std::to_string(k)};
    for (size_t v = 0; v < system.num_views(); ++v) {
      row.push_back(FormatDouble(
          system.view(v).report().associated_fraction, 3));
    }
    rows_b.push_back(std::move(row));
  }
  std::printf("(b) facts explained (associated) per rule graph:\n%s\n",
              Reporter::RenderTable(
                  {"k", "ST-ST", "ED-ED", "ST-ED", "ED-ST"}, rows_b)
                  .c_str());
  return 0;
}
