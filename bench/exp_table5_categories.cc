// Table 5: interpretability of the category function — example entity
// categories (relation combinations) and their member entities.

#include "common.h"
#include "mining/category_function.h"

using namespace anot;
using namespace anot::bench;

int main() {
  PrintHeader("Table 5: example entity categories");
  Workload w = MakeWorkload("icews14");
  auto train = Subgraph(*w.graph, w.split.train);
  AnoTOptions options = DefaultAnoTOptions(w.config.name);
  auto categories =
      CategoryFunction::Build(*train, options.detector.category);

  std::printf("%zu categories mined\n\n", categories.num_categories());
  // Show the widest multi-relation categories: those are the readable ones.
  std::vector<std::pair<size_t, CategoryId>> ranked;
  for (CategoryId c = 0; c < categories.num_categories(); ++c) {
    if (categories.Combination(c).size() < 2) continue;
    ranked.push_back({categories.Members(c).size(), c});
  }
  std::sort(ranked.rbegin(), ranked.rend());
  size_t shown = 0;
  for (const auto& [size, c] : ranked) {
    std::printf("category (%s)\n", categories.Describe(c, *train).c_str());
    std::printf("  members (%zu):", size);
    size_t listed = 0;
    for (EntityId e : categories.Members(c)) {
      std::printf(" %s", train->EntityName(e).c_str());
      if (++listed >= 4) break;
    }
    std::printf("\n");
    if (++shown >= 6) break;
  }
  return 0;
}
