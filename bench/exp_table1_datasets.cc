// Table 1: statistics of the (synthetic) datasets, with injected anomaly
// counts N_c / N_t / N_m at the paper's 15% rate.

#include "anomaly/injector.h"
#include "common.h"
#include "tkg/stats.h"

using namespace anot;
using namespace anot::bench;

int main() {
  PrintHeader("Table 1: dataset statistics");
  std::vector<std::vector<std::string>> rows;
  for (const char* name :
       {"icews14", "icews05-15", "yago11k", "gdelt", "wikidata"}) {
    Workload w = MakeWorkload(name);
    TkgStats stats = ComputeStats(*w.graph);
    // The paper injects 15% of evaluation knowledge per anomaly type.
    AnomalyInjector injector(InjectorConfig{});
    EvalStream val = injector.Inject(*w.graph, w.split.val);
    EvalStream test = injector.Inject(*w.graph, w.split.test);
    size_t n_c = 0, n_t = 0, n_m = 0;
    for (const auto& stream : {&val, &test}) {
      for (const auto& lf : stream->arrivals) {
        n_c += lf.label == AnomalyType::kConceptual;
        n_t += lf.label == AnomalyType::kTime;
      }
      for (const auto& lf : stream->missing_candidates) {
        n_m += lf.label == AnomalyType::kMissing;
      }
    }
    rows.push_back({w.config.name, std::to_string(stats.num_entities),
                    std::to_string(stats.num_relations),
                    std::to_string(stats.num_timestamps),
                    std::to_string(stats.num_facts), std::to_string(n_c),
                    std::to_string(n_t), std::to_string(n_m)});
  }
  std::printf("%s\n",
              Reporter::RenderTable(
                  {"Dataset", "|E|", "|R|", "|T|", "|F|", "Nc", "Nt", "Nm"},
                  rows)
                  .c_str());
  return 0;
}
