// Google-benchmark micro benchmarks for the performance-critical paths:
// TKG ingestion, PrefixSpan mining, MDL primitives, rule-graph
// construction, scoring, and the online updater.

#include <benchmark/benchmark.h>

#include <filesystem>

#include "core/anot.h"
#include "core/duration.h"
#include "io/checkpoint.h"
#include "datagen/generator.h"
#include "mdl/encoding.h"
#include "mining/category_function.h"
#include "mining/prefixspan.h"
#include "tkg/split.h"
#include "util/timer.h"

namespace anot {
namespace {

GeneratorConfig BenchWorld(size_t facts) {
  GeneratorConfig cfg;
  cfg.num_entities = 400;
  cfg.num_relations = 40;
  cfg.num_timestamps = 200;
  cfg.num_facts = facts;
  cfg.num_categories = 8;
  cfg.seed = 7;
  return cfg;
}

// anot-lint: lifetime-ok returns a function-local static leaked for the
// whole benchmark process (immortal storage)
const TemporalKnowledgeGraph& SharedGraph() {
  static auto* graph = [] {
    SyntheticGenerator gen(BenchWorld(12000));
    return gen.Generate().release();
  }();
  return *graph;
}

// anot-lint: lifetime-ok returns a function-local static leaked for the
// whole benchmark process (immortal storage)
const AnoT& SharedSystem() {
  static auto* system = [] {
    TimeSplit split = SplitByTimestamps(SharedGraph(), 0.6, 0.1);
    auto train = Subgraph(SharedGraph(), split.train);
    AnoTOptions options;
    options.detector.timespan_tolerance = 10;
    return new AnoT(AnoT::Build(*train, options));
  }();
  return *system;
}

void BM_TkgAddFact(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    TemporalKnowledgeGraph g;
    state.ResumeTiming();
    for (uint32_t i = 0; i < 2000; ++i) {
      g.AddFact(Fact(i % 97, i % 13, (i * 7) % 89, i % 50));
    }
    benchmark::DoNotOptimize(g.num_facts());
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_TkgAddFact);

// Dictionary probe throughput: string_view lookups against an interned
// symbol table. The transparent-hash dense map must answer these without
// allocating a temporary std::string per probe (the pre-overhaul
// std::unordered_map<std::string, ...> could not).
void BM_DictionaryProbe(benchmark::State& state) {
  Dictionary dict;
  std::vector<std::string> names;
  names.reserve(4096);
  for (int i = 0; i < 4096; ++i) {
    names.push_back("entity_" + std::to_string(i * 37 % 4096));
    dict.GetOrAdd(names.back());
  }
  uint64_t hits = 0;
  for (auto _ : state) {
    for (const std::string& n : names) {
      hits += dict.TryGet(std::string_view(n)).has_value();
    }
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(state.iterations() * names.size());
}
BENCHMARK(BM_DictionaryProbe);

void BM_TkgPairLookup(benchmark::State& state) {
  const auto& g = SharedGraph();
  uint64_t found = 0;
  for (auto _ : state) {
    for (const Fact& f : g.facts()) {
      found += g.FactsForPair(f.subject, f.object) != nullptr;
    }
  }
  benchmark::DoNotOptimize(found);
  state.SetItemsProcessed(state.iterations() * g.num_facts());
}
BENCHMARK(BM_TkgPairLookup);

void BM_PrefixSpan(benchmark::State& state) {
  const auto& g = SharedGraph();
  std::vector<std::vector<uint32_t>> txns(g.num_entities());
  for (EntityId e = 0; e < g.num_entities(); ++e) {
    const auto& tokens = g.RelationTokens(e);
    txns[e].assign(tokens.begin(), tokens.end());
    std::sort(txns[e].begin(), txns[e].end());
  }
  PrefixSpan::Options opts;
  opts.min_support = 5;
  for (auto _ : state) {
    auto patterns = PrefixSpan::Mine(txns, opts);
    benchmark::DoNotOptimize(patterns.size());
  }
}
BENCHMARK(BM_PrefixSpan);

void BM_CategoryFunctionBuild(benchmark::State& state) {
  const auto& g = SharedGraph();
  CategoryFunctionOptions opts;
  for (auto _ : state) {
    auto fn = CategoryFunction::Build(g, opts);
    benchmark::DoNotOptimize(fn.num_categories());
  }
}
BENCHMARK(BM_CategoryFunctionBuild);

void BM_MdlNegativeErrorBits(benchmark::State& state) {
  double acc = 0;
  for (auto _ : state) {
    for (int i = 0; i < 1000; ++i) {
      acc += NegativeErrorBitsAt(1e10, 1e3, 50, i % 50, i % 20);
    }
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_MdlNegativeErrorBits);

// Offline rule-graph construction at 1/2/4 worker threads. The build is
// bit-identical across thread counts, so the rows are directly comparable
// speedup measurements; threaded rows verify that identity against a
// 1-thread reference before timing (on the small world only — identity is
// thread-count-dependent, not size-dependent) and fail the benchmark if
// the outputs ever disagree.
void BM_RuleGraphBuild(benchmark::State& state) {
  const size_t facts = static_cast<size_t>(state.range(0));
  SyntheticGenerator gen(BenchWorld(facts));
  auto graph = gen.Generate();
  AnoTOptions options;
  options.detector.timespan_tolerance = 10;
  options.num_threads = static_cast<size_t>(state.range(1));
  if (options.num_threads > 1 && facts <= 3000) {
    AnoTOptions serial_options = options;
    serial_options.num_threads = 1;
    AnoT serial = AnoT::Build(*graph, serial_options);
    AnoT parallel = AnoT::Build(*graph, options);
    if (serial.rules().num_rules() != parallel.rules().num_rules() ||
        serial.rules().num_edges() != parallel.rules().num_edges() ||
        serial.report().total_bits() != parallel.report().total_bits()) {
      state.SkipWithError(
          "1-thread and N-thread builds disagree; timings are meaningless");
      return;
    }
  }
  for (auto _ : state) {
    AnoT system = AnoT::Build(*graph, options);
    benchmark::DoNotOptimize(system.rules().num_edges());
  }
  state.SetItemsProcessed(state.iterations() * graph->num_facts());
}
BENCHMARK(BM_RuleGraphBuild)
    ->ArgsProduct({{3000, 12000}, {1, 2, 4}})
    ->ArgNames({"facts", "threads"});

// Offline build with the greedy-selection strategy as the axis:
// speculative Δ-evaluation (the default; parallel per-sweep candidate
// deltas + serial rank-order admission) vs the reference serial loop, at
// 1/4 worker threads. Selection is bit-identical across strategies and
// thread counts, so rows are directly comparable; every row first
// verifies that identity against a 1-thread serial-loop reference (the
// same equivalence gate BM_ProcessArrivalBatch uses) and fails the
// benchmark if the paths ever disagree.
void BM_GreedySelection(benchmark::State& state) {
  SyntheticGenerator gen(BenchWorld(3000));
  auto graph = gen.Generate();
  AnoTOptions options;
  options.detector.timespan_tolerance = 10;
  options.detector.speculative_selection = state.range(0) != 0;
  options.num_threads = static_cast<size_t>(state.range(1));

  AnoTOptions reference_options = options;
  reference_options.detector.speculative_selection = false;
  reference_options.num_threads = 1;
  AnoT reference = AnoT::Build(*graph, reference_options);
  AnoT candidate = AnoT::Build(*graph, options);
  if (reference.rules().num_rules() != candidate.rules().num_rules() ||
      reference.rules().num_edges() != candidate.rules().num_edges() ||
      reference.report().total_bits() != candidate.report().total_bits()) {
    state.SkipWithError(
        "speculative and serial-loop selection disagree; timings are "
        "meaningless");
    return;
  }

  for (auto _ : state) {
    AnoT system = AnoT::Build(*graph, options);
    benchmark::DoNotOptimize(system.rules().num_edges());
  }
  state.SetItemsProcessed(state.iterations() * graph->num_facts());
}
BENCHMARK(BM_GreedySelection)
    ->ArgsProduct({{0, 1}, {1, 4}})
    ->ArgNames({"speculative", "threads"});

// Four-view duration ensemble build (§4.7): views parallelize across the
// pool on top of the sharded per-view pipeline.
void BM_DurationFourViewBuild(benchmark::State& state) {
  SyntheticGenerator gen(BenchWorld(3000));
  auto graph = gen.Generate();
  AnoTOptions options;
  options.detector.timespan_tolerance = 10;
  options.num_threads = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    DurationAnoT system =
        DurationAnoT::Build(*graph, options, DurationStrategy::kFourGraphs);
    benchmark::DoNotOptimize(system.num_views());
  }
}
BENCHMARK(BM_DurationFourViewBuild)->Arg(1)->Arg(4)->ArgName("threads");

// Batched const scoring on the serving pool at 1/2/4 threads. Scores are
// bit-identical to scalar Score for every thread count (pinned by
// online_test), so rows are directly comparable speedup measurements.
void BM_ScoreBatch(benchmark::State& state) {
  TimeSplit split = SplitByTimestamps(SharedGraph(), 0.6, 0.1);
  auto train = Subgraph(SharedGraph(), split.train);
  AnoTOptions options;
  options.detector.timespan_tolerance = 10;
  options.num_threads = static_cast<size_t>(state.range(0));
  AnoT system = AnoT::Build(*train, options);

  const size_t batch_size = static_cast<size_t>(state.range(1));
  std::vector<Fact> batch(batch_size);
  size_t next = 0;
  for (auto _ : state) {
    for (size_t i = 0; i < batch_size; ++i) {
      batch[i] = SharedGraph().fact(split.test[next++ % split.test.size()]);
    }
    std::vector<Scores> scores = system.ScoreBatch(batch);
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(state.iterations() * batch_size);
}
BENCHMARK(BM_ScoreBatch)
    ->ArgsProduct({{1, 2, 4}, {16, 64}})
    ->ArgNames({"threads", "batch"});

// Full batched online step: speculative parallel scoring + ordered commit
// + threshold-gated ingest. Threaded rows verify score equivalence against
// the sequential ProcessArrival loop on a slice before timing and fail the
// benchmark if the paths ever disagree.
void BM_ProcessArrivalBatch(benchmark::State& state) {
  TimeSplit split = SplitByTimestamps(SharedGraph(), 0.6, 0.1);
  auto train = Subgraph(SharedGraph(), split.train);
  AnoTOptions options;
  options.detector.timespan_tolerance = 10;
  options.num_threads = static_cast<size_t>(state.range(0));
  const size_t batch_size = static_cast<size_t>(state.range(1));

  if (options.num_threads > 1) {
    const size_t slice = std::min<size_t>(256, split.test.size());
    AnoTOptions serial_options = options;
    serial_options.num_threads = 1;
    AnoT serial = AnoT::Build(*train, serial_options);
    AnoT parallel = AnoT::Build(*train, options);
    std::vector<Fact> facts;
    for (size_t i = 0; i < slice; ++i) {
      facts.push_back(SharedGraph().fact(split.test[i]));
    }
    std::vector<Scores> sequential_scores;
    for (const Fact& f : facts) {
      sequential_scores.push_back(serial.ProcessArrival(f));
    }
    const std::vector<Scores> batched_scores =
        parallel.ProcessArrivalBatch(facts);
    for (size_t i = 0; i < slice; ++i) {
      if (sequential_scores[i].static_score !=
              batched_scores[i].static_score ||
          sequential_scores[i].temporal_score !=
              batched_scores[i].temporal_score) {
        state.SkipWithError(
            "sequential and batched arrival paths disagree; timings are "
            "meaningless");
        return;
      }
    }
  }

  AnoT system = AnoT::Build(*train, options);
  std::vector<Fact> batch(batch_size);
  size_t next = 0;
  for (auto _ : state) {
    for (size_t i = 0; i < batch_size; ++i) {
      batch[i] = SharedGraph().fact(split.test[next++ % split.test.size()]);
    }
    std::vector<Scores> scores = system.ProcessArrivalBatch(batch);
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(state.iterations() * batch_size);
}
BENCHMARK(BM_ProcessArrivalBatch)
    ->ArgsProduct({{1, 4}, {64}})
    ->ArgNames({"threads", "batch"});

// Full-state checkpoint write + read-back of the shared detector. Before
// any timing, the restored detector must score a probe slice identically
// to the original (the BM_ProcessArrivalBatch equivalence-gate pattern):
// a fast but wrong serializer must fail the benchmark, not win it.
void BM_CheckpointSaveLoad(benchmark::State& state) {
  const bool load = state.range(0) != 0;
  const AnoT& system = SharedSystem();
  const std::string path =
      (std::filesystem::temp_directory_path() / "anot_bm_ckpt.bin").string();
  if (!system.SaveCheckpoint(path).ok()) {
    state.SkipWithError("checkpoint save failed");
    return;
  }
  {
    Result<AnoT> restored = AnoT::LoadCheckpoint(path);
    if (!restored.ok()) {
      state.SkipWithError("checkpoint load failed");
      return;
    }
    const auto& facts = SharedGraph().facts();
    for (size_t i = 0; i < std::min<size_t>(256, facts.size()); ++i) {
      const Scores a = system.Score(facts[i]);
      const Scores b = restored.value().Score(facts[i]);
      if (a.static_score != b.static_score ||
          a.temporal_score != b.temporal_score) {
        state.SkipWithError(
            "restored detector diverges from the original; timings are "
            "meaningless");
        return;
      }
    }
  }
  for (auto _ : state) {
    if (load) {
      Result<AnoT> restored = AnoT::LoadCheckpoint(path);
      benchmark::DoNotOptimize(restored.ok());
    } else {
      const Status st = system.SaveCheckpoint(path);
      benchmark::DoNotOptimize(st.ok());
    }
  }
  state.SetBytesProcessed(
      static_cast<int64_t>(state.iterations() *
                           std::filesystem::file_size(path)));
  std::filesystem::remove(path);
}
BENCHMARK(BM_CheckpointSaveLoad)->Arg(0)->Arg(1)->ArgName("load");

void BM_StaticAndTemporalScoring(benchmark::State& state) {
  const AnoT& system = SharedSystem();
  const auto& facts = SharedGraph().facts();
  size_t i = 0;
  for (auto _ : state) {
    const Scores s = system.Score(facts[i++ % facts.size()]);
    benchmark::DoNotOptimize(s.temporal_score);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StaticAndTemporalScoring);

// Worst per-arrival stall while a rule-graph refresh runs. Synchronous
// mode pays the entire rebuild inside the arrival that triggered it;
// asynchronous mode snapshots, rebuilds on a background thread while the
// old scorer keeps serving, and charges only the snapshot copy plus the
// swap replay to arrivals. The max_stall_us counter is the comparison:
// async must be >= 10x below sync (the PR's latency-cliff acceptance).
void BM_RefreshStall(benchmark::State& state) {
  const bool async = state.range(0) != 0;
  TimeSplit split = SplitByTimestamps(SharedGraph(), 0.6, 0.1);
  auto train = Subgraph(SharedGraph(), split.train);
  AnoTOptions options;
  options.detector.timespan_tolerance = 10;
  options.refresh_mode =
      async ? RefreshMode::kAsynchronous : RefreshMode::kSynchronous;
  AnoT system = AnoT::Build(*train, options);

  const size_t kArrivals = 256;
  double max_stall_us = 0.0;
  size_t next = 0;
  auto timed_arrival = [&](bool trigger_refresh) {
    const Fact f =
        SharedGraph().fact(split.test[next++ % split.test.size()]);
    WallTimer timer;
    if (trigger_refresh) {
      // Emulates the monitor firing at this commit.
      if (async) {
        system.RefreshAsync();
      } else {
        system.Refresh();
      }
    }
    system.ProcessArrival(f);
    max_stall_us = std::max(max_stall_us, timer.ElapsedSeconds() * 1e6);
  };
  for (auto _ : state) {
    for (size_t i = 0; i < kArrivals; ++i) timed_arrival(i == 0);
    if (async) {
      // The background build outlives the short arrival burst; charge the
      // swap (adopt + replay) to the arrival whose commit performs it,
      // excluding the idle wait for the builder.
      system.WaitForRefreshReady();
      timed_arrival(false);
    }
  }
  state.counters["max_stall_us"] = max_stall_us;
  state.SetItemsProcessed(state.iterations() * kArrivals);
}
BENCHMARK(BM_RefreshStall)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("async")
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

void BM_UpdaterIngest(benchmark::State& state) {
  TimeSplit split = SplitByTimestamps(SharedGraph(), 0.6, 0.1);
  auto train = Subgraph(SharedGraph(), split.train);
  AnoTOptions options;
  options.detector.timespan_tolerance = 10;
  AnoT system = AnoT::Build(*train, options);
  size_t i = 0;
  for (auto _ : state) {
    const Fact& f = SharedGraph().fact(split.test[i++ % split.test.size()]);
    benchmark::DoNotOptimize(system.IngestValid(f).added_fact);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UpdaterIngest);

}  // namespace
}  // namespace anot

BENCHMARK_MAIN();
