#pragma once

// Shared helpers for the experiment harnesses (one binary per paper
// table/figure). Every harness prints the scale it ran at; set ANOT_SCALE
// to trade fidelity for runtime (1.0 = paper-scale statistics) and
// ANOT_THREADS to pin the offline-build worker count (default: one per
// hardware thread; results are bit-identical for every value).

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "baselines/registry.h"
#include "core/anot.h"
#include "datagen/generator.h"
#include "datagen/presets.h"
#include "eval/anot_model.h"
#include "eval/protocol.h"
#include "eval/report.h"
#include "tkg/split.h"
#include "util/string_util.h"

namespace anot::bench {

/// Worker count for the offline build and the batched serving pool:
/// ANOT_THREADS when set (0 = auto), else one worker per hardware
/// thread. Unparseable, negative, or absurd values
/// (strtoul wraps "-1" to ULONG_MAX) fall back to auto instead of asking
/// ThreadPool for billions of workers.
inline size_t EnvThreads() {
  const char* raw = std::getenv("ANOT_THREADS");
  if (raw == nullptr || *raw == '\0') return 0;
  char* end = nullptr;
  const unsigned long value = std::strtoul(raw, &end, 10);
  constexpr unsigned long kMaxThreads = 1024;
  if (end == raw || *raw == '-' || value > kMaxThreads) return 0;
  return static_cast<size_t>(value);
}

/// Per-dataset AnoT hyper-parameters (grid-search winners, §5.2: the
/// timespan restriction L tracks each dataset's temporal footprint).
inline AnoTOptions DefaultAnoTOptions(const std::string& dataset) {
  AnoTOptions options;
  options.num_threads = EnvThreads();
  options.detector.category.max_categories_per_entity = 3;
  options.detector.category.min_support = 4;
  options.detector.max_recursion_steps = 2;
  if (dataset == "ICEWS14") {
    options.detector.timespan_tolerance = 10;
  } else if (dataset == "ICEWS05-15") {
    options.detector.timespan_tolerance = 100;
  } else if (dataset == "YAGO11k") {
    options.detector.timespan_tolerance = 50;
  } else if (dataset == "GDELT") {
    options.detector.timespan_tolerance = 75;
  } else if (dataset == "Wikidata") {
    options.detector.timespan_tolerance = 60;
  } else {
    options.detector.timespan_tolerance = 50;
  }
  return options;
}

struct Workload {
  GeneratorConfig config;
  std::unique_ptr<TemporalKnowledgeGraph> graph;
  TimeSplit split;
};

/// Generates a preset at its default bench scale (times ANOT_SCALE) and
/// splits it 60/10/30.
inline Workload MakeWorkload(const std::string& preset_name) {
  const double scale = DatasetPresets::DefaultBenchScale(preset_name) *
                       DatasetPresets::EnvScale();
  Workload w;
  w.config = DatasetPresets::ByName(preset_name, scale).MoveValue();
  SyntheticGenerator gen(w.config);
  w.graph = gen.Generate();
  w.split = SplitByTimestamps(*w.graph, 0.6, 0.1);
  return w;
}

inline void PrintHeader(const char* what) {
  std::printf("=== %s ===\n", what);
  std::printf(
      "(synthetic presets mirroring Table 1 statistics; ANOT_SCALE=%.3g; "
      "see DESIGN.md for the substitution rationale)\n\n",
      DatasetPresets::EnvScale());
}

inline EvalResult RunModelOnWorkload(const Workload& w, AnomalyModel* model,
                                     const ProtocolOptions& popts) {
  EvalResult result = RunProtocol(*w.graph, w.split, model, popts);
  result.dataset = w.config.name;
  return result;
}

}  // namespace anot::bench
