#pragma once

// Shared helpers for the experiment harnesses (one binary per paper
// table/figure). Every harness prints the scale it ran at; set ANOT_SCALE
// to trade fidelity for runtime (1.0 = paper-scale statistics) and
// ANOT_THREADS to pin the worker count used both for each model's offline
// build and for the experiment sweep pool that fits/scores the
// (dataset, model) grid (default: one per hardware thread). Every
// *metric* field a harness prints is bit-identical for every value;
// timing-derived output — the sweep block on stderr, and the
// throughput columns of the fig7/fig8 tables — varies with the worker
// count and from run to run.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baselines/registry.h"
#include "core/anot.h"
#include "datagen/generator.h"
#include "datagen/presets.h"
#include "eval/anot_model.h"
#include "eval/protocol.h"
#include "eval/report.h"
#include "eval/sweep.h"
#include "tkg/split.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace anot::bench {

/// Worker count for the offline build and the batched serving pool:
/// ANOT_THREADS when set (0 = auto), else one worker per hardware
/// thread. Unparseable, negative, or absurd values
/// (strtoul wraps "-1" to ULONG_MAX) fall back to auto instead of asking
/// ThreadPool for billions of workers.
inline size_t EnvThreads() {
  const char* raw = std::getenv("ANOT_THREADS");
  if (raw == nullptr || *raw == '\0') return 0;
  char* end = nullptr;
  const unsigned long value = std::strtoul(raw, &end, 10);
  constexpr unsigned long kMaxThreads = 1024;
  if (end == raw || *raw == '-' || value > kMaxThreads) return 0;
  return static_cast<size_t>(value);
}

/// Per-dataset AnoT hyper-parameters (grid-search winners, §5.2: the
/// timespan restriction L tracks each dataset's temporal footprint).
inline AnoTOptions DefaultAnoTOptions(const std::string& dataset) {
  AnoTOptions options;
  options.num_threads = EnvThreads();
  options.detector.category.max_categories_per_entity = 3;
  options.detector.category.min_support = 4;
  options.detector.max_recursion_steps = 2;
  if (dataset == "ICEWS14") {
    options.detector.timespan_tolerance = 10;
  } else if (dataset == "ICEWS05-15") {
    options.detector.timespan_tolerance = 100;
  } else if (dataset == "YAGO11k") {
    options.detector.timespan_tolerance = 50;
  } else if (dataset == "GDELT") {
    options.detector.timespan_tolerance = 75;
  } else if (dataset == "Wikidata") {
    options.detector.timespan_tolerance = 60;
  } else {
    options.detector.timespan_tolerance = 50;
  }
  return options;
}

struct Workload {
  GeneratorConfig config;
  std::unique_ptr<TemporalKnowledgeGraph> graph;
  TimeSplit split;
};

/// Generates a preset at its default bench scale (times ANOT_SCALE) and
/// splits it 60/10/30.
inline Workload MakeWorkload(const std::string& preset_name) {
  const double scale = DatasetPresets::DefaultBenchScale(preset_name) *
                       DatasetPresets::EnvScale();
  Workload w;
  w.config = DatasetPresets::ByName(preset_name, scale).MoveValue();
  SyntheticGenerator gen(w.config);
  w.graph = gen.Generate();
  w.split = SplitByTimestamps(*w.graph, 0.6, 0.1);
  return w;
}

inline void PrintHeader(const char* what) {
  std::printf("=== %s ===\n", what);
  std::printf(
      "(synthetic presets mirroring Table 1 statistics; ANOT_SCALE=%.3g; "
      "see DESIGN.md for the substitution rationale)\n\n",
      DatasetPresets::EnvScale());
}

/// AnoT options for a *sweep cell*: when the sweep pool itself is
/// parallel, each cell builds and serves with one inner thread — the
/// cells are the parallelism, and N sweep workers each spawning N build
/// workers would oversubscribe the machine. Harmless to results either
/// way: builds and batched scoring are bit-identical for every thread
/// count.
inline AnoTOptions SweepCellAnoTOptions(const std::string& dataset) {
  AnoTOptions options = DefaultAnoTOptions(dataset);
  if (ResolveNumThreads(EnvThreads()) > 1) options.num_threads = 1;
  return options;
}

/// One grid cell over a harness workload. The factory runs inside the
/// cell's own sweep task (per-model RNG seeds never cross cells); the
/// workload is shared const and must outlive the sweep.
inline SweepCell MakeCell(
    const Workload& w, const ProtocolOptions& popts, std::string label,
    std::function<Result<std::unique_ptr<AnomalyModel>>()> factory) {
  SweepCell cell;
  cell.graph = w.graph.get();
  cell.split = &w.split;
  cell.protocol = popts;
  cell.dataset = w.config.name;
  cell.label = std::move(label);
  cell.factory = std::move(factory);
  return cell;
}

/// A registry-baseline cell (paper-default seeds).
inline SweepCell BaselineCell(const Workload& w,
                              const ProtocolOptions& popts,
                              const std::string& name) {
  return MakeCell(w, popts, name, [name] { return MakeBaseline(name); });
}

/// Runs a harness grid on the ANOT_THREADS sweep pool (1 = the reference
/// serial loop) and returns the full SweepResult, cells in declared
/// order — the exact sequence the pre-sweep serial loops produced, each
/// carrying its label and dataset so harnesses never maintain
/// index-parallel bookkeeping. The per-cell timing + speedup block goes
/// to stderr so stdout stays byte-identical across worker counts; a
/// failed cell aborts loudly, because a silently dropped cell would skew
/// every mean the harnesses print.
inline SweepResult RunHarnessSweep(std::vector<SweepCell> cells) {
  SweepSpec spec;
  spec.cells = std::move(cells);
  spec.num_threads = EnvThreads();
  const size_t declared = spec.cells.size();
  SweepResult sweep = RunSweep(spec);
  std::fprintf(stderr, "%s", Reporter::RenderSweepTiming(sweep).c_str());
  for (const SweepCellResult& cell : sweep.cells) {
    ANOT_CHECK(cell.status.ok())
        << "sweep cell " << cell.dataset << "/" << cell.label
        << " failed: " << cell.status.ToString();
  }
  ANOT_CHECK(sweep.cells.size() == declared);
  return sweep;
}

}  // namespace anot::bench
