// Figure 7: time/missing AUC and detection throughput vs the number of
// recursive steps K in {1, 2, 3, 4}. All 16 (dataset, K) cells run as one
// experiment sweep on the ANOT_THREADS pool.

#include <deque>

#include "common.h"

using namespace anot;
using namespace anot::bench;

int main() {
  PrintHeader("Figure 7: AUC and throughput vs recursion depth K");
  ProtocolOptions popts;

  std::deque<Workload> workloads;
  for (const char* dataset : {"icews14", "icews05-15", "yago11k", "gdelt"}) {
    workloads.push_back(MakeWorkload(dataset));
  }

  std::vector<SweepCell> cells;
  for (const Workload& w : workloads) {
    for (size_t k : {1u, 2u, 3u, 4u}) {
      AnoTOptions options = SweepCellAnoTOptions(w.config.name);
      options.detector.max_recursion_steps = k;
      cells.push_back(MakeCell(w, popts, std::to_string(k),
                               ModelFactory<AnoTModel>(options)));
    }
  }
  const SweepResult sweep = RunHarnessSweep(std::move(cells));

  // The throughput column is a timing measurement: it varies from run to
  // run, and with ANOT_THREADS > 1 concurrent cells contend for cores —
  // for clean paper-figure throughput numbers, run with ANOT_THREADS=1.
  std::vector<std::vector<std::string>> rows;
  for (const SweepCellResult& cell : sweep.cells) {
    rows.push_back({cell.dataset, cell.label,
                    FormatDouble(cell.result.time.pr_auc, 3),
                    FormatDouble(cell.result.missing.pr_auc, 3),
                    StrFormat("%.0f", cell.result.throughput)});
  }
  std::printf("%s\n", Reporter::RenderTable({"Dataset", "K", "time AUC",
                                             "missing AUC",
                                             "throughput (samples/s)"},
                                            rows)
                          .c_str());
  return 0;
}
