// Figure 7: time/missing AUC and detection throughput vs the number of
// recursive steps K in {1, 2, 3, 4}.

#include "common.h"

using namespace anot;
using namespace anot::bench;

int main() {
  PrintHeader("Figure 7: AUC and throughput vs recursion depth K");
  ProtocolOptions popts;
  std::vector<std::vector<std::string>> rows;
  for (const char* dataset : {"icews14", "icews05-15", "yago11k", "gdelt"}) {
    Workload w = MakeWorkload(dataset);
    for (size_t k : {1u, 2u, 3u, 4u}) {
      AnoTOptions options = DefaultAnoTOptions(w.config.name);
      options.detector.max_recursion_steps = k;
      AnoTModel model(options);
      EvalResult r = RunModelOnWorkload(w, &model, popts);
      rows.push_back({w.config.name, std::to_string(k),
                      FormatDouble(r.time.pr_auc, 3),
                      FormatDouble(r.missing.pr_auc, 3),
                      StrFormat("%.0f", r.throughput)});
    }
  }
  std::printf("%s\n", Reporter::RenderTable({"Dataset", "K", "time AUC",
                                             "missing AUC",
                                             "throughput (samples/s)"},
                                            rows)
                          .c_str());
  return 0;
}
