// Figure 6: inductive detection F-score across test timestamps with and
// without the updater module (ICEWS14 and GDELT).

#include "anomaly/injector.h"
#include "common.h"
#include "eval/metrics.h"

using namespace anot;
using namespace anot::bench;

namespace {

/// Stream scoring micro-batch cap (same knob RunProtocol defaults to);
/// the series is bit-identical to the per-fact loop for every value.
constexpr size_t kScoreBatch = 64;

/// Scores the test stream bucketed into `buckets` timestamp groups and
/// returns the per-bucket conceptual F0.5 (threshold tuned on validation).
/// Both windows flow through the protocol's batched scoring path, with
/// the observe-valid feedback as the batch boundary.
std::vector<double> FScoreSeries(const Workload& w, bool with_updater,
                                 size_t buckets) {
  AnoTOptions options = DefaultAnoTOptions(w.config.name);
  options.enable_updater = with_updater;
  AnoTModel model(options);
  auto train = Subgraph(*w.graph, w.split.train);
  model.Fit(*train);

  AnomalyInjector val_inj(InjectorConfig{.seed = 99});
  EvalStream val = val_inj.Inject(*w.graph, w.split.val);
  std::vector<ScoredExample> val_examples;
  ForEachScoredArrival(
      val.arrivals, &model, /*observe_valid=*/true, kScoreBatch,
      [&](size_t i, const AnomalyModel::TaskScores& s) {
        val_examples.push_back(
            {s.conceptual, val.arrivals[i].label == AnomalyType::kConceptual});
      });
  const double threshold = TuneThreshold(val_examples, 0.5).threshold;

  AnomalyInjector test_inj(InjectorConfig{});
  EvalStream test = test_inj.Inject(*w.graph, w.split.test);
  const Timestamp t0 = test.arrivals.front().fact.time;
  const Timestamp t1 = test.arrivals.back().fact.time;
  const double width =
      std::max<double>(1.0, static_cast<double>(t1 - t0 + 1) /
                                static_cast<double>(buckets));
  std::vector<std::vector<ScoredExample>> bucketed(buckets);
  ForEachScoredArrival(
      test.arrivals, &model, /*observe_valid=*/true, kScoreBatch,
      [&](size_t i, const AnomalyModel::TaskScores& s) {
        const LabeledFact& lf = test.arrivals[i];
        const size_t b = std::min<size_t>(
            buckets - 1, static_cast<size_t>(
                             static_cast<double>(lf.fact.time - t0) / width));
        bucketed[b].push_back(
            {s.conceptual, lf.label == AnomalyType::kConceptual});
      });
  std::vector<double> series;
  for (auto& bucket : bucketed) {
    series.push_back(MetricsAtThreshold(bucket, threshold, 0.5).f_beta);
  }
  return series;
}

}  // namespace

int main() {
  PrintHeader("Figure 6: F-score across test timestamps (+/- updater)");
  constexpr size_t kBuckets = 10;
  for (const char* dataset : {"icews14", "gdelt"}) {
    Workload w = MakeWorkload(dataset);
    auto with_updater = FScoreSeries(w, true, kBuckets);
    auto without = FScoreSeries(w, false, kBuckets);
    std::printf("%s (conceptual F0.5 per test-period decile):\n",
                w.config.name.c_str());
    std::printf("  bucket:     ");
    for (size_t b = 0; b < kBuckets; ++b) std::printf("%6zu", b + 1);
    std::printf("\n  with updater:");
    for (double f : with_updater) std::printf("%6.2f", f);
    std::printf("\n  without:     ");
    for (double f : without) std::printf("%6.2f", f);
    double gain = 0;
    for (size_t b = 0; b < kBuckets; ++b) gain += with_updater[b] - without[b];
    std::printf("\n  mean gain from updater: %+.3f\n\n", gain / kBuckets);
  }
  return 0;
}
