// Table 7: time-duration TKG (Wikidata) — F0.5 of the embedding baselines
// vs AnoT with and without the updater (four-rule-graph strategy, §4.7).

#include "common.h"

using namespace anot;
using namespace anot::bench;

int main() {
  PrintHeader("Table 7: duration-based TKG (Wikidata)");
  Workload w = MakeWorkload("wikidata");
  ProtocolOptions popts;
  popts.injector.perturb_durations = true;

  std::vector<EvalResult> results;
  for (const char* baseline :
       {"DE", "TA", "Timeplex", "TNT", "TELM", "RE-GCN"}) {
    auto model = MakeBaseline(baseline).MoveValue();
    results.push_back(RunModelOnWorkload(w, model.get(), popts));
  }
  {
    AnoTOptions options = DefaultAnoTOptions(w.config.name);
    options.enable_updater = false;
    DurationAnoTModel model(options, DurationStrategy::kFourGraphs,
                            "AnoT(-updater)");
    results.push_back(RunModelOnWorkload(w, &model, popts));
  }
  {
    AnoTOptions options = DefaultAnoTOptions(w.config.name);
    DurationAnoTModel model(options, DurationStrategy::kFourGraphs, "AnoT");
    results.push_back(RunModelOnWorkload(w, &model, popts));
  }

  std::vector<std::vector<std::string>> rows;
  for (const auto& r : results) {
    rows.push_back({r.model, FormatDouble(r.conceptual.f_beta, 3),
                    FormatDouble(r.time.f_beta, 3),
                    FormatDouble(r.missing.f_beta, 3)});
  }
  std::printf("%s\n",
              Reporter::RenderTable(
                  {"Model", "Conceptual F0.5", "Time F0.5", "Missing F0.5"},
                  rows)
                  .c_str());
  return 0;
}
