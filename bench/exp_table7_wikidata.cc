// Table 7: time-duration TKG (Wikidata) — F0.5 of the embedding baselines
// vs AnoT with and without the updater (four-rule-graph strategy, §4.7).

#include "common.h"

using namespace anot;
using namespace anot::bench;

int main() {
  PrintHeader("Table 7: duration-based TKG (Wikidata)");
  Workload w = MakeWorkload("wikidata");
  ProtocolOptions popts;
  popts.injector.perturb_durations = true;

  // One sweep cell per model: six embedding baselines + two AnoT
  // variants, all fit/scored on the ANOT_THREADS pool.
  std::vector<SweepCell> cells;
  for (const char* baseline :
       {"DE", "TA", "Timeplex", "TNT", "TELM", "RE-GCN"}) {
    cells.push_back(BaselineCell(w, popts, baseline));
  }
  {
    AnoTOptions options = SweepCellAnoTOptions(w.config.name);
    options.enable_updater = false;
    cells.push_back(MakeCell(
        w, popts, "AnoT(-updater)",
        ModelFactory<DurationAnoTModel>(options,
                                        DurationStrategy::kFourGraphs,
                                        std::string("AnoT(-updater)"))));
  }
  {
    AnoTOptions options = SweepCellAnoTOptions(w.config.name);
    cells.push_back(MakeCell(
        w, popts, "AnoT",
        ModelFactory<DurationAnoTModel>(options,
                                        DurationStrategy::kFourGraphs,
                                        std::string("AnoT"))));
  }
  const std::vector<EvalResult> results =
      RunHarnessSweep(std::move(cells)).Results();

  std::vector<std::vector<std::string>> rows;
  for (const auto& r : results) {
    rows.push_back({r.model, FormatDouble(r.conceptual.f_beta, 3),
                    FormatDouble(r.time.f_beta, 3),
                    FormatDouble(r.missing.f_beta, 3)});
  }
  std::printf("%s\n",
              Reporter::RenderTable(
                  {"Model", "Conceptual F0.5", "Time F0.5", "Missing F0.5"},
                  rows)
                  .c_str());
  return 0;
}
