// Figure 5: AUC vs the proportion of offline data used to build the model
// (0.2 .. 0.6), AnoT vs the strongest baseline RE-GCN, per anomaly type.
// All 40 (dataset, proportion, model) cells run as one experiment sweep
// on the ANOT_THREADS pool; each proportion gets its own TimeSplit over
// the shared const graph.

#include <deque>

#include "common.h"

using namespace anot;
using namespace anot::bench;

int main() {
  PrintHeader("Figure 5: AUC vs training proportion (AnoT vs RE-GCN)");
  ProtocolOptions popts;

  std::deque<Workload> workloads;
  for (const char* dataset : {"icews14", "icews05-15", "yago11k", "gdelt"}) {
    workloads.push_back(MakeWorkload(dataset));
  }

  // The custom splits live here so the cells can point at them.
  std::deque<TimeSplit> splits;
  std::vector<SweepCell> cells;
  for (const Workload& w : workloads) {
    for (double proportion : {0.2, 0.3, 0.4, 0.5, 0.6}) {
      // Shrink the training window; validation stays at 10%, the rest of
      // the original test window is evaluated.
      splits.push_back(SplitByTimestamps(*w.graph, proportion, 0.1));
      const TimeSplit& split = splits.back();
      for (const char* model_name : {"AnoT", "RE-GCN"}) {
        SweepCell cell;
        cell.graph = w.graph.get();
        cell.split = &split;
        cell.protocol = popts;
        cell.dataset = w.config.name;
        cell.label = FormatDouble(proportion, 1);
        if (std::string(model_name) == "AnoT") {
          cell.factory =
              ModelFactory<AnoTModel>(SweepCellAnoTOptions(w.config.name));
        } else {
          cell.factory = [] { return MakeBaseline("RE-GCN"); };
        }
        cells.push_back(std::move(cell));
      }
    }
  }
  const SweepResult sweep = RunHarnessSweep(std::move(cells));

  std::vector<std::vector<std::string>> rows;
  for (const SweepCellResult& cell : sweep.cells) {
    rows.push_back({cell.dataset, cell.label, cell.result.model,
                    FormatDouble(cell.result.conceptual.pr_auc, 3),
                    FormatDouble(cell.result.time.pr_auc, 3),
                    FormatDouble(cell.result.missing.pr_auc, 3)});
  }
  std::printf("%s\n",
              Reporter::RenderTable({"Dataset", "train%", "model",
                                     "conceptual AUC", "time AUC",
                                     "missing AUC"},
                                    rows)
                  .c_str());
  return 0;
}
