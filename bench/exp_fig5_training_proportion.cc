// Figure 5: AUC vs the proportion of offline data used to build the model
// (0.2 .. 0.6), AnoT vs the strongest baseline RE-GCN, per anomaly type.

#include "common.h"

using namespace anot;
using namespace anot::bench;

int main() {
  PrintHeader("Figure 5: AUC vs training proportion (AnoT vs RE-GCN)");
  ProtocolOptions popts;
  std::vector<std::vector<std::string>> rows;
  for (const char* dataset : {"icews14", "icews05-15", "yago11k", "gdelt"}) {
    Workload w = MakeWorkload(dataset);
    for (double proportion : {0.2, 0.3, 0.4, 0.5, 0.6}) {
      // Shrink the training window; validation stays at 10%, the rest of
      // the original test window is evaluated.
      TimeSplit split = SplitByTimestamps(*w.graph, proportion, 0.1);
      AnoTModel anot_model(DefaultAnoTOptions(w.config.name));
      EvalResult a = RunProtocol(*w.graph, split, &anot_model, popts);
      auto regcn = MakeBaseline("RE-GCN").MoveValue();
      EvalResult b = RunProtocol(*w.graph, split, regcn.get(), popts);
      rows.push_back({w.config.name, FormatDouble(proportion, 1), "AnoT",
                      FormatDouble(a.conceptual.pr_auc, 3),
                      FormatDouble(a.time.pr_auc, 3),
                      FormatDouble(a.missing.pr_auc, 3)});
      rows.push_back({w.config.name, FormatDouble(proportion, 1), "RE-GCN",
                      FormatDouble(b.conceptual.pr_auc, 3),
                      FormatDouble(b.time.pr_auc, 3),
                      FormatDouble(b.missing.pr_auc, 3)});
    }
  }
  std::printf("%s\n",
              Reporter::RenderTable({"Dataset", "train%", "model",
                                     "conceptual AUC", "time AUC",
                                     "missing AUC"},
                                    rows)
                  .c_str());
  return 0;
}
