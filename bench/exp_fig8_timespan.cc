// Figure 8: time/missing AUC and detection throughput vs the timespan
// restriction L in {50, 100, 200, 2000} (plus a small-L point, since our
// bench-scale worlds have tighter temporal footprints than the raw
// datasets).

#include "common.h"

using namespace anot;
using namespace anot::bench;

int main() {
  PrintHeader("Figure 8: AUC and throughput vs timespan restriction L");
  ProtocolOptions popts;
  std::vector<std::vector<std::string>> rows;
  for (const char* dataset : {"icews14", "icews05-15", "yago11k", "gdelt"}) {
    Workload w = MakeWorkload(dataset);
    for (Timestamp L : {10, 50, 100, 200, 2000}) {
      AnoTOptions options = DefaultAnoTOptions(w.config.name);
      options.detector.timespan_tolerance = L;
      AnoTModel model(options);
      EvalResult r = RunModelOnWorkload(w, &model, popts);
      rows.push_back({w.config.name, std::to_string(L),
                      FormatDouble(r.time.pr_auc, 3),
                      FormatDouble(r.missing.pr_auc, 3),
                      StrFormat("%.0f", r.throughput)});
    }
  }
  std::printf("%s\n", Reporter::RenderTable({"Dataset", "L", "time AUC",
                                             "missing AUC",
                                             "throughput (samples/s)"},
                                            rows)
                          .c_str());
  return 0;
}
