// Figure 8: time/missing AUC and detection throughput vs the timespan
// restriction L in {50, 100, 200, 2000} (plus a small-L point, since our
// bench-scale worlds have tighter temporal footprints than the raw
// datasets). All 20 (dataset, L) cells run as one experiment sweep on the
// ANOT_THREADS pool.

#include <deque>

#include "common.h"

using namespace anot;
using namespace anot::bench;

int main() {
  PrintHeader("Figure 8: AUC and throughput vs timespan restriction L");
  ProtocolOptions popts;

  std::deque<Workload> workloads;
  for (const char* dataset : {"icews14", "icews05-15", "yago11k", "gdelt"}) {
    workloads.push_back(MakeWorkload(dataset));
  }

  std::vector<SweepCell> cells;
  for (const Workload& w : workloads) {
    for (Timestamp L : {10, 50, 100, 200, 2000}) {
      AnoTOptions options = SweepCellAnoTOptions(w.config.name);
      options.detector.timespan_tolerance = L;
      cells.push_back(MakeCell(w, popts, std::to_string(L),
                               ModelFactory<AnoTModel>(options)));
    }
  }
  const SweepResult sweep = RunHarnessSweep(std::move(cells));

  // Throughput column: timing, not a metric — varies run to run, and
  // concurrent cells contend; use ANOT_THREADS=1 for clean numbers.
  std::vector<std::vector<std::string>> rows;
  for (const SweepCellResult& cell : sweep.cells) {
    rows.push_back({cell.dataset, cell.label,
                    FormatDouble(cell.result.time.pr_auc, 3),
                    FormatDouble(cell.result.missing.pr_auc, 3),
                    StrFormat("%.0f", cell.result.throughput)});
  }
  std::printf("%s\n", Reporter::RenderTable({"Dataset", "L", "time AUC",
                                             "missing AUC",
                                             "throughput (samples/s)"},
                                            rows)
                          .c_str());
  return 0;
}
