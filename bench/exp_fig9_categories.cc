// Figure 9: AUC of all three anomaly types vs the maximum number of
// entity categories k in {1, 3, 5, 10}.

#include "common.h"

using namespace anot;
using namespace anot::bench;

int main() {
  PrintHeader("Figure 9: AUC vs number of entity categories k");
  ProtocolOptions popts;
  std::vector<std::vector<std::string>> rows;
  for (const char* dataset : {"icews14", "icews05-15", "yago11k", "gdelt"}) {
    Workload w = MakeWorkload(dataset);
    for (size_t k : {1u, 3u, 5u, 10u}) {
      AnoTOptions options = DefaultAnoTOptions(w.config.name);
      options.detector.category.max_categories_per_entity = k;
      AnoTModel model(options);
      EvalResult r = RunModelOnWorkload(w, &model, popts);
      rows.push_back({w.config.name, std::to_string(k),
                      FormatDouble(r.conceptual.pr_auc, 3),
                      FormatDouble(r.time.pr_auc, 3),
                      FormatDouble(r.missing.pr_auc, 3)});
    }
  }
  std::printf("%s\n",
              Reporter::RenderTable({"Dataset", "k", "conceptual AUC",
                                     "time AUC", "missing AUC"},
                                    rows)
                  .c_str());
  return 0;
}
