// Figure 9: AUC of all three anomaly types vs the maximum number of
// entity categories k in {1, 3, 5, 10}. All 16 (dataset, k) cells run as
// one experiment sweep on the ANOT_THREADS pool.

#include <deque>

#include "common.h"

using namespace anot;
using namespace anot::bench;

int main() {
  PrintHeader("Figure 9: AUC vs number of entity categories k");
  ProtocolOptions popts;

  std::deque<Workload> workloads;
  for (const char* dataset : {"icews14", "icews05-15", "yago11k", "gdelt"}) {
    workloads.push_back(MakeWorkload(dataset));
  }

  std::vector<SweepCell> cells;
  for (const Workload& w : workloads) {
    for (size_t k : {1u, 3u, 5u, 10u}) {
      AnoTOptions options = SweepCellAnoTOptions(w.config.name);
      options.detector.category.max_categories_per_entity = k;
      cells.push_back(MakeCell(w, popts, std::to_string(k),
                               ModelFactory<AnoTModel>(options)));
    }
  }
  const SweepResult sweep = RunHarnessSweep(std::move(cells));

  std::vector<std::vector<std::string>> rows;
  for (const SweepCellResult& cell : sweep.cells) {
    rows.push_back({cell.dataset, cell.label,
                    FormatDouble(cell.result.conceptual.pr_auc, 3),
                    FormatDouble(cell.result.time.pr_auc, 3),
                    FormatDouble(cell.result.missing.pr_auc, 3)});
  }
  std::printf("%s\n",
              Reporter::RenderTable({"Dataset", "k", "conceptual AUC",
                                     "time AUC", "missing AUC"},
                                    rows)
                  .c_str());
  return 0;
}
