// Table 4: model building time, rule-graph size, and proportion of
// explained facts under k in {1, 3, 5, 10}.

#include "common.h"
#include "util/string_util.h"

using namespace anot;
using namespace anot::bench;

int main() {
  PrintHeader("Table 4: build time / rule edges / explained facts vs k");
  std::vector<std::vector<std::string>> rows;
  for (const char* dataset : {"icews14", "icews05-15", "yago11k", "gdelt"}) {
    Workload w = MakeWorkload(dataset);
    auto train = Subgraph(*w.graph, w.split.train);
    for (size_t k : {1u, 3u, 5u, 10u}) {
      AnoTOptions options = DefaultAnoTOptions(w.config.name);
      options.detector.category.max_categories_per_entity = k;
      AnoT system = AnoT::Build(*train, options);
      const BuildReport& report = system.report();
      rows.push_back({w.config.name, std::to_string(k),
                      StrFormat("%.1fs", report.build_seconds),
                      std::to_string(report.num_edges),
                      FormatDouble(report.explained_fraction, 3),
                      FormatDouble(report.associated_fraction, 3),
                      std::to_string(report.num_rules)});
    }
  }
  std::printf("%s\n", Reporter::RenderTable({"Dataset", "k", "build",
                                             "edges", "explained",
                                             "associated", "rules"},
                                            rows)
                          .c_str());
  return 0;
}
