// Checkpoint / warm-restart harness: measures checkpoint size and
// save/load wall time per dataset preset, after *verifying* the restart
// contract — a detector saved mid-stream and reloaded must score a probe
// slice bit-identically to the original (the same equivalence gate
// BM_ProcessArrivalBatch uses: if the paths disagree, timings are
// meaningless and the harness aborts loudly).

#include <cstdint>
#include <deque>
#include <filesystem>

#include "common.h"
#include "io/checkpoint.h"
#include "util/timer.h"

using namespace anot;
using namespace anot::bench;

int main() {
  PrintHeader("Checkpoint: size and warm-restart save/load cost");

  std::vector<std::vector<std::string>> rows;
  for (const char* dataset : {"icews14", "gdelt"}) {
    const Workload w = MakeWorkload(dataset);
    auto train = Subgraph(*w.graph, w.split.train);
    AnoT system = AnoT::Build(*train, DefaultAnoTOptions(w.config.name));

    // Grow past the offline build so the checkpoint carries live online
    // state (grown TKG, monitor window, pending rules).
    const size_t arrivals = std::min<size_t>(500, w.split.test.size());
    for (size_t i = 0; i < arrivals; ++i) {
      system.ProcessArrival(w.graph->fact(w.split.test[i]));
    }

    const std::string path =
        (std::filesystem::temp_directory_path() /
         ("anot_exp_checkpoint_" + w.config.name + ".bin"))
            .string();
    WallTimer save_timer;
    ANOT_CHECK(system.SaveCheckpoint(path).ok()) << "save failed";
    const double save_ms = save_timer.ElapsedMillis();
    const uint64_t bytes = std::filesystem::file_size(path);

    WallTimer load_timer;
    Result<AnoT> loaded = AnoT::LoadCheckpoint(path);
    const double load_ms = load_timer.ElapsedMillis();
    ANOT_CHECK(loaded.ok()) << loaded.status().ToString();
    std::filesystem::remove(path);

    // Equivalence gate: the reloaded detector must be indistinguishable
    // from the original on a probe slice before any timing is reported.
    const size_t probe_end =
        std::min(w.split.test.size(), arrivals + 256);
    for (size_t i = arrivals; i < probe_end; ++i) {
      const Fact f = w.graph->fact(w.split.test[i]);
      const Scores a = system.Score(f);
      const Scores b = loaded.value().Score(f);
      ANOT_CHECK(a.static_score == b.static_score &&
                 a.temporal_score == b.temporal_score)
          << "restored detector diverges from the original at probe fact "
          << i << "; timings are meaningless";
    }

    rows.push_back({w.config.name, std::to_string(system.graph().num_facts()),
                    std::to_string(bytes), FormatDouble(save_ms, 2),
                    FormatDouble(load_ms, 2)});
  }

  std::printf("%s\n",
              Reporter::RenderTable(
                  {"Dataset", "facts", "ckpt bytes", "save ms", "load ms"},
                  rows)
                  .c_str());
  return 0;
}
