// Design-choice ablation (DESIGN.md §3): θ semantics in Eq. 10 — the
// printed formula (agreement count lowers evidence) vs the prose-faithful
// normalized-mismatch realization used by default.

#include "common.h"

using namespace anot;
using namespace anot::bench;

int main() {
  PrintHeader("Ablation: Eq. 10 theta semantics (as printed vs mismatch)");
  ProtocolOptions popts;
  std::vector<std::vector<std::string>> rows;
  for (const char* dataset : {"icews14", "gdelt"}) {
    Workload w = MakeWorkload(dataset);
    for (ThetaMode mode : {ThetaMode::kMismatch, ThetaMode::kAsPrinted}) {
      AnoTOptions options = DefaultAnoTOptions(w.config.name);
      options.detector.theta_mode = mode;
      AnoTModel model(options);
      EvalResult r = RunModelOnWorkload(w, &model, popts);
      rows.push_back({w.config.name,
                      mode == ThetaMode::kMismatch ? "mismatch (default)"
                                                   : "as printed",
                      FormatDouble(r.time.pr_auc, 3),
                      FormatDouble(r.missing.pr_auc, 3)});
    }
  }
  std::printf("%s\n",
              Reporter::RenderTable(
                  {"Dataset", "theta mode", "time AUC", "missing AUC"},
                  rows)
                  .c_str());
  return 0;
}
