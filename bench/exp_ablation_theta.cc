// Design-choice ablation (DESIGN.md §3): θ semantics in Eq. 10 — the
// printed formula (agreement count lowers evidence) vs the prose-faithful
// normalized-mismatch realization used by default. The four (dataset,
// mode) cells run as one experiment sweep on the ANOT_THREADS pool.

#include <deque>

#include "common.h"

using namespace anot;
using namespace anot::bench;

int main() {
  PrintHeader("Ablation: Eq. 10 theta semantics (as printed vs mismatch)");
  ProtocolOptions popts;

  std::deque<Workload> workloads;
  for (const char* dataset : {"icews14", "gdelt"}) {
    workloads.push_back(MakeWorkload(dataset));
  }

  std::vector<SweepCell> cells;
  for (const Workload& w : workloads) {
    for (ThetaMode mode : {ThetaMode::kMismatch, ThetaMode::kAsPrinted}) {
      AnoTOptions options = SweepCellAnoTOptions(w.config.name);
      options.detector.theta_mode = mode;
      const char* mode_name = mode == ThetaMode::kMismatch
                                  ? "mismatch (default)"
                                  : "as printed";
      cells.push_back(
          MakeCell(w, popts, mode_name, ModelFactory<AnoTModel>(options)));
    }
  }
  const SweepResult sweep = RunHarnessSweep(std::move(cells));

  std::vector<std::vector<std::string>> rows;
  for (const SweepCellResult& cell : sweep.cells) {
    rows.push_back({cell.dataset, cell.label,
                    FormatDouble(cell.result.time.pr_auc, 3),
                    FormatDouble(cell.result.missing.pr_auc, 3)});
  }
  std::printf("%s\n",
              Reporter::RenderTable(
                  {"Dataset", "theta mode", "time AUC", "missing AUC"},
                  rows)
                  .c_str());
  return 0;
}
