// Table 3: ablations of AnoT's components on all four datasets —
// category aggregation, updater, triadic edges, recursion, ranking
// strategy, and the |A_v| -> 1 weight replacement.

#include "common.h"

using namespace anot;
using namespace anot::bench;

int main() {
  PrintHeader("Table 3: component ablations");
  ProtocolOptions popts;

  struct Variant {
    const char* name;
    void (*apply)(AnoTOptions*);
  };
  const std::vector<Variant> variants = {
      {"-category aggregation",
       [](AnoTOptions* o) { o->detector.use_category_aggregation = false; }},
      {"-updater", [](AnoTOptions* o) { o->enable_updater = false; }},
      {"-triadic edges",
       [](AnoTOptions* o) { o->detector.use_triadic = false; }},
      {"-recursive strategy",
       [](AnoTOptions* o) { o->detector.use_recursion = false; }},
      {"rank by |A| only",
       [](AnoTOptions* o) {
         o->detector.ranking = RankingMode::kAssertionsOnly;
       }},
      {"|A_v| -> 1",
       [](AnoTOptions* o) { o->detector.unit_rule_weight = true; }},
      {"original", [](AnoTOptions*) {}},
  };

  std::vector<EvalResult> results;
  for (const char* dataset : {"icews14", "icews05-15", "yago11k", "gdelt"}) {
    Workload w = MakeWorkload(dataset);
    std::printf("dataset %s ...\n", w.config.name.c_str());
    for (const Variant& v : variants) {
      AnoTOptions options = DefaultAnoTOptions(w.config.name);
      v.apply(&options);
      AnoTModel model(options, v.name);
      results.push_back(RunModelOnWorkload(w, &model, popts));
    }
  }
  std::printf("\n%s", Reporter::RenderComparison(results).c_str());
  return 0;
}
