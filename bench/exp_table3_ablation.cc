// Table 3: ablations of AnoT's components on all four datasets —
// category aggregation, updater, triadic edges, recursion, ranking
// strategy, and the |A_v| -> 1 weight replacement. All 28 (dataset,
// variant) cells run as one experiment sweep on the ANOT_THREADS pool.

#include <deque>

#include "common.h"

using namespace anot;
using namespace anot::bench;

int main() {
  PrintHeader("Table 3: component ablations");
  ProtocolOptions popts;

  struct Variant {
    // anot-own: points at a string literal in the initializer list below
    // (static storage, outlives everything)
    const char* name;
    void (*apply)(AnoTOptions*);
  };
  const std::vector<Variant> variants = {
      {"-category aggregation",
       [](AnoTOptions* o) { o->detector.use_category_aggregation = false; }},
      {"-updater", [](AnoTOptions* o) { o->enable_updater = false; }},
      {"-triadic edges",
       [](AnoTOptions* o) { o->detector.use_triadic = false; }},
      {"-recursive strategy",
       [](AnoTOptions* o) { o->detector.use_recursion = false; }},
      {"rank by |A| only",
       [](AnoTOptions* o) {
         o->detector.ranking = RankingMode::kAssertionsOnly;
       }},
      {"|A_v| -> 1",
       [](AnoTOptions* o) { o->detector.unit_rule_weight = true; }},
      {"original", [](AnoTOptions*) {}},
  };

  std::deque<Workload> workloads;
  for (const char* dataset : {"icews14", "icews05-15", "yago11k", "gdelt"}) {
    workloads.push_back(MakeWorkload(dataset));
    std::printf("dataset %s ...\n", workloads.back().config.name.c_str());
  }

  std::vector<SweepCell> cells;
  for (const Workload& w : workloads) {
    for (const Variant& v : variants) {
      AnoTOptions options = SweepCellAnoTOptions(w.config.name);
      v.apply(&options);
      cells.push_back(MakeCell(w, popts, v.name,
                               ModelFactory<AnoTModel>(options,
                                                       std::string(v.name))));
    }
  }
  const std::vector<EvalResult> results =
      RunHarnessSweep(std::move(cells)).Results();
  std::printf("\n%s", Reporter::RenderComparison(results).c_str());
  return 0;
}
