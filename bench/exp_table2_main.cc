// Table 2: main comparison — nine baselines + AnoT on the four point-
// timestamp datasets, three anomaly types, Precision / F0.5 / PR-AUC.
// The whole (dataset, model) grid runs as one experiment sweep: one
// worker-pool task per cell (ANOT_THREADS workers; 1 = serial loop),
// bit-identical metrics at every worker count.

#include <deque>
#include <map>

#include "common.h"

using namespace anot;
using namespace anot::bench;

int main() {
  PrintHeader("Table 2: inductive anomaly detection comparison");
  ProtocolOptions popts;
  const std::vector<std::string> datasets = {"icews14", "icews05-15",
                                             "yago11k", "gdelt"};

  std::deque<Workload> workloads;
  for (const std::string& name : datasets) {
    workloads.push_back(MakeWorkload(name));
    const Workload& w = workloads.back();
    std::printf("dataset %s: |F|=%zu ...\n", w.config.name.c_str(),
                w.graph->num_facts());
  }

  std::vector<SweepCell> cells;
  for (const Workload& w : workloads) {
    for (const std::string& baseline : AllBaselineNames()) {
      cells.push_back(BaselineCell(w, popts, baseline));
    }
    cells.push_back(MakeCell(w, popts, "AnoT",
                             ModelFactory<AnoTModel>(
                                 SweepCellAnoTOptions(w.config.name))));
  }
  const std::vector<EvalResult> results =
      RunHarnessSweep(std::move(cells)).Results();

  // Serving cost is timing, not a metric: keep it off the byte-stable
  // stdout tables.
  for (const auto& r : results) {
    if (r.model != "AnoT") continue;
    std::fprintf(
        stderr,
        "%s AnoT test-window throughput: %.0f samples/s "
        "(micro-batch %zu, %.2fs wall incl. observe-valid ingest)\n",
        r.dataset.c_str(), r.throughput, r.score_batch_size,
        r.test_seconds);
  }
  std::printf("\n%s", Reporter::RenderComparison(results).c_str());

  // Paper headline: AnoT leads on average AUC across types and datasets.
  std::map<std::string, std::pair<double, int>> per_model;
  for (const auto& r : results) {
    const double mean_auc =
        (r.conceptual.pr_auc + r.time.pr_auc + r.missing.pr_auc) / 3.0;
    per_model[r.model].first += mean_auc;
    per_model[r.model].second += 1;
  }
  // Every (dataset, model) cell must contribute to the headline exactly
  // once — a dropped (or double-counted) cell would skew the mean
  // silently.
  ANOT_CHECK(results.size() ==
             datasets.size() * (AllBaselineNames().size() + 1));
  ANOT_CHECK(per_model.size() == AllBaselineNames().size() + 1);
  for (const auto& [model, acc] : per_model) {
    ANOT_CHECK(acc.second == static_cast<int>(datasets.size()))
        << model << " contributed " << acc.second << " cells, expected "
        << datasets.size();
  }
  double anot_auc = 0, best_baseline_auc = 0;
  std::string best_baseline;
  for (const auto& [model, acc] : per_model) {
    const double mean = acc.first / acc.second;
    if (model == "AnoT") {
      anot_auc = mean;
    } else if (mean > best_baseline_auc) {
      best_baseline_auc = mean;
      best_baseline = model;
    }
  }
  std::printf("mean AUC over all datasets and anomaly types: AnoT %.3f vs "
              "best baseline %s %.3f\n",
              anot_auc, best_baseline.c_str(), best_baseline_auc);
  return 0;
}
