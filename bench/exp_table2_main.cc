// Table 2: main comparison — nine baselines + AnoT on the four point-
// timestamp datasets, three anomaly types, Precision / F0.5 / PR-AUC.

#include <map>

#include "common.h"

using namespace anot;
using namespace anot::bench;

int main() {
  PrintHeader("Table 2: inductive anomaly detection comparison");
  ProtocolOptions popts;
  std::vector<EvalResult> results;
  for (const char* name : {"icews14", "icews05-15", "yago11k", "gdelt"}) {
    Workload w = MakeWorkload(name);
    std::printf("dataset %s: |F|=%zu ...\n", w.config.name.c_str(),
                w.graph->num_facts());
    for (const std::string& baseline : AllBaselineNames()) {
      auto model = MakeBaseline(baseline).MoveValue();
      results.push_back(RunModelOnWorkload(w, model.get(), popts));
    }
    AnoTModel anot_model(DefaultAnoTOptions(w.config.name));
    results.push_back(RunModelOnWorkload(w, &anot_model, popts));
    const EvalResult& anot_result = results.back();
    std::printf(
        "  AnoT test-window throughput: %.0f samples/s "
        "(micro-batch %zu, %.2fs wall incl. observe-valid ingest)\n",
        anot_result.throughput, anot_result.score_batch_size,
        anot_result.test_seconds);
  }
  std::printf("\n%s", Reporter::RenderComparison(results).c_str());

  // Paper headline: AnoT leads on average AUC across types and datasets.
  std::map<std::string, std::pair<double, int>> per_model;
  for (const auto& r : results) {
    const double mean_auc =
        (r.conceptual.pr_auc + r.time.pr_auc + r.missing.pr_auc) / 3.0;
    per_model[r.model].first += mean_auc;
    per_model[r.model].second += 1;
  }
  double anot_auc = 0, best_baseline_auc = 0;
  std::string best_baseline;
  for (const auto& [model, acc] : per_model) {
    const double mean = acc.first / acc.second;
    if (model == "AnoT") {
      anot_auc = mean;
    } else if (mean > best_baseline_auc) {
      best_baseline_auc = mean;
      best_baseline = model;
    }
  }
  std::printf("mean AUC over all datasets and anomaly types: AnoT %.3f vs "
              "best baseline %s %.3f\n",
              anot_auc, best_baseline.c_str(), best_baseline_auc);
  return 0;
}
