#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/anot.h"
#include "util/result.h"
#include "util/status.h"

namespace anot {

/// \brief Versioned binary serialization of the full detector state.
///
/// A checkpoint captures everything a warm restart needs: the dictionaries
/// and the grown TKG (as the fact log — every secondary index is replayed
/// back deterministically through AddFact), the category function, the rule
/// graph, the build report, the monitor (including its pricing-ledger
/// universes, which are frozen at build time and must NOT be recomputed
/// from the grown graph), the updater's pending-rule table in LRU order,
/// and the serving thresholds / refresh counter. Loading a checkpoint and
/// continuing the stream is bit-identical to never having restarted, at
/// every ANOT_THREADS setting (pinned by checkpoint_test).
///
/// File layout (all integers little-endian, doubles as IEEE-754 bit
/// patterns):
///
///   [8]  magic "ANOTCKPT"
///   [4]  u32 format version (kFormatVersion)
///   [4]  u32 section count
///   per section, in fixed ascending id order:
///     [4] u32 section id   [8] u64 payload length   [.] payload
///   [8]  u64 FNV-1a-64 checksum of every preceding byte
///
/// Versioning policy: the format version is bumped on any layout change;
/// a reader only accepts its own version (no silent cross-version reads).
/// Version skew, truncation, bit corruption, and semantically invalid
/// state all come back as Status errors — never UB, never an abort.
///
/// Serialization order is canonical (unordered containers are sorted
/// before writing), so saving a just-loaded detector reproduces the
/// original file byte for byte.
class Checkpoint {
 public:
  /// Footer/section framing constants, public so tests and tooling can
  /// craft or inspect checkpoint bytes.
  static constexpr char kMagic[8] = {'A', 'N', 'O', 'T', 'C', 'K', 'P', 'T'};
  static constexpr uint32_t kFormatVersion = 1;

  /// Serializes `system` to `path` atomically (temp file + rename).
  /// FailedPrecondition when a background refresh is in flight — quiesce
  /// with FinishRefresh() (or plain Refresh()) first; the in-flight build
  /// and its replay logs are not serializable mid-handoff.
  static Status Save(const AnoT& system, const std::string& path);

  /// Deserializes a detector. Every failure mode — missing file, wrong
  /// magic, foreign format version, truncated or over-long sections,
  /// corrupt bytes, or state that fails the structural invariants — is a
  /// descriptive error Status.
  static Result<AnoT> Load(const std::string& path);

  /// The footer checksum function (FNV-1a 64).
  static uint64_t Checksum(const void* data, size_t size);

 private:
  /// Section encoders/decoders (defined in checkpoint.cc). Nested so the
  /// codec inherits this class's friendship grants without widening them.
  struct Codec;
};

}  // namespace anot
