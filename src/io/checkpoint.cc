#include "io/checkpoint.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <utility>
#include <vector>

#include "core/builder.h"
#include "core/monitor.h"
#include "core/options.h"
#include "core/updater.h"
#include "mining/category_function.h"
#include "rulegraph/rule_graph.h"
#include "tkg/graph.h"
#include "util/lifetime.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace anot {

namespace {

/// Fixed section order. The reader rejects any other order or id, which
/// keeps the format canonical: there is exactly one byte sequence per
/// detector state, so save(load(save(x))) == save(x).
enum SectionId : uint32_t {
  kSectionOptions = 1,
  kSectionGraph = 2,
  kSectionCategories = 3,
  kSectionRules = 4,
  kSectionReport = 5,
  kSectionMonitor = 6,
  kSectionUpdater = 7,
  kSectionServing = 8,
};
constexpr uint32_t kNumSections = 8;

// ------------------------------------------------------------ byte codec

/// Append-only little-endian encoder. Doubles are written as their
/// IEEE-754 bit pattern, so a round trip is bit-exact.
class ByteWriter {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back(static_cast<char>(v >> (8 * i)));
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back(static_cast<char>(v >> (8 * i)));
  }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  void Bool(bool v) { U8(v ? 1 : 0); }
  void Str(const std::string& s) {
    U64(s.size());
    out_.append(s);
  }
  void Append(const std::string& s) { out_.append(s); }

  const std::string& bytes() const ANOT_LIFETIME_BOUND { return out_; }

 private:
  std::string out_;
};

/// Bounds-checked little-endian decoder over a borrowed byte range. Every
/// read reports exhaustion instead of walking past the end, so a truncated
/// or corrupt payload can never become UB.
class ByteReader {
 public:
  /// Empty reader (no bytes); a section slot before its payload is carved.
  ByteReader() = default;
  // anot-own: borrows the checkpoint byte buffer owned by Load()'s stack
  // frame (or a sub-range of it), which strictly outlives every reader.
  ByteReader(const char* data, size_t size) : data_(data), size_(size) {}

  bool U8(uint8_t* out) {
    if (remaining() < 1) return false;
    *out = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }
  bool U32(uint32_t* out) {
    if (remaining() < 4) return false;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    *out = v;
    return true;
  }
  bool U64(uint64_t* out) {
    if (remaining() < 8) return false;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    *out = v;
    return true;
  }
  bool I64(int64_t* out) {
    uint64_t v = 0;
    if (!U64(&v)) return false;
    *out = static_cast<int64_t>(v);
    return true;
  }
  bool F64(double* out) {
    uint64_t bits = 0;
    if (!U64(&bits)) return false;
    std::memcpy(out, &bits, sizeof(*out));
    return true;
  }
  /// Strict: only 0/1 are valid encodings (canonical format).
  bool Bool(bool* out) {
    uint8_t v = 0;
    if (!U8(&v) || v > 1) return false;
    *out = (v == 1);
    return true;
  }
  bool Str(std::string* out) {
    uint64_t n = 0;
    if (!U64(&n) || n > remaining()) return false;
    out->assign(data_ + pos_, static_cast<size_t>(n));
    pos_ += static_cast<size_t>(n);
    return true;
  }
  /// Reads a container count and rejects counts whose minimal encoding
  /// exceeds the bytes left — a corrupt count must fail here, not drive a
  /// multi-gigabyte allocation.
  bool Count(uint64_t* n, uint64_t min_bytes_per_elem) {
    if (!U64(n)) return false;
    if (min_bytes_per_elem == 0) return true;
    return *n <= remaining() / min_bytes_per_elem;
  }
  bool Skip(size_t n) {
    if (n > remaining()) return false;
    pos_ += n;
    return true;
  }
  /// Carves a length-delimited sub-range (section payload) off the front.
  bool Sub(size_t len, ByteReader* out) {
    if (len > remaining()) return false;
    *out = ByteReader(data_ + pos_, len);
    pos_ += len;
    return true;
  }
  size_t remaining() const { return size_ - pos_; }

 private:
  // anot-own: borrowed view into Load()'s byte buffer; see constructor.
  const char* data_ = nullptr;
  size_t size_ = 0;
  size_t pos_ = 0;
};

/// Every partial read inside a section means the file is truncated or its
/// bytes are not a valid encoding; both surface as the same error shape.
#define ANOT_CKPT_READ(expr, what)                                      \
  do {                                                                  \
    if (!(expr)) {                                                      \
      return Status::InvalidArgument(                                   \
          std::string("checkpoint: truncated or corrupt ") + (what));   \
    }                                                                   \
  } while (0)

#define ANOT_CKPT_EXPECT(cond, msg)                       \
  do {                                                    \
    if (!(cond)) return Status::InvalidArgument(msg);     \
  } while (0)

void AppendSection(uint32_t id, const ByteWriter& payload, ByteWriter* out) {
  out->U32(id);
  out->U64(payload.bytes().size());
  out->Append(payload.bytes());
}

}  // namespace

// ----------------------------------------------------------------- codec
//
// Codec is a nested member of Checkpoint, so its static functions inherit
// the friendship AnoT / CategoryFunction / Monitor / Updater grant to the
// Checkpoint class — private state is serialized without widening any
// public API.

struct Checkpoint::Codec {
  // -- section 1: options ---------------------------------------------------

  static void EncodeOptions(const AnoTOptions& o, ByteWriter* w) {
    const CategoryFunctionOptions& c = o.detector.category;
    w->U64(c.max_categories_per_entity);
    w->U64(c.min_support);
    w->U64(c.max_combination_size);
    w->F64(c.aggregation_overlap);
    w->U64(c.max_aggregation_rounds);
    w->U64(c.max_aggregation_candidates);
    w->U64(c.max_categories);

    const DetectorOptions& d = o.detector;
    w->U64(d.max_candidate_edges);
    w->U64(d.max_recursion_steps);
    w->I64(d.timespan_tolerance);
    w->F64(d.lambda);
    w->U64(d.max_pair_lag);
    w->U64(d.max_instantiation_scan);
    w->Bool(d.use_triadic);
    w->Bool(d.use_recursion);
    w->Bool(d.use_category_aggregation);
    w->Bool(d.unit_rule_weight);
    w->U8(static_cast<uint8_t>(d.ranking));
    w->Bool(d.speculative_selection);
    w->Bool(d.use_out_edge_violations);
    w->U8(static_cast<uint8_t>(d.theta_mode));
    w->F64(d.temporal_base_weight);
    w->F64(d.conflict_weight);
    w->U8(static_cast<uint8_t>(d.head_anchor));
    w->U8(static_cast<uint8_t>(d.tail_anchor));

    w->U64(o.updater.new_rule_min_support);
    w->U64(o.updater.max_pending_rules);

    w->U8(static_cast<uint8_t>(o.monitor.mode));
    w->F64(o.monitor.slack);

    w->Bool(o.enable_updater);
    w->Bool(o.auto_refresh);
    w->U8(static_cast<uint8_t>(o.refresh_mode));
    w->U64(o.num_threads);
  }

  static Status DecodeOptions(ByteReader* in, AnoTOptions* o) {
    CategoryFunctionOptions& c = o->detector.category;
    uint64_t u = 0;
    ANOT_CKPT_READ(in->U64(&u), "options");
    c.max_categories_per_entity = static_cast<size_t>(u);
    ANOT_CKPT_READ(in->U64(&u), "options");
    c.min_support = static_cast<size_t>(u);
    ANOT_CKPT_READ(in->U64(&u), "options");
    c.max_combination_size = static_cast<size_t>(u);
    ANOT_CKPT_READ(in->F64(&c.aggregation_overlap), "options");
    ANOT_CKPT_READ(in->U64(&u), "options");
    c.max_aggregation_rounds = static_cast<size_t>(u);
    ANOT_CKPT_READ(in->U64(&u), "options");
    c.max_aggregation_candidates = static_cast<size_t>(u);
    ANOT_CKPT_READ(in->U64(&u), "options");
    c.max_categories = static_cast<size_t>(u);

    DetectorOptions& d = o->detector;
    ANOT_CKPT_READ(in->U64(&u), "options");
    d.max_candidate_edges = static_cast<size_t>(u);
    ANOT_CKPT_READ(in->U64(&u), "options");
    d.max_recursion_steps = static_cast<size_t>(u);
    ANOT_CKPT_READ(in->I64(&d.timespan_tolerance), "options");
    ANOT_CKPT_READ(in->F64(&d.lambda), "options");
    ANOT_CKPT_READ(in->U64(&u), "options");
    d.max_pair_lag = static_cast<size_t>(u);
    ANOT_CKPT_READ(in->U64(&u), "options");
    d.max_instantiation_scan = static_cast<size_t>(u);
    ANOT_CKPT_READ(in->Bool(&d.use_triadic), "options");
    ANOT_CKPT_READ(in->Bool(&d.use_recursion), "options");
    ANOT_CKPT_READ(in->Bool(&d.use_category_aggregation), "options");
    ANOT_CKPT_READ(in->Bool(&d.unit_rule_weight), "options");
    uint8_t b = 0;
    ANOT_CKPT_READ(in->U8(&b) && b <= 1, "ranking mode");
    d.ranking = static_cast<RankingMode>(b);
    ANOT_CKPT_READ(in->Bool(&d.speculative_selection), "options");
    ANOT_CKPT_READ(in->Bool(&d.use_out_edge_violations), "options");
    ANOT_CKPT_READ(in->U8(&b) && b <= 1, "theta mode");
    d.theta_mode = static_cast<ThetaMode>(b);
    ANOT_CKPT_READ(in->F64(&d.temporal_base_weight), "options");
    ANOT_CKPT_READ(in->F64(&d.conflict_weight), "options");
    ANOT_CKPT_READ(in->U8(&b) && b <= 1, "head anchor");
    d.head_anchor = static_cast<TimeAnchor>(b);
    ANOT_CKPT_READ(in->U8(&b) && b <= 1, "tail anchor");
    d.tail_anchor = static_cast<TimeAnchor>(b);

    ANOT_CKPT_READ(in->U64(&u), "options");
    o->updater.new_rule_min_support = static_cast<size_t>(u);
    ANOT_CKPT_READ(in->U64(&u), "options");
    o->updater.max_pending_rules = static_cast<size_t>(u);

    ANOT_CKPT_READ(in->U8(&b) && b <= 1, "monitor mode");
    o->monitor.mode = static_cast<MonitorOptions::Mode>(b);
    ANOT_CKPT_READ(in->F64(&o->monitor.slack), "options");

    ANOT_CKPT_READ(in->Bool(&o->enable_updater), "options");
    ANOT_CKPT_READ(in->Bool(&o->auto_refresh), "options");
    ANOT_CKPT_READ(in->U8(&b) && b <= 1, "refresh mode");
    o->refresh_mode = static_cast<RefreshMode>(b);
    ANOT_CKPT_READ(in->U64(&u), "options");
    ANOT_CKPT_EXPECT(u <= 4096,
                     "checkpoint: implausible num_threads in options");
    o->num_threads = static_cast<size_t>(u);

    for (double v : {c.aggregation_overlap, d.lambda, d.temporal_base_weight,
                     d.conflict_weight, o->monitor.slack}) {
      ANOT_CKPT_EXPECT(std::isfinite(v),
                       "checkpoint: non-finite option value");
    }
    return Status::OK();
  }

  // -- section 2: dictionaries + fact log -----------------------------------

  static void EncodeGraph(const TemporalKnowledgeGraph& g, ByteWriter* w) {
    const Dictionary& ed = g.entity_dict();
    w->U64(ed.size());
    for (size_t i = 0; i < ed.size(); ++i) w->Str(ed.Name(i));
    const Dictionary& rd = g.relation_dict();
    w->U64(rd.size());
    for (size_t i = 0; i < rd.size(); ++i) w->Str(rd.Name(i));
    w->U64(g.num_entities());
    w->U64(g.num_relations());
    w->U64(g.num_facts());
    for (const Fact& f : g.facts()) {
      w->U32(f.subject);
      w->U32(f.relation);
      w->U32(f.object);
      w->I64(f.time);
      w->I64(f.end);
    }
  }

  static Status DecodeGraph(ByteReader* in, TemporalKnowledgeGraph* g) {
    uint64_t num_entity_names = 0;
    ANOT_CKPT_READ(in->Count(&num_entity_names, 8), "entity dictionary");
    g->entity_dict().Reserve(static_cast<size_t>(num_entity_names));
    std::string name;
    for (uint64_t i = 0; i < num_entity_names; ++i) {
      ANOT_CKPT_READ(in->Str(&name), "entity name");
      ANOT_CKPT_EXPECT(g->entity_dict().GetOrAdd(name) == i,
                       "checkpoint: duplicate entity name in dictionary");
    }
    uint64_t num_relation_names = 0;
    ANOT_CKPT_READ(in->Count(&num_relation_names, 8), "relation dictionary");
    g->relation_dict().Reserve(static_cast<size_t>(num_relation_names));
    for (uint64_t i = 0; i < num_relation_names; ++i) {
      ANOT_CKPT_READ(in->Str(&name), "relation name");
      ANOT_CKPT_EXPECT(g->relation_dict().GetOrAdd(name) == i,
                       "checkpoint: duplicate relation name in dictionary");
    }

    uint64_t num_entities = 0;
    uint64_t num_relations = 0;
    uint64_t num_facts = 0;
    ANOT_CKPT_READ(in->U64(&num_entities), "entity universe");
    ANOT_CKPT_READ(in->U64(&num_relations), "relation universe");
    // Fact ids are u32 and kInvalidId is reserved, so a universe at or
    // beyond kInvalidId cannot have been written by Save.
    ANOT_CKPT_EXPECT(num_entities < kInvalidId && num_relations < kInvalidId,
                     "checkpoint: universe size exceeds the id space");
    ANOT_CKPT_READ(in->Count(&num_facts, 28), "fact log");
    g->Reserve(static_cast<size_t>(num_facts));
    for (uint64_t i = 0; i < num_facts; ++i) {
      Fact f;
      ANOT_CKPT_READ(in->U32(&f.subject) && in->U32(&f.relation) &&
                         in->U32(&f.object) && in->I64(&f.time) &&
                         in->I64(&f.end),
                     "fact log");
      ANOT_CKPT_EXPECT(f.subject < num_entities && f.object < num_entities,
                       "checkpoint: fact references an unknown entity");
      ANOT_CKPT_EXPECT(f.relation < num_relations,
                       "checkpoint: fact references an unknown relation");
      ANOT_CKPT_EXPECT(f.end >= f.time,
                       "checkpoint: fact ends before it starts");
      g->AddFact(f);
    }
    // Replaying the fact log rebuilds every secondary index and the
    // universe counters; the declared sizes must match exactly (Save
    // derives both from the same log).
    ANOT_CKPT_EXPECT(
        g->num_entities() == num_entities && g->num_relations() == num_relations,
        "checkpoint: universe sizes disagree with the fact log");
    return Status::OK();
  }

  // -- section 3: category function -----------------------------------------

  static void EncodeCategories(const CategoryFunction& fn, ByteWriter* w) {
    const CategoryFunctionOptions& c = fn.options_;
    w->U64(c.max_categories_per_entity);
    w->U64(c.min_support);
    w->U64(c.max_combination_size);
    w->F64(c.aggregation_overlap);
    w->U64(c.max_aggregation_rounds);
    w->U64(c.max_aggregation_candidates);
    w->U64(c.max_categories);

    w->U64(fn.categories_.size());
    for (const auto& info : fn.categories_) {
      w->U64(info.tokens.size());
      for (uint32_t t : info.tokens) w->U32(t);
      w->U64(info.members.size());
      for (EntityId e : info.members) w->U32(e);
    }
    w->U64(fn.entity_categories_.size());
    for (const auto& cats : fn.entity_categories_) {
      w->U64(cats.size());
      for (CategoryId c2 : cats) w->U32(c2);
    }
    // Canonical order: the singleton map is unordered in memory, so sort
    // by token before writing.
    std::vector<std::pair<uint32_t, CategoryId>> singletons(
        fn.singleton_categories_.begin(), fn.singleton_categories_.end());
    // anot-lint: ordered-ok the entries are sorted by token immediately
    // below, so the map's iteration order cannot reach the output bytes.
    std::sort(singletons.begin(), singletons.end());
    w->U64(singletons.size());
    for (const auto& [token, cat] : singletons) {
      w->U32(token);
      w->U32(cat);
    }
  }

  static Status DecodeCategories(ByteReader* in,
                                 const TemporalKnowledgeGraph& g,
                                 CategoryFunction* fn) {
    CategoryFunctionOptions& c = fn->options_;
    uint64_t u = 0;
    ANOT_CKPT_READ(in->U64(&u), "category options");
    c.max_categories_per_entity = static_cast<size_t>(u);
    ANOT_CKPT_READ(in->U64(&u), "category options");
    c.min_support = static_cast<size_t>(u);
    ANOT_CKPT_READ(in->U64(&u), "category options");
    c.max_combination_size = static_cast<size_t>(u);
    ANOT_CKPT_READ(in->F64(&c.aggregation_overlap), "category options");
    ANOT_CKPT_EXPECT(std::isfinite(c.aggregation_overlap),
                     "checkpoint: non-finite category option");
    ANOT_CKPT_READ(in->U64(&u), "category options");
    c.max_aggregation_rounds = static_cast<size_t>(u);
    ANOT_CKPT_READ(in->U64(&u), "category options");
    c.max_aggregation_candidates = static_cast<size_t>(u);
    ANOT_CKPT_READ(in->U64(&u), "category options");
    c.max_categories = static_cast<size_t>(u);

    uint64_t num_categories = 0;
    ANOT_CKPT_READ(in->Count(&num_categories, 16), "category table");
    fn->categories_.reserve(static_cast<size_t>(num_categories));
    for (uint64_t i = 0; i < num_categories; ++i) {
      uint64_t n = 0;
      ANOT_CKPT_READ(in->Count(&n, 4), "category tokens");
      std::vector<uint32_t> tokens(static_cast<size_t>(n));
      for (auto& t : tokens) ANOT_CKPT_READ(in->U32(&t), "category tokens");
      ANOT_CKPT_EXPECT(
          std::is_sorted(tokens.begin(), tokens.end()) &&
              std::adjacent_find(tokens.begin(), tokens.end()) == tokens.end(),
          "checkpoint: category tokens not strictly ascending");
      ANOT_CKPT_READ(in->Count(&n, 4), "category members");
      std::vector<EntityId> members(static_cast<size_t>(n));
      for (auto& e : members) {
        ANOT_CKPT_READ(in->U32(&e), "category members");
        ANOT_CKPT_EXPECT(e < g.num_entities(),
                         "checkpoint: category member is not an entity");
      }
      ANOT_CKPT_EXPECT(std::is_sorted(members.begin(), members.end()) &&
                           std::adjacent_find(members.begin(),
                                              members.end()) == members.end(),
                       "checkpoint: category members not strictly ascending");
      fn->categories_.push_back(
          {std::move(tokens), std::move(members)});
    }
    // token_index_ is derived state: AddCategory appends category ids in
    // creation order, so rebuilding in id order reproduces it exactly.
    fn->token_index_.clear();
    for (CategoryId id = 0; id < fn->categories_.size(); ++id) {
      for (uint32_t t : fn->categories_[id].tokens) {
        fn->token_index_[t].push_back(id);
      }
    }

    uint64_t num_tracked = 0;
    ANOT_CKPT_READ(in->Count(&num_tracked, 8), "entity categories");
    ANOT_CKPT_EXPECT(num_tracked <= g.num_entities(),
                     "checkpoint: entity-category table larger than the "
                     "entity universe");
    fn->entity_categories_.resize(static_cast<size_t>(num_tracked));
    for (auto& cats : fn->entity_categories_) {
      uint64_t n = 0;
      ANOT_CKPT_READ(in->Count(&n, 4), "entity categories");
      cats.resize(static_cast<size_t>(n));
      for (auto& c2 : cats) {
        ANOT_CKPT_READ(in->U32(&c2), "entity categories");
        ANOT_CKPT_EXPECT(c2 < num_categories,
                         "checkpoint: entity assigned an unknown category");
      }
      ANOT_CKPT_EXPECT(
          std::is_sorted(cats.begin(), cats.end()) &&
              std::adjacent_find(cats.begin(), cats.end()) == cats.end(),
          "checkpoint: entity categories not strictly ascending");
    }

    uint64_t num_singletons = 0;
    ANOT_CKPT_READ(in->Count(&num_singletons, 8), "singleton categories");
    uint32_t prev_token = 0;
    for (uint64_t i = 0; i < num_singletons; ++i) {
      uint32_t token = 0;
      uint32_t cat = 0;
      ANOT_CKPT_READ(in->U32(&token) && in->U32(&cat),
                     "singleton categories");
      ANOT_CKPT_EXPECT(i == 0 || token > prev_token,
                       "checkpoint: singleton tokens not strictly ascending");
      prev_token = token;
      ANOT_CKPT_EXPECT(cat < num_categories,
                       "checkpoint: singleton maps to an unknown category");
      ANOT_CKPT_EXPECT(fn->categories_[cat].tokens ==
                           std::vector<uint32_t>{token},
                       "checkpoint: singleton category is not a singleton");
      fn->singleton_categories_.emplace(token, cat);
    }
    return Status::OK();
  }

  // -- section 4: rule graph ------------------------------------------------

  static void EncodeRules(const RuleGraph& rg, ByteWriter* w) {
    w->U64(rg.num_rules());
    for (RuleId id = 0; id < rg.num_rules(); ++id) {
      const AtomicRule& r = rg.rule(id);
      w->U32(r.subject_category);
      w->U32(r.relation);
      w->U32(r.object_category);
      w->U32(rg.support(id));
      uint8_t flags = 0;
      if (rg.static_selected(id)) flags |= 1;
      if (rg.recurrent(id)) flags |= 2;
      w->U8(flags);
    }
    w->U64(rg.num_edges());
    for (RuleEdgeId id = 0; id < rg.num_edges(); ++id) {
      const RuleEdge& e = rg.edge(id);
      w->U8(e.kind == RuleEdgeKind::kTriadic ? 1 : 0);
      w->U32(e.head);
      w->U32(e.mid);
      w->U32(e.tail);
      w->U32(e.support);
      w->U64(e.timespans.size());
      for (Timestamp t : e.timespans) w->I64(t);
    }
  }

  static Status DecodeRules(ByteReader* in, const TemporalKnowledgeGraph& g,
                            const CategoryFunction& fn, RuleGraph* rg) {
    uint64_t num_rules = 0;
    ANOT_CKPT_READ(in->Count(&num_rules, 17), "rule table");
    for (uint64_t i = 0; i < num_rules; ++i) {
      AtomicRule r;
      uint32_t support = 0;
      uint8_t flags = 0;
      ANOT_CKPT_READ(in->U32(&r.subject_category) && in->U32(&r.relation) &&
                         in->U32(&r.object_category) && in->U32(&support) &&
                         in->U8(&flags),
                     "rule table");
      ANOT_CKPT_EXPECT(r.subject_category < fn.num_categories() &&
                           r.object_category < fn.num_categories(),
                       "checkpoint: rule references an unknown category");
      ANOT_CKPT_EXPECT(r.relation < g.num_relations(),
                       "checkpoint: rule references an unknown relation");
      ANOT_CKPT_EXPECT(flags <= 3, "checkpoint: unknown rule flags");
      ANOT_CKPT_EXPECT(rg->AddRule(r, (flags & 1) != 0) == i,
                       "checkpoint: duplicate rule node");
      rg->SetSupport(static_cast<RuleId>(i), support);
      rg->SetRecurrent(static_cast<RuleId>(i), (flags & 2) != 0);
    }
    uint64_t num_edges = 0;
    ANOT_CKPT_READ(in->Count(&num_edges, 25), "edge table");
    for (uint64_t i = 0; i < num_edges; ++i) {
      RuleEdge e;
      uint8_t kind = 0;
      uint64_t num_spans = 0;
      ANOT_CKPT_READ(in->U8(&kind) && in->U32(&e.head) && in->U32(&e.mid) &&
                         in->U32(&e.tail) && in->U32(&e.support),
                     "edge table");
      ANOT_CKPT_EXPECT(kind <= 1, "checkpoint: unknown edge kind");
      e.kind = kind == 1 ? RuleEdgeKind::kTriadic : RuleEdgeKind::kChain;
      ANOT_CKPT_EXPECT(e.head < num_rules && e.tail < num_rules,
                       "checkpoint: edge references an unknown rule");
      ANOT_CKPT_EXPECT(e.kind == RuleEdgeKind::kTriadic
                           ? e.mid < num_rules
                           : e.mid == kInvalidId,
                       "checkpoint: edge mid rule malformed");
      ANOT_CKPT_READ(in->Count(&num_spans, 8), "edge timespans");
      Timestamp prev = 0;
      for (uint64_t s = 0; s < num_spans; ++s) {
        Timestamp t = 0;
        ANOT_CKPT_READ(in->I64(&t), "edge timespans");
        ANOT_CKPT_EXPECT(s == 0 || t >= prev,
                         "checkpoint: edge timespans not sorted");
        prev = t;
        e.timespans.push_back(t);
      }
      // AddEdge merges duplicates silently; a duplicate here means the
      // file does not describe a valid edge table.
      ANOT_CKPT_EXPECT(
          !rg->FindEdge(e.kind, e.head, e.mid, e.tail).has_value(),
          "checkpoint: duplicate rule edge");
      ANOT_CKPT_EXPECT(rg->AddEdge(e) == i, "checkpoint: edge table corrupt");
    }
    return Status::OK();
  }

  // -- section 5: build report ----------------------------------------------

  static void EncodeReport(const BuildReport& r, ByteWriter* w) {
    w->F64(r.build_seconds);
    w->U64(r.num_categories);
    w->U64(r.num_rules);
    w->U64(r.num_temporal_rules);
    w->U64(r.num_edges);
    w->U64(r.num_candidate_rules);
    w->U64(r.num_candidate_edges);
    w->F64(r.explained_fraction);
    w->F64(r.associated_fraction);
    w->F64(r.model_bits);
    w->F64(r.assertion_bits);
    w->F64(r.negative_bits);
    w->U64(r.num_train_timestamps);
  }

  static Status DecodeReport(ByteReader* in, BuildReport* r) {
    uint64_t u = 0;
    ANOT_CKPT_READ(in->F64(&r->build_seconds), "build report");
    ANOT_CKPT_READ(in->U64(&u), "build report");
    r->num_categories = static_cast<size_t>(u);
    ANOT_CKPT_READ(in->U64(&u), "build report");
    r->num_rules = static_cast<size_t>(u);
    ANOT_CKPT_READ(in->U64(&u), "build report");
    r->num_temporal_rules = static_cast<size_t>(u);
    ANOT_CKPT_READ(in->U64(&u), "build report");
    r->num_edges = static_cast<size_t>(u);
    ANOT_CKPT_READ(in->U64(&u), "build report");
    r->num_candidate_rules = static_cast<size_t>(u);
    ANOT_CKPT_READ(in->U64(&u), "build report");
    r->num_candidate_edges = static_cast<size_t>(u);
    ANOT_CKPT_READ(in->F64(&r->explained_fraction), "build report");
    ANOT_CKPT_READ(in->F64(&r->associated_fraction), "build report");
    ANOT_CKPT_READ(in->F64(&r->model_bits), "build report");
    ANOT_CKPT_READ(in->F64(&r->assertion_bits), "build report");
    ANOT_CKPT_READ(in->F64(&r->negative_bits), "build report");
    ANOT_CKPT_READ(in->U64(&u), "build report");
    r->num_train_timestamps = static_cast<size_t>(u);
    for (double v : {r->build_seconds, r->explained_fraction,
                     r->associated_fraction, r->model_bits, r->assertion_bits,
                     r->negative_bits}) {
      ANOT_CKPT_EXPECT(std::isfinite(v),
                       "checkpoint: non-finite build-report value");
    }
    return Status::OK();
  }

  // -- section 6: monitor ---------------------------------------------------

  static void EncodeMonitor(const Monitor& m, ByteWriter* w) {
    // The pricing-ledger universes are frozen at build time; they must be
    // persisted, not recomputed from the (since grown) graph.
    w->F64(m.pricing_.tier1_universe());
    w->F64(m.pricing_.tier2_universe());
    w->F64(m.training_bits_);
    w->U64(m.training_timestamps_);
    w->F64(m.online_bits_);
    w->U64(m.online_timestamps_);
    w->Bool(m.bucket_open_);
    w->I64(m.bucket_time_);
    w->U32(m.bucket_total_);
    w->U32(m.bucket_mapped_);
    w->U32(m.bucket_associated_);
  }

  static Status DecodeMonitor(ByteReader* in, const MonitorOptions& options,
                              std::unique_ptr<Monitor>* out) {
    double tier1 = 0.0;
    double tier2 = 0.0;
    double training_bits = 0.0;
    uint64_t training_timestamps = 0;
    double online_bits = 0.0;
    uint64_t online_timestamps = 0;
    bool bucket_open = false;
    Timestamp bucket_time = kNoTimestamp;
    uint32_t bucket_total = 0;
    uint32_t bucket_mapped = 0;
    uint32_t bucket_associated = 0;
    ANOT_CKPT_READ(in->F64(&tier1) && in->F64(&tier2) &&
                       in->F64(&training_bits) &&
                       in->U64(&training_timestamps) && in->F64(&online_bits) &&
                       in->U64(&online_timestamps) && in->Bool(&bucket_open) &&
                       in->I64(&bucket_time) && in->U32(&bucket_total) &&
                       in->U32(&bucket_mapped) && in->U32(&bucket_associated),
                   "monitor state");
    // Mirror of Monitor::CheckInvariants plus the ledger's constructor
    // preconditions — everything that would otherwise abort must be
    // rejected here as a Status.
    ANOT_CKPT_EXPECT(std::isfinite(tier1) && tier1 >= 1.0,
                     "checkpoint: monitor tier-1 universe out of range");
    ANOT_CKPT_EXPECT(std::isfinite(tier2) && tier2 > 0.0,
                     "checkpoint: monitor tier-2 universe out of range");
    ANOT_CKPT_EXPECT(std::isfinite(training_bits),
                     "checkpoint: non-finite monitor training bits");
    ANOT_CKPT_EXPECT(std::isfinite(online_bits) && online_bits >= 0.0,
                     "checkpoint: monitor online bits out of range");
    ANOT_CKPT_EXPECT(bucket_associated <= bucket_mapped &&
                         bucket_mapped <= bucket_total,
                     "checkpoint: monitor bucket counters incoherent");
    if (bucket_open) {
      ANOT_CKPT_EXPECT(bucket_total >= 1 && bucket_time != kNoTimestamp,
                       "checkpoint: open monitor bucket malformed");
    } else {
      ANOT_CKPT_EXPECT(bucket_total == 0 && bucket_mapped == 0 &&
                           bucket_associated == 0,
                       "checkpoint: closed monitor bucket retains counters");
    }
    *out = std::make_unique<Monitor>(training_bits,
                                     static_cast<size_t>(training_timestamps),
                                     tier1, tier2, options);
    Monitor& m = **out;
    m.online_bits_ = online_bits;
    m.online_timestamps_ = static_cast<size_t>(online_timestamps);
    m.bucket_open_ = bucket_open;
    m.bucket_time_ = bucket_time;
    m.bucket_total_ = bucket_total;
    m.bucket_mapped_ = bucket_mapped;
    m.bucket_associated_ = bucket_associated;
    return Status::OK();
  }

  // -- section 7: updater pending-rule table --------------------------------

  static void EncodeUpdater(const Updater& u, ByteWriter* w) {
    w->U64(u.pending_lru_.size());
    // LRU-list order (front = most recently touched) is the only order
    // that matters behaviorally (eviction), and it is deterministic, so
    // it is the canonical serialization order.
    for (const AtomicRule& rule : u.pending_lru_) {
      auto it = u.pending_rules_.find(rule);
      ANOT_CHECK(it != u.pending_rules_.end())
          << "pending LRU entry missing from the table";
      w->U32(rule.subject_category);
      w->U32(rule.relation);
      w->U32(rule.object_category);
      w->U32(it->second.support);
    }
  }

  static Status DecodeUpdater(ByteReader* in, const AnoTOptions& options,
                              const TemporalKnowledgeGraph& g,
                              const CategoryFunction& fn, Updater* u) {
    uint64_t count = 0;
    ANOT_CKPT_READ(in->Count(&count, 16), "pending-rule table");
    ANOT_CKPT_EXPECT(
        count <= std::max<uint64_t>(1, options.updater.max_pending_rules),
        "checkpoint: pending-rule table exceeds its cap");
    for (uint64_t i = 0; i < count; ++i) {
      AtomicRule rule;
      uint32_t support = 0;
      ANOT_CKPT_READ(in->U32(&rule.subject_category) &&
                         in->U32(&rule.relation) &&
                         in->U32(&rule.object_category) && in->U32(&support),
                     "pending-rule table");
      ANOT_CKPT_EXPECT(rule.subject_category < fn.num_categories() &&
                           rule.object_category < fn.num_categories(),
                       "checkpoint: pending rule references an unknown "
                       "category");
      ANOT_CKPT_EXPECT(rule.relation < g.num_relations(),
                       "checkpoint: pending rule references an unknown "
                       "relation");
      ANOT_CKPT_EXPECT(support >= 1,
                       "checkpoint: pending rule with zero support");
      ANOT_CKPT_EXPECT(!u->rules_->FindRule(rule).has_value(),
                       "checkpoint: rule both pending and admitted");
      u->pending_lru_.push_back(rule);
      const bool inserted =
          u->pending_rules_
              .emplace(rule, Updater::PendingRule{
                                 support, std::prev(u->pending_lru_.end())})
              .second;
      ANOT_CKPT_EXPECT(inserted, "checkpoint: duplicate pending rule");
    }
    return Status::OK();
  }

  // -- section 8: serving scalars -------------------------------------------

  static void EncodeServing(const AnoT& s, ByteWriter* w) {
    w->F64(s.static_threshold_);
    w->F64(s.temporal_threshold_);
    w->U64(s.refresh_count_);
  }

  static Status DecodeServing(ByteReader* in, AnoT* s) {
    uint64_t u = 0;
    ANOT_CKPT_READ(in->F64(&s->static_threshold_) &&
                       in->F64(&s->temporal_threshold_) && in->U64(&u),
                   "serving state");
    s->refresh_count_ = static_cast<size_t>(u);
    return Status::OK();
  }

  // -- whole-file assembly --------------------------------------------------

  static std::string EncodeAll(const AnoT& s) {
    ByteWriter out;
    out.Append(std::string(Checkpoint::kMagic, sizeof(Checkpoint::kMagic)));
    out.U32(Checkpoint::kFormatVersion);
    out.U32(kNumSections);
    {
      ByteWriter w;
      EncodeOptions(*s.options_, &w);
      AppendSection(kSectionOptions, w, &out);
    }
    {
      ByteWriter w;
      EncodeGraph(*s.graph_, &w);
      AppendSection(kSectionGraph, w, &out);
    }
    {
      ByteWriter w;
      EncodeCategories(*s.categories_, &w);
      AppendSection(kSectionCategories, w, &out);
    }
    {
      ByteWriter w;
      EncodeRules(*s.rules_, &w);
      AppendSection(kSectionRules, w, &out);
    }
    {
      ByteWriter w;
      EncodeReport(s.report_, &w);
      AppendSection(kSectionReport, w, &out);
    }
    {
      ByteWriter w;
      EncodeMonitor(*s.monitor_, &w);
      AppendSection(kSectionMonitor, w, &out);
    }
    {
      ByteWriter w;
      EncodeUpdater(*s.updater_, &w);
      AppendSection(kSectionUpdater, w, &out);
    }
    {
      ByteWriter w;
      EncodeServing(s, &w);
      AppendSection(kSectionServing, w, &out);
    }
    ByteWriter footer;
    footer.U64(Checkpoint::Checksum(out.bytes().data(), out.bytes().size()));
    std::string bytes = out.bytes();
    bytes += footer.bytes();
    return bytes;
  }

  static Status DecodeAll(const std::string& bytes, AnoT* out) {
    constexpr size_t kMagicSize = sizeof(Checkpoint::kMagic);
    constexpr size_t kMinSize = kMagicSize + 4 + 4 + 8;  // header + footer
    if (bytes.size() < kMinSize) {
      return Status::InvalidArgument(
          "checkpoint: file too short to be a checkpoint");
    }
    if (std::memcmp(bytes.data(), Checkpoint::kMagic, kMagicSize) != 0) {
      return Status::InvalidArgument(
          "checkpoint: bad magic — not an AnoT checkpoint file");
    }
    ByteReader top(bytes.data(), bytes.size() - 8);
    ANOT_CKPT_READ(top.Skip(kMagicSize), "header");
    uint32_t version = 0;
    ANOT_CKPT_READ(top.U32(&version), "header");
    if (version != Checkpoint::kFormatVersion) {
      return Status::InvalidArgument(StrFormat(
          "checkpoint: format version %u is not readable by this build "
          "(expects version %u)",
          version, Checkpoint::kFormatVersion));
    }
    ByteReader footer(bytes.data() + bytes.size() - 8, 8);
    uint64_t want_checksum = 0;
    ANOT_CKPT_READ(footer.U64(&want_checksum), "footer");
    if (Checkpoint::Checksum(bytes.data(), bytes.size() - 8) !=
        want_checksum) {
      return Status::InvalidArgument(
          "checkpoint: checksum mismatch (truncated or corrupt file)");
    }
    uint32_t num_sections = 0;
    ANOT_CKPT_READ(top.U32(&num_sections), "header");
    ANOT_CKPT_EXPECT(num_sections == kNumSections,
                     "checkpoint: unexpected section count");

    ByteReader sections[kNumSections];
    for (uint32_t i = 0; i < kNumSections; ++i) {
      uint32_t id = 0;
      uint64_t len = 0;
      ANOT_CKPT_READ(top.U32(&id), "section header");
      ANOT_CKPT_EXPECT(id == i + 1,
                       "checkpoint: sections out of order or unknown "
                       "section id");
      ANOT_CKPT_READ(top.U64(&len), "section header");
      ANOT_CKPT_EXPECT(len <= top.remaining(),
                       "checkpoint: section length exceeds the file size");
      ANOT_CKPT_READ(top.Sub(static_cast<size_t>(len), &sections[i]),
                     "section payload");
    }
    ANOT_CKPT_EXPECT(top.remaining() == 0,
                     "checkpoint: trailing bytes after the last section");

    out->options_ = std::make_unique<AnoTOptions>();
    ANOT_RETURN_NOT_OK(
        DecodeOptions(&sections[kSectionOptions - 1], out->options_.get()));
    out->graph_ = std::make_unique<TemporalKnowledgeGraph>();
    ANOT_RETURN_NOT_OK(
        DecodeGraph(&sections[kSectionGraph - 1], out->graph_.get()));
    out->categories_ = std::make_unique<CategoryFunction>();
    ANOT_RETURN_NOT_OK(DecodeCategories(&sections[kSectionCategories - 1],
                                        *out->graph_,
                                        out->categories_.get()));
    out->rules_ = std::make_unique<RuleGraph>();
    ANOT_RETURN_NOT_OK(DecodeRules(&sections[kSectionRules - 1], *out->graph_,
                                   *out->categories_, out->rules_.get()));
    ANOT_RETURN_NOT_OK(
        DecodeReport(&sections[kSectionReport - 1], &out->report_));
    ANOT_RETURN_NOT_OK(DecodeMonitor(&sections[kSectionMonitor - 1],
                                     out->options_->monitor, &out->monitor_));
    out->RecreateServingObjects();
    ANOT_RETURN_NOT_OK(DecodeUpdater(&sections[kSectionUpdater - 1],
                                     *out->options_, *out->graph_,
                                     *out->categories_, out->updater_.get()));
    ANOT_RETURN_NOT_OK(DecodeServing(&sections[kSectionServing - 1], out));
    for (uint32_t i = 0; i < kNumSections; ++i) {
      ANOT_CKPT_EXPECT(sections[i].remaining() == 0,
                       "checkpoint: trailing bytes inside a section");
    }
    return Status::OK();
  }
};

// ----------------------------------------------------------- entry points

uint64_t Checkpoint::Checksum(const void* data, size_t size) {
  // FNV-1a 64.
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = 14695981039346656037ull;
  for (size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

Status Checkpoint::Save(const AnoT& system, const std::string& path) {
  if (system.async_ != nullptr) {
    return Status::FailedPrecondition(
        "checkpoint: a background refresh is in flight; quiesce with "
        "FinishRefresh() (or Refresh()) before saving");
  }
  const std::string bytes = Codec::EncodeAll(system);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::IoError("checkpoint: cannot open " + tmp +
                             " for writing");
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return Status::IoError("checkpoint: short write to " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("checkpoint: cannot rename " + tmp + " to " + path);
  }
  return Status::OK();
}

Result<AnoT> Checkpoint::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("checkpoint: cannot open " + path);
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) {
    return Status::IoError("checkpoint: read error on " + path);
  }
  AnoT out;
  ANOT_RETURN_NOT_OK(Codec::DecodeAll(bytes, &out));
  // Belt and braces on validating builds: the Status checks above mirror
  // every structural invariant, and the compiled validators re-verify the
  // assembled detector the same way serving-path tests do.
  out.CheckInvariants();
  return out;
}

Status AnoT::SaveCheckpoint(const std::string& path) const {
  return Checkpoint::Save(*this, path);
}

Result<AnoT> AnoT::LoadCheckpoint(const std::string& path) {
  return Checkpoint::Load(path);
}

}  // namespace anot
