#pragma once

#include <optional>
#include <string>
#include <vector>

#include "tkg/types.h"
#include "util/containers.h"

namespace anot {

using RuleId = uint32_t;
using RuleEdgeId = uint32_t;

/// \brief An atomic rule (C(s), r, C(o)) — a node of the rule graph (§3.4.1).
struct AtomicRule {
  CategoryId subject_category = kInvalidId;
  RelationId relation = kInvalidId;
  CategoryId object_category = kInvalidId;

  bool operator==(const AtomicRule& other) const {
    return subject_category == other.subject_category &&
           relation == other.relation &&
           object_category == other.object_category;
  }
};

struct AtomicRuleHash {
  size_t operator()(const AtomicRule& r) const {
    uint64_t h = internal::HashMix(
        (static_cast<uint64_t>(r.subject_category) << 32) |
        r.object_category);
    return internal::HashMix(h ^ r.relation);
  }
};

/// \brief Edge kinds (§3.4.2): chain occurring (v_h -> v_t) and triadic
/// occurring ((v_h, v_m) -> v_t).
enum class RuleEdgeKind { kChain, kTriadic };

/// \brief A rule edge with its preserved occurrence timespans T(e).
struct RuleEdge {
  RuleEdgeKind kind = RuleEdgeKind::kChain;
  RuleId head = kInvalidId;
  RuleId mid = kInvalidId;  // kInvalidId for chain edges
  RuleId tail = kInvalidId;
  /// Occurrence timespans of the described fact pairs, ascending. Most
  /// edges preserve a handful of spans; the inline storage keeps the
  /// scorer's per-edge agreement scans off the heap.
  small_vec<Timestamp, 8> timespans;
  /// Number of correct assertions |A_e| observed at selection time.
  uint32_t support = 0;
};

/// \brief The rule graph: the paper's TKG summarization structure.
///
/// Nodes are atomic rules; edges preserve the sequential relevance between
/// them. Nodes carry their correct-assertion count |A_v| which anchors both
/// the static score (Eq. 9) and the temporal evidence weights (Eq. 10).
///
/// Some edges reference atomic rules that were *not* selected during the
/// static pass; the paper restricts those rules to time-error verification,
/// tracked here by the per-rule `static_selected` flag.
class RuleGraph {
 public:
  /// Adds (or finds) a rule node. Increments nothing; support is managed
  /// by the caller via SetSupport/AddSupport.
  RuleId AddRule(const AtomicRule& rule, bool static_selected);

  /// Id lookup; nullopt when the rule is not a node.
  std::optional<RuleId> FindRule(const AtomicRule& rule) const;

  /// Adds an edge; merges timespans into an existing identical edge.
  RuleEdgeId AddEdge(const RuleEdge& edge);

  size_t num_rules() const { return rules_.size(); }
  size_t num_edges() const { return edges_.size(); }
  /// Number of rules usable for static (conceptual) scoring.
  size_t num_static_rules() const { return num_static_; }

  const AtomicRule& rule(RuleId id) const ANOT_LIFETIME_BOUND {
    return rules_[id];
  }
  bool static_selected(RuleId id) const { return static_selected_[id]; }
  uint32_t support(RuleId id) const { return support_[id]; }
  void SetSupport(RuleId id, uint32_t support) { support_[id] = support; }
  void AddSupport(RuleId id, uint32_t delta) { support_[id] += delta; }

  /// Whether the pattern repeats on the same entity pair (learned from the
  /// assertion data at build time). An already-occurred successor of a
  /// recurrent pattern is expected, not an occurrence-order conflict, so
  /// temporal scoring skips violation checks on recurrent tails.
  bool recurrent(RuleId id) const { return recurrent_[id]; }
  void SetRecurrent(RuleId id, bool recurrent) { recurrent_[id] = recurrent; }

  const RuleEdge& edge(RuleEdgeId id) const ANOT_LIFETIME_BOUND {
    return edges_[id];
  }
  RuleEdge& mutable_edge(RuleEdgeId id) ANOT_LIFETIME_BOUND {
    return edges_[id];
  }

  /// Per-rule adjacency lists: small_vec keeps the common few-edge case
  /// inline, so the scorer's evidence walk chases no per-rule heap nodes.
  using EdgeList = small_vec<RuleEdgeId, 4>;

  /// Edges whose tail is `rule` (precursor side of temporal scoring).
  const EdgeList& InEdges(RuleId rule) const ANOT_LIFETIME_BOUND;
  /// Edges whose head or mid is `rule` (successor side; violation checks).
  const EdgeList& OutEdges(RuleId rule) const ANOT_LIFETIME_BOUND;

  /// Appends an observed timespan to edge `id`, keeping T(e) sorted
  /// (updater: timespan distribution changes).
  void AddTimespan(RuleEdgeId id, Timestamp span);

  /// Looks up an identical edge (kind/head/mid/tail), if present.
  std::optional<RuleEdgeId> FindEdge(RuleEdgeKind kind, RuleId head,
                                     RuleId mid, RuleId tail) const;

  /// Multi-line human-readable dump (used by serialization and examples).
  std::string ToString() const;

  /// Debug validator (compiled behind ANOT_VALIDATE, no-op otherwise):
  /// parallel-array sizes, rule/edge index round-trips, num_static_ count,
  /// edge endpoint validity (chain edges carry no mid), sorted timespans,
  /// and exact in/out adjacency membership. ANOT_CHECK-fails on the first
  /// violation.
  void CheckInvariants() const;

 private:
  static uint64_t EdgeKey(RuleEdgeKind kind, RuleId head, RuleId mid,
                          RuleId tail);

  std::vector<AtomicRule> rules_;
  std::vector<uint32_t> support_;
  std::vector<bool> static_selected_;
  std::vector<bool> recurrent_;
  size_t num_static_ = 0;
  dense_map<AtomicRule, RuleId, AtomicRuleHash> rule_index_;

  std::vector<RuleEdge> edges_;
  dense_map<uint64_t, RuleEdgeId> edge_index_;
  std::vector<EdgeList> in_edges_;
  std::vector<EdgeList> out_edges_;
};

}  // namespace anot
