#include "rulegraph/rule_graph.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace anot {

namespace {
const RuleGraph::EdgeList kNoEdges;
}

RuleId RuleGraph::AddRule(const AtomicRule& rule, bool static_selected) {
  auto it = rule_index_.find(rule);
  if (it != rule_index_.end()) {
    const RuleId id = it->second;
    if (static_selected && !static_selected_[id]) {
      static_selected_[id] = true;
      ++num_static_;
    }
    return id;
  }
  const RuleId id = static_cast<RuleId>(rules_.size());
  rules_.push_back(rule);
  support_.push_back(0);
  static_selected_.push_back(static_selected);
  recurrent_.push_back(false);
  num_static_ += static_selected ? 1 : 0;
  in_edges_.emplace_back();
  out_edges_.emplace_back();
  rule_index_.emplace(rule, id);
  return id;
}

std::optional<RuleId> RuleGraph::FindRule(const AtomicRule& rule) const {
  auto it = rule_index_.find(rule);
  if (it == rule_index_.end()) return std::nullopt;
  return it->second;
}

uint64_t RuleGraph::EdgeKey(RuleEdgeKind kind, RuleId head, RuleId mid,
                            RuleId tail) {
  uint64_t h = internal::HashMix((static_cast<uint64_t>(head) << 32) | tail);
  h = internal::HashMix(h ^ mid);
  return internal::HashMix(h ^ (kind == RuleEdgeKind::kTriadic ? 0x9E9Eu : 0u));
}

std::optional<RuleEdgeId> RuleGraph::FindEdge(RuleEdgeKind kind, RuleId head,
                                              RuleId mid,
                                              RuleId tail) const {
  auto it = edge_index_.find(EdgeKey(kind, head, mid, tail));
  if (it == edge_index_.end()) return std::nullopt;
  return it->second;
}

RuleEdgeId RuleGraph::AddEdge(const RuleEdge& edge) {
  ANOT_CHECK(edge.head < rules_.size() && edge.tail < rules_.size())
      << "edge references unknown rule";
  ANOT_CHECK(edge.kind == RuleEdgeKind::kChain || edge.mid < rules_.size())
      << "triadic edge requires a mid rule";
  const uint64_t key = EdgeKey(edge.kind, edge.head, edge.mid, edge.tail);
  auto it = edge_index_.find(key);
  if (it != edge_index_.end()) {
    // Merge: extend timespans and support of the existing edge.
    RuleEdge& existing = edges_[it->second];
    for (Timestamp s : edge.timespans) AddTimespan(it->second, s);
    existing.support += edge.support;
    return it->second;
  }
  const RuleEdgeId id = static_cast<RuleEdgeId>(edges_.size());
  edges_.push_back(edge);
  std::sort(edges_.back().timespans.begin(), edges_.back().timespans.end());
  edge_index_.emplace(key, id);
  in_edges_[edge.tail].push_back(id);
  out_edges_[edge.head].push_back(id);
  if (edge.kind == RuleEdgeKind::kTriadic && edge.mid != edge.head) {
    out_edges_[edge.mid].push_back(id);
  }
  return id;
}

const RuleGraph::EdgeList& RuleGraph::InEdges(RuleId rule) const {
  if (rule >= in_edges_.size()) return kNoEdges;
  return in_edges_[rule];
}

const RuleGraph::EdgeList& RuleGraph::OutEdges(RuleId rule) const {
  if (rule >= out_edges_.size()) return kNoEdges;
  return out_edges_[rule];
}

void RuleGraph::AddTimespan(RuleEdgeId id, Timestamp span) {
  auto& spans = edges_[id].timespans;
  spans.insert(std::upper_bound(spans.begin(), spans.end(), span), span);
}

std::string RuleGraph::ToString() const {
  std::string out = StrFormat("RuleGraph: %zu rules (%zu static), %zu edges\n",
                              rules_.size(), num_static_, edges_.size());
  for (RuleId id = 0; id < rules_.size(); ++id) {
    const AtomicRule& r = rules_[id];
    out += StrFormat("  v%u: (c%u, r%u, c%u) |A|=%u%s\n", id,
                     r.subject_category, r.relation, r.object_category,
                     support_[id], static_selected_[id] ? "" : " [temporal]");
  }
  for (RuleEdgeId id = 0; id < edges_.size(); ++id) {
    const RuleEdge& e = edges_[id];
    if (e.kind == RuleEdgeKind::kChain) {
      out += StrFormat("  e%u: v%u -> v%u |T|=%zu |A|=%u\n", id, e.head,
                       e.tail, e.timespans.size(), e.support);
    } else {
      out += StrFormat("  e%u: (v%u, v%u) -> v%u |T|=%zu |A|=%u\n", id,
                       e.head, e.mid, e.tail, e.timespans.size(), e.support);
    }
  }
  return out;
}

void RuleGraph::CheckInvariants() const {
#ifdef ANOT_VALIDATE
  const size_t n = rules_.size();
  ANOT_CHECK(support_.size() == n && static_selected_.size() == n &&
             recurrent_.size() == n && in_edges_.size() == n &&
             out_edges_.size() == n)
      << "rule parallel arrays diverged";
  ANOT_CHECK(rule_index_.size() == n) << "rule index size diverged";
  // anot-lint: ordered-ok validation only: each entry's round-trip check is
  // independent of every other entry, so iteration order cannot change the
  // verdict
  for (const auto& [rule, id] : rule_index_) {
    ANOT_CHECK(id < n && rules_[id] == rule)
        << "rule index does not round-trip for rule " << id;
  }
  size_t want_static = 0;
  for (RuleId id = 0; id < n; ++id) want_static += static_selected_[id] ? 1 : 0;
  ANOT_CHECK(num_static_ == want_static) << "static rule count diverged";

  ANOT_CHECK(edge_index_.size() == edges_.size())
      << "edge index size diverged";
  std::vector<std::vector<RuleEdgeId>> want_in(n);
  std::vector<std::vector<RuleEdgeId>> want_out(n);
  for (RuleEdgeId id = 0; id < edges_.size(); ++id) {
    const RuleEdge& e = edges_[id];
    ANOT_CHECK(e.head < n && e.tail < n)
        << "edge " << id << " references unknown rule";
    if (e.kind == RuleEdgeKind::kChain) {
      ANOT_CHECK(e.mid == kInvalidId) << "chain edge " << id << " has a mid";
    } else {
      ANOT_CHECK(e.mid < n) << "triadic edge " << id << " lacks a mid rule";
    }
    ANOT_CHECK(std::is_sorted(e.timespans.begin(), e.timespans.end()))
        << "edge " << id << " timespans unsorted";
    auto indexed = edge_index_.find(EdgeKey(e.kind, e.head, e.mid, e.tail));
    ANOT_CHECK(indexed != edge_index_.end() && indexed->second == id)
        << "edge index does not round-trip for edge " << id;
    want_in[e.tail].push_back(id);
    want_out[e.head].push_back(id);
    if (e.kind == RuleEdgeKind::kTriadic && e.mid != e.head) {
      want_out[e.mid].push_back(id);
    }
  }
  // AddEdge appends adjacency entries in edge-id order, so the recomputed
  // lists must match exactly (content and order).
  for (RuleId id = 0; id < n; ++id) {
    ANOT_CHECK(in_edges_[id] == want_in[id])
        << "in-edge adjacency diverged for rule " << id;
    ANOT_CHECK(out_edges_[id] == want_out[id])
        << "out-edge adjacency diverged for rule " << id;
  }
#endif  // ANOT_VALIDATE
}

}  // namespace anot
