#include "rulegraph/rule_graph.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace anot {

namespace {
const std::vector<RuleEdgeId> kNoEdges;
}

RuleId RuleGraph::AddRule(const AtomicRule& rule, bool static_selected) {
  auto it = rule_index_.find(rule);
  if (it != rule_index_.end()) {
    const RuleId id = it->second;
    if (static_selected && !static_selected_[id]) {
      static_selected_[id] = true;
      ++num_static_;
    }
    return id;
  }
  const RuleId id = static_cast<RuleId>(rules_.size());
  rules_.push_back(rule);
  support_.push_back(0);
  static_selected_.push_back(static_selected);
  recurrent_.push_back(false);
  num_static_ += static_selected ? 1 : 0;
  in_edges_.emplace_back();
  out_edges_.emplace_back();
  rule_index_.emplace(rule, id);
  return id;
}

std::optional<RuleId> RuleGraph::FindRule(const AtomicRule& rule) const {
  auto it = rule_index_.find(rule);
  if (it == rule_index_.end()) return std::nullopt;
  return it->second;
}

uint64_t RuleGraph::EdgeKey(RuleEdgeKind kind, RuleId head, RuleId mid,
                            RuleId tail) {
  uint64_t h = internal::HashMix((static_cast<uint64_t>(head) << 32) | tail);
  h = internal::HashMix(h ^ mid);
  return internal::HashMix(h ^ (kind == RuleEdgeKind::kTriadic ? 0x9E9Eu : 0u));
}

std::optional<RuleEdgeId> RuleGraph::FindEdge(RuleEdgeKind kind, RuleId head,
                                              RuleId mid,
                                              RuleId tail) const {
  auto it = edge_index_.find(EdgeKey(kind, head, mid, tail));
  if (it == edge_index_.end()) return std::nullopt;
  return it->second;
}

RuleEdgeId RuleGraph::AddEdge(const RuleEdge& edge) {
  ANOT_CHECK(edge.head < rules_.size() && edge.tail < rules_.size())
      << "edge references unknown rule";
  ANOT_CHECK(edge.kind == RuleEdgeKind::kChain || edge.mid < rules_.size())
      << "triadic edge requires a mid rule";
  const uint64_t key = EdgeKey(edge.kind, edge.head, edge.mid, edge.tail);
  auto it = edge_index_.find(key);
  if (it != edge_index_.end()) {
    // Merge: extend timespans and support of the existing edge.
    RuleEdge& existing = edges_[it->second];
    for (Timestamp s : edge.timespans) AddTimespan(it->second, s);
    existing.support += edge.support;
    return it->second;
  }
  const RuleEdgeId id = static_cast<RuleEdgeId>(edges_.size());
  edges_.push_back(edge);
  std::sort(edges_.back().timespans.begin(), edges_.back().timespans.end());
  edge_index_.emplace(key, id);
  in_edges_[edge.tail].push_back(id);
  out_edges_[edge.head].push_back(id);
  if (edge.kind == RuleEdgeKind::kTriadic && edge.mid != edge.head) {
    out_edges_[edge.mid].push_back(id);
  }
  return id;
}

const std::vector<RuleEdgeId>& RuleGraph::InEdges(RuleId rule) const {
  if (rule >= in_edges_.size()) return kNoEdges;
  return in_edges_[rule];
}

const std::vector<RuleEdgeId>& RuleGraph::OutEdges(RuleId rule) const {
  if (rule >= out_edges_.size()) return kNoEdges;
  return out_edges_[rule];
}

void RuleGraph::AddTimespan(RuleEdgeId id, Timestamp span) {
  auto& spans = edges_[id].timespans;
  spans.insert(std::upper_bound(spans.begin(), spans.end(), span), span);
}

std::string RuleGraph::ToString() const {
  std::string out = StrFormat("RuleGraph: %zu rules (%zu static), %zu edges\n",
                              rules_.size(), num_static_, edges_.size());
  for (RuleId id = 0; id < rules_.size(); ++id) {
    const AtomicRule& r = rules_[id];
    out += StrFormat("  v%u: (c%u, r%u, c%u) |A|=%u%s\n", id,
                     r.subject_category, r.relation, r.object_category,
                     support_[id], static_selected_[id] ? "" : " [temporal]");
  }
  for (RuleEdgeId id = 0; id < edges_.size(); ++id) {
    const RuleEdge& e = edges_[id];
    if (e.kind == RuleEdgeKind::kChain) {
      out += StrFormat("  e%u: v%u -> v%u |T|=%zu |A|=%u\n", id, e.head,
                       e.tail, e.timespans.size(), e.support);
    } else {
      out += StrFormat("  e%u: (v%u, v%u) -> v%u |T|=%zu |A|=%u\n", id,
                       e.head, e.mid, e.tail, e.timespans.size(), e.support);
    }
  }
  return out;
}

}  // namespace anot
