#include "anomaly/injector.h"

#include <algorithm>

#include "util/logging.h"

namespace anot {

const char* AnomalyTypeName(AnomalyType type) {
  switch (type) {
    case AnomalyType::kValid: return "valid";
    case AnomalyType::kConceptual: return "conceptual";
    case AnomalyType::kTime: return "time";
    case AnomalyType::kMissing: return "missing";
  }
  __builtin_unreachable();  // -Wswitch-enum keeps the switch total
}

AnomalyInjector::AnomalyInjector(const InjectorConfig& config)
    : config_(config), rng_(config.seed) {
  ANOT_CHECK(config_.conceptual_fraction + config_.time_fraction +
                 config_.missing_fraction <
             1.0)
      << "anomaly fractions must leave valid facts in the stream";
}

Fact AnomalyInjector::PerturbConceptual(const TemporalKnowledgeGraph& graph,
                                        const Fact& f) {
  const size_t num_entities = graph.num_entities();
  const size_t num_relations = graph.num_relations();
  for (int attempt = 0; attempt < 64; ++attempt) {
    Fact candidate = f;
    if (rng_.Bernoulli(0.5) && num_entities > 2) {
      candidate.object =
          static_cast<EntityId>(rng_.Uniform(num_entities));
    } else if (num_relations > 1) {
      candidate.relation =
          static_cast<RelationId>(rng_.Uniform(num_relations));
    }
    const bool unchanged = candidate.object == f.object &&
                           candidate.relation == f.relation;
    if (unchanged || candidate.object == candidate.subject) continue;
    if (!graph.ContainsTriple(candidate.subject, candidate.relation,
                              candidate.object)) {
      return candidate;
    }
  }
  // Dense graph fallback: flip the object deterministically to an entity
  // that never interacted with this subject/relation.
  Fact candidate = f;
  candidate.object = (f.object + 1) % std::max<size_t>(2, num_entities);
  return candidate;
}

Fact AnomalyInjector::PerturbTime(const TemporalKnowledgeGraph& graph,
                                  const Fact& f, Timestamp window_min,
                                  Timestamp window_max) {
  const Timestamp span = std::max<Timestamp>(1, window_max - window_min);
  const Timestamp min_shift = std::max<Timestamp>(
      1, static_cast<Timestamp>(static_cast<double>(span) *
                                config_.min_time_shift_fraction));
  for (int attempt = 0; attempt < 64; ++attempt) {
    Fact candidate = f;
    Timestamp t2 = window_min + rng_.UniformInt(0, span);
    if (std::llabs(t2 - f.time) < min_shift) continue;
    if (config_.perturb_durations && graph.has_durations()) {
      // Perturb t_start or t_end while preserving start <= end.
      if (rng_.Bernoulli(0.5)) {
        candidate.time = std::min(t2, candidate.end);
      } else {
        candidate.end = std::max(t2, candidate.time);
        if (candidate.end == f.end) continue;
      }
    } else {
      candidate.time = t2;
      candidate.end = config_.perturb_durations
                          ? std::max(candidate.end, t2)
                          : t2;
    }
    if (!graph.Contains(candidate)) return candidate;
  }
  // Fallback: push to the far edge of the window.
  Fact candidate = f;
  Timestamp t2 =
      (f.time - window_min > window_max - f.time) ? window_min : window_max;
  candidate.time = t2;
  if (!config_.perturb_durations) candidate.end = t2;
  if (candidate.end < candidate.time) candidate.end = candidate.time;
  return candidate;
}

EvalStream AnomalyInjector::Inject(const TemporalKnowledgeGraph& graph,
                                   const std::vector<FactId>& window) {
  EvalStream stream;
  if (window.empty()) return stream;

  Timestamp window_min = graph.fact(window.front()).time;
  Timestamp window_max = window_min;
  for (FactId id : window) {
    window_min = std::min(window_min, graph.fact(id).time);
    window_max = std::max(window_max, graph.fact(id).time);
  }

  // Disjoint samples per anomaly type (paper: 15% each).
  const size_t n = window.size();
  const size_t n_conceptual =
      static_cast<size_t>(static_cast<double>(n) *
                          config_.conceptual_fraction);
  const size_t n_time = static_cast<size_t>(
      static_cast<double>(n) * config_.time_fraction);
  const size_t n_missing = static_cast<size_t>(
      static_cast<double>(n) * config_.missing_fraction);

  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  rng_.Shuffle(&order);

  stream.arrivals.reserve(n - n_missing);
  stream.missing_candidates.reserve(2 * n_missing);

  for (size_t pos = 0; pos < n; ++pos) {
    const FactId id = window[order[pos]];
    const Fact& f = graph.fact(id);
    if (pos < n_conceptual) {
      stream.arrivals.push_back(
          LabeledFact{PerturbConceptual(graph, f), AnomalyType::kConceptual,
                      id});
    } else if (pos < n_conceptual + n_time) {
      stream.arrivals.push_back(LabeledFact{
          PerturbTime(graph, f, window_min, window_max), AnomalyType::kTime,
          id});
    } else if (pos < n_conceptual + n_time + n_missing) {
      // Deleted from the stream; it becomes a missing-error positive.
      stream.missing_candidates.push_back(
          LabeledFact{f, AnomalyType::kMissing, id});
      // Matched negative: a corrupted tuple that genuinely should not be
      // added to the TKG.
      stream.missing_candidates.push_back(
          LabeledFact{PerturbConceptual(graph, f), AnomalyType::kValid, id});
    } else {
      stream.arrivals.push_back(LabeledFact{f, AnomalyType::kValid, id});
    }
  }

  std::stable_sort(stream.arrivals.begin(), stream.arrivals.end(),
                   [](const LabeledFact& a, const LabeledFact& b) {
                     return a.fact.time < b.fact.time;
                   });
  return stream;
}

}  // namespace anot
