#pragma once

#include <string>
#include <vector>

#include "tkg/graph.h"
#include "util/random.h"

namespace anot {

/// \brief The three anomaly classes of §3.2 plus the valid label.
enum class AnomalyType { kValid = 0, kConceptual, kTime, kMissing };

// anot-lint: lifetime-ok returns a string literal (immortal storage)
const char* AnomalyTypeName(AnomalyType type);

/// \brief A fact in an evaluation stream with its ground-truth label.
struct LabeledFact {
  Fact fact;
  AnomalyType label = AnomalyType::kValid;
  /// Id of the clean fact this entry was derived from (diagnostics).
  FactId source = kInvalidId;
};

/// \brief An injected evaluation stream (paper §5.1 protocol).
///
/// `arrivals` carries the surviving valid facts plus conceptual and time
/// anomalies, sorted by arrival timestamp. `missing_candidates` carries
/// the missing-error detection task: positives are valid facts deleted
/// from the stream (label kMissing), negatives are corrupted tuples that
/// genuinely should not exist (label kValid).
struct EvalStream {
  std::vector<LabeledFact> arrivals;
  std::vector<LabeledFact> missing_candidates;
};

/// \brief Injection parameters. The paper perturbs 15% of valid knowledge
/// per anomaly type, with disjoint samples, and keeps "a large span"
/// between t and t' for time errors.
struct InjectorConfig {
  double conceptual_fraction = 0.15;
  double time_fraction = 0.15;
  double missing_fraction = 0.15;
  /// Minimum |t' - t| as a fraction of the evaluation window span.
  double min_time_shift_fraction = 0.3;
  /// For duration TKGs: perturb t_start or t_end instead of t.
  bool perturb_durations = false;
  uint64_t seed = 7;
};

/// \brief Generates labeled evaluation streams from clean TKG windows.
class AnomalyInjector {
 public:
  explicit AnomalyInjector(const InjectorConfig& config);

  /// Injects anomalies into the facts of `window` (fact ids into `graph`).
  /// `graph` is the *full* clean TKG and is used to verify that perturbed
  /// tuples do not collide with genuine knowledge.
  EvalStream Inject(const TemporalKnowledgeGraph& graph,
                    const std::vector<FactId>& window);

 private:
  Fact PerturbConceptual(const TemporalKnowledgeGraph& graph, const Fact& f);
  Fact PerturbTime(const TemporalKnowledgeGraph& graph, const Fact& f,
                   Timestamp window_min, Timestamp window_max);

  InjectorConfig config_;
  Rng rng_;
};

}  // namespace anot
