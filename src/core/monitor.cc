#include "core/monitor.h"

#include "util/logging.h"

namespace anot {

Monitor::Monitor(double training_negative_bits, size_t training_timestamps,
                 double tier1_universe, double tier2_universe,
                 const MonitorOptions& options)
    : pricing_(tier1_universe, tier2_universe),
      options_(options),
      training_bits_(training_negative_bits),
      training_timestamps_(training_timestamps) {}

void Monitor::CloseBucket() {
  if (!bucket_open_) return;
  online_bits_ +=
      pricing_.CostAt(bucket_total_, bucket_mapped_, bucket_associated_);
  ++online_timestamps_;
  bucket_open_ = false;
  bucket_total_ = bucket_mapped_ = bucket_associated_ = 0;
}

void Monitor::Observe(Timestamp t, bool mapped, bool associated) {
  if (bucket_open_ && t != bucket_time_) CloseBucket();
  bucket_open_ = true;
  bucket_time_ = t;
  ++bucket_total_;
  bucket_mapped_ += mapped ? 1 : 0;
  bucket_associated_ += (mapped && associated) ? 1 : 0;
}

void Monitor::Flush() { CloseBucket(); }

void Monitor::Replay(const std::vector<MonitorObservation>& observations) {
  for (const MonitorObservation& o : observations) {
    Observe(o.time, o.mapped, o.associated);
  }
}

bool Monitor::ShouldRefresh() const {
  double pending = online_bits_;
  size_t pending_ts = online_timestamps_;
  if (bucket_open_) {
    pending +=
        pricing_.CostAt(bucket_total_, bucket_mapped_, bucket_associated_);
    ++pending_ts;
  }
  switch (options_.mode) {
    case MonitorOptions::Mode::kTotalBudget:
      // Eq. 11 as printed: refresh once unseen data costs more than the
      // training data did.
      return pending > training_bits_;
    case MonitorOptions::Mode::kPerTimestamp: {
      if (pending_ts == 0 || training_timestamps_ == 0) return false;
      const double online_mean =
          pending / static_cast<double>(pending_ts);
      const double train_mean =
          training_bits_ / static_cast<double>(training_timestamps_);
      return online_mean > train_mean * options_.slack;
    }
  }
  return false;
}

void Monitor::CheckInvariants() const {
#ifdef ANOT_VALIDATE
  ANOT_CHECK(online_bits_ >= 0.0) << "accumulated online bits negative";
  ANOT_CHECK(bucket_associated_ <= bucket_mapped_)
      << "bucket associated " << bucket_associated_ << " > mapped "
      << bucket_mapped_;
  ANOT_CHECK(bucket_mapped_ <= bucket_total_)
      << "bucket mapped " << bucket_mapped_ << " > total " << bucket_total_;
  if (bucket_open_) {
    ANOT_CHECK(bucket_total_ >= 1) << "open bucket with no arrivals";
    ANOT_CHECK(bucket_time_ != kNoTimestamp) << "open bucket with no time";
  } else {
    ANOT_CHECK(bucket_total_ == 0 && bucket_mapped_ == 0 &&
               bucket_associated_ == 0)
        << "closed bucket retains counters";
  }
#endif  // ANOT_VALIDATE
}

void Monitor::Reset(double training_negative_bits,
                    size_t training_timestamps) {
  training_bits_ = training_negative_bits;
  training_timestamps_ = training_timestamps;
  online_bits_ = 0.0;
  online_timestamps_ = 0;
  bucket_open_ = false;
  bucket_total_ = bucket_mapped_ = bucket_associated_ = 0;
}

}  // namespace anot
