#pragma once

#include <vector>

#include "core/options.h"
#include "mdl/encoding.h"
#include "mining/category_function.h"
#include "rulegraph/rule_graph.h"
#include "tkg/graph.h"
#include "util/containers.h"
#include "util/thread_pool.h"

namespace anot {

/// \brief A candidate's assertion facts regrouped by timestamp (CSR
/// layout, ascending timestamps).
///
/// Cached once per candidate by the builder so each greedy-selection
/// sweep walks a flat, timestamp-sorted array instead of rebuilding a
/// per-candidate hash map: the sorted group order makes every cost-delta
/// summation deterministic (the foundation of the speculative /
/// serial-loop bit-identity contract), and the group list doubles as the
/// candidate's dirty-timestamp footprint for epoch checks.
struct DeltaHistogram {
  std::vector<Timestamp> times;    // unique, ascending
  std::vector<uint32_t> offsets;   // times.size() + 1 offsets into facts
  std::vector<FactId> facts;       // grouped by time; input order within

  bool empty() const { return times.empty(); }
  size_t num_times() const { return times.size(); }
};

/// Regroups `fact_ids` by their start timestamp in `graph`. Depends only
/// on the id list and the graph, so it can be filled by any shard of the
/// parallel costing pass without affecting determinism.
DeltaHistogram BuildDeltaHistogram(const TemporalKnowledgeGraph& graph,
                                   const std::vector<FactId>& fact_ids);

/// \brief A candidate atomic rule with its correct assertions (§4.3.2).
struct RuleCandidate {
  AtomicRule rule;
  /// Facts this rule describes (A_v).
  std::vector<FactId> assertions;
  /// Optimal-prefix-code accounting for Eq. 6.
  EntropyAccumulator subject_entropy;
  EntropyAccumulator object_entropy;
  /// Model + assertion bits and the per-timestamp assertion histogram,
  /// filled by the builder.
  double model_bits = 0.0;
  double assertion_bits = 0.0;
  DeltaHistogram by_time;
};

/// \brief A candidate rule edge with its assertions and timespans.
///
/// Each assertion is anchored on its *tail fact*: a tail fact is counted
/// at most once per edge (paired with its most recent head instantiation),
/// which bounds |A_e| <= |A_tail| and keeps Eq. 7 affordable.
///
/// Assertion encoding (Eq. 7 realization): given the edge and the TKG, the
/// head partner is *determined* by the instantiation procedure (most
/// recent matching fact), so the only residual information per assertion
/// is its occurrence timespan. We charge a prefix code over timespans
/// bucketed at the tolerance L: edges with consistent timing are cheap to
/// describe and win selection; incidental co-occurrences with scattered
/// timespans stay expensive.
struct EdgeCandidate {
  RuleEdgeKind kind = RuleEdgeKind::kChain;
  uint32_t head = 0;  // indexes into the RuleCandidate vector
  uint32_t mid = 0;   // unused for chain edges
  uint32_t tail = 0;
  std::vector<FactId> tail_facts;
  std::vector<Timestamp> timespans;  // parallel to tail_facts
  EntropyAccumulator timespan_entropy;
  /// Model + assertion bits and the per-timestamp tail-fact histogram,
  /// filled by the builder.
  double model_bits = 0.0;
  double assertion_bits = 0.0;
  DeltaHistogram by_time;

  size_t support() const { return tail_facts.size(); }
};

/// \brief Candidate pools generated from the offline TKG.
struct CandidatePool {
  std::vector<RuleCandidate> rules;
  std::vector<EdgeCandidate> edges;
  /// rule -> index in `rules`.
  dense_map<AtomicRule, uint32_t, AtomicRuleHash> rule_index;
};

/// \brief Generates candidate atomic rules and rule edges (§4.3.2).
///
/// Atomic rules: every (c_s, r, c_o) with c_s ∈ C(s), c_o ∈ C(o) observed
/// on some fact. Chain edges: ordered relation pairs within each entity
/// pair's interaction sequence (bounded lookback). Triadic edges: closures
/// (s,r_m,p), (h,r_n,p) co-occurring within L followed by (s,r_p,h).
///
/// Parallelism: each generation phase partitions its scan domain (facts or
/// pair sequences) into shards whose boundaries depend only on the data
/// size. Shards accumulate into private pools — reading the global pool of
/// the previous phases, which stays frozen during the scan — and are then
/// merged in shard-index order. First-occurrence order over the shard
/// concatenation equals the sequential scan order and all entropy costs
/// are canonical in the symbol multiset, so the resulting pool is
/// bit-identical for every thread count (including 1).
class CandidateGenerator {
 public:
  CandidateGenerator(const TemporalKnowledgeGraph& graph,
                     const CategoryFunction& categories,
                     const DetectorOptions& options,
                     size_t num_threads = 1);

  /// Runs generation. Edges beyond options.max_candidate_edges are dropped
  /// lowest-support-first (deterministically).
  CandidatePool Generate() const;

  /// Same, on a caller-owned pool (nullptr = serial). Lets the builder
  /// reuse one worker pool across generation and candidate costing.
  CandidatePool Generate(ThreadPool* workers) const;

 private:
  void GenerateRules(CandidatePool* pool, ThreadPool* workers) const;
  void GenerateChainEdges(CandidatePool* pool, ThreadPool* workers) const;
  void GenerateTriadicEdges(CandidatePool* pool, ThreadPool* workers) const;

  // anot-own: stack-scoped generation pass owned by RuleGraphBuilder's
  // Build() frame — the referenced graph/categories/options outlive that
  // whole pipeline call; generators are never stored or moved.
  const TemporalKnowledgeGraph& graph_;
  // anot-own: same Build()-frame contract as graph_.
  const CategoryFunction& categories_;
  // anot-own: same Build()-frame contract as graph_.
  const DetectorOptions& options_;
  size_t num_threads_ = 1;
};

}  // namespace anot
