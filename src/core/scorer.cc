#include "core/scorer.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace anot {

namespace {
constexpr double kEpsilonSupport = 1e-9;
}

Scorer::Scorer(const TemporalKnowledgeGraph* graph,
               const CategoryFunction* categories, const RuleGraph* rules,
               const DetectorOptions* options)
    : graph_(graph),
      categories_(categories),
      rules_(rules),
      options_(options) {
  ANOT_CHECK(graph_ && categories_ && rules_ && options_);
}

bool Scorer::RuleMatchesFact(const AtomicRule& rule, EntityId subject,
                             RelationId relation, EntityId object) const {
  if (rule.relation != relation) return false;
  const auto& cs = categories_->Categories(subject);
  if (!std::binary_search(cs.begin(), cs.end(), rule.subject_category)) {
    return false;
  }
  const auto& co = categories_->Categories(object);
  return std::binary_search(co.begin(), co.end(), rule.object_category);
}

small_vec<RuleId, 8> Scorer::MapToRules(const Fact& fact) const {
  small_vec<RuleId, 8> mapped;
  for (CategoryId cs : categories_->Categories(fact.subject)) {
    for (CategoryId co : categories_->Categories(fact.object)) {
      auto id = rules_->FindRule(AtomicRule{cs, fact.relation, co});
      if (id.has_value()) mapped.push_back(*id);
    }
  }
  std::sort(mapped.begin(), mapped.end());
  mapped.erase(std::unique(mapped.begin(), mapped.end()), mapped.end());
  return mapped;
}

double Scorer::RuleWeight(RuleId rule) const {
  if (options_->unit_rule_weight) return 1.0;
  return std::max<uint32_t>(1, rules_->support(rule));
}

uint32_t Scorer::CountAgreements(const RuleEdge& edge,
                                 Timestamp delta) const {
  const Timestamp tolerance = options_->timespan_tolerance;
  uint32_t agree = 0;
  for (Timestamp span : edge.timespans) {
    if (std::llabs(span - delta) <= tolerance) ++agree;
  }
  return agree;
}

double Scorer::EvidenceWeight(const RuleEdge& edge,
                              const Instantiation& inst) const {
  const double weight = RuleWeight(edge.tail);
  switch (options_->theta_mode) {
    case ThetaMode::kAsPrinted:
      // Literal Eq. 10: x = |A_v| / (θ + 1) with θ the agreement count.
      return weight / (static_cast<double>(inst.agreements) + 1.0);
    case ThetaMode::kMismatch:
      // Prose semantics ("θ indicates the gap"), normalized: evidence is
      // proportional to the empirical probability that the observed
      // timespan is typical for this edge.
      return weight * (1.0 + static_cast<double>(inst.agreements)) /
             (1.0 + static_cast<double>(edge.timespans.size()));
  }
  return 0.0;
}

std::optional<Instantiation> Scorer::TryInstantiate(
    const RuleEdge& edge, const Fact& fact, FactId exclude_witness) const {
  const Timestamp tail_time = AnchorTime(fact, options_->tail_anchor);
  const AtomicRule& head_rule = rules_->rule(edge.head);

  if (edge.kind == RuleEdgeKind::kChain) {
    // A prior fact of the head rule on the same (s, o) pair. Evidence is
    // existential, so among admissible witnesses we keep the one whose
    // timespan agrees best with T(e) (minimal θ). Witnesses are excluded
    // by id, not value: a distinct earlier occurrence of an identical
    // recurring fact is a real precursor.
    const auto* seq = graph_->FactsForPair(fact.subject, fact.object);
    if (seq == nullptr) return std::nullopt;
    std::optional<Instantiation> best;
    size_t scanned = 0;
    for (auto it = seq->rbegin();
         it != seq->rend() && scanned < options_->max_instantiation_scan;
         ++it, ++scanned) {
      if (*it == exclude_witness) continue;
      const Fact& g = graph_->fact(*it);
      const Timestamp head_time = AnchorTime(g, options_->head_anchor);
      if (head_time > tail_time) continue;
      if (!RuleMatchesFact(head_rule, g.subject, g.relation, g.object)) {
        continue;
      }
      Instantiation inst{*it, tail_time - head_time, 0};
      inst.agreements = CountAgreements(edge, inst.delta);
      if (!best.has_value() || inst.agreements > best->agreements) {
        best = inst;
      }
      if (best->agreements == edge.timespans.size()) break;  // maximal
    }
    return best;
  }

  // Triadic: prior facts (s, r_m, p) and (o, r_n, p) co-occurring within L.
  const AtomicRule& mid_rule = rules_->rule(edge.mid);
  const auto* s_facts = graph_->FactsBySubject(fact.subject);
  if (s_facts == nullptr) return std::nullopt;
  const Timestamp window = options_->timespan_tolerance;
  std::optional<Instantiation> best;
  size_t scanned = 0;
  for (auto it = s_facts->rbegin();
       it != s_facts->rend() && scanned < options_->max_instantiation_scan;
       ++it, ++scanned) {
    if (*it == exclude_witness) continue;
    const Fact& g1 = graph_->fact(*it);
    const Timestamp t1 = AnchorTime(g1, options_->head_anchor);
    if (t1 > tail_time) continue;
    const EntityId p = g1.object;
    if (p == fact.object || p == fact.subject) continue;
    if (!RuleMatchesFact(head_rule, g1.subject, g1.relation, p)) continue;
    const auto* op = graph_->FactsForPair(fact.object, p);
    if (op == nullptr) continue;
    size_t scanned2 = 0;
    for (auto it2 = op->rbegin();
         it2 != op->rend() && scanned2 < options_->max_instantiation_scan;
         ++it2, ++scanned2) {
      const Fact& g2 = graph_->fact(*it2);
      const Timestamp t2 = AnchorTime(g2, options_->head_anchor);
      if (t2 > tail_time) continue;
      if (std::llabs(t2 - t1) > window) continue;
      if (!RuleMatchesFact(mid_rule, g2.subject, g2.relation, g2.object)) {
        continue;
      }
      Instantiation inst{*it, tail_time - std::max(t1, t2), 0};
      inst.agreements = CountAgreements(edge, inst.delta);
      if (!best.has_value() || inst.agreements > best->agreements) {
        best = inst;
      }
      break;  // most recent admissible mid for this head
    }
    if (best.has_value() && best->agreements == edge.timespans.size()) {
      break;
    }
  }
  return best;
}

Scorer::EdgeEvidence Scorer::EvidenceForEdge(RuleEdgeId edge_id,
                                             const Fact& fact, int depth,
                                             Walk* walk,
                                             Evidence* evidence) const {
  if (walk->visited[edge_id]) return {};
  walk->visited[edge_id] = 1;
  const RuleEdge& edge = rules_->edge(edge_id);

  auto inst = TryInstantiate(edge, fact, walk->exclude_witness);
  walk->instantiated[edge_id] = inst.has_value();
  if (inst.has_value()) {
    EdgeEvidence out;
    out.support = EvidenceWeight(edge, *inst);
    if (options_->theta_mode == ThetaMode::kMismatch) {
      // Fraction of preserved timespans the observation disagrees with:
      // conflict evidence of a time error.
      out.conflict = 1.0 - (1.0 + static_cast<double>(inst->agreements)) /
                               (1.0 + static_cast<double>(
                                          edge.timespans.size()));
    }
    if (evidence != nullptr) {
      const uint32_t disagreement =
          static_cast<uint32_t>(edge.timespans.size()) - inst->agreements;
      evidence->precursors.push_back(Evidence::Precursor{
          edge_id, edge.head, depth, true, inst->witness, inst->delta,
          disagreement});
    }
    return out;
  }

  if (evidence != nullptr) {
    evidence->precursors.push_back(Evidence::Precursor{
        edge_id, edge.head, depth, false, kInvalidId, 0, 0});
  }
  // Recursive strategy: use the precursor's own precursors as alternative
  // evidence, up to K hops (Alg. 2 lines 16-21).
  EdgeEvidence out;
  if (options_->use_recursion &&
      depth + 1 < static_cast<int>(options_->max_recursion_steps)) {
    for (RuleEdgeId in_edge : rules_->InEdges(edge.head)) {
      EdgeEvidence child =
          EvidenceForEdge(in_edge, fact, depth + 1, walk, evidence);
      out.support += child.support;
    }
  }
  // An unmet precursor expectation is conflict evidence at the top level,
  // but only for *obligatory* chain edges: the precursor historically
  // accompanied most tail occurrences (empirical P(head | tail) high),
  // the statistics are non-trivial, the pattern is one-shot (recurrent
  // tails legitimately re-occur without fresh precursors), and the edge
  // is not a self-loop (an uninstantiated self-loop is just a first
  // occurrence).
  if (depth == 0 && out.support == 0.0 &&
      edge.kind == RuleEdgeKind::kChain && edge.head != edge.tail &&
      !rules_->recurrent(edge.tail) && edge.timespans.size() >= 4) {
    const double obligation =
        static_cast<double>(edge.support) /
        std::max<double>(1.0, rules_->support(edge.tail));
    if (obligation >= 0.33) out.conflict += 1.0;
  }
  return out;
}

Scores Scorer::Score(const Fact& fact, Evidence* evidence,
                     FactId exclude_witness) const {
  Scores scores;

  // ---- Static score (Eq. 9) ----------------------------------------------
  const auto mapped = MapToRules(fact);
  for (RuleId id : mapped) {
    const bool is_static = rules_->static_selected(id);
    if (is_static) scores.static_support += RuleWeight(id);
    if (evidence != nullptr) {
      evidence->mapped.push_back(
          Evidence::MappedRule{id, rules_->support(id), is_static});
    }
  }
  scores.static_score = 1.0 / (scores.static_support + kEpsilonSupport);

  // ---- λ gate (Alg. 2 line 8) ----------------------------------------------
  if (scores.static_support < options_->lambda) {
    // Gated knowledge is a *conceptual*-error candidate; no temporal
    // conflict evidence is gathered, so it ranks at the bottom of the
    // time-error task (Algorithm 2 returns S only).
    scores.temporal_score = 0.0;
    return scores;
  }
  scores.temporal_evaluated = true;

  // ---- Temporal score (Eq. 10) ----------------------------------------------
  Walk walk;
  walk.visited.assign(rules_->num_edges(), 0);
  walk.instantiated.assign(rules_->num_edges(), 0);
  walk.exclude_witness = exclude_witness;
  for (RuleId id : mapped) {
    for (RuleEdgeId in_edge : rules_->InEdges(id)) {
      EdgeEvidence e = EvidenceForEdge(in_edge, fact, 0, &walk, evidence);
      scores.temporal_support += e.support;
      scores.temporal_conflict += e.conflict;
    }
  }
  // Association flag for the monitor: an instantiable in-edge of a mapped
  // rule means the fact is "associated with a previous fact via a rule
  // edge". Every such edge was tried exactly once during the walk above
  // (possibly at recursion depth > 0, where the visited filter then
  // skips its depth-0 turn), so the recorded per-edge outcome replaces
  // the second TryInstantiate pass the scorer used to run here.
  if (scores.temporal_support > 0.0) {
    for (RuleId id : mapped) {
      for (RuleEdgeId in_edge : rules_->InEdges(id)) {
        if (walk.instantiated[in_edge]) {
          scores.associated = true;
          break;
        }
      }
      if (scores.associated) break;
    }
  }

  // ---- Out-edge violations (Eq. 10 extension) -------------------------------
  if (options_->use_out_edge_violations) {
    for (RuleId id : mapped) {
      for (RuleEdgeId out_id : rules_->OutEdges(id)) {
        const RuleEdge& edge = rules_->edge(out_id);
        if (edge.kind != RuleEdgeKind::kChain) continue;
        if (edge.head != id) continue;
        // Self-loops and recurrent successors: an earlier occurrence of a
        // repeating pattern is expected, not an order conflict.
        if (edge.tail == id) continue;
        if (rules_->recurrent(edge.tail)) continue;
        // The successor pattern already occurred before this knowledge:
        // an occurrence-order conflict.
        const AtomicRule& tail_rule = rules_->rule(edge.tail);
        const auto* seq = graph_->FactsForPair(fact.subject, fact.object);
        if (seq == nullptr) continue;
        size_t scanned = 0;
        for (auto it = seq->rbegin();
             it != seq->rend() &&
             scanned < options_->max_instantiation_scan;
             ++it, ++scanned) {
          if (*it == exclude_witness) continue;
          const Fact& g = graph_->fact(*it);
          if (AnchorTime(g, options_->tail_anchor) >
              AnchorTime(fact, options_->head_anchor)) {
            continue;
          }
          if (RuleMatchesFact(tail_rule, g.subject, g.relation, g.object)) {
            ++scores.out_violations;
            if (evidence != nullptr) evidence->violations.push_back(out_id);
            break;
          }
        }
      }
    }
  }

  const double numerator =
      1.0 + options_->conflict_weight *
                (static_cast<double>(scores.out_violations) +
                 scores.temporal_conflict);
  const double base_evidence =
      options_->temporal_base_weight * scores.static_support;
  // The +1 bounds zero-signal knowledge (no expectations, no conflicts)
  // at a neutral score <= 1; conflict evidence pushes above 1, gathered
  // support pulls towards 0.
  scores.temporal_score =
      numerator / (1.0 + scores.temporal_support + base_evidence);
  return scores;
}

}  // namespace anot
