#pragma once

#include <cstddef>

#include "mining/category_function.h"
#include "tkg/types.h"

namespace anot {

/// \brief Which time annotation anchors a fact during association
/// (duration TKGs, §4.7). Point facts have start == end, so all four
/// combinations coincide.
enum class TimeAnchor { kStart, kEnd };

inline Timestamp AnchorTime(const Fact& f, TimeAnchor anchor) {
  return anchor == TimeAnchor::kStart ? f.time : f.end;
}

/// \brief How θ in Eq. 10 counts preserved timespans.
///
/// The paper's prose says θ "indicates the gap between the timespan of the
/// instantiations and the preserved timespans", yet the printed formula
/// counts *agreeing* spans (|τ - Δt| <= L), which would make evidence
/// weaker the better the timing matches. kMismatch (default) counts
/// *disagreeing* spans, matching the prose semantics; kAsPrinted keeps the
/// printed formula. Both are exercised by bench/exp_ablation_theta.
enum class ThetaMode { kMismatch, kAsPrinted };

/// \brief How candidates are ranked before greedy selection (§4.3.3).
enum class RankingMode {
  kDeltaCost,       // paper: ΔL first, then |A|, then id
  kAssertionsOnly,  // ablation: |A| only (Table 3 variant)
};

/// \brief All detector hyper-parameters (paper §5.2 grid).
struct DetectorOptions {
  CategoryFunctionOptions category;

  /// Cap on candidate rule edges (paper: 50000).
  size_t max_candidate_edges = 50000;

  /// Maximum recursion steps K during temporal scoring (paper: {1,2,3,4}).
  size_t max_recursion_steps = 2;

  /// Timespan restriction L, in ticks (paper: {10,100,1000,2000}); bounds
  /// both triadic co-occurrence and timespan agreement.
  Timestamp timespan_tolerance = 100;

  /// λ — minimum static support before temporal scoring runs (Alg. 2 l.8).
  double lambda = 1.0;

  /// Chain-candidate lookback: how many predecessors of a pair sequence
  /// each fact is paired with (performance cap; the paper enumerates all
  /// m < n pairs).
  size_t max_pair_lag = 8;

  /// Scan caps during instantiation (keeps scoring O(f_max), §4.6).
  size_t max_instantiation_scan = 64;

  /// Ablation switches (Table 3).
  bool use_triadic = true;
  bool use_recursion = true;
  bool use_category_aggregation = true;
  bool unit_rule_weight = false;  // replace |A_v| by 1 in Eqs. 9-10
  RankingMode ranking = RankingMode::kDeltaCost;

  /// Greedy-selection execution strategy (§4.3.3 / Algorithm 1 lines
  /// 7-12). When true, each sweep evaluates every remaining candidate's
  /// cost delta in parallel against a sweep-start ledger snapshot and
  /// admits serially in rank order, recomputing a delta only when an
  /// earlier admission in the same sweep dirtied one of its timestamps.
  /// When false, the reference serial loop runs. Both paths produce
  /// bit-identical rule graphs and build reports for every thread count
  /// (pinned by core_test's selection-determinism goldens).
  bool speculative_selection = true;

  /// Out-edge violation extension of Eq. 10 (the paper's "can be further
  /// extended" remark; needed for the Trump/outgoing-president case).
  bool use_out_edge_violations = true;

  ThetaMode theta_mode = ThetaMode::kMismatch;

  /// Weak occurrence evidence contributed by the mapped rules themselves
  /// (weight × static support added to Eq. 10's denominator). Keeps the
  /// temporal score bounded for knowledge whose patterns carry no
  /// occurrence-order expectation at all, instead of treating "no
  /// expectation" as maximal anomaly. Set to 0 for the strict Eq. 10.
  double temporal_base_weight = 0.05;

  /// Weight of conflict mass (timespan disagreement, unmet one-shot
  /// precursors, out-edge violations) in the extended Eq. 10 numerator.
  double conflict_weight = 3.0;

  /// Duration-TKG anchors (§4.7). Point TKGs ignore these.
  TimeAnchor head_anchor = TimeAnchor::kStart;
  TimeAnchor tail_anchor = TimeAnchor::kStart;
};

/// \brief Online-update knobs (§4.4; Algorithm 3).
struct UpdaterOptions {
  /// A recurring unseen pattern becomes a new rule node once its online
  /// support reaches this count and the marginal MDL test passes.
  size_t new_rule_min_support = 3;

  /// Cap on the not-yet-admitted pattern table. Anomaly-heavy streams mint
  /// unbounded never-admitted candidates (every unseen (C(s), r, C(o))
  /// combination opens an entry); past the cap the least-recently-touched
  /// candidate is evicted, bounding memory at the cost of forgetting
  /// support that accrues slower than the eviction horizon.
  size_t max_pending_rules = 65536;
};

/// \brief Monitor knobs (§4.5; Eq. 11).
struct MonitorOptions {
  enum class Mode {
    /// Paper: refresh when accumulated unseen negative cost exceeds the
    /// training negative cost.
    kTotalBudget,
    /// Normalized: refresh when the mean per-timestamp unseen cost exceeds
    /// the training mean by `slack`.
    kPerTimestamp,
  };
  Mode mode = Mode::kTotalBudget;
  double slack = 1.0;
};

}  // namespace anot
