#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/anot.h"

namespace anot {

/// \brief Strategies for adapting AnoT to time-duration TKGs (§4.7 and
/// Figure 10a's comparison baselines).
enum class DurationStrategy {
  kFourGraphs,  // paper: ST-ST, ED-ED, ST-ED, ED-ST; average the scores
  kStartOnly,   // only t_start (a single ST-ST graph)
  kEndOnly,     // only t_end (a single ED-ED graph)
  kAverage,     // collapse each fact to its midpoint timestamp
};

// anot-lint: lifetime-ok returns a string literal (immortal storage)
const char* DurationStrategyName(DurationStrategy strategy);

/// \brief AnoT generalized to facts with validity durations
/// (s, r, o, t_start, t_end), e.g. the Wikidata benchmark.
///
/// With kFourGraphs, four rule graphs are built over the same TKG, each
/// associating facts through a different (head anchor, tail anchor)
/// combination; a fact's final score is the average of the four scores.
/// Static scores are anchor-independent, so conceptual-error detection is
/// unchanged (§4.7 "Conceptual errors").
class DurationAnoT {
 public:
  static DurationAnoT Build(const TemporalKnowledgeGraph& offline,
                            const AnoTOptions& options,
                            DurationStrategy strategy =
                                DurationStrategy::kFourGraphs);

  /// Averaged scores across the strategy's views.
  Scores Score(const Fact& fact) const;

  /// Feeds valid knowledge to every view's updater.
  void IngestValid(const Fact& fact);

  size_t num_views() const { return views_.size(); }
  const AnoT& view(size_t i) const ANOT_LIFETIME_BOUND {
    return *views_[i];
  }
  /// "ST-ST", "ED-ED", "ST-ED", "ED-ST" (or the single view's name).
  const std::string& view_name(size_t i) const ANOT_LIFETIME_BOUND {
    return view_names_[i];
  }

  DurationStrategy strategy() const { return strategy_; }

 private:
  /// Remaps a fact for the kAverage strategy (midpoint collapse).
  Fact Remap(const Fact& fact) const;

  DurationStrategy strategy_ = DurationStrategy::kFourGraphs;
  std::vector<std::unique_ptr<AnoT>> views_;
  std::vector<std::string> view_names_;
};

}  // namespace anot
