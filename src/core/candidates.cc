#include "core/candidates.h"

#include <algorithm>
#include <memory>

#include "util/logging.h"

namespace anot {

namespace {

uint64_t EdgeCandidateKey(RuleEdgeKind kind, uint32_t head, uint32_t mid,
                          uint32_t tail) {
  uint64_t h = internal::HashMix((static_cast<uint64_t>(head) << 32) | tail);
  h = internal::HashMix(h ^ mid);
  return internal::HashMix(
      h ^ (kind == RuleEdgeKind::kTriadic ? 0xABCDu : 0u));
}

/// Private accumulator of one shard of a generation phase.
///
/// Rule indices live in a *combined* space: indices below `base` refer to
/// the frozen global pool, indices at or above it to `rules` (offset by
/// `base`). Edge endpoints are stored in combined space and remapped to
/// final global indices at merge time.
struct ShardPool {
  uint32_t base = 0;  // global pool size when the phase started
  std::vector<RuleCandidate> rules;
  dense_map<AtomicRule, uint32_t, AtomicRuleHash> rule_index;
  std::vector<EdgeCandidate> edges;
  dense_map<uint64_t, uint32_t> edge_index;
};

/// Combined-space EnsureRule: resolves against the frozen global pool
/// first, then the shard's private additions.
uint32_t EnsureShardRule(const CandidatePool& global, ShardPool* shard,
                         const AtomicRule& rule) {
  auto git = global.rule_index.find(rule);
  if (git != global.rule_index.end()) return git->second;
  const uint32_t next =
      shard->base + static_cast<uint32_t>(shard->rules.size());
  auto [it, inserted] = shard->rule_index.emplace(rule, next);
  if (inserted) {
    RuleCandidate candidate;
    candidate.rule = rule;
    shard->rules.push_back(std::move(candidate));
  }
  return it->second;
}

/// Records one edge assertion in the shard, creating the edge on first
/// sight. Endpoints are combined-space indices.
void AddShardEdgeAssertion(ShardPool* shard, RuleEdgeKind kind, uint32_t head,
                           uint32_t mid, uint32_t tail, FactId tail_fact,
                           Timestamp span, Timestamp tolerance) {
  const uint64_t key = EdgeCandidateKey(kind, head, mid, tail);
  auto [it, inserted] =
      shard->edge_index.emplace(key, static_cast<uint32_t>(shard->edges.size()));
  if (inserted) {
    EdgeCandidate e;
    e.kind = kind;
    e.head = head;
    e.mid = mid;
    e.tail = tail;
    shard->edges.push_back(std::move(e));
  }
  EdgeCandidate& e = shard->edges[it->second];
  e.tail_facts.push_back(tail_fact);
  e.timespans.push_back(span);
  e.timespan_entropy.Add(
      static_cast<uint64_t>(span / std::max<Timestamp>(1, tolerance)));
}

uint32_t RemapRuleIndex(uint32_t idx, uint32_t base,
                        const std::vector<uint32_t>& to_global) {
  if (idx == kInvalidId || idx < base) return idx;
  return to_global[idx - base];
}

/// Folds one shard's rules into the global pool (shard-index order across
/// shards ⇒ first-occurrence order equals the sequential scan) and fills
/// the combined-space → global translation for the shard's additions.
void MergeShardRules(ShardPool* shard, CandidatePool* pool,
                     std::vector<uint32_t>* to_global) {
  to_global->resize(shard->rules.size());
  for (size_t i = 0; i < shard->rules.size(); ++i) {
    RuleCandidate& local = shard->rules[i];
    auto it = pool->rule_index.find(local.rule);
    uint32_t global_idx;
    if (it == pool->rule_index.end()) {
      global_idx = static_cast<uint32_t>(pool->rules.size());
      pool->rule_index.emplace(local.rule, global_idx);
      pool->rules.push_back(std::move(local));
    } else {
      global_idx = it->second;
      RuleCandidate& dst = pool->rules[global_idx];
      dst.assertions.insert(dst.assertions.end(), local.assertions.begin(),
                            local.assertions.end());
      dst.subject_entropy.Merge(local.subject_entropy);
      dst.object_entropy.Merge(local.object_entropy);
    }
    (*to_global)[i] = global_idx;
  }
}

/// Folds one shard's edges into the phase-global edge pool, remapping
/// endpoints to final rule indices.
void MergeShardEdges(ShardPool* shard, const std::vector<uint32_t>& to_global,
                     CandidatePool* pool,
                     dense_map<uint64_t, uint32_t>* edge_index) {
  for (EdgeCandidate& local : shard->edges) {
    local.head = RemapRuleIndex(local.head, shard->base, to_global);
    local.mid = RemapRuleIndex(local.mid, shard->base, to_global);
    local.tail = RemapRuleIndex(local.tail, shard->base, to_global);
    const uint64_t key =
        EdgeCandidateKey(local.kind, local.head, local.mid, local.tail);
    auto [it, inserted] =
        edge_index->emplace(key, static_cast<uint32_t>(pool->edges.size()));
    if (inserted) {
      pool->edges.push_back(std::move(local));
      continue;
    }
    EdgeCandidate& dst = pool->edges[it->second];
    dst.tail_facts.insert(dst.tail_facts.end(), local.tail_facts.begin(),
                          local.tail_facts.end());
    dst.timespans.insert(dst.timespans.end(), local.timespans.begin(),
                         local.timespans.end());
    dst.timespan_entropy.Merge(local.timespan_entropy);
  }
}

}  // namespace

DeltaHistogram BuildDeltaHistogram(const TemporalKnowledgeGraph& graph,
                                   const std::vector<FactId>& fact_ids) {
  DeltaHistogram h;
  h.facts = fact_ids;
  // Stable sort: groups come out in ascending-timestamp order while facts
  // within a group keep the input order, so the histogram is a pure
  // function of (graph, fact_ids).
  std::stable_sort(h.facts.begin(), h.facts.end(),
                   [&graph](FactId a, FactId b) {
                     return graph.fact(a).time < graph.fact(b).time;
                   });
  h.times.reserve(h.facts.size());
  for (size_t i = 0; i < h.facts.size(); ++i) {
    const Timestamp t = graph.fact(h.facts[i]).time;
    if (h.times.empty() || h.times.back() != t) {
      h.times.push_back(t);
      h.offsets.push_back(static_cast<uint32_t>(i));
    }
  }
  h.offsets.push_back(static_cast<uint32_t>(h.facts.size()));
  h.times.shrink_to_fit();
  return h;
}

CandidateGenerator::CandidateGenerator(const TemporalKnowledgeGraph& graph,
                                       const CategoryFunction& categories,
                                       const DetectorOptions& options,
                                       size_t num_threads)
    : graph_(graph),
      categories_(categories),
      options_(options),
      num_threads_(ResolveNumThreads(num_threads)) {}

void CandidateGenerator::GenerateRules(CandidatePool* pool,
                                       ThreadPool* workers) const {
  const size_t n = graph_.num_facts();
  const size_t num_shards = DeterministicShardCount(n);
  std::vector<ShardPool> shards(num_shards);
  for (ShardPool& s : shards) {
    s.base = static_cast<uint32_t>(pool->rules.size());
  }

  ParallelForShards(workers, n, num_shards,
                    [&](size_t shard_idx, size_t begin, size_t end) {
    ShardPool& shard = shards[shard_idx];
    for (FactId id = static_cast<FactId>(begin);
         id < static_cast<FactId>(end); ++id) {
      const Fact& f = graph_.fact(id);
      for (CategoryId cs : categories_.Categories(f.subject)) {
        for (CategoryId co : categories_.Categories(f.object)) {
          AtomicRule rule{cs, f.relation, co};
          const uint32_t idx = EnsureShardRule(*pool, &shard, rule);
          RuleCandidate& c = shard.rules[idx - shard.base];
          c.assertions.push_back(id);
          c.subject_entropy.Add(f.subject);
          c.object_entropy.Add(f.object);
        }
      }
    }
  });

  for (ShardPool& shard : shards) {
    std::vector<uint32_t> to_global;
    MergeShardRules(&shard, pool, &to_global);
  }
}

void CandidateGenerator::GenerateChainEdges(CandidatePool* pool,
                                            ThreadPool* workers) const {
  // Deterministic order: sort pair keys.
  std::vector<uint64_t> pair_keys;
  pair_keys.reserve(graph_.pair_sequences().size());
  // anot-lint: ordered-ok keys are collected here and sorted below before
  // any order-dependent use (the canonical collect-then-sort rewrite)
  for (const auto& [key, seq] : graph_.pair_sequences()) {
    if (seq.size() >= 2) pair_keys.push_back(key);
  }
  std::sort(pair_keys.begin(), pair_keys.end());

  const size_t num_shards = DeterministicShardCount(pair_keys.size());
  std::vector<ShardPool> shards(num_shards);
  for (ShardPool& s : shards) {
    s.base = static_cast<uint32_t>(pool->rules.size());
  }

  ParallelForShards(workers, pair_keys.size(), num_shards,
                    [&](size_t shard_idx, size_t begin, size_t end) {
    ShardPool& shard = shards[shard_idx];
    for (size_t k = begin; k < end; ++k) {
      const uint64_t key = pair_keys[k];
      const auto& seq = graph_.pair_sequences().at(key);
      const EntityId s = static_cast<EntityId>(key >> 32);
      const EntityId o = static_cast<EntityId>(key & 0xFFFFFFFFu);
      const auto& subject_cats = categories_.Categories(s);
      const auto& object_cats = categories_.Categories(o);
      if (subject_cats.empty() || object_cats.empty()) continue;

      for (size_t n = 1; n < seq.size(); ++n) {
        const Fact& tail_fact = graph_.fact(seq[n]);
        const Timestamp tail_time =
            AnchorTime(tail_fact, options_.tail_anchor);
        // Bounded by max_pair_lag entries, so a linear scan over inline
        // storage beats a hash probe here.
        small_vec<RelationId, 16> seen_heads;
        const size_t lookback = std::min(n, options_.max_pair_lag);
        for (size_t back = 1; back <= lookback; ++back) {
          const size_t m = n - back;
          const Fact& head_fact = graph_.fact(seq[m]);
          const Timestamp head_time =
              AnchorTime(head_fact, options_.head_anchor);
          if (head_time > tail_time) continue;
          // Most recent occurrence of each head relation only: one
          // assertion per (edge, tail fact).
          if (std::find(seen_heads.begin(), seen_heads.end(),
                        head_fact.relation) != seen_heads.end()) {
            continue;
          }
          seen_heads.push_back(head_fact.relation);
          const Timestamp span = tail_time - head_time;
          for (CategoryId cs : subject_cats) {
            for (CategoryId co : object_cats) {
              AtomicRule head_rule{cs, head_fact.relation, co};
              AtomicRule tail_rule{cs, tail_fact.relation, co};
              const uint32_t head_idx =
                  EnsureShardRule(*pool, &shard, head_rule);
              const uint32_t tail_idx =
                  EnsureShardRule(*pool, &shard, tail_rule);
              AddShardEdgeAssertion(&shard, RuleEdgeKind::kChain, head_idx,
                                    kInvalidId, tail_idx, seq[n], span,
                                    options_.timespan_tolerance);
            }
          }
        }
      }
    }
  });

  dense_map<uint64_t, uint32_t> edge_index;
  edge_index.reserve(pool->edges.size());
  for (uint32_t i = 0; i < pool->edges.size(); ++i) {
    const EdgeCandidate& e = pool->edges[i];
    edge_index.emplace(EdgeCandidateKey(e.kind, e.head, e.mid, e.tail), i);
  }
  for (ShardPool& shard : shards) {
    std::vector<uint32_t> to_global;
    MergeShardRules(&shard, pool, &to_global);
    MergeShardEdges(&shard, to_global, pool, &edge_index);
  }
}

void CandidateGenerator::GenerateTriadicEdges(CandidatePool* pool,
                                              ThreadPool* workers) const {
  const Timestamp window = options_.timespan_tolerance;
  const size_t n = graph_.num_facts();
  const size_t num_shards = DeterministicShardCount(n);
  std::vector<ShardPool> shards(num_shards);
  for (ShardPool& s : shards) {
    s.base = static_cast<uint32_t>(pool->rules.size());
  }

  ParallelForShards(workers, n, num_shards,
                    [&](size_t shard_idx, size_t begin, size_t end) {
    ShardPool& shard = shards[shard_idx];
    for (FactId id = static_cast<FactId>(begin);
         id < static_cast<FactId>(end); ++id) {
      const Fact& f = graph_.fact(id);  // the closing fact (s, r_p, h, t)
      const EntityId s = f.subject;
      const EntityId h = f.object;
      const Timestamp t = AnchorTime(f, options_.tail_anchor);
      const auto* s_facts = graph_.FactsBySubject(s);
      if (s_facts == nullptr) continue;
      const auto& cs_list = categories_.Categories(s);
      const auto& ch_list = categories_.Categories(h);
      if (cs_list.empty() || ch_list.empty()) continue;

      // Scan s's most recent facts before t for heads (s, r_m, p, t1).
      auto upper = std::upper_bound(
          s_facts->begin(), s_facts->end(), t,
          [this](Timestamp lhs, FactId rhs) {
            return lhs < graph_.fact(rhs).time;
          });
      size_t emitted = 0;
      size_t scanned = 0;
      dense_set<uint64_t> local_edges;
      for (auto rit = std::make_reverse_iterator(upper);
           rit != s_facts->rend() &&
           scanned < options_.max_instantiation_scan;
           ++rit, ++scanned) {
        if (emitted >= 8) break;
        const FactId g1_id = *rit;
        if (g1_id == id) continue;
        const Fact& g1 = graph_.fact(g1_id);
        const Timestamp t1 = AnchorTime(g1, options_.head_anchor);
        if (t1 > t) continue;
        const EntityId p = g1.object;
        if (p == h || p == s) continue;
        // Mid fact (h, r_n, p, t2) co-occurring with g1 within the window.
        const auto* hp = graph_.FactsForPair(h, p);
        if (hp == nullptr) continue;
        FactId g2_id = kInvalidId;
        Timestamp t2_best = kNoTimestamp;
        size_t scanned2 = 0;
        for (auto it2 = hp->rbegin();
             it2 != hp->rend() && scanned2 < options_.max_instantiation_scan;
             ++it2, ++scanned2) {
          const Fact& g2 = graph_.fact(*it2);
          const Timestamp t2 = AnchorTime(g2, options_.head_anchor);
          if (t2 > t) continue;
          if (std::llabs(t2 - t1) > window) continue;
          g2_id = *it2;
          t2_best = t2;
          break;  // most recent valid mid
        }
        if (g2_id == kInvalidId) continue;
        const Fact& g2 = graph_.fact(g2_id);
        const Timestamp span = t - std::max(t1, t2_best);

        for (CategoryId cs : cs_list) {
          for (CategoryId ch : ch_list) {
            for (CategoryId cp : categories_.Categories(p)) {
              AtomicRule head_rule{cs, g1.relation, cp};
              AtomicRule mid_rule{ch, g2.relation, cp};
              AtomicRule tail_rule{cs, f.relation, ch};
              const uint32_t head_idx =
                  EnsureShardRule(*pool, &shard, head_rule);
              const uint32_t mid_idx =
                  EnsureShardRule(*pool, &shard, mid_rule);
              const uint32_t tail_idx =
                  EnsureShardRule(*pool, &shard, tail_rule);
              const uint64_t ekey = EdgeCandidateKey(
                  RuleEdgeKind::kTriadic, head_idx, mid_idx, tail_idx);
              // One assertion per (edge, tail fact).
              if (!local_edges.insert(ekey).second) continue;
              AddShardEdgeAssertion(&shard, RuleEdgeKind::kTriadic, head_idx,
                                    mid_idx, tail_idx, id, span,
                                    options_.timespan_tolerance);
            }
          }
        }
        ++emitted;
      }
    }
  });

  dense_map<uint64_t, uint32_t> edge_index;
  edge_index.reserve(pool->edges.size());
  for (uint32_t i = 0; i < pool->edges.size(); ++i) {
    const EdgeCandidate& e = pool->edges[i];
    edge_index.emplace(EdgeCandidateKey(e.kind, e.head, e.mid, e.tail), i);
  }
  for (ShardPool& shard : shards) {
    std::vector<uint32_t> to_global;
    MergeShardRules(&shard, pool, &to_global);
    MergeShardEdges(&shard, to_global, pool, &edge_index);
  }
}

CandidatePool CandidateGenerator::Generate() const {
  std::unique_ptr<ThreadPool> workers;
  if (num_threads_ > 1) {
    workers = std::make_unique<ThreadPool>(num_threads_);
  }
  return Generate(workers.get());
}

CandidatePool CandidateGenerator::Generate(ThreadPool* workers) const {
  CandidatePool pool;
  GenerateRules(&pool, workers);
  GenerateChainEdges(&pool, workers);
  if (options_.use_triadic) GenerateTriadicEdges(&pool, workers);

  // All shard merges are done; the replay logs have served their purpose.
  // Dropping them reclaims one uint64 per assertion — on large graphs that
  // is on the order of the candidate pool itself.
  for (RuleCandidate& c : pool.rules) {
    c.subject_entropy.DropReplayLog();
    c.object_entropy.DropReplayLog();
  }
  for (EdgeCandidate& e : pool.edges) e.timespan_entropy.DropReplayLog();

  if (pool.edges.size() > options_.max_candidate_edges) {
    // Keep the highest-support edges; stable/deterministic.
    std::vector<uint32_t> order(pool.edges.size());
    for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](uint32_t a, uint32_t b) {
                       return pool.edges[a].support() >
                              pool.edges[b].support();
                     });
    order.resize(options_.max_candidate_edges);
    std::sort(order.begin(), order.end());
    std::vector<EdgeCandidate> kept;
    kept.reserve(order.size());
    for (uint32_t i : order) kept.push_back(std::move(pool.edges[i]));
    pool.edges = std::move(kept);
  }
  return pool;
}

}  // namespace anot
