#include "core/candidates.h"

#include <algorithm>
#include <unordered_set>

#include "util/logging.h"

namespace anot {

namespace {

uint64_t EdgeCandidateKey(RuleEdgeKind kind, uint32_t head, uint32_t mid,
                          uint32_t tail) {
  uint64_t h = internal::HashMix((static_cast<uint64_t>(head) << 32) | tail);
  h = internal::HashMix(h ^ mid);
  return internal::HashMix(
      h ^ (kind == RuleEdgeKind::kTriadic ? 0xABCDu : 0u));
}

}  // namespace

CandidateGenerator::CandidateGenerator(const TemporalKnowledgeGraph& graph,
                                       const CategoryFunction& categories,
                                       const DetectorOptions& options)
    : graph_(graph), categories_(categories), options_(options) {}

uint32_t CandidateGenerator::EnsureRule(CandidatePool* pool,
                                        const AtomicRule& rule) const {
  auto it = pool->rule_index.find(rule);
  if (it != pool->rule_index.end()) return it->second;
  const uint32_t idx = static_cast<uint32_t>(pool->rules.size());
  RuleCandidate candidate;
  candidate.rule = rule;
  pool->rules.push_back(std::move(candidate));
  pool->rule_index.emplace(rule, idx);
  return idx;
}

void CandidateGenerator::GenerateRules(CandidatePool* pool) const {
  for (FactId id = 0; id < graph_.num_facts(); ++id) {
    const Fact& f = graph_.fact(id);
    for (CategoryId cs : categories_.Categories(f.subject)) {
      for (CategoryId co : categories_.Categories(f.object)) {
        AtomicRule rule{cs, f.relation, co};
        uint32_t idx = EnsureRule(pool, rule);
        RuleCandidate& c = pool->rules[idx];
        c.assertions.push_back(id);
        c.subject_entropy.Add(f.subject);
        c.object_entropy.Add(f.object);
      }
    }
  }
}

void CandidateGenerator::GenerateChainEdges(CandidatePool* pool) const {
  std::unordered_map<uint64_t, uint32_t> edge_index;
  // Deterministic order: sort pair keys.
  std::vector<uint64_t> pair_keys;
  pair_keys.reserve(graph_.pair_sequences().size());
  for (const auto& [key, seq] : graph_.pair_sequences()) {
    if (seq.size() >= 2) pair_keys.push_back(key);
  }
  std::sort(pair_keys.begin(), pair_keys.end());

  for (uint64_t key : pair_keys) {
    const auto& seq = graph_.pair_sequences().at(key);
    const EntityId s = static_cast<EntityId>(key >> 32);
    const EntityId o = static_cast<EntityId>(key & 0xFFFFFFFFu);
    const auto& subject_cats = categories_.Categories(s);
    const auto& object_cats = categories_.Categories(o);
    if (subject_cats.empty() || object_cats.empty()) continue;

    for (size_t n = 1; n < seq.size(); ++n) {
      const Fact& tail_fact = graph_.fact(seq[n]);
      const Timestamp tail_time = AnchorTime(tail_fact, options_.tail_anchor);
      std::unordered_set<RelationId> seen_heads;
      const size_t lookback = std::min(n, options_.max_pair_lag);
      for (size_t back = 1; back <= lookback; ++back) {
        const size_t m = n - back;
        const Fact& head_fact = graph_.fact(seq[m]);
        const Timestamp head_time =
            AnchorTime(head_fact, options_.head_anchor);
        if (head_time > tail_time) continue;
        // Most recent occurrence of each head relation only: one
        // assertion per (edge, tail fact).
        if (!seen_heads.insert(head_fact.relation).second) continue;
        const Timestamp span = tail_time - head_time;
        for (CategoryId cs : subject_cats) {
          for (CategoryId co : object_cats) {
            AtomicRule head_rule{cs, head_fact.relation, co};
            AtomicRule tail_rule{cs, tail_fact.relation, co};
            const uint32_t head_idx = EnsureRule(pool, head_rule);
            const uint32_t tail_idx = EnsureRule(pool, tail_rule);
            const uint64_t ekey = EdgeCandidateKey(
                RuleEdgeKind::kChain, head_idx, kInvalidId, tail_idx);
            auto [it, inserted] = edge_index.emplace(
                ekey, static_cast<uint32_t>(pool->edges.size()));
            if (inserted) {
              EdgeCandidate e;
              e.kind = RuleEdgeKind::kChain;
              e.head = head_idx;
              e.mid = kInvalidId;
              e.tail = tail_idx;
              pool->edges.push_back(std::move(e));
            }
            EdgeCandidate& e = pool->edges[it->second];
            e.tail_facts.push_back(seq[n]);
            e.timespans.push_back(span);
            e.timespan_entropy.Add(static_cast<uint64_t>(
                span / std::max<Timestamp>(1, options_.timespan_tolerance)));
          }
        }
      }
    }
  }
}

void CandidateGenerator::GenerateTriadicEdges(CandidatePool* pool) const {
  std::unordered_map<uint64_t, uint32_t> edge_index;
  const Timestamp window = options_.timespan_tolerance;

  for (FactId id = 0; id < graph_.num_facts(); ++id) {
    const Fact& f = graph_.fact(id);  // the closing fact (s, r_p, h, t)
    const EntityId s = f.subject;
    const EntityId h = f.object;
    const Timestamp t = AnchorTime(f, options_.tail_anchor);
    const auto* s_facts = graph_.FactsBySubject(s);
    if (s_facts == nullptr) continue;
    const auto& cs_list = categories_.Categories(s);
    const auto& ch_list = categories_.Categories(h);
    if (cs_list.empty() || ch_list.empty()) continue;

    // Scan s's most recent facts before t for heads (s, r_m, p, t1).
    auto upper = std::upper_bound(
        s_facts->begin(), s_facts->end(), t,
        [this](Timestamp lhs, FactId rhs) {
          return lhs < graph_.fact(rhs).time;
        });
    size_t emitted = 0;
    size_t scanned = 0;
    std::unordered_set<uint64_t> local_edges;
    for (auto rit = std::make_reverse_iterator(upper);
         rit != s_facts->rend() && scanned < options_.max_instantiation_scan;
         ++rit, ++scanned) {
      if (emitted >= 8) break;
      const FactId g1_id = *rit;
      if (g1_id == id) continue;
      const Fact& g1 = graph_.fact(g1_id);
      const Timestamp t1 = AnchorTime(g1, options_.head_anchor);
      if (t1 > t) continue;
      const EntityId p = g1.object;
      if (p == h || p == s) continue;
      // Mid fact (h, r_n, p, t2) co-occurring with g1 within the window.
      const auto* hp = graph_.FactsForPair(h, p);
      if (hp == nullptr) continue;
      FactId g2_id = kInvalidId;
      Timestamp t2_best = kNoTimestamp;
      size_t scanned2 = 0;
      for (auto it2 = hp->rbegin();
           it2 != hp->rend() && scanned2 < options_.max_instantiation_scan;
           ++it2, ++scanned2) {
        const Fact& g2 = graph_.fact(*it2);
        const Timestamp t2 = AnchorTime(g2, options_.head_anchor);
        if (t2 > t) continue;
        if (std::llabs(t2 - t1) > window) continue;
        g2_id = *it2;
        t2_best = t2;
        break;  // most recent valid mid
      }
      if (g2_id == kInvalidId) continue;
      const Fact& g2 = graph_.fact(g2_id);
      const Timestamp span = t - std::max(t1, t2_best);

      for (CategoryId cs : cs_list) {
        for (CategoryId ch : ch_list) {
          for (CategoryId cp : categories_.Categories(p)) {
            AtomicRule head_rule{cs, g1.relation, cp};
            AtomicRule mid_rule{ch, g2.relation, cp};
            AtomicRule tail_rule{cs, f.relation, ch};
            const uint32_t head_idx = EnsureRule(pool, head_rule);
            const uint32_t mid_idx = EnsureRule(pool, mid_rule);
            const uint32_t tail_idx = EnsureRule(pool, tail_rule);
            const uint64_t ekey = EdgeCandidateKey(
                RuleEdgeKind::kTriadic, head_idx, mid_idx, tail_idx);
            // One assertion per (edge, tail fact).
            if (!local_edges.insert(ekey).second) continue;
            auto [it, inserted] = edge_index.emplace(
                ekey, static_cast<uint32_t>(pool->edges.size()));
            if (inserted) {
              EdgeCandidate e;
              e.kind = RuleEdgeKind::kTriadic;
              e.head = head_idx;
              e.mid = mid_idx;
              e.tail = tail_idx;
              pool->edges.push_back(std::move(e));
            }
            EdgeCandidate& e = pool->edges[it->second];
            e.tail_facts.push_back(id);
            e.timespans.push_back(span);
            e.timespan_entropy.Add(static_cast<uint64_t>(
                span / std::max<Timestamp>(1, options_.timespan_tolerance)));
          }
        }
      }
      ++emitted;
    }
  }
}

CandidatePool CandidateGenerator::Generate() const {
  CandidatePool pool;
  GenerateRules(&pool);
  GenerateChainEdges(&pool);
  if (options_.use_triadic) GenerateTriadicEdges(&pool);

  if (pool.edges.size() > options_.max_candidate_edges) {
    // Keep the highest-support edges; stable/deterministic.
    std::vector<uint32_t> order(pool.edges.size());
    for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](uint32_t a, uint32_t b) {
                       return pool.edges[a].support() >
                              pool.edges[b].support();
                     });
    order.resize(options_.max_candidate_edges);
    std::sort(order.begin(), order.end());
    std::vector<EdgeCandidate> kept;
    kept.reserve(order.size());
    for (uint32_t i : order) kept.push_back(std::move(pool.edges[i]));
    pool.edges = std::move(kept);
  }
  return pool;
}

}  // namespace anot
