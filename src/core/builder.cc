#include "core/builder.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace anot {

namespace {

/// Per-category occurrence counts among fact subjects/objects (for Eq. 3).
struct CategoryOccurrences {
  std::vector<double> subject;  // indexed by category id
  std::vector<double> object;
  double subject_total = 0.0;
  double object_total = 0.0;
};

CategoryOccurrences CountCategoryOccurrences(
    const TemporalKnowledgeGraph& graph, const CategoryFunction& categories) {
  CategoryOccurrences occ;
  occ.subject.assign(categories.num_categories() + 1, 0.0);
  occ.object.assign(categories.num_categories() + 1, 0.0);
  for (const Fact& f : graph.facts()) {
    for (CategoryId c : categories.Categories(f.subject)) {
      if (c < occ.subject.size()) {
        occ.subject[c] += 1.0;
        occ.subject_total += 1.0;
      }
    }
    for (CategoryId c : categories.Categories(f.object)) {
      if (c < occ.object.size()) {
        occ.object[c] += 1.0;
        occ.object_total += 1.0;
      }
    }
  }
  return occ;
}

}  // namespace

RuleGraphBuilder::RuleGraphBuilder(const TemporalKnowledgeGraph& graph,
                                   const CategoryFunction& categories,
                                   const DetectorOptions& options,
                                   size_t num_threads)
    : graph_(graph),
      categories_(categories),
      options_(options),
      num_threads_(ResolveNumThreads(num_threads)) {}

RuleGraphBuilder::Output RuleGraphBuilder::Build(
    const std::atomic<bool>* cancel) const {
  WallTimer timer;
  Output out;
  out.rule_graph = std::make_unique<RuleGraph>();
  BuildReport& report = out.report;
  report.num_categories = categories_.num_categories();
  const auto cancelled = [cancel] {
    return cancel != nullptr && cancel->load(std::memory_order_relaxed);
  };

  // One worker pool serves candidate generation and candidate costing.
  std::unique_ptr<ThreadPool> workers;
  if (num_threads_ > 1) workers = std::make_unique<ThreadPool>(num_threads_);

  CandidateGenerator generator(graph_, categories_, options_, num_threads_);
  CandidatePool pool = generator.Generate(workers.get());
  report.num_candidate_rules = pool.rules.size();
  report.num_candidate_edges = pool.edges.size();
  if (cancelled()) return out;

  // ---- Cost constants per candidate --------------------------------------
  MdlUniverse universe;
  universe.num_entities = static_cast<double>(graph_.num_entities());
  universe.num_relations = static_cast<double>(graph_.num_relations());
  universe.num_categories = static_cast<double>(categories_.num_categories());
  universe.num_facts = static_cast<double>(graph_.num_facts());
  universe.num_candidate_rules = static_cast<double>(pool.rules.size());

  const CategoryOccurrences occ =
      CountCategoryOccurrences(graph_, categories_);
  std::vector<double> relation_counts(graph_.num_relations(), 0.0);
  for (const Fact& f : graph_.facts()) relation_counts[f.relation] += 1.0;

  // Candidate costs are independent per candidate (each task writes only
  // its own slots), so the fill parallelizes without affecting the result.
  ParallelForShards(workers.get(), pool.rules.size(),
                    DeterministicShardCount(pool.rules.size()),
                    [&](size_t /*shard*/, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      RuleCandidate& c = pool.rules[i];
      const double n_cs = c.rule.subject_category < occ.subject.size()
                              ? occ.subject[c.rule.subject_category]
                              : 0.0;
      const double n_co = c.rule.object_category < occ.object.size()
                              ? occ.object[c.rule.object_category]
                              : 0.0;
      c.model_bits = AtomicRuleBits(universe, n_cs, occ.subject_total, n_co,
                                    occ.object_total,
                                    relation_counts[c.rule.relation]);
      c.assertion_bits =
          c.subject_entropy.TotalBits() + c.object_entropy.TotalBits();
    }
  });
  ParallelForShards(workers.get(), pool.edges.size(),
                    DeterministicShardCount(pool.edges.size()),
                    [&](size_t /*shard*/, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      EdgeCandidate& e = pool.edges[i];
      e.model_bits =
          RuleEdgeBits(universe, e.kind == RuleEdgeKind::kTriadic);
      e.assertion_bits = e.timespan_entropy.TotalBits();
    }
  });
  workers.reset();
  if (cancelled()) return out;

  // ---- Negative-error ledger ----------------------------------------------
  const double tier1 = universe.num_entities * universe.num_entities *
                       std::max(1.0, universe.num_relations);
  // Tier 2 prices a mapped-but-unassociated fact (its missing association
  // partner, one entity out of |E|). It must stay far below tier 1 or
  // rule admission loses its margin over the assertion-entropy cost.
  const double tier2 = std::max(2.0, universe.num_entities);
  NegativeErrorLedger ledger(std::max(tier1, 4.0), tier2);
  for (const auto& [t, ids] : graph_.by_time()) {
    ledger.SetTimestampTotal(t, static_cast<uint32_t>(ids.size()));
  }
  report.num_train_timestamps = graph_.num_timestamps();
  const double per_fact_tier1 = std::log2(std::max(tier1, 4.0));

  // ---- Ranking (Algorithm 1 lines 5-6) ------------------------------------
  auto rank_rules = [&](std::vector<uint32_t>* order) {
    order->resize(pool.rules.size());
    for (uint32_t i = 0; i < order->size(); ++i) (*order)[i] = i;
    std::sort(order->begin(), order->end(), [&](uint32_t a, uint32_t b) {
      const RuleCandidate& ra = pool.rules[a];
      const RuleCandidate& rb = pool.rules[b];
      if (options_.ranking == RankingMode::kDeltaCost) {
        const double ga =
            static_cast<double>(ra.assertions.size()) * per_fact_tier1 -
            ra.model_bits - ra.assertion_bits;
        const double gb =
            static_cast<double>(rb.assertions.size()) * per_fact_tier1 -
            rb.model_bits - rb.assertion_bits;
        if (ga != gb) return ga > gb;
      }
      if (ra.assertions.size() != rb.assertions.size()) {
        return ra.assertions.size() > rb.assertions.size();
      }
      return a > b;  // final tie-break: id (descending, per the paper)
    });
  };
  auto rank_edges = [&](std::vector<uint32_t>* order) {
    order->resize(pool.edges.size());
    for (uint32_t i = 0; i < order->size(); ++i) (*order)[i] = i;
    const double tier2_bits = std::log2(tier2);
    std::sort(order->begin(), order->end(), [&](uint32_t a, uint32_t b) {
      const EdgeCandidate& ea = pool.edges[a];
      const EdgeCandidate& eb = pool.edges[b];
      if (options_.ranking == RankingMode::kDeltaCost) {
        const double ga = static_cast<double>(ea.support()) * tier2_bits -
                          ea.model_bits - ea.assertion_bits;
        const double gb = static_cast<double>(eb.support()) * tier2_bits -
                          eb.model_bits - eb.assertion_bits;
        if (ga != gb) return ga > gb;
      }
      if (ea.support() != eb.support()) return ea.support() > eb.support();
      return a > b;
    });
  };

  // ---- Greedy selection: rules first --------------------------------------
  std::vector<uint8_t> fact_mapped(graph_.num_facts(), 0);
  std::vector<uint8_t> fact_associated(graph_.num_facts(), 0);
  std::vector<uint8_t> rule_selected(pool.rules.size(), 0);
  std::vector<uint8_t> edge_selected(pool.edges.size(), 0);

  std::vector<uint32_t> rule_order;
  rank_rules(&rule_order);
  double model_bits = ModelHeaderBits(universe);
  double assertion_bits = 0.0;

  bool changed = true;
  while (changed && !cancelled()) {
    changed = false;
    for (uint32_t idx : rule_order) {
      if (rule_selected[idx]) continue;
      const RuleCandidate& c = pool.rules[idx];
      // Timestamp deltas for the facts this rule would newly map.
      std::unordered_map<Timestamp, NegativeErrorLedger::Delta> deltas;
      for (FactId f : c.assertions) {
        if (fact_mapped[f] == 0) {
          ++deltas[graph_.fact(f).time].mapped;
        }
      }
      if (deltas.empty()) continue;
      const double delta =
          ledger.CostDelta(deltas) + c.model_bits + c.assertion_bits;
      if (delta >= 0.0) continue;
      // Admit (Algorithm 1 lines 10-11).
      rule_selected[idx] = 1;
      changed = true;
      model_bits += c.model_bits;
      assertion_bits += c.assertion_bits;
      for (const auto& [t, d] : deltas) ledger.Apply(t, d.mapped, 0);
      for (FactId f : c.assertions) {
        if (fact_mapped[f] < 255) ++fact_mapped[f];
      }
    }
  }

  if (cancelled()) return out;

  // ---- Greedy selection: edges ---------------------------------------------
  std::vector<uint32_t> edge_order;
  rank_edges(&edge_order);
  changed = true;
  while (changed && !cancelled()) {
    changed = false;
    for (uint32_t idx : edge_order) {
      if (edge_selected[idx]) continue;
      const EdgeCandidate& e = pool.edges[idx];
      // Only mapped-but-unassociated tail facts yield savings; the tail
      // rule must be selected for the fact to be mapped at all.
      std::unordered_map<Timestamp, NegativeErrorLedger::Delta> deltas;
      for (FactId f : e.tail_facts) {
        if (fact_mapped[f] > 0 && fact_associated[f] == 0) {
          ++deltas[graph_.fact(f).time].associated;
        }
      }
      if (deltas.empty()) continue;
      const double delta =
          ledger.CostDelta(deltas) + e.model_bits + e.assertion_bits;
      if (delta >= 0.0) continue;
      edge_selected[idx] = 1;
      changed = true;
      model_bits += e.model_bits;
      assertion_bits += e.assertion_bits;
      for (const auto& [t, d] : deltas) ledger.Apply(t, 0, d.associated);
      for (FactId f : e.tail_facts) {
        if (fact_mapped[f] > 0 && fact_associated[f] < 255) {
          ++fact_associated[f];
        }
      }
    }
  }

  if (cancelled()) return out;

  // ---- Materialize the rule graph ------------------------------------------
  RuleGraph& rg = *out.rule_graph;
  // Recurrence of a rule: fraction of its entity pairs that repeat.
  auto is_recurrent = [&](const RuleCandidate& c) {
    std::unordered_map<uint64_t, uint32_t> pair_counts;
    for (FactId f : c.assertions) {
      const Fact& fact = graph_.fact(f);
      ++pair_counts[PairKey(fact.subject, fact.object)];
    }
    if (pair_counts.empty()) return false;
    size_t repeated = 0;
    for (const auto& [key, count] : pair_counts) repeated += (count > 1);
    return static_cast<double>(repeated) /
               static_cast<double>(pair_counts.size()) >
           0.15;
  };
  std::vector<RuleId> rule_ids(pool.rules.size(), kInvalidId);
  for (uint32_t i = 0; i < pool.rules.size(); ++i) {
    if (!rule_selected[i]) continue;
    rule_ids[i] = rg.AddRule(pool.rules[i].rule, /*static_selected=*/true);
    rg.SetSupport(rule_ids[i],
                  static_cast<uint32_t>(pool.rules[i].assertions.size()));
    rg.SetRecurrent(rule_ids[i], is_recurrent(pool.rules[i]));
  }
  auto ensure_temporal_rule = [&](uint32_t idx) -> RuleId {
    if (rule_ids[idx] != kInvalidId) return rule_ids[idx];
    rule_ids[idx] =
        rg.AddRule(pool.rules[idx].rule, /*static_selected=*/false);
    rg.SetSupport(rule_ids[idx],
                  static_cast<uint32_t>(pool.rules[idx].assertions.size()));
    rg.SetRecurrent(rule_ids[idx], is_recurrent(pool.rules[idx]));
    return rule_ids[idx];
  };
  for (uint32_t i = 0; i < pool.edges.size(); ++i) {
    if (!edge_selected[i]) continue;
    const EdgeCandidate& e = pool.edges[i];
    RuleEdge edge;
    edge.kind = e.kind;
    edge.head = ensure_temporal_rule(e.head);
    edge.mid = e.kind == RuleEdgeKind::kTriadic
                   ? ensure_temporal_rule(e.mid)
                   : kInvalidId;
    edge.tail = ensure_temporal_rule(e.tail);
    edge.timespans = e.timespans;
    edge.support = static_cast<uint32_t>(e.support());
    rg.AddEdge(edge);
  }

  // ---- Report ---------------------------------------------------------------
  size_t mapped = 0, associated = 0;
  for (FactId f = 0; f < graph_.num_facts(); ++f) {
    mapped += (fact_mapped[f] > 0);
    associated += (fact_associated[f] > 0);
  }
  report.num_rules = rg.num_static_rules();
  report.num_temporal_rules = rg.num_rules() - rg.num_static_rules();
  report.num_edges = rg.num_edges();
  if (graph_.num_facts() > 0) {
    report.explained_fraction =
        static_cast<double>(mapped) / static_cast<double>(graph_.num_facts());
    report.associated_fraction = static_cast<double>(associated) /
                                 static_cast<double>(graph_.num_facts());
  }
  report.model_bits = model_bits;
  report.assertion_bits = assertion_bits;
  report.negative_bits = ledger.total_cost();
  report.build_seconds = timer.ElapsedSeconds();
  return out;
}

}  // namespace anot
