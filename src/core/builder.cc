#include "core/builder.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace anot {

namespace {

/// Per-category occurrence counts among fact subjects/objects (for Eq. 3).
struct CategoryOccurrences {
  std::vector<double> subject;  // indexed by category id
  std::vector<double> object;
  double subject_total = 0.0;
  double object_total = 0.0;
};

CategoryOccurrences CountCategoryOccurrences(
    const TemporalKnowledgeGraph& graph, const CategoryFunction& categories) {
  CategoryOccurrences occ;
  occ.subject.assign(categories.num_categories() + 1, 0.0);
  occ.object.assign(categories.num_categories() + 1, 0.0);
  for (const Fact& f : graph.facts()) {
    for (CategoryId c : categories.Categories(f.subject)) {
      if (c < occ.subject.size()) {
        occ.subject[c] += 1.0;
        occ.subject_total += 1.0;
      }
    }
    for (CategoryId c : categories.Categories(f.object)) {
      if (c < occ.object.size()) {
        occ.object[c] += 1.0;
        occ.object_total += 1.0;
      }
    }
  }
  return occ;
}

}  // namespace

RuleGraphBuilder::RuleGraphBuilder(const TemporalKnowledgeGraph& graph,
                                   const CategoryFunction& categories,
                                   const DetectorOptions& options,
                                   size_t num_threads)
    : graph_(graph),
      categories_(categories),
      options_(options),
      num_threads_(ResolveNumThreads(num_threads)) {}

RuleGraphBuilder::Output RuleGraphBuilder::Build(
    const std::atomic<bool>* cancel) const {
  WallTimer timer;
  Output out;
  out.rule_graph = std::make_unique<RuleGraph>();
  BuildReport& report = out.report;
  report.num_categories = categories_.num_categories();
  const auto cancelled = [cancel] {
    return cancel != nullptr && cancel->load(std::memory_order_relaxed);
  };

  // One worker pool serves candidate generation and candidate costing.
  std::unique_ptr<ThreadPool> workers;
  if (num_threads_ > 1) workers = std::make_unique<ThreadPool>(num_threads_);

  CandidateGenerator generator(graph_, categories_, options_, num_threads_);
  CandidatePool pool = generator.Generate(workers.get());
  report.num_candidate_rules = pool.rules.size();
  report.num_candidate_edges = pool.edges.size();
  if (cancelled()) return out;

  // ---- Cost constants per candidate --------------------------------------
  MdlUniverse universe;
  universe.num_entities = static_cast<double>(graph_.num_entities());
  universe.num_relations = static_cast<double>(graph_.num_relations());
  universe.num_categories = static_cast<double>(categories_.num_categories());
  universe.num_facts = static_cast<double>(graph_.num_facts());
  universe.num_candidate_rules = static_cast<double>(pool.rules.size());

  const CategoryOccurrences occ =
      CountCategoryOccurrences(graph_, categories_);
  std::vector<double> relation_counts(graph_.num_relations(), 0.0);
  for (const Fact& f : graph_.facts()) relation_counts[f.relation] += 1.0;

  // Candidate costs and delta histograms are independent per candidate
  // (each task writes only its own slots), so the fill parallelizes
  // without affecting the result.
  ParallelForShards(workers.get(), pool.rules.size(),
                    DeterministicShardCount(pool.rules.size()),
                    [&](size_t /*shard*/, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      RuleCandidate& c = pool.rules[i];
      const double n_cs = c.rule.subject_category < occ.subject.size()
                              ? occ.subject[c.rule.subject_category]
                              : 0.0;
      const double n_co = c.rule.object_category < occ.object.size()
                              ? occ.object[c.rule.object_category]
                              : 0.0;
      c.model_bits = AtomicRuleBits(universe, n_cs, occ.subject_total, n_co,
                                    occ.object_total,
                                    relation_counts[c.rule.relation]);
      c.assertion_bits =
          c.subject_entropy.TotalBits() + c.object_entropy.TotalBits();
      c.by_time = BuildDeltaHistogram(graph_, c.assertions);
    }
  });
  ParallelForShards(workers.get(), pool.edges.size(),
                    DeterministicShardCount(pool.edges.size()),
                    [&](size_t /*shard*/, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      EdgeCandidate& e = pool.edges[i];
      e.model_bits =
          RuleEdgeBits(universe, e.kind == RuleEdgeKind::kTriadic);
      e.assertion_bits = e.timespan_entropy.TotalBits();
      e.by_time = BuildDeltaHistogram(graph_, e.tail_facts);
    }
  });
  if (cancelled()) return out;

  // ---- Negative-error ledger ----------------------------------------------
  const double tier1 = universe.num_entities * universe.num_entities *
                       std::max(1.0, universe.num_relations);
  // Tier 2 prices a mapped-but-unassociated fact (its missing association
  // partner, one entity out of |E|). It must stay far below tier 1 or
  // rule admission loses its margin over the assertion-entropy cost.
  const double tier2 = std::max(2.0, universe.num_entities);
  NegativeErrorLedger ledger(std::max(tier1, 4.0), tier2);
  for (const auto& [t, ids] : graph_.by_time()) {
    ledger.SetTimestampTotal(t, static_cast<uint32_t>(ids.size()));
  }
  report.num_train_timestamps = graph_.num_timestamps();
  const double per_fact_tier1 = std::log2(std::max(tier1, 4.0));

  // ---- Ranking (Algorithm 1 lines 5-6) ------------------------------------
  auto rank_rules = [&](std::vector<uint32_t>* order) {
    order->resize(pool.rules.size());
    for (uint32_t i = 0; i < order->size(); ++i) (*order)[i] = i;
    std::sort(order->begin(), order->end(), [&](uint32_t a, uint32_t b) {
      const RuleCandidate& ra = pool.rules[a];
      const RuleCandidate& rb = pool.rules[b];
      if (options_.ranking == RankingMode::kDeltaCost) {
        const double ga =
            static_cast<double>(ra.assertions.size()) * per_fact_tier1 -
            ra.model_bits - ra.assertion_bits;
        const double gb =
            static_cast<double>(rb.assertions.size()) * per_fact_tier1 -
            rb.model_bits - rb.assertion_bits;
        if (ga != gb) return ga > gb;
      }
      if (ra.assertions.size() != rb.assertions.size()) {
        return ra.assertions.size() > rb.assertions.size();
      }
      return a > b;  // final tie-break: id (descending, per the paper)
    });
  };
  auto rank_edges = [&](std::vector<uint32_t>* order) {
    order->resize(pool.edges.size());
    for (uint32_t i = 0; i < order->size(); ++i) (*order)[i] = i;
    const double tier2_bits = std::log2(tier2);
    std::sort(order->begin(), order->end(), [&](uint32_t a, uint32_t b) {
      const EdgeCandidate& ea = pool.edges[a];
      const EdgeCandidate& eb = pool.edges[b];
      if (options_.ranking == RankingMode::kDeltaCost) {
        const double ga = static_cast<double>(ea.support()) * tier2_bits -
                          ea.model_bits - ea.assertion_bits;
        const double gb = static_cast<double>(eb.support()) * tier2_bits -
                          eb.model_bits - eb.assertion_bits;
        if (ga != gb) return ga > gb;
      }
      if (ea.support() != eb.support()) return ea.support() > eb.support();
      return a > b;
    });
  };

  // ---- Greedy selection (Algorithm 1 lines 7-12) ---------------------------
  //
  // Each pass repeats sweeps until one admits nothing. A sweep walks
  // candidates in rank order and admits those whose total cost delta is
  // negative, evaluated against the state left by all earlier admissions.
  //
  // Speculative Δ-evaluation (the default): a sweep first computes every
  // remaining candidate's delta in parallel against the sweep-start
  // state — the cached by_time histograms make each evaluation a flat
  // CSR walk — then admits serially in rank order. A precomputed delta
  // is reused unless one of the candidate's timestamps reports a ledger
  // epoch newer than the sweep snapshot, i.e. an earlier admission in
  // this sweep applied counters there. Admissions touch eligibility
  // (fact_mapped / fact_associated flips) only for facts whose timestamp
  // they applied to, so an untouched footprint guarantees the
  // speculative delta equals what the serial loop would compute at this
  // point; a touched one is recomputed from live state. Both paths run
  // the identical histogram walk and ascending-timestamp CostDelta sum,
  // so speculative and serial selection are bit-identical at every
  // thread count (pinned by core_test's selection-determinism goldens).
  std::vector<uint8_t> fact_mapped(graph_.num_facts(), 0);
  std::vector<uint8_t> fact_associated(graph_.num_facts(), 0);
  std::vector<uint8_t> rule_selected(pool.rules.size(), 0);
  std::vector<uint8_t> edge_selected(pool.edges.size(), 0);

  double model_bits = ModelHeaderBits(universe);
  double assertion_bits = 0.0;

  using LedgerDeltas = std::vector<NegativeErrorLedger::TimestampDelta>;
  const bool speculate = options_.speculative_selection;
  auto run_greedy = [&](const std::vector<uint32_t>& order,
                        std::vector<uint8_t>& selected,
                        auto&& histogram_of,   // idx -> const DeltaHistogram&
                        auto&& compute_delta,  // (idx, buf, delta) -> viable
                        auto&& admit) {
    std::vector<double> spec_delta;
    std::vector<uint8_t> spec_viable;
    LedgerDeltas buf;
    bool changed = true;
    while (changed && !cancelled()) {
      changed = false;
      const uint64_t sweep_epoch = ledger.epoch();
      if (speculate) {
        spec_delta.assign(order.size(), 0.0);
        spec_viable.assign(order.size(), 0);
        // Nothing mutates between here and the admission walk, so shards
        // read the live ledger / eligibility flags as the snapshot; each
        // shard writes only its own spec slots.
        ParallelForShards(
            workers.get(), order.size(),
            DeterministicShardCount(order.size()),
            [&](size_t /*shard*/, size_t begin, size_t end) {
              LedgerDeltas shard_buf;
              for (size_t i = begin; i < end; ++i) {
                const uint32_t idx = order[i];
                if (selected[idx]) continue;
                double delta = 0.0;
                if (compute_delta(idx, &shard_buf, &delta)) {
                  spec_delta[i] = delta;
                  spec_viable[i] = 1;
                }
              }
            });
      }
      for (size_t i = 0; i < order.size(); ++i) {
        const uint32_t idx = order[i];
        if (selected[idx]) continue;
        double delta = 0.0;
        bool viable = false;
        bool recompute = !speculate;
        if (speculate) {
          for (Timestamp t : histogram_of(idx).times) {
            if (ledger.epoch_at(t) > sweep_epoch) {
              recompute = true;
              break;
            }
          }
        }
        if (recompute) {
          viable = compute_delta(idx, &buf, &delta);
        } else {
          viable = spec_viable[i] != 0;
          delta = spec_delta[i];
        }
        if (!viable || delta >= 0.0) continue;
        // Admit (Algorithm 1 lines 10-11).
        admit(idx);
        changed = true;
      }
    }
  };

  // Each pass defines its eligibility predicate exactly once, in a
  // collect lambda that fills the timestamp-ordered delta list; pricing
  // previews it with CostDelta, admission applies it verbatim — so the
  // previewed and applied counters cannot drift apart.
  LedgerDeltas admit_buf;  // admission is serial, one buffer suffices

  // ---- Rules pass -----------------------------------------------------------
  std::vector<uint32_t> rule_order;
  rank_rules(&rule_order);
  // Timestamp deltas for the facts this rule would newly map.
  auto collect_rule = [&](uint32_t idx, LedgerDeltas* buf) {
    const DeltaHistogram& h = pool.rules[idx].by_time;
    buf->clear();
    for (size_t k = 0; k < h.num_times(); ++k) {
      int32_t newly = 0;
      for (uint32_t j = h.offsets[k]; j < h.offsets[k + 1]; ++j) {
        newly += fact_mapped[h.facts[j]] == 0;
      }
      if (newly > 0) buf->push_back({h.times[k], {newly, 0}});
    }
    return !buf->empty();
  };
  run_greedy(
      rule_order, rule_selected,
      [&](uint32_t idx) -> const DeltaHistogram& {
        return pool.rules[idx].by_time;
      },
      [&](uint32_t idx, LedgerDeltas* buf, double* delta) {
        if (!collect_rule(idx, buf)) return false;
        const RuleCandidate& c = pool.rules[idx];
        *delta = ledger.CostDelta(*buf) + c.model_bits + c.assertion_bits;
        return true;
      },
      [&](uint32_t idx) {
        const RuleCandidate& c = pool.rules[idx];
        rule_selected[idx] = 1;
        model_bits += c.model_bits;
        assertion_bits += c.assertion_bits;
        collect_rule(idx, &admit_buf);
        for (const auto& td : admit_buf) {
          ledger.Apply(td.t, td.d.mapped, td.d.associated);
        }
        for (FactId f : c.assertions) {
          if (fact_mapped[f] < 255) ++fact_mapped[f];
        }
      });

  if (cancelled()) return out;

  // ---- Edges pass -----------------------------------------------------------
  std::vector<uint32_t> edge_order;
  rank_edges(&edge_order);
  // Only mapped-but-unassociated tail facts yield savings; the tail
  // rule must be selected for the fact to be mapped at all.
  auto collect_edge = [&](uint32_t idx, LedgerDeltas* buf) {
    const DeltaHistogram& h = pool.edges[idx].by_time;
    buf->clear();
    for (size_t k = 0; k < h.num_times(); ++k) {
      int32_t newly = 0;
      for (uint32_t j = h.offsets[k]; j < h.offsets[k + 1]; ++j) {
        const FactId f = h.facts[j];
        newly += fact_mapped[f] > 0 && fact_associated[f] == 0;
      }
      if (newly > 0) buf->push_back({h.times[k], {0, newly}});
    }
    return !buf->empty();
  };
  run_greedy(
      edge_order, edge_selected,
      [&](uint32_t idx) -> const DeltaHistogram& {
        return pool.edges[idx].by_time;
      },
      [&](uint32_t idx, LedgerDeltas* buf, double* delta) {
        if (!collect_edge(idx, buf)) return false;
        const EdgeCandidate& e = pool.edges[idx];
        *delta = ledger.CostDelta(*buf) + e.model_bits + e.assertion_bits;
        return true;
      },
      [&](uint32_t idx) {
        const EdgeCandidate& e = pool.edges[idx];
        edge_selected[idx] = 1;
        model_bits += e.model_bits;
        assertion_bits += e.assertion_bits;
        collect_edge(idx, &admit_buf);
        for (const auto& td : admit_buf) {
          ledger.Apply(td.t, td.d.mapped, td.d.associated);
        }
        for (FactId f : e.tail_facts) {
          if (fact_mapped[f] > 0 && fact_associated[f] < 255) {
            ++fact_associated[f];
          }
        }
      });

  workers.reset();
  if (cancelled()) return out;

  // ---- Materialize the rule graph ------------------------------------------
  RuleGraph& rg = *out.rule_graph;
  // Recurrence of a rule: fraction of its entity pairs that repeat.
  auto is_recurrent = [&](const RuleCandidate& c) {
    dense_map<uint64_t, uint32_t> pair_counts;
    for (FactId f : c.assertions) {
      const Fact& fact = graph_.fact(f);
      ++pair_counts[PairKey(fact.subject, fact.object)];
    }
    if (pair_counts.empty()) return false;
    size_t repeated = 0;
    // anot-lint: ordered-ok integer count of repeating pairs; addition of
    // size_t is associative and commutative, so hash order cannot change it
    for (const auto& [key, count] : pair_counts) repeated += (count > 1);
    return static_cast<double>(repeated) /
               static_cast<double>(pair_counts.size()) >
           0.15;
  };
  std::vector<RuleId> rule_ids(pool.rules.size(), kInvalidId);
  for (uint32_t i = 0; i < pool.rules.size(); ++i) {
    if (!rule_selected[i]) continue;
    rule_ids[i] = rg.AddRule(pool.rules[i].rule, /*static_selected=*/true);
    rg.SetSupport(rule_ids[i],
                  static_cast<uint32_t>(pool.rules[i].assertions.size()));
    rg.SetRecurrent(rule_ids[i], is_recurrent(pool.rules[i]));
  }
  auto ensure_temporal_rule = [&](uint32_t idx) -> RuleId {
    if (rule_ids[idx] != kInvalidId) return rule_ids[idx];
    rule_ids[idx] =
        rg.AddRule(pool.rules[idx].rule, /*static_selected=*/false);
    rg.SetSupport(rule_ids[idx],
                  static_cast<uint32_t>(pool.rules[idx].assertions.size()));
    rg.SetRecurrent(rule_ids[idx], is_recurrent(pool.rules[idx]));
    return rule_ids[idx];
  };
  for (uint32_t i = 0; i < pool.edges.size(); ++i) {
    if (!edge_selected[i]) continue;
    const EdgeCandidate& e = pool.edges[i];
    RuleEdge edge;
    edge.kind = e.kind;
    edge.head = ensure_temporal_rule(e.head);
    edge.mid = e.kind == RuleEdgeKind::kTriadic
                   ? ensure_temporal_rule(e.mid)
                   : kInvalidId;
    edge.tail = ensure_temporal_rule(e.tail);
    edge.timespans = e.timespans;
    edge.support = static_cast<uint32_t>(e.support());
    rg.AddEdge(edge);
  }

  // ---- Report ---------------------------------------------------------------
  size_t mapped = 0, associated = 0;
  for (FactId f = 0; f < graph_.num_facts(); ++f) {
    mapped += (fact_mapped[f] > 0);
    associated += (fact_associated[f] > 0);
  }
  report.num_rules = rg.num_static_rules();
  report.num_temporal_rules = rg.num_rules() - rg.num_static_rules();
  report.num_edges = rg.num_edges();
  if (graph_.num_facts() > 0) {
    report.explained_fraction =
        static_cast<double>(mapped) / static_cast<double>(graph_.num_facts());
    report.associated_fraction = static_cast<double>(associated) /
                                 static_cast<double>(graph_.num_facts());
  }
  report.model_bits = model_bits;
  report.assertion_bits = assertion_bits;
  report.negative_bits = ledger.total_cost();
  report.build_seconds = timer.ElapsedSeconds();
  // End-of-selection commit boundary: with ANOT_VALIDATE these catch a
  // speculative Δ-admission that desynced the ledger, or a materialization
  // bug, right here instead of ten goldens later (no-ops otherwise).
  ledger.CheckInvariants();
  rg.CheckInvariants();
  return out;
}

}  // namespace anot
