#include "core/duration.h"

#include <algorithm>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace anot {

const char* DurationStrategyName(DurationStrategy strategy) {
  switch (strategy) {
    case DurationStrategy::kFourGraphs: return "four-graphs";
    case DurationStrategy::kStartOnly: return "start-only";
    case DurationStrategy::kEndOnly: return "end-only";
    case DurationStrategy::kAverage: return "midpoint-average";
  }
  __builtin_unreachable();  // -Wswitch-enum keeps the switch total
}

namespace {

std::unique_ptr<TemporalKnowledgeGraph> MidpointGraph(
    const TemporalKnowledgeGraph& src) {
  auto out = std::make_unique<TemporalKnowledgeGraph>();
  for (size_t e = 0; e < src.entity_dict().size(); ++e) {
    out->entity_dict().GetOrAdd(src.entity_dict().Name(e));
  }
  for (size_t r = 0; r < src.relation_dict().size(); ++r) {
    out->relation_dict().GetOrAdd(src.relation_dict().Name(r));
  }
  for (const Fact& f : src.facts()) {
    const Timestamp mid = f.time + (f.end - f.time) / 2;
    out->AddFact(Fact(f.subject, f.relation, f.object, mid));
  }
  return out;
}

}  // namespace

Fact DurationAnoT::Remap(const Fact& fact) const {
  if (strategy_ != DurationStrategy::kAverage) return fact;
  const Timestamp mid = fact.time + (fact.end - fact.time) / 2;
  return Fact(fact.subject, fact.relation, fact.object, mid);
}

DurationAnoT DurationAnoT::Build(const TemporalKnowledgeGraph& offline,
                                 const AnoTOptions& options,
                                 DurationStrategy strategy) {
  DurationAnoT out;
  out.strategy_ = strategy;

  struct ViewSpec {
    // anot-own: points at a string-literal view name (static storage)
    const char* name;
    TimeAnchor head;
    TimeAnchor tail;
  };
  // push_back instead of initializer-list assignment: GCC 12's -Wnonnull
  // fires a false positive on the latter (memmove into a still-null
  // buffer it has proven is never reached), and the tree builds -Werror.
  std::vector<ViewSpec> specs;
  specs.reserve(4);
  switch (strategy) {
    case DurationStrategy::kFourGraphs:
      specs.push_back({"ST-ST", TimeAnchor::kStart, TimeAnchor::kStart});
      specs.push_back({"ED-ED", TimeAnchor::kEnd, TimeAnchor::kEnd});
      specs.push_back({"ST-ED", TimeAnchor::kStart, TimeAnchor::kEnd});
      specs.push_back({"ED-ST", TimeAnchor::kEnd, TimeAnchor::kStart});
      break;
    case DurationStrategy::kStartOnly:
      specs.push_back({"ST-ST", TimeAnchor::kStart, TimeAnchor::kStart});
      break;
    case DurationStrategy::kEndOnly:
      specs.push_back({"ED-ED", TimeAnchor::kEnd, TimeAnchor::kEnd});
      break;
    case DurationStrategy::kAverage:
      specs.push_back({"MID", TimeAnchor::kStart, TimeAnchor::kStart});
      break;
  }

  // The four anchor views are independent builds over the same offline
  // graph, so they are the coarsest (and cheapest) parallelism available.
  // Each view's own build is deterministic for any thread count and the
  // slots are filled by index, so the ensemble is too.
  const size_t threads = ResolveNumThreads(options.num_threads);
  out.views_.resize(specs.size());
  auto build_view = [&](size_t i, size_t inner_threads) {
    const ViewSpec& spec = specs[i];
    AnoTOptions view_options = options;
    view_options.num_threads = inner_threads;
    view_options.detector.head_anchor = spec.head;
    view_options.detector.tail_anchor = spec.tail;
    if (strategy == DurationStrategy::kAverage) {
      auto mid_graph = MidpointGraph(offline);
      out.views_[i] =
          std::make_unique<AnoT>(AnoT::Build(*mid_graph, view_options));
    } else {
      out.views_[i] =
          std::make_unique<AnoT>(AnoT::Build(offline, view_options));
    }
  };
  if (threads > 1 && specs.size() > 1) {
    // Split the budget across views instead of nesting full-size pools.
    const size_t inner = std::max<size_t>(1, threads / specs.size());
    ThreadPool pool(std::min(threads, specs.size()));
    for (size_t i = 0; i < specs.size(); ++i) {
      // anot-lint: shared-ok build_view (and the offline graph/options it
      // closes over, all const) outlives the tasks — Wait() below joins
      // every view before return, and view i writes only out.views_[i]
      pool.Submit([&build_view, i, inner] { build_view(i, inner); });
    }
    pool.Wait();
  } else {
    for (size_t i = 0; i < specs.size(); ++i) build_view(i, threads);
  }
  for (const ViewSpec& spec : specs) out.view_names_.emplace_back(spec.name);
  return out;
}

Scores DurationAnoT::Score(const Fact& fact) const {
  ANOT_CHECK(!views_.empty());
  const Fact remapped = Remap(fact);
  Scores total;
  uint32_t evaluated = 0;
  for (const auto& view : views_) {
    const Scores s = view->Score(remapped);
    total.static_score += s.static_score;
    total.temporal_score += s.temporal_score;
    total.static_support += s.static_support;
    total.temporal_support += s.temporal_support;
    total.out_violations += s.out_violations;
    total.associated = total.associated || s.associated;
    evaluated += s.temporal_evaluated ? 1 : 0;
  }
  const double n = static_cast<double>(views_.size());
  total.static_score /= n;
  total.temporal_score /= n;
  total.static_support /= n;
  total.temporal_support /= n;
  total.temporal_evaluated = evaluated > 0;
  return total;
}

void DurationAnoT::IngestValid(const Fact& fact) {
  const Fact remapped = Remap(fact);
  for (auto& view : views_) view->IngestValid(remapped);
}

}  // namespace anot
