#include "core/duration.h"

#include "util/logging.h"

namespace anot {

const char* DurationStrategyName(DurationStrategy strategy) {
  switch (strategy) {
    case DurationStrategy::kFourGraphs: return "four-graphs";
    case DurationStrategy::kStartOnly: return "start-only";
    case DurationStrategy::kEndOnly: return "end-only";
    case DurationStrategy::kAverage: return "midpoint-average";
  }
  return "?";
}

namespace {

std::unique_ptr<TemporalKnowledgeGraph> MidpointGraph(
    const TemporalKnowledgeGraph& src) {
  auto out = std::make_unique<TemporalKnowledgeGraph>();
  for (size_t e = 0; e < src.entity_dict().size(); ++e) {
    out->entity_dict().GetOrAdd(src.entity_dict().Name(e));
  }
  for (size_t r = 0; r < src.relation_dict().size(); ++r) {
    out->relation_dict().GetOrAdd(src.relation_dict().Name(r));
  }
  for (const Fact& f : src.facts()) {
    const Timestamp mid = f.time + (f.end - f.time) / 2;
    out->AddFact(Fact(f.subject, f.relation, f.object, mid));
  }
  return out;
}

}  // namespace

Fact DurationAnoT::Remap(const Fact& fact) const {
  if (strategy_ != DurationStrategy::kAverage) return fact;
  const Timestamp mid = fact.time + (fact.end - fact.time) / 2;
  return Fact(fact.subject, fact.relation, fact.object, mid);
}

DurationAnoT DurationAnoT::Build(const TemporalKnowledgeGraph& offline,
                                 const AnoTOptions& options,
                                 DurationStrategy strategy) {
  DurationAnoT out;
  out.strategy_ = strategy;

  struct ViewSpec {
    const char* name;
    TimeAnchor head;
    TimeAnchor tail;
  };
  std::vector<ViewSpec> specs;
  switch (strategy) {
    case DurationStrategy::kFourGraphs:
      specs = {{"ST-ST", TimeAnchor::kStart, TimeAnchor::kStart},
               {"ED-ED", TimeAnchor::kEnd, TimeAnchor::kEnd},
               {"ST-ED", TimeAnchor::kStart, TimeAnchor::kEnd},
               {"ED-ST", TimeAnchor::kEnd, TimeAnchor::kStart}};
      break;
    case DurationStrategy::kStartOnly:
      specs = {{"ST-ST", TimeAnchor::kStart, TimeAnchor::kStart}};
      break;
    case DurationStrategy::kEndOnly:
      specs = {{"ED-ED", TimeAnchor::kEnd, TimeAnchor::kEnd}};
      break;
    case DurationStrategy::kAverage:
      specs = {{"MID", TimeAnchor::kStart, TimeAnchor::kStart}};
      break;
  }

  for (const ViewSpec& spec : specs) {
    AnoTOptions view_options = options;
    view_options.detector.head_anchor = spec.head;
    view_options.detector.tail_anchor = spec.tail;
    if (strategy == DurationStrategy::kAverage) {
      auto mid_graph = MidpointGraph(offline);
      out.views_.push_back(
          std::make_unique<AnoT>(AnoT::Build(*mid_graph, view_options)));
    } else {
      out.views_.push_back(
          std::make_unique<AnoT>(AnoT::Build(offline, view_options)));
    }
    out.view_names_.emplace_back(spec.name);
  }
  return out;
}

Scores DurationAnoT::Score(const Fact& fact) const {
  ANOT_CHECK(!views_.empty());
  const Fact remapped = Remap(fact);
  Scores total;
  uint32_t evaluated = 0;
  for (const auto& view : views_) {
    const Scores s = view->Score(remapped);
    total.static_score += s.static_score;
    total.temporal_score += s.temporal_score;
    total.static_support += s.static_support;
    total.temporal_support += s.temporal_support;
    total.out_violations += s.out_violations;
    total.associated = total.associated || s.associated;
    evaluated += s.temporal_evaluated ? 1 : 0;
  }
  const double n = static_cast<double>(views_.size());
  total.static_score /= n;
  total.temporal_score /= n;
  total.static_support /= n;
  total.temporal_support /= n;
  total.temporal_evaluated = evaluated > 0;
  return total;
}

void DurationAnoT::IngestValid(const Fact& fact) {
  const Fact remapped = Remap(fact);
  for (auto& view : views_) view->IngestValid(remapped);
}

}  // namespace anot
