#include "core/anot.h"

#include <atomic>
#include <cmath>
#include <thread>
#include <utility>

#include "util/logging.h"

namespace anot {

namespace {

std::unique_ptr<TemporalKnowledgeGraph> CopyGraph(
    const TemporalKnowledgeGraph& src) {
  auto out = std::make_unique<TemporalKnowledgeGraph>();
  for (size_t e = 0; e < src.entity_dict().size(); ++e) {
    out->entity_dict().GetOrAdd(src.entity_dict().Name(e));
  }
  for (size_t r = 0; r < src.relation_dict().size(); ++r) {
    out->relation_dict().GetOrAdd(src.relation_dict().Name(r));
  }
  for (const Fact& f : src.facts()) out->AddFact(f);
  return out;
}

}  // namespace

/// One double-buffered rebuild. The worker thread touches only this
/// struct (snapshot in, built structures out) — never the owning AnoT,
/// whose address changes under moves. This is a lock-free single-producer
/// (worker) / single-consumer (serving thread) handoff, so the ownership
/// contract lives in the two atomics below instead of a mutex; the
/// concurrency lint requires every atomic to carry its `anot-sync:`
/// contract, and the field-by-field ownership is spelled out per member.
struct AnoT::AsyncRefresh {
  /// Written by the serving thread before the worker starts (the thread
  /// constructor provides the happens-before); read-only input to the
  /// worker after that; re-read by the serving thread only after the
  /// `ready` acquire (or the join in CompleteRefresh), when the worker
  /// has finished with it.
  std::unique_ptr<TemporalKnowledgeGraph> snapshot;
  /// Worker-owned while the build runs. Published to the serving thread
  /// by the `ready` release store; the serving thread must not touch it
  /// before an acquire load of `ready` returns true (or the worker is
  /// joined, which orders at least as strongly).
  BuiltStructures built;
  /// anot-sync: serving thread -> worker abort request. Relaxed is
  /// enough: it carries no payload — the worker polls it between build
  /// stages and simply stops; the join below is the real synchronization
  /// point for everything the cancelled worker wrote.
  std::atomic<bool> cancel{false};
  /// anot-sync: publication flag for `built` (and `snapshot` reuse).
  /// Worker stores true with memory_order_release after its last write;
  /// the serving thread reads with memory_order_acquire (RefreshReady /
  /// MaybeCompleteRefresh), so observing true makes every build-side
  /// write visible. The release/acquire pair IS the handoff; downgrade
  /// either side and the struct races.
  std::atomic<bool> ready{false};
  std::thread worker;

  ~AsyncRefresh() {
    cancel.store(true, std::memory_order_relaxed);
    if (worker.joinable()) worker.join();
  }
};

AnoT::AnoT() = default;
AnoT::AnoT(AnoT&&) noexcept = default;
AnoT& AnoT::operator=(AnoT&&) noexcept = default;
AnoT::~AnoT() = default;

AnoT AnoT::Build(const TemporalKnowledgeGraph& offline,
                 const AnoTOptions& options) {
  AnoT anot;
  anot.options_ = std::make_unique<AnoTOptions>(options);
  if (!options.detector.use_category_aggregation) {
    // Table 3 ablation: skip the aggregation passes entirely.
    anot.options_->detector.category.max_aggregation_rounds = 0;
  }
  anot.graph_ = CopyGraph(offline);
  anot.Rebuild();
  return anot;
}

AnoT::BuiltStructures AnoT::BuildStructures(
    const TemporalKnowledgeGraph& graph, const AnoTOptions& options,
    ThreadPool* workers, const std::atomic<bool>* cancel) {
  BuiltStructures out;
  {
    // The category build shards on the caller's pool when given one;
    // otherwise on a scoped transient pool, so pool creation stays lazy
    // for offline-only users. Results are bit-identical for every count.
    std::unique_ptr<ThreadPool> transient;
    if (workers == nullptr) {
      const size_t threads = ResolveNumThreads(options.num_threads);
      if (threads > 1) {
        transient = std::make_unique<ThreadPool>(threads);
        workers = transient.get();
      }
    }
    out.categories = std::make_unique<CategoryFunction>(CategoryFunction::Build(
        graph, options.detector.category, workers, cancel));
  }
  if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
    return out;  // incomplete: caller discards
  }
  RuleGraphBuilder builder(graph, *out.categories, options.detector,
                           options.num_threads);
  auto built = builder.Build(cancel);
  out.rules = std::move(built.rule_graph);
  out.report = built.report;
  return out;
}

void AnoT::Rebuild() {
  // Reuse the serving pool when batched serving already created one (it
  // sits idle during an inline rebuild, and reusing it spares the serving
  // thread a spawn/join cycle per Refresh).
  BuiltStructures built =
      BuildStructures(*graph_, *options_, serving_pool_.get(),
                      /*cancel=*/nullptr);
  categories_ = std::move(built.categories);
  rules_ = std::move(built.rules);
  report_ = built.report;
  RecreateServingObjects();
  ResetMonitorFromReport();
}

void AnoT::RecreateServingObjects() {
  scorer_ = std::make_unique<Scorer>(graph_.get(), categories_.get(),
                                     rules_.get(), &options_->detector);
  updater_ = std::make_unique<Updater>(graph_.get(), categories_.get(),
                                       rules_.get(), &options_->detector,
                                       options_->updater);
}

void AnoT::ResetMonitorFromReport() {
  const double e = std::max<double>(2.0, graph_->num_entities());
  const double r = std::max<double>(1.0, graph_->num_relations());
  monitor_ = std::make_unique<Monitor>(report_.negative_bits,
                                       report_.num_train_timestamps,
                                       std::max(e * e * r, 4.0), e,
                                       options_->monitor);
}

Scores AnoT::Score(const Fact& fact) const { return scorer_->Score(fact); }

Scores AnoT::ScoreWithEvidence(const Fact& fact, Evidence* evidence) const {
  return scorer_->Score(fact, evidence);
}

void AnoT::SetValidityThresholds(double static_threshold,
                                 double temporal_threshold) {
  static_threshold_ = static_threshold;
  temporal_threshold_ = temporal_threshold;
}

UpdateEffects AnoT::IngestValid(const Fact& fact) {
  const UpdateEffects effects = updater_->Ingest(fact);
  if (async_ != nullptr) refresh_replay_facts_.push_back(fact);
  return effects;
}

ThreadPool* AnoT::ServingPool() const {
  const size_t threads = ResolveNumThreads(options_->num_threads);
  if (threads <= 1) return nullptr;
  if (serving_pool_ == nullptr) {
    serving_pool_ = std::make_unique<ThreadPool>(threads);
  }
  return serving_pool_.get();
}

void AnoT::ScoreRangeInto(const std::vector<Fact>& facts, size_t begin,
                          size_t end, std::vector<Scores>* out) const {
  const size_t n = end - begin;
  if (n == 0) return;
  ThreadPool* pool = n >= 2 ? ServingPool() : nullptr;
  // Each slot is written independently, so any partition yields the same
  // result; a few shards per worker smooth out fact-cost skew.
  const size_t num_shards =
      pool == nullptr ? 1 : std::min(n, 4 * pool->num_threads());
  ParallelForShards(pool, n, num_shards,
                    [&](size_t /*shard*/, size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) {
      (*out)[begin + i] = scorer_->Score(facts[begin + i]);
    }
  });
}

std::vector<Scores> AnoT::ScoreBatch(const std::vector<Fact>& facts) const {
  std::vector<Scores> out(facts.size());
  ScoreRangeInto(facts, 0, facts.size(), &out);
  return out;
}

bool AnoT::CommitArrival(const Fact& fact, const Scores& scores,
                         UpdateEffects* effects) {
  const bool mapped = scores.static_support > 0.0;
  monitor_->Observe(fact.time, mapped, scores.associated);
  if (async_ != nullptr) {
    refresh_replay_observations_.push_back(
        MonitorObservation{fact.time, mapped, scores.associated});
  }
  const bool valid = scores.static_score <= static_threshold_ &&
                     (!scores.temporal_evaluated ||
                      scores.temporal_score <= temporal_threshold_);
  bool mutated = false;
  if (valid && options_->enable_updater) {
    const UpdateEffects e = updater_->Ingest(fact);
    if (effects != nullptr) effects->Accumulate(e);
    if (async_ != nullptr) refresh_replay_facts_.push_back(fact);
    mutated = true;
  }
  if (options_->auto_refresh && monitor_->ShouldRefresh()) {
    if (options_->refresh_mode == RefreshMode::kAsynchronous) {
      // Launching the snapshot/build does not mutate scoring state, so
      // speculative scores stay valid; requests coalesce while one build
      // is in flight.
      RefreshAsync();
    } else {
      Refresh();
      mutated = true;
    }
  }
  // Swap in a staged background build at this commit boundary; the swap
  // mutates scoring state, so the batch loop re-scores everything after.
  if (MaybeCompleteRefresh()) mutated = true;
  return mutated;
}

Scores AnoT::ProcessArrival(const Fact& fact, UpdateEffects* effects) {
  const Scores scores = scorer_->Score(fact);
  CommitArrival(fact, scores, effects);
  return scores;
}

std::vector<Scores> AnoT::ProcessArrivalBatch(const std::vector<Fact>& batch,
                                              UpdateEffects* effects) {
  std::vector<Scores> out(batch.size());
  ThreadPool* pool = ServingPool();
  // Speculation window: how far ahead of the commit frontier to score.
  // A commit that mutates state throws the not-yet-committed speculative
  // scores away, so the window bounds the wasted work per mutation while
  // still keeping every worker busy on mutation-free stretches. Without a
  // pool there is nothing to overlap — score exactly at the frontier,
  // which degenerates to the sequential loop with zero wasted work.
  const size_t window =
      pool == nullptr ? 1 : std::max<size_t>(8, 4 * pool->num_threads());
  size_t next = 0;
  while (next < batch.size()) {
    const size_t end = std::min(batch.size(), next + window);
    // Speculative parallel scoring against the state frozen at the commit
    // frontier — exactly the state the sequential loop would score with.
    ScoreRangeInto(batch, next, end, &out);
    // Ordered commit; stop at the first state mutation, after which the
    // remaining speculative scores are stale.
    size_t i = next;
    bool mutated = false;
    while (i < end && !mutated) {
      mutated = CommitArrival(batch[i], out[i], effects);
      ++i;
    }
    next = i;
  }
  return out;
}

void AnoT::Refresh() {
  AbandonRefresh();
  ++refresh_count_;
  Rebuild();
}

void AnoT::RefreshAsync() {
  if (async_ != nullptr) return;  // coalesce: already in flight or staged
  async_ = std::make_unique<AsyncRefresh>();
  async_->snapshot = CopyGraph(*graph_);
  refresh_replay_facts_.clear();
  refresh_replay_observations_.clear();
  // The worker owns only the heap-held AsyncRefresh (stable across moves
  // of this AnoT) and a copy of the options.
  AsyncRefresh* state = async_.get();
  const AnoTOptions options = *options_;
  state->worker = std::thread([state, options] {
    BuiltStructures built =
        BuildStructures(*state->snapshot, options, nullptr, &state->cancel);
    if (!state->cancel.load(std::memory_order_relaxed)) {
      state->built = std::move(built);
    }
    state->ready.store(true, std::memory_order_release);
  });
}

bool AnoT::refresh_in_flight() const { return async_ != nullptr; }

bool AnoT::RefreshReady() const {
  return async_ != nullptr && async_->ready.load(std::memory_order_acquire);
}

void AnoT::WaitForRefreshReady() {
  if (async_ == nullptr) return;
  if (async_->worker.joinable()) async_->worker.join();
}

bool AnoT::FinishRefresh() {
  if (async_ == nullptr) return false;
  WaitForRefreshReady();
  CompleteRefresh();
  return true;
}

bool AnoT::MaybeCompleteRefresh() {
  if (async_ == nullptr ||
      !async_->ready.load(std::memory_order_acquire)) {
    return false;
  }
  CompleteRefresh();
  return true;
}

void AnoT::CompleteRefresh() {
  ANOT_CHECK(async_ != nullptr);
  if (async_->worker.joinable()) async_->worker.join();
  ANOT_CHECK(async_->built.rules != nullptr);
  // 1. Adopt the structures built from the snapshot. The old graph —
  // including the facts ingested since the snapshot — is discarded; the
  // replay below re-applies those ingests to the new state.
  graph_ = std::move(async_->snapshot);
  categories_ = std::move(async_->built.categories);
  rules_ = std::move(async_->built.rules);
  report_ = async_->built.report;
  async_.reset();
  RecreateServingObjects();
  // Monitor budget and universe sizes come from the snapshot state,
  // exactly as a synchronous Refresh() at the snapshot point would set
  // them — so before the ingest replay grows the graph.
  ResetMonitorFromReport();
  // 2. Replay the ingests logged since the snapshot through the fresh
  // updater (their serving-time UpdateEffects were already reported; the
  // replay's are bookkeeping against the new state and are discarded).
  for (const Fact& fact : refresh_replay_facts_) updater_->Ingest(fact);
  // 3. Replay the observation window into the reset monitor so the
  // in-flight bucket accounting is not lost across the swap.
  monitor_->Replay(refresh_replay_observations_);
  refresh_replay_facts_.clear();
  refresh_replay_observations_.clear();
  ++refresh_count_;
}

void AnoT::AbandonRefresh() {
  if (async_ == nullptr) return;
  async_.reset();  // cancels and joins the worker
  refresh_replay_facts_.clear();
  refresh_replay_observations_.clear();
}

Explainer AnoT::MakeExplainer() const {
  return Explainer(graph_.get(), categories_.get(), rules_.get());
}

void AnoT::CheckInvariants() const {
#ifdef ANOT_VALIDATE
  graph_->CheckInvariants();
  rules_->CheckInvariants();
  monitor_->CheckInvariants();
  if (updater_ != nullptr) updater_->CheckInvariants();
#endif
}

}  // namespace anot
