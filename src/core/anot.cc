#include "core/anot.h"

#include <cmath>

#include "util/logging.h"

namespace anot {

namespace {

std::unique_ptr<TemporalKnowledgeGraph> CopyGraph(
    const TemporalKnowledgeGraph& src) {
  auto out = std::make_unique<TemporalKnowledgeGraph>();
  for (size_t e = 0; e < src.entity_dict().size(); ++e) {
    out->entity_dict().GetOrAdd(src.entity_dict().Name(e));
  }
  for (size_t r = 0; r < src.relation_dict().size(); ++r) {
    out->relation_dict().GetOrAdd(src.relation_dict().Name(r));
  }
  for (const Fact& f : src.facts()) out->AddFact(f);
  return out;
}

}  // namespace

AnoT AnoT::Build(const TemporalKnowledgeGraph& offline,
                 const AnoTOptions& options) {
  AnoT anot;
  anot.options_ = std::make_unique<AnoTOptions>(options);
  if (!options.detector.use_category_aggregation) {
    // Table 3 ablation: skip the aggregation passes entirely.
    anot.options_->detector.category.max_aggregation_rounds = 0;
  }
  anot.graph_ = CopyGraph(offline);
  anot.Rebuild();
  return anot;
}

void AnoT::Rebuild() {
  // The category rebuild shards on the serving pool when batched serving
  // already created one (it sits idle during a rebuild, and reusing it
  // spares the serving thread a spawn/join cycle per Refresh); otherwise
  // on a scoped transient pool, so pool creation stays lazy for
  // offline-only users. Results are bit-identical for every count.
  {
    ThreadPool* workers = serving_pool_.get();
    std::unique_ptr<ThreadPool> transient;
    if (workers == nullptr) {
      const size_t threads = ResolveNumThreads(options_->num_threads);
      if (threads > 1) {
        transient = std::make_unique<ThreadPool>(threads);
        workers = transient.get();
      }
    }
    categories_ = std::make_unique<CategoryFunction>(CategoryFunction::Build(
        *graph_, options_->detector.category, workers));
  }
  RuleGraphBuilder builder(*graph_, *categories_, options_->detector,
                           options_->num_threads);
  auto built = builder.Build();
  rules_ = std::move(built.rule_graph);
  report_ = built.report;

  scorer_ = std::make_unique<Scorer>(graph_.get(), categories_.get(),
                                     rules_.get(), &options_->detector);
  updater_ = std::make_unique<Updater>(graph_.get(), categories_.get(),
                                       rules_.get(), &options_->detector,
                                       options_->updater);
  const double e = std::max<double>(2.0, graph_->num_entities());
  const double r = std::max<double>(1.0, graph_->num_relations());
  monitor_ = std::make_unique<Monitor>(report_.negative_bits,
                                       report_.num_train_timestamps,
                                       std::max(e * e * r, 4.0), e,
                                       options_->monitor);
}

Scores AnoT::Score(const Fact& fact) const { return scorer_->Score(fact); }

Scores AnoT::ScoreWithEvidence(const Fact& fact, Evidence* evidence) const {
  return scorer_->Score(fact, evidence);
}

void AnoT::SetValidityThresholds(double static_threshold,
                                 double temporal_threshold) {
  static_threshold_ = static_threshold;
  temporal_threshold_ = temporal_threshold;
}

UpdateEffects AnoT::IngestValid(const Fact& fact) {
  return updater_->Ingest(fact);
}

ThreadPool* AnoT::ServingPool() const {
  const size_t threads = ResolveNumThreads(options_->num_threads);
  if (threads <= 1) return nullptr;
  if (serving_pool_ == nullptr) {
    serving_pool_ = std::make_unique<ThreadPool>(threads);
  }
  return serving_pool_.get();
}

void AnoT::ScoreRangeInto(const std::vector<Fact>& facts, size_t begin,
                          size_t end, std::vector<Scores>* out) const {
  const size_t n = end - begin;
  if (n == 0) return;
  ThreadPool* pool = n >= 2 ? ServingPool() : nullptr;
  // Each slot is written independently, so any partition yields the same
  // result; a few shards per worker smooth out fact-cost skew.
  const size_t num_shards =
      pool == nullptr ? 1 : std::min(n, 4 * pool->num_threads());
  ParallelForShards(pool, n, num_shards,
                    [&](size_t /*shard*/, size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) {
      (*out)[begin + i] = scorer_->Score(facts[begin + i]);
    }
  });
}

std::vector<Scores> AnoT::ScoreBatch(const std::vector<Fact>& facts) const {
  std::vector<Scores> out(facts.size());
  ScoreRangeInto(facts, 0, facts.size(), &out);
  return out;
}

bool AnoT::CommitArrival(const Fact& fact, const Scores& scores,
                         UpdateEffects* effects) {
  monitor_->Observe(fact.time, scores.static_support > 0.0,
                    scores.associated);
  const bool valid = scores.static_score <= static_threshold_ &&
                     (!scores.temporal_evaluated ||
                      scores.temporal_score <= temporal_threshold_);
  bool mutated = false;
  if (valid && options_->enable_updater) {
    const UpdateEffects e = updater_->Ingest(fact);
    if (effects != nullptr) effects->Accumulate(e);
    mutated = true;
  }
  if (options_->auto_refresh && monitor_->ShouldRefresh()) {
    Refresh();
    mutated = true;
  }
  return mutated;
}

Scores AnoT::ProcessArrival(const Fact& fact, UpdateEffects* effects) {
  const Scores scores = scorer_->Score(fact);
  CommitArrival(fact, scores, effects);
  return scores;
}

std::vector<Scores> AnoT::ProcessArrivalBatch(const std::vector<Fact>& batch,
                                              UpdateEffects* effects) {
  std::vector<Scores> out(batch.size());
  ThreadPool* pool = ServingPool();
  // Speculation window: how far ahead of the commit frontier to score.
  // A commit that mutates state throws the not-yet-committed speculative
  // scores away, so the window bounds the wasted work per mutation while
  // still keeping every worker busy on mutation-free stretches. Without a
  // pool there is nothing to overlap — score exactly at the frontier,
  // which degenerates to the sequential loop with zero wasted work.
  const size_t window =
      pool == nullptr ? 1 : std::max<size_t>(8, 4 * pool->num_threads());
  size_t next = 0;
  while (next < batch.size()) {
    const size_t end = std::min(batch.size(), next + window);
    // Speculative parallel scoring against the state frozen at the commit
    // frontier — exactly the state the sequential loop would score with.
    ScoreRangeInto(batch, next, end, &out);
    // Ordered commit; stop at the first state mutation, after which the
    // remaining speculative scores are stale.
    size_t i = next;
    bool mutated = false;
    while (i < end && !mutated) {
      mutated = CommitArrival(batch[i], out[i], effects);
      ++i;
    }
    next = i;
  }
  return out;
}

void AnoT::Refresh() {
  ++refresh_count_;
  Rebuild();
}

Explainer AnoT::MakeExplainer() const {
  return Explainer(graph_.get(), categories_.get(), rules_.get());
}

}  // namespace anot
