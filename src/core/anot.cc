#include "core/anot.h"

#include <cmath>

#include "util/logging.h"

namespace anot {

namespace {

std::unique_ptr<TemporalKnowledgeGraph> CopyGraph(
    const TemporalKnowledgeGraph& src) {
  auto out = std::make_unique<TemporalKnowledgeGraph>();
  for (size_t e = 0; e < src.entity_dict().size(); ++e) {
    out->entity_dict().GetOrAdd(src.entity_dict().Name(e));
  }
  for (size_t r = 0; r < src.relation_dict().size(); ++r) {
    out->relation_dict().GetOrAdd(src.relation_dict().Name(r));
  }
  for (const Fact& f : src.facts()) out->AddFact(f);
  return out;
}

}  // namespace

AnoT AnoT::Build(const TemporalKnowledgeGraph& offline,
                 const AnoTOptions& options) {
  AnoT anot;
  anot.options_ = std::make_unique<AnoTOptions>(options);
  if (!options.detector.use_category_aggregation) {
    // Table 3 ablation: skip the aggregation passes entirely.
    anot.options_->detector.category.max_aggregation_rounds = 0;
  }
  anot.graph_ = CopyGraph(offline);
  anot.Rebuild();
  return anot;
}

void AnoT::Rebuild() {
  categories_ = std::make_unique<CategoryFunction>(CategoryFunction::Build(
      *graph_, options_->detector.category));
  RuleGraphBuilder builder(*graph_, *categories_, options_->detector,
                           options_->num_threads);
  auto built = builder.Build();
  rules_ = std::move(built.rule_graph);
  report_ = built.report;

  scorer_ = std::make_unique<Scorer>(graph_.get(), categories_.get(),
                                     rules_.get(), &options_->detector);
  updater_ = std::make_unique<Updater>(graph_.get(), categories_.get(),
                                       rules_.get(), &options_->detector,
                                       options_->updater);
  const double e = std::max<double>(2.0, graph_->num_entities());
  const double r = std::max<double>(1.0, graph_->num_relations());
  monitor_ = std::make_unique<Monitor>(report_.negative_bits,
                                       report_.num_train_timestamps,
                                       std::max(e * e * r, 4.0), e,
                                       options_->monitor);
}

Scores AnoT::Score(const Fact& fact) const { return scorer_->Score(fact); }

Scores AnoT::ScoreWithEvidence(const Fact& fact, Evidence* evidence) const {
  return scorer_->Score(fact, evidence);
}

void AnoT::SetValidityThresholds(double static_threshold,
                                 double temporal_threshold) {
  static_threshold_ = static_threshold;
  temporal_threshold_ = temporal_threshold;
}

UpdateEffects AnoT::IngestValid(const Fact& fact) {
  return updater_->Ingest(fact);
}

Scores AnoT::ProcessArrival(const Fact& fact) {
  const Scores scores = scorer_->Score(fact);
  monitor_->Observe(fact.time, scores.static_support > 0.0,
                    scores.associated);
  const bool valid = scores.static_score <= static_threshold_ &&
                     (!scores.temporal_evaluated ||
                      scores.temporal_score <= temporal_threshold_);
  if (valid && options_->enable_updater) {
    updater_->Ingest(fact);
  }
  if (options_->auto_refresh && monitor_->ShouldRefresh()) {
    Refresh();
  }
  return scores;
}

void AnoT::Refresh() {
  ++refresh_count_;
  Rebuild();
}

Explainer AnoT::MakeExplainer() const {
  return Explainer(graph_.get(), categories_.get(), rules_.get());
}

}  // namespace anot
