#pragma once

#include <optional>
#include <vector>

#include "core/options.h"
#include "mining/category_function.h"
#include "rulegraph/rule_graph.h"
#include "tkg/graph.h"
#include "util/containers.h"
#include "util/lifetime.h"

namespace anot {

/// \brief Anomaly scores for one piece of knowledge (Algorithm 2).
///
/// Higher static score => more likely a conceptual error (Eq. 9).
/// Higher temporal score => more likely a time error (Eq. 10).
/// High combined *support* on a fact absent from the TKG => missing error.
struct Scores {
  double static_score = 0.0;
  double temporal_score = 0.0;
  /// Σ |A_v| over mapped static rules (denominator of Eq. 9).
  double static_support = 0.0;
  /// Σ x over reachable precursors (denominator of Eq. 10).
  double temporal_support = 0.0;
  /// Conflict mass (numerator of the extended Eq. 10): timespan
  /// disagreement of instantiated precursors plus unmet one-shot
  /// precursor expectations. Time errors are *conflicts* with preserved
  /// knowledge (§1), so absence of any expectation contributes nothing.
  double temporal_conflict = 0.0;
  /// Instantiable out-edges (the Eq. 10 extension's numerator term).
  uint32_t out_violations = 0;
  /// False when λ-gated (Alg. 2 line 8) — temporal evidence not gathered.
  bool temporal_evaluated = false;
  /// True when at least one in-edge was instantiated at depth 0; feeds the
  /// monitor's association counter.
  bool associated = false;

  /// Ranking score for missing-error detection: absent facts with high
  /// support "comply with the patterns" and are likely missing (§4.3.4).
  double missing_support() const {
    return static_support + temporal_support;
  }
};

/// \brief Interpretable byproduct of scoring (§4.3.4, RQ4).
struct Evidence {
  struct MappedRule {
    RuleId rule;
    uint32_t support;
    bool static_selected;
  };
  /// Rules the knowledge maps to (existence evidence of validity).
  std::vector<MappedRule> mapped;

  struct Precursor {
    RuleEdgeId edge;
    RuleId precursor;
    int depth;
    bool instantiated;
    FactId witness;       // instantiating fact, when found
    Timestamp delta;      // observed timespan
    uint32_t theta;       // timespan disagreement count
  };
  /// Walk results: instantiated precursors support occurrence; failed ones
  /// are missing-knowledge prompts.
  std::vector<Precursor> precursors;

  /// Out-edges already instantiated by *earlier* facts: occurrence-order
  /// violations (evidence of a time error).
  std::vector<RuleEdgeId> violations;
};

/// \brief One instantiation of a rule edge against concrete knowledge.
struct Instantiation {
  FactId witness = kInvalidId;
  Timestamp delta = 0;  // tail anchor minus head anchor
  /// Number of preserved timespans τ ∈ T(e) with |τ - delta| <= L. Among
  /// admissible witnesses the one with the most agreement is chosen:
  /// evidence is existential, so the best-supported instantiation decides.
  uint32_t agreements = 0;
};

/// \brief Derives static and temporal scores by walking the rule graph.
///
/// The scorer borrows (does not own) the TKG, the category function and
/// the rule graph; all three may be advanced by the updater between calls.
class Scorer {
 public:
  Scorer(const TemporalKnowledgeGraph* graph,
         const CategoryFunction* categories, const RuleGraph* rules,
         const DetectorOptions* options);

  /// Algorithm 2 end to end. `evidence` may be nullptr.
  ///
  /// `exclude_witness` names one graph fact (by id) that must not serve
  /// as a witness in any scan — the fact being scored itself, when it has
  /// already been ingested. Witness admissibility is decided by identity,
  /// never by value equality: a *distinct* earlier occurrence of an
  /// identical recurring fact is a real precursor and must stay
  /// admissible (the same identity-vs-equality contract as the updater's
  /// chain-edge scan). Facts scored before ingestion (the serving path)
  /// need no exclusion — they have no id yet.
  Scores Score(const Fact& fact, Evidence* evidence = nullptr,
               FactId exclude_witness = kInvalidId) const;

  /// Rule nodes the fact maps to (any selection status). Sorted ascending,
  /// deduplicated; inline storage covers the typical |C(s)|·|C(o)| fan-out
  /// so the per-arrival mapping allocates nothing.
  small_vec<RuleId, 8> MapToRules(const Fact& fact) const;

  /// Tries to instantiate `edge` as a precursor of `fact`: is there
  /// concrete prior knowledge matching the edge's head (and mid) pattern
  /// that the new knowledge could follow? Exposed for the updater's
  /// timespan bookkeeping. `exclude_witness` as in Score.
  std::optional<Instantiation> TryInstantiate(
      const RuleEdge& edge, const Fact& fact,
      FactId exclude_witness = kInvalidId) const;

 private:
  bool RuleMatchesFact(const AtomicRule& rule, EntityId subject,
                       RelationId relation, EntityId object) const;
  struct EdgeEvidence {
    double support = 0.0;
    double conflict = 0.0;
  };
  /// Per-Score walk state. `instantiated[e]` is meaningful only where
  /// `visited[e]` is set: it records whether TryInstantiate succeeded the
  /// one time edge e was tried, at whatever depth that happened, so the
  /// association flag can be derived without a second instantiation pass.
  struct Walk {
    std::vector<uint8_t> visited;
    std::vector<uint8_t> instantiated;
    FactId exclude_witness = kInvalidId;
  };
  EdgeEvidence EvidenceForEdge(RuleEdgeId edge_id, const Fact& fact,
                               int depth, Walk* walk,
                               Evidence* evidence) const;
  uint32_t CountAgreements(const RuleEdge& edge, Timestamp delta) const;
  /// Evidence weight x of Eq. 10 for one instantiation, per ThetaMode.
  double EvidenceWeight(const RuleEdge& edge,
                        const Instantiation& inst) const;
  double RuleWeight(RuleId rule) const;

  // anot-own: all four are borrowed from the owning AnoT (or a test/bench
  // caller), which heap-holds them precisely so these borrows survive
  // moves of the owner; AnoT recreates its Scorer whenever the structures
  // are swapped (RecreateServingObjects).
  not_null<const TemporalKnowledgeGraph*> graph_;
  not_null<const CategoryFunction*> categories_;
  not_null<const RuleGraph*> rules_;
  not_null<const DetectorOptions*> options_;
};

}  // namespace anot
