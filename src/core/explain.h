#pragma once

#include <string>
#include <vector>

#include "core/scorer.h"
#include "mining/category_function.h"
#include "rulegraph/rule_graph.h"
#include "tkg/graph.h"
#include "util/lifetime.h"

namespace anot {

/// \brief Human-readable explanations and correcting prompts (§4.3.4).
///
/// Everything here is presentation-layer: the scorer produces structured
/// Evidence; the explainer renders it and derives the paper's three kinds
/// of correcting prompts (entity/relation revision for conceptual errors,
/// timing guidance for time errors, extraction prompts for missing facts).
class Explainer {
 public:
  Explainer(const TemporalKnowledgeGraph* graph,
            const CategoryFunction* categories, const RuleGraph* rules);

  /// "(<subject-category>, relation, <object-category>)".
  std::string DescribeRule(RuleId rule) const;
  std::string DescribeRule(const AtomicRule& rule) const;

  /// "(subject, relation, object, t)".
  std::string DescribeFact(const Fact& fact) const;

  /// Renders the full evidence trail of a scored fact.
  std::string RenderEvidence(const Fact& fact,
                             const Evidence& evidence) const;

  /// Correcting prompts for a conceptual error: selected rules that
  /// partially match (same subject category + relation, or same category
  /// pair) suggest how to revise the object or the relation.
  std::vector<std::string> ConceptualPrompts(const Fact& fact) const;

  /// Correcting prompts for a time error: in-edges say after what the
  /// knowledge should occur (and with what typical timespans); violated
  /// out-edges say what it must precede.
  std::vector<std::string> TimePrompts(const Fact& fact,
                                       const Evidence& evidence) const;

  /// Missing-knowledge prompts: precursors that failed to instantiate
  /// point at knowledge worth (re-)extracting.
  std::vector<std::string> MissingPrompts(const Evidence& evidence) const;

 private:
  std::string DescribeCategory(CategoryId c) const;

  // anot-own: borrowed from the AnoT that built this explainer
  // (MakeExplainer); explainers are presentation-layer temporaries the
  // caller drops before mutating or destroying the detector.
  not_null<const TemporalKnowledgeGraph*> graph_;
  not_null<const CategoryFunction*> categories_;
  not_null<const RuleGraph*> rules_;
};

}  // namespace anot
