#pragma once

#include <atomic>
#include <memory>

#include "core/candidates.h"
#include "core/options.h"
#include "mdl/ledger.h"
#include "mining/category_function.h"
#include "rulegraph/rule_graph.h"
#include "tkg/graph.h"

namespace anot {

/// \brief Outcome of an offline rule-graph construction (Algorithm 1).
struct BuildReport {
  double build_seconds = 0.0;
  size_t num_categories = 0;
  size_t num_rules = 0;            // selected (static) rule nodes
  size_t num_temporal_rules = 0;   // edge-only rule nodes
  size_t num_edges = 0;
  size_t num_candidate_rules = 0;
  size_t num_candidate_edges = 0;
  /// Fraction of training facts mapped to a selected rule (Table 4's
  /// "proportion of explained facts").
  double explained_fraction = 0.0;
  /// Fraction additionally associated through a selected edge.
  double associated_fraction = 0.0;
  /// Final description-length components, in bits.
  double model_bits = 0.0;       // L(M)
  double assertion_bits = 0.0;   // L(A_G)
  double negative_bits = 0.0;    // L(N_G) — the monitor's budget
  size_t num_train_timestamps = 0;
  double total_bits() const {
    return model_bits + assertion_bits + negative_bits;
  }
};

/// \brief Greedy MDL construction of the optimal rule graph (Algorithm 1).
///
/// Candidates are ranked by error-cost reduction Δ (then |A|, then id) and
/// admitted while they shrink the total description length; selection
/// passes repeat until a full pass admits nothing. Rules referenced only
/// by edges are added as temporal-only nodes (§4.3.3).
class RuleGraphBuilder {
 public:
  /// `num_threads` parallelizes candidate generation, per-candidate cost
  /// computation, and — unless DetectorOptions::speculative_selection is
  /// off — the per-sweep Δ-evaluation of the greedy selection passes
  /// (admission itself stays serial in rank order). 0 = hardware
  /// concurrency. Output is bit-identical for every thread count and for
  /// both selection strategies.
  RuleGraphBuilder(const TemporalKnowledgeGraph& graph,
                   const CategoryFunction& categories,
                   const DetectorOptions& options, size_t num_threads = 1);

  struct Output {
    std::unique_ptr<RuleGraph> rule_graph;
    BuildReport report;
  };

  /// Runs candidate generation + selection end to end.
  ///
  /// `cancel` (optional) is polled between the pipeline stages (coarse
  /// granularity: generation, costing, each greedy pass); an abandoned
  /// background rebuild sets it to stop burning CPU. Once it reads true
  /// the returned output is INCOMPLETE and must be discarded.
  Output Build(const std::atomic<bool>* cancel = nullptr) const;

 private:
  // anot-own: the builder is a stack-scoped pipeline object — the caller
  // (AnoT::BuildStructures / tests) constructs it after these owners and
  // consumes Build() before any of them can die; builders are never
  // stored or moved.
  const TemporalKnowledgeGraph& graph_;
  // anot-own: same stack-scoped contract as graph_.
  const CategoryFunction& categories_;
  // anot-own: same stack-scoped contract as graph_.
  const DetectorOptions& options_;
  size_t num_threads_ = 1;
};

}  // namespace anot
