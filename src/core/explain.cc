#include "core/explain.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace anot {

Explainer::Explainer(const TemporalKnowledgeGraph* graph,
                     const CategoryFunction* categories,
                     const RuleGraph* rules)
    : graph_(graph), categories_(categories), rules_(rules) {
  ANOT_CHECK(graph_ && categories_ && rules_);
}

std::string Explainer::DescribeCategory(CategoryId c) const {
  return "<" + categories_->Describe(c, *graph_) + ">";
}

std::string Explainer::DescribeRule(const AtomicRule& rule) const {
  return "(" + DescribeCategory(rule.subject_category) + ", " +
         graph_->RelationName(rule.relation) + ", " +
         DescribeCategory(rule.object_category) + ")";
}

std::string Explainer::DescribeRule(RuleId rule) const {
  return DescribeRule(rules_->rule(rule));
}

std::string Explainer::DescribeFact(const Fact& fact) const {
  std::string out = "(" + graph_->EntityName(fact.subject) + ", " +
                    graph_->RelationName(fact.relation) + ", " +
                    graph_->EntityName(fact.object) + ", " +
                    std::to_string(fact.time);
  if (fact.end != fact.time) out += ".." + std::to_string(fact.end);
  return out + ")";
}

std::string Explainer::RenderEvidence(const Fact& fact,
                                      const Evidence& evidence) const {
  std::string out = "knowledge " + DescribeFact(fact) + "\n";
  if (evidence.mapped.empty()) {
    out += "  maps to NO known interaction pattern (conceptual conflict)\n";
  }
  for (const auto& m : evidence.mapped) {
    out += StrFormat("  complies with %s  [support %u%s]\n",
                     DescribeRule(m.rule).c_str(), m.support,
                     m.static_selected ? "" : ", temporal-only");
  }
  for (const auto& p : evidence.precursors) {
    const RuleEdge& edge = rules_->edge(p.edge);
    if (p.instantiated) {
      out += StrFormat(
          "  preceded by %s (observed %s, timespan %lld, disagreement %u) "
          "[depth %d]\n",
          DescribeRule(edge.head).c_str(),
          DescribeFact(graph_->fact(p.witness)).c_str(),
          static_cast<long long>(p.delta), p.theta, p.depth);
    } else {
      out += StrFormat("  expected precursor %s NOT found [depth %d]\n",
                       DescribeRule(edge.head).c_str(), p.depth);
    }
  }
  for (RuleEdgeId v : evidence.violations) {
    out += "  ORDER VIOLATION: successor pattern " +
           DescribeRule(rules_->edge(v).tail) +
           " already occurred earlier\n";
  }
  return out;
}

std::vector<std::string> Explainer::ConceptualPrompts(
    const Fact& fact) const {
  std::vector<std::string> prompts;
  const auto& subject_cats = categories_->Categories(fact.subject);
  const auto& object_cats = categories_->Categories(fact.object);

  // Same subject category + relation, different object category: suggests
  // revising the object.
  for (RuleId id = 0; id < rules_->num_rules(); ++id) {
    if (!rules_->static_selected(id)) continue;
    const AtomicRule& r = rules_->rule(id);
    const bool cs_match = std::binary_search(
        subject_cats.begin(), subject_cats.end(), r.subject_category);
    const bool co_match = std::binary_search(
        object_cats.begin(), object_cats.end(), r.object_category);
    if (r.relation == fact.relation && cs_match && !co_match) {
      prompts.push_back("object should be a " +
                        DescribeCategory(r.object_category) + " (rule " +
                        DescribeRule(r) + ")");
    } else if (r.relation != fact.relation && cs_match && co_match) {
      prompts.push_back("relation could be '" +
                        graph_->RelationName(r.relation) + "' (rule " +
                        DescribeRule(r) + ")");
    }
    if (prompts.size() >= 8) break;
  }
  return prompts;
}

std::vector<std::string> Explainer::TimePrompts(
    const Fact& fact, const Evidence& evidence) const {
  (void)fact;
  std::vector<std::string> prompts;
  for (const auto& p : evidence.precursors) {
    if (!p.instantiated || p.depth != 0) continue;
    const RuleEdge& edge = rules_->edge(p.edge);
    if (edge.timespans.empty()) continue;
    const Timestamp median =
        edge.timespans[edge.timespans.size() / 2];
    prompts.push_back(StrFormat(
        "should occur ~%lld ticks after %s (observed gap %lld)",
        static_cast<long long>(median), DescribeRule(edge.head).c_str(),
        static_cast<long long>(p.delta)));
  }
  for (RuleEdgeId v : evidence.violations) {
    prompts.push_back("must occur BEFORE " +
                      DescribeRule(rules_->edge(v).tail) +
                      ", which already happened");
  }
  return prompts;
}

std::vector<std::string> Explainer::MissingPrompts(
    const Evidence& evidence) const {
  std::vector<std::string> prompts;
  for (const auto& p : evidence.precursors) {
    if (p.instantiated) continue;
    const RuleEdge& edge = rules_->edge(p.edge);
    prompts.push_back("knowledge matching " + DescribeRule(edge.head) +
                      " may be missing from the TKG");
    if (prompts.size() >= 8) break;
  }
  return prompts;
}

}  // namespace anot
