#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "core/builder.h"
#include "core/explain.h"
#include "core/monitor.h"
#include "core/options.h"
#include "core/scorer.h"
#include "core/updater.h"
#include "mining/category_function.h"
#include "rulegraph/rule_graph.h"
#include "tkg/graph.h"
#include "util/lifetime.h"
#include "util/result.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace anot {

class Checkpoint;

/// \brief How a monitor-triggered refresh executes (§4.5 rebuild).
enum class RefreshMode {
  /// Rebuild inline on the serving thread. The paper's semantics: every
  /// refresh stalls arrivals for one full offline build.
  kSynchronous,
  /// Double-buffered: snapshot the grown TKG, rebuild on a background
  /// thread while the old scorer keeps serving, swap at the next commit
  /// boundary and replay the facts ingested since the snapshot. The
  /// post-swap state is bit-identical to a synchronous Refresh() at the
  /// snapshot point followed by the same ingests (see Refresh contract
  /// below).
  kAsynchronous,
};

/// \brief Top-level AnoT configuration.
struct AnoTOptions {
  DetectorOptions detector;
  UpdaterOptions updater;
  MonitorOptions monitor;
  /// Table 3's "remove updater module" ablation switch.
  bool enable_updater = true;
  /// When true, a refresh runs automatically once the monitor fires,
  /// executed per `refresh_mode`. (The paper disables refresh during
  /// evaluation for fairness, §5.2.)
  bool auto_refresh = false;
  /// Execution mode of monitor-triggered refreshes.
  RefreshMode refresh_mode = RefreshMode::kSynchronous;
  /// Worker threads for the offline construction pipeline (candidate
  /// generation, candidate costing, duration views) *and* the batched
  /// online serving path (ScoreBatch / ProcessArrivalBatch). 0 = one
  /// worker per hardware thread. Built models and batched scores are
  /// bit-identical for every value.
  size_t num_threads = 0;
};

/// \brief The AnoT detector-updater-monitor system (Figure 2).
///
/// Quickstart:
///   AnoT anot = AnoT::Build(offline_tkg, AnoTOptions{});
///   Scores s = anot.Score(fact);                 // detector
///   if (s.static_score < thr_s && s.temporal_score < thr_t)
///     anot.IngestValid(fact);                    // updater + monitor
///   if (anot.monitor().ShouldRefresh()) anot.Refresh();
///
/// The instance owns a private copy of the TKG that grows as knowledge is
/// ingested; the caller's offline graph is never mutated.
class AnoT {
 public:
  /// Offline phase: copies the preserved TKG, builds the category function
  /// and the optimal rule graph (Algorithm 1).
  static AnoT Build(const TemporalKnowledgeGraph& offline,
                    const AnoTOptions& options);

  AnoT(AnoT&&) noexcept;
  AnoT& operator=(AnoT&&) noexcept;
  /// Cancels and joins any in-flight background rebuild.
  ~AnoT();

  /// Detector: Algorithm 2. Does not mutate state.
  Scores Score(const Fact& fact) const;
  Scores ScoreWithEvidence(const Fact& fact, Evidence* evidence) const;

  /// Batched detector: scores `facts` concurrently on the serving pool
  /// (scoring is const over graph/categories/rules) and commits results
  /// in arrival order. Bit-identical to calling Score per fact, for any
  /// AnoTOptions::num_threads. Not safe to call concurrently with itself
  /// or with any mutating member.
  std::vector<Scores> ScoreBatch(const std::vector<Fact>& facts) const;

  /// Full online step: scores, feeds the monitor, and — when the scores
  /// clear the validity thresholds and the updater is enabled — ingests
  /// the knowledge (Algorithm 3). Returns the scores. When `effects` is
  /// non-null, the ingest's counters are *accumulated* into it.
  Scores ProcessArrival(const Fact& fact, UpdateEffects* effects = nullptr);

  /// Micro-batched online step: speculatively scores a window of arrivals
  /// in parallel against the current (frozen) rule graph, then commits
  /// them one by one in arrival order, applying the serial monitor /
  /// threshold / updater / auto-refresh logic per fact. The moment a
  /// commit mutates scoring state (an ingest or a refresh), the remaining
  /// speculative scores are discarded and re-scored against the new state,
  /// so every returned score — and every UpdateEffects counter, refresh
  /// point, and rule-graph mutation — is bit-identical to the sequential
  /// ProcessArrival loop at any num_threads and any batch size. When
  /// `effects` is non-null, all ingest counters are accumulated into it.
  std::vector<Scores> ProcessArrivalBatch(const std::vector<Fact>& batch,
                                          UpdateEffects* effects = nullptr);

  /// Validity thresholds used by ProcessArrival (tuned on validation in
  /// the experiment protocol). Facts with static_score <= static_threshold
  /// and temporal_score <= temporal_threshold are treated as valid.
  void SetValidityThresholds(double static_threshold,
                             double temporal_threshold);

  /// Updater path for knowledge already known to be valid.
  UpdateEffects IngestValid(const Fact& fact);

  /// Rebuilds the category function and rule graph from the current
  /// (grown) TKG and resets the monitor, inline on the calling thread.
  /// Abandons (cancels) any in-flight background rebuild first.
  void Refresh();

  // -- Asynchronous (double-buffered) refresh -------------------------------
  //
  // RefreshAsync() snapshots the grown TKG and rebuilds the category
  // function + rule graph on a background thread while the current scorer
  // keeps serving. Facts ingested after the snapshot are logged; monitor
  // observations after the snapshot are logged too. Once the build is
  // ready, the next ProcessArrival/ProcessArrivalBatch commit boundary
  // (or FinishRefresh) performs the swap:
  //
  //   1. adopt the rebuilt structures (built from the snapshot),
  //   2. replay the logged ingests through a fresh Updater, and
  //   3. reset the monitor to the new budget and replay the logged
  //      observations (the in-flight accounting window is preserved).
  //
  // Determinism contract: the post-swap graph, categories, rule graph,
  // scorer state and refresh_count are bit-identical to calling the
  // synchronous Refresh() at the snapshot point followed by IngestValid
  // of the same logged facts; the post-swap monitor equals a monitor
  // reset to the new budget that then observed the logged window. Inside
  // a batch the swap counts as a state mutation, so speculative scores
  // computed before it are discarded and re-scored — batched serving
  // stays bit-identical to the sequential loop.

  /// Starts a background rebuild; returns immediately. No-op when one is
  /// already in flight or staged (requests coalesce).
  void RefreshAsync();

  /// True from RefreshAsync() until the swap (or abandonment).
  bool refresh_in_flight() const;

  /// True when the background build has finished and the swap will happen
  /// at the next commit boundary.
  bool RefreshReady() const;

  /// Blocks until the in-flight build (if any) is staged. Does NOT swap.
  void WaitForRefreshReady();

  /// Waits for the in-flight build and performs the swap immediately (an
  /// explicit commit boundary: end of stream, quiesce). Returns true when
  /// a swap happened, false when nothing was in flight.
  bool FinishRefresh();

  const TemporalKnowledgeGraph& graph() const ANOT_LIFETIME_BOUND {
    return *graph_;
  }
  const CategoryFunction& categories() const ANOT_LIFETIME_BOUND {
    return *categories_;
  }
  const RuleGraph& rules() const ANOT_LIFETIME_BOUND { return *rules_; }
  const BuildReport& report() const ANOT_LIFETIME_BOUND { return report_; }
  const Monitor& monitor() const ANOT_LIFETIME_BOUND { return *monitor_; }
  const Updater& updater() const ANOT_LIFETIME_BOUND { return *updater_; }
  Explainer MakeExplainer() const;
  const AnoTOptions& options() const ANOT_LIFETIME_BOUND {
    return *options_;
  }
  size_t refresh_count() const { return refresh_count_; }

  /// Debug validator (compiled behind ANOT_VALIDATE, no-op otherwise):
  /// runs CheckInvariants() on the grown TKG, the rule graph, the monitor
  /// and the updater. Call at commit boundaries (between arrivals/batches,
  /// after Refresh/FinishRefresh), never concurrently with mutation.
  void CheckInvariants() const;

  // -- Checkpoint / warm restart (io/checkpoint.h) --------------------------

  /// Serializes the full detector state to a versioned binary checkpoint.
  /// FailedPrecondition while a background refresh is in flight (quiesce
  /// with FinishRefresh() first). Defined in io/checkpoint.cc.
  Status SaveCheckpoint(const std::string& path) const;

  /// Restores a detector saved by SaveCheckpoint. Processing the remaining
  /// stream on the restored instance is bit-identical to never having
  /// restarted (checkpoint_test pins this under the ANOT_THREADS matrix).
  /// Malformed input of every kind returns an error Status.
  static Result<AnoT> LoadCheckpoint(const std::string& path);

 private:
  /// The checkpoint codec reads/writes private state directly; keeping it
  /// a friend (instead of widening the public API with mutable accessors)
  /// preserves the class's "only serving code mutates state" contract.
  friend class Checkpoint;

  /// Out of line (anot.cc): a defaulted inline ctor would instantiate
  /// ~unique_ptr<AsyncRefresh> in TUs where AsyncRefresh is incomplete.
  AnoT();

  /// The rebuildable structures: what an offline build (or a refresh)
  /// produces from a TKG.
  struct BuiltStructures {
    std::unique_ptr<CategoryFunction> categories;
    std::unique_ptr<RuleGraph> rules;
    BuildReport report;
  };

  /// Runs the CategoryFunction + RuleGraphBuilder pipeline on `graph`.
  /// Pure with respect to the AnoT instance, so it can run on a
  /// background thread against a snapshot. When `workers` is null and the
  /// resolved thread count exceeds 1, a transient pool is created for the
  /// category passes. `cancel` aborts between stages (result must then be
  /// discarded).
  static BuiltStructures BuildStructures(const TemporalKnowledgeGraph& graph,
                                         const AnoTOptions& options,
                                         ThreadPool* workers,
                                         const std::atomic<bool>* cancel);

  void Rebuild();
  /// Recreates scorer_ and updater_ against the current structures.
  void RecreateServingObjects();
  /// Fresh monitor adopting report_'s budget and graph_'s universe sizes.
  void ResetMonitorFromReport();

  /// Swaps in the staged background build if one is ready. Returns true
  /// when the swap happened (a scoring-state mutation).
  bool MaybeCompleteRefresh();
  /// Adopt staged structures + replay ingest/observation logs (see the
  /// determinism contract above). Requires a ready staged build.
  void CompleteRefresh();
  /// Cancels and discards any in-flight background build and its logs.
  void AbandonRefresh();

  /// Serial commit step shared by ProcessArrival and the batched path:
  /// monitor observation, validity thresholds, updater ingest, optional
  /// auto-refresh. Returns true when the commit mutated scoring state
  /// (speculative scores computed before it are stale).
  bool CommitArrival(const Fact& fact, const Scores& scores,
                     UpdateEffects* effects);

  /// Scores facts[begin, end) into (*out)[begin, end) on the serving pool.
  void ScoreRangeInto(const std::vector<Fact>& facts, size_t begin,
                      size_t end, std::vector<Scores>* out) const;

  /// Lazily created worker pool for batched serving; nullptr while the
  /// configured thread count resolves to 1. Mutable because scoring is
  /// logically const — the pool is an execution resource, not state.
  ThreadPool* ServingPool() const ANOT_LIFETIME_BOUND;

  /// Heap-allocated so its address survives moves of the AnoT object:
  /// Scorer and Updater capture a pointer to options_->detector, and
  /// Build() returns by value — with an inline member that pointer would
  /// dangle into the moved-from temporary (a latent UB bug that made
  /// scoring read clobbered stack memory after `AnoT x = AnoT::Build(...)`
  /// was moved again, e.g. into std::optional).
  std::unique_ptr<AnoTOptions> options_;
  std::unique_ptr<TemporalKnowledgeGraph> graph_;
  std::unique_ptr<CategoryFunction> categories_;
  std::unique_ptr<RuleGraph> rules_;
  std::unique_ptr<Scorer> scorer_;
  std::unique_ptr<Updater> updater_;
  std::unique_ptr<Monitor> monitor_;
  mutable std::unique_ptr<ThreadPool> serving_pool_;

  /// In-flight double-buffered rebuild (heap-held so the background
  /// thread's pointer survives moves of the AnoT object); nullptr when no
  /// refresh is in flight. Defined in anot.cc; its destructor cancels and
  /// joins the worker.
  struct AsyncRefresh;
  std::unique_ptr<AsyncRefresh> async_;
  /// Facts ingested since the snapshot — replayed through the new updater
  /// at the swap. Serving-thread only.
  std::vector<Fact> refresh_replay_facts_;
  /// Monitor observations since the snapshot — replayed into the reset
  /// monitor at the swap. Serving-thread only.
  std::vector<MonitorObservation> refresh_replay_observations_;

  BuildReport report_;
  double static_threshold_ = 1.0;
  double temporal_threshold_ = 1.0;
  size_t refresh_count_ = 0;
};

}  // namespace anot
