#pragma once

#include <memory>
#include <vector>

#include "core/builder.h"
#include "core/explain.h"
#include "core/monitor.h"
#include "core/options.h"
#include "core/scorer.h"
#include "core/updater.h"
#include "mining/category_function.h"
#include "rulegraph/rule_graph.h"
#include "tkg/graph.h"
#include "util/thread_pool.h"

namespace anot {

/// \brief Top-level AnoT configuration.
struct AnoTOptions {
  DetectorOptions detector;
  UpdaterOptions updater;
  MonitorOptions monitor;
  /// Table 3's "remove updater module" ablation switch.
  bool enable_updater = true;
  /// When true, Refresh() runs automatically once the monitor fires.
  /// (The paper disables refresh during evaluation for fairness, §5.2.)
  bool auto_refresh = false;
  /// Worker threads for the offline construction pipeline (candidate
  /// generation, candidate costing, duration views) *and* the batched
  /// online serving path (ScoreBatch / ProcessArrivalBatch). 0 = one
  /// worker per hardware thread. Built models and batched scores are
  /// bit-identical for every value.
  size_t num_threads = 0;
};

/// \brief The AnoT detector-updater-monitor system (Figure 2).
///
/// Quickstart:
///   AnoT anot = AnoT::Build(offline_tkg, AnoTOptions{});
///   Scores s = anot.Score(fact);                 // detector
///   if (s.static_score < thr_s && s.temporal_score < thr_t)
///     anot.IngestValid(fact);                    // updater + monitor
///   if (anot.monitor().ShouldRefresh()) anot.Refresh();
///
/// The instance owns a private copy of the TKG that grows as knowledge is
/// ingested; the caller's offline graph is never mutated.
class AnoT {
 public:
  /// Offline phase: copies the preserved TKG, builds the category function
  /// and the optimal rule graph (Algorithm 1).
  static AnoT Build(const TemporalKnowledgeGraph& offline,
                    const AnoTOptions& options);

  /// Detector: Algorithm 2. Does not mutate state.
  Scores Score(const Fact& fact) const;
  Scores ScoreWithEvidence(const Fact& fact, Evidence* evidence) const;

  /// Batched detector: scores `facts` concurrently on the serving pool
  /// (scoring is const over graph/categories/rules) and commits results
  /// in arrival order. Bit-identical to calling Score per fact, for any
  /// AnoTOptions::num_threads. Not safe to call concurrently with itself
  /// or with any mutating member.
  std::vector<Scores> ScoreBatch(const std::vector<Fact>& facts) const;

  /// Full online step: scores, feeds the monitor, and — when the scores
  /// clear the validity thresholds and the updater is enabled — ingests
  /// the knowledge (Algorithm 3). Returns the scores. When `effects` is
  /// non-null, the ingest's counters are *accumulated* into it.
  Scores ProcessArrival(const Fact& fact, UpdateEffects* effects = nullptr);

  /// Micro-batched online step: speculatively scores a window of arrivals
  /// in parallel against the current (frozen) rule graph, then commits
  /// them one by one in arrival order, applying the serial monitor /
  /// threshold / updater / auto-refresh logic per fact. The moment a
  /// commit mutates scoring state (an ingest or a refresh), the remaining
  /// speculative scores are discarded and re-scored against the new state,
  /// so every returned score — and every UpdateEffects counter, refresh
  /// point, and rule-graph mutation — is bit-identical to the sequential
  /// ProcessArrival loop at any num_threads and any batch size. When
  /// `effects` is non-null, all ingest counters are accumulated into it.
  std::vector<Scores> ProcessArrivalBatch(const std::vector<Fact>& batch,
                                          UpdateEffects* effects = nullptr);

  /// Validity thresholds used by ProcessArrival (tuned on validation in
  /// the experiment protocol). Facts with static_score <= static_threshold
  /// and temporal_score <= temporal_threshold are treated as valid.
  void SetValidityThresholds(double static_threshold,
                             double temporal_threshold);

  /// Updater path for knowledge already known to be valid.
  UpdateEffects IngestValid(const Fact& fact);

  /// Rebuilds the category function and rule graph from the current
  /// (grown) TKG and resets the monitor.
  void Refresh();

  const TemporalKnowledgeGraph& graph() const { return *graph_; }
  const CategoryFunction& categories() const { return *categories_; }
  const RuleGraph& rules() const { return *rules_; }
  const BuildReport& report() const { return report_; }
  const Monitor& monitor() const { return *monitor_; }
  Explainer MakeExplainer() const;
  const AnoTOptions& options() const { return *options_; }
  size_t refresh_count() const { return refresh_count_; }

 private:
  AnoT() = default;
  void Rebuild();

  /// Serial commit step shared by ProcessArrival and the batched path:
  /// monitor observation, validity thresholds, updater ingest, optional
  /// auto-refresh. Returns true when the commit mutated scoring state
  /// (speculative scores computed before it are stale).
  bool CommitArrival(const Fact& fact, const Scores& scores,
                     UpdateEffects* effects);

  /// Scores facts[begin, end) into (*out)[begin, end) on the serving pool.
  void ScoreRangeInto(const std::vector<Fact>& facts, size_t begin,
                      size_t end, std::vector<Scores>* out) const;

  /// Lazily created worker pool for batched serving; nullptr while the
  /// configured thread count resolves to 1. Mutable because scoring is
  /// logically const — the pool is an execution resource, not state.
  ThreadPool* ServingPool() const;

  /// Heap-allocated so its address survives moves of the AnoT object:
  /// Scorer and Updater capture a pointer to options_->detector, and
  /// Build() returns by value — with an inline member that pointer would
  /// dangle into the moved-from temporary (a latent UB bug that made
  /// scoring read clobbered stack memory after `AnoT x = AnoT::Build(...)`
  /// was moved again, e.g. into std::optional).
  std::unique_ptr<AnoTOptions> options_;
  std::unique_ptr<TemporalKnowledgeGraph> graph_;
  std::unique_ptr<CategoryFunction> categories_;
  std::unique_ptr<RuleGraph> rules_;
  std::unique_ptr<Scorer> scorer_;
  std::unique_ptr<Updater> updater_;
  std::unique_ptr<Monitor> monitor_;
  mutable std::unique_ptr<ThreadPool> serving_pool_;
  BuildReport report_;
  double static_threshold_ = 1.0;
  double temporal_threshold_ = 1.0;
  size_t refresh_count_ = 0;
};

}  // namespace anot
