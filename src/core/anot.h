#pragma once

#include <memory>

#include "core/builder.h"
#include "core/explain.h"
#include "core/monitor.h"
#include "core/options.h"
#include "core/scorer.h"
#include "core/updater.h"
#include "mining/category_function.h"
#include "rulegraph/rule_graph.h"
#include "tkg/graph.h"

namespace anot {

/// \brief Top-level AnoT configuration.
struct AnoTOptions {
  DetectorOptions detector;
  UpdaterOptions updater;
  MonitorOptions monitor;
  /// Table 3's "remove updater module" ablation switch.
  bool enable_updater = true;
  /// When true, Refresh() runs automatically once the monitor fires.
  /// (The paper disables refresh during evaluation for fairness, §5.2.)
  bool auto_refresh = false;
  /// Worker threads for the offline construction pipeline (candidate
  /// generation, candidate costing, duration views). 0 = one worker per
  /// hardware thread. The built model is bit-identical for every value.
  size_t num_threads = 0;
};

/// \brief The AnoT detector-updater-monitor system (Figure 2).
///
/// Quickstart:
///   AnoT anot = AnoT::Build(offline_tkg, AnoTOptions{});
///   Scores s = anot.Score(fact);                 // detector
///   if (s.static_score < thr_s && s.temporal_score < thr_t)
///     anot.IngestValid(fact);                    // updater + monitor
///   if (anot.monitor().ShouldRefresh()) anot.Refresh();
///
/// The instance owns a private copy of the TKG that grows as knowledge is
/// ingested; the caller's offline graph is never mutated.
class AnoT {
 public:
  /// Offline phase: copies the preserved TKG, builds the category function
  /// and the optimal rule graph (Algorithm 1).
  static AnoT Build(const TemporalKnowledgeGraph& offline,
                    const AnoTOptions& options);

  /// Detector: Algorithm 2. Does not mutate state.
  Scores Score(const Fact& fact) const;
  Scores ScoreWithEvidence(const Fact& fact, Evidence* evidence) const;

  /// Full online step: scores, feeds the monitor, and — when the scores
  /// clear the validity thresholds and the updater is enabled — ingests
  /// the knowledge (Algorithm 3). Returns the scores.
  Scores ProcessArrival(const Fact& fact);

  /// Validity thresholds used by ProcessArrival (tuned on validation in
  /// the experiment protocol). Facts with static_score <= static_threshold
  /// and temporal_score <= temporal_threshold are treated as valid.
  void SetValidityThresholds(double static_threshold,
                             double temporal_threshold);

  /// Updater path for knowledge already known to be valid.
  UpdateEffects IngestValid(const Fact& fact);

  /// Rebuilds the category function and rule graph from the current
  /// (grown) TKG and resets the monitor.
  void Refresh();

  const TemporalKnowledgeGraph& graph() const { return *graph_; }
  const CategoryFunction& categories() const { return *categories_; }
  const RuleGraph& rules() const { return *rules_; }
  const BuildReport& report() const { return report_; }
  const Monitor& monitor() const { return *monitor_; }
  Explainer MakeExplainer() const;
  const AnoTOptions& options() const { return *options_; }
  size_t refresh_count() const { return refresh_count_; }

 private:
  AnoT() = default;
  void Rebuild();

  /// Heap-allocated so its address survives moves of the AnoT object:
  /// Scorer and Updater capture a pointer to options_->detector, and
  /// Build() returns by value — with an inline member that pointer would
  /// dangle into the moved-from temporary (a latent UB bug that made
  /// scoring read clobbered stack memory after `AnoT x = AnoT::Build(...)`
  /// was moved again, e.g. into std::optional).
  std::unique_ptr<AnoTOptions> options_;
  std::unique_ptr<TemporalKnowledgeGraph> graph_;
  std::unique_ptr<CategoryFunction> categories_;
  std::unique_ptr<RuleGraph> rules_;
  std::unique_ptr<Scorer> scorer_;
  std::unique_ptr<Updater> updater_;
  std::unique_ptr<Monitor> monitor_;
  BuildReport report_;
  double static_threshold_ = 1.0;
  double temporal_threshold_ = 1.0;
  size_t refresh_count_ = 0;
};

}  // namespace anot
