#include "core/updater.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace anot {

Updater::Updater(TemporalKnowledgeGraph* graph, CategoryFunction* categories,
                 RuleGraph* rules, const DetectorOptions* detector_options,
                 const UpdaterOptions& options)
    : graph_(graph),
      categories_(categories),
      rules_(rules),
      detector_options_(detector_options),
      options_(options),
      scorer_(graph, categories, rules, detector_options) {
  ANOT_CHECK(graph_ && categories_ && rules_);
}

bool Updater::ShouldAdmitRule(const AtomicRule& rule,
                              uint32_t online_support) const {
  if (online_support < options_.new_rule_min_support) return false;
  // Marginal MDL test: the tier-1 savings of the supporting facts must
  // exceed a conservative estimate of the rule's model cost
  // (log2 |C_E| + 2 log2 |E| + log2 |R| + 1 ≈ AtomicRuleBits upper bound).
  (void)rule;
  const double e = std::max<double>(2.0, graph_->num_entities());
  const double r = std::max<double>(2.0, graph_->num_relations());
  const double per_fact_savings = std::log2(e * e * r);
  const double approx_rule_cost =
      std::log2(std::max<double>(2.0, categories_->num_categories())) +
      2.0 * std::log2(e) + std::log2(r) + 1.0;
  return static_cast<double>(online_support) * per_fact_savings >
         approx_rule_cost;
}

uint32_t Updater::TouchPendingRule(const AtomicRule& rule) {
  auto it = pending_rules_.find(rule);
  if (it != pending_rules_.end()) {
    pending_lru_.splice(pending_lru_.begin(), pending_lru_, it->second.lru);
    return ++it->second.support;
  }
  if (pending_rules_.size() >= std::max<size_t>(1, options_.max_pending_rules)) {
    const AtomicRule& coldest = pending_lru_.back();
    pending_rules_.erase(coldest);
    pending_lru_.pop_back();
  }
  pending_lru_.push_front(rule);
  pending_rules_.emplace(rule, PendingRule{1, pending_lru_.begin()});
  return 1;
}

void Updater::ErasePendingRule(const AtomicRule& rule) {
  auto it = pending_rules_.find(rule);
  if (it == pending_rules_.end()) return;
  pending_lru_.erase(it->second.lru);
  pending_rules_.erase(rule);
}

void Updater::CheckInvariants() const {
#ifdef ANOT_VALIDATE
  ANOT_CHECK(pending_rules_.size() == pending_lru_.size())
      << "pending table (" << pending_rules_.size() << ") and LRU list ("
      << pending_lru_.size() << ") diverged";
  ANOT_CHECK(pending_rules_.size() <=
             std::max<size_t>(1, options_.max_pending_rules))
      << "pending table exceeds max_pending_rules cap";
  for (auto it = pending_lru_.begin(); it != pending_lru_.end(); ++it) {
    auto entry = pending_rules_.find(*it);
    ANOT_CHECK(entry != pending_rules_.end())
        << "LRU node missing from the pending table";
    ANOT_CHECK(entry->second.lru == it)
        << "pending entry's LRU iterator does not round-trip";
    ANOT_CHECK(entry->second.support >= 1) << "pending support below 1";
    ANOT_CHECK(!rules_->FindRule(*it).has_value())
        << "rule is both pending and admitted to the rule graph";
  }
#endif  // ANOT_VALIDATE
}

UpdateEffects Updater::Ingest(const Fact& fact) {
  UpdateEffects effects;
  effects.facts_ingested = 1;

  // ---- Entity semantic changes (Alg. 3 lines 4-9) --------------------------
  // Token novelty must be checked before the fact lands in the graph.
  const uint32_t s_token = OutRelationToken(fact.relation);
  const uint32_t o_token = InRelationToken(fact.relation);
  const bool new_s_token =
      graph_->RelationTokens(fact.subject).count(s_token) == 0;
  const bool new_o_token =
      graph_->RelationTokens(fact.object).count(o_token) == 0;

  // ---- Graph structure changes (Alg. 3 line 3) ------------------------------
  const FactId added_fact = graph_->AddFact(fact);
  effects.added_fact = true;

  if (new_s_token) {
    if (categories_->UpdateEntity(fact.subject, s_token, *graph_) !=
        kInvalidId) {
      ++effects.new_entity_categories;
    }
  }
  if (new_o_token) {
    if (categories_->UpdateEntity(fact.object, o_token, *graph_) !=
        kInvalidId) {
      ++effects.new_entity_categories;
    }
  }

  // ---- Graph pattern changes (Alg. 3 lines 10-14) ---------------------------
  const auto& subject_cats = categories_->Categories(fact.subject);
  const auto& object_cats = categories_->Categories(fact.object);
  for (CategoryId cs : subject_cats) {
    for (CategoryId co : object_cats) {
      const AtomicRule rule{cs, fact.relation, co};
      auto existing = rules_->FindRule(rule);
      if (existing.has_value()) {
        // Known pattern: refresh its support (used by Eqs. 9-10).
        rules_->AddSupport(*existing, 1);
        continue;
      }
      const uint32_t support = TouchPendingRule(rule);
      if (!ShouldAdmitRule(rule, support)) continue;
      ErasePendingRule(rule);
      const RuleId added = rules_->AddRule(rule, /*static_selected=*/true);
      rules_->SetSupport(added, support);
      ++effects.new_rule_nodes;

      // Wire chain edges from temporally close facts of the same pair
      // (Alg. 3 lines 13-14; chain-based associations only, §4.4).
      const auto* seq =
          graph_->FactsForPair(fact.subject, fact.object);
      if (seq == nullptr) continue;
      const Timestamp tail_time =
          AnchorTime(fact, detector_options_->tail_anchor);
      // The pair sequence is sorted by (start time, id), so the head gap
      // grows monotonically along the backward scan only when the head
      // anchor is the sort key — always true on point graphs (start ==
      // end), and for kStart anchors on duration graphs. An end-anchored
      // head on a duration graph is not monotone (a long-running earlier
      // fact can end nearer the tail than a later short one), so the scan
      // must cover the full window instead of stopping at the first
      // out-of-tolerance gap.
      const bool gap_monotone =
          !graph_->has_durations() ||
          detector_options_->head_anchor == TimeAnchor::kStart;
      size_t scanned = 0;
      for (auto it = seq->rbegin();
           it != seq->rend() &&
           scanned < detector_options_->max_instantiation_scan;
           ++it, ++scanned) {
        // Skip the instance just appended — but not genuinely distinct
        // earlier occurrences of an identical fact, which are real
        // precursors of a recurring pattern.
        if (*it == added_fact) continue;
        const Fact& prev = graph_->fact(*it);
        const Timestamp head_time =
            AnchorTime(prev, detector_options_->head_anchor);
        if (head_time > tail_time) continue;
        if (tail_time - head_time > detector_options_->timespan_tolerance) {
          if (gap_monotone) break;  // older facts only get farther
          continue;
        }
        const AtomicRule prev_rule{cs, prev.relation, co};
        auto head_id = rules_->FindRule(prev_rule);
        if (!head_id.has_value()) continue;
        RuleEdge edge;
        edge.kind = RuleEdgeKind::kChain;
        edge.head = *head_id;
        edge.tail = added;
        edge.timespans = {tail_time - head_time};
        edge.support = 1;
        rules_->AddEdge(edge);
        ++effects.new_rule_edges;
      }
    }
  }

  // ---- Timespan distribution changes (Alg. 3 line 15) -----------------------
  // The fact is already in the graph here, so exclude it from witness
  // scans by id — value equality would also veto distinct earlier
  // occurrences of an identical recurring fact, which are real witnesses
  // (the same identity-vs-equality contract as the chain scan above).
  for (RuleId mapped : scorer_.MapToRules(fact)) {
    for (RuleEdgeId in_edge : rules_->InEdges(mapped)) {
      auto inst =
          scorer_.TryInstantiate(rules_->edge(in_edge), fact, added_fact);
      if (!inst.has_value()) continue;
      rules_->AddTimespan(in_edge, inst->delta);
      rules_->mutable_edge(in_edge).support += 1;
      ++effects.timespans_recorded;
    }
  }
  return effects;
}

}  // namespace anot
