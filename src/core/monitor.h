#pragma once

#include <vector>

#include "core/options.h"
#include "mdl/ledger.h"
#include "tkg/types.h"

namespace anot {

/// \brief One recorded Observe call: the unit of the monitor handoff the
/// asynchronous refresh swap performs (observations made between the
/// snapshot and the swap are replayed into the reset monitor so the
/// in-flight accounting window is not lost).
struct MonitorObservation {
  Timestamp time = kNoTimestamp;
  bool mapped = false;
  bool associated = false;
};

/// \brief Rule-graph availability monitor (§4.5, Eq. 11).
///
/// Accumulates the negative-error encoding cost L(N_Go) of knowledge that
/// arrived after the offline build and signals a refresh when the rule
/// graph describes unseen data worse than the data it was built on.
class Monitor {
 public:
  /// `training_negative_bits` is the builder's L(N_G); `training_timestamps`
  /// its timestamp count. Universe sizes must match the builder's ledger.
  Monitor(double training_negative_bits, size_t training_timestamps,
          double tier1_universe, double tier2_universe,
          const MonitorOptions& options);

  /// Feeds one observed arrival. Facts are bucketed per timestamp; a
  /// bucket is priced when the stream advances past it (or on Flush).
  void Observe(Timestamp t, bool mapped, bool associated);

  /// Prices any open bucket (call at end of stream).
  void Flush();

  /// Eq. 11 accumulated online negative cost.
  double online_negative_bits() const { return online_bits_; }
  size_t online_timestamps() const { return online_timestamps_; }

  /// True when the refresh condition holds (L(N_Go) > L(N_G), or the
  /// per-timestamp mean exceeds the training mean in kPerTimestamp mode).
  bool ShouldRefresh() const;

  /// Resets the online accumulation after a refresh, adopting the new
  /// training budget.
  void Reset(double training_negative_bits, size_t training_timestamps);

  /// Feeds recorded observations in order (the async-swap handoff: Reset
  /// to the new budget, then Replay the window observed since the
  /// snapshot). Equivalent to calling Observe per entry; the final bucket
  /// is left open exactly as live observation would.
  void Replay(const std::vector<MonitorObservation>& observations);

  /// Debug validator (compiled behind ANOT_VALIDATE, no-op otherwise):
  /// bucket counter coherence (associated <= mapped <= total; a closed
  /// bucket holds zeroed counters, an open one at least one arrival and a
  /// real timestamp) and non-negative accumulated bits.
  /// ANOT_CHECK-fails on the first violation.
  void CheckInvariants() const;

 private:
  /// The checkpoint codec (io/checkpoint.h) persists the pricing-ledger
  /// universes and the accumulation/bucket state directly — the universes
  /// are frozen at build time, so a restore must NOT recompute them from
  /// the (since grown) graph.
  friend class Checkpoint;

  void CloseBucket();

  NegativeErrorLedger pricing_;  // used only for CostAt (stateless pricing)
  MonitorOptions options_;
  double training_bits_;
  size_t training_timestamps_;

  double online_bits_ = 0.0;
  size_t online_timestamps_ = 0;

  bool bucket_open_ = false;
  Timestamp bucket_time_ = kNoTimestamp;
  uint32_t bucket_total_ = 0;
  uint32_t bucket_mapped_ = 0;
  uint32_t bucket_associated_ = 0;
};

}  // namespace anot
