#pragma once

#include <list>

#include "core/options.h"
#include "core/scorer.h"
#include "mining/category_function.h"
#include "rulegraph/rule_graph.h"
#include "tkg/graph.h"
#include "util/containers.h"
#include "util/lifetime.h"

namespace anot {

/// \brief Counters describing what one Ingest call changed (diagnostics).
struct UpdateEffects {
  bool added_fact = false;
  uint32_t new_entity_categories = 0;
  uint32_t new_rule_nodes = 0;
  uint32_t new_rule_edges = 0;
  uint32_t timespans_recorded = 0;
  /// Number of Ingest calls folded into this struct (1 after one Ingest).
  uint32_t facts_ingested = 0;

  /// Folds another ingest's counters into this one — stream/batch totals.
  void Accumulate(const UpdateEffects& other) {
    added_fact |= other.added_fact;
    new_entity_categories += other.new_entity_categories;
    new_rule_nodes += other.new_rule_nodes;
    new_rule_edges += other.new_rule_edges;
    timespans_recorded += other.timespans_recorded;
    facts_ingested += other.facts_ingested;
  }
};

/// \brief Online rule-graph maintenance (§4.4, Algorithm 3).
///
/// For each new *valid* knowledge the updater:
///  1. appends the fact to the TKG (graph structure changes);
///  2. extends the category function when an entity meets a relation it
///     never interacted with (entity semantic changes / new entities);
///  3. admits new atomic rules once an unseen pattern recurs enough to
///     pass the marginal MDL test, then wires chain edges to temporally
///     close facts of the same pair (graph pattern changes);
///  4. appends observed timespans to every in-edge the new knowledge
///     instantiates (timespan distribution changes).
class Updater {
 public:
  Updater(TemporalKnowledgeGraph* graph, CategoryFunction* categories,
          RuleGraph* rules, const DetectorOptions* detector_options,
          const UpdaterOptions& options);

  /// Algorithm 3 for one piece of new valid knowledge.
  UpdateEffects Ingest(const Fact& fact);

  /// Number of patterns currently tracked but not yet admitted. Bounded by
  /// UpdaterOptions::max_pending_rules (diagnostics / tests).
  size_t pending_rule_count() const { return pending_rules_.size(); }

  /// Debug validator (compiled behind ANOT_VALIDATE, no-op otherwise):
  /// pending-rule table and LRU list agree entry for entry (same size,
  /// every list node's stored iterator round-trips, no rule both pending
  /// and admitted), supports >= 1, and the cap is respected.
  /// ANOT_CHECK-fails on the first violation.
  void CheckInvariants() const;

 private:
  /// The checkpoint codec (io/checkpoint.h) saves the pending table in
  /// LRU-list order and rebuilds both containers from it at load.
  friend class Checkpoint;

  /// Marginal MDL admission test for a recurring unseen pattern.
  bool ShouldAdmitRule(const AtomicRule& rule, uint32_t online_support) const;

  /// Bumps (or opens) the pending-support entry for `rule` and returns the
  /// new support count, evicting the least-recently-touched entry when the
  /// table would exceed max_pending_rules.
  uint32_t TouchPendingRule(const AtomicRule& rule);
  void ErasePendingRule(const AtomicRule& rule);

  // anot-own: borrowed from the owning AnoT (or a test caller), which
  // heap-holds graph/categories/rules/options so these borrows survive
  // moves of the owner; AnoT recreates its Updater at every structure
  // swap (RecreateServingObjects).
  not_null<TemporalKnowledgeGraph*> graph_;
  not_null<CategoryFunction*> categories_;
  not_null<RuleGraph*> rules_;
  not_null<const DetectorOptions*> detector_options_;
  UpdaterOptions options_;
  Scorer scorer_;
  /// Online support counts of patterns not (yet) in the rule graph, with
  /// an LRU eviction order (front = most recently touched). Deterministic:
  /// the updater is serial, so touch order is the ingest order.
  struct PendingRule {
    uint32_t support = 0;
    std::list<AtomicRule>::iterator lru;
  };
  dense_map<AtomicRule, PendingRule, AtomicRuleHash> pending_rules_;
  std::list<AtomicRule> pending_lru_;
};

}  // namespace anot
