#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace anot {

/// \brief A frequent itemset discovered by PrefixSpan.
struct FrequentItemset {
  /// Items (directed relation tokens), strictly ascending.
  std::vector<uint32_t> items;
  /// Ids of the transactions (entities) whose item set contains `items`.
  std::vector<uint32_t> owners;

  size_t support() const { return owners.size(); }
};

/// \brief PrefixSpan-style frequent itemset miner (paper §4.3.1).
///
/// The paper feeds each entity's interaction relation set R(e) to
/// PrefixSpan to find frequent relation combinations. Because the inputs
/// are *sets* rendered as ascending sequences, prefix-projected growth
/// enumerates exactly the frequent subsets, capped at `max_length` items
/// (the paper uses up to 3 to balance cost and category granularity).
class PrefixSpan {
 public:
  struct Options {
    /// Minimum number of transactions containing the pattern.
    size_t min_support = 3;
    /// Maximum items per pattern (paper: 3).
    size_t max_length = 3;
    /// Safety cap on emitted patterns; mining stops once reached.
    size_t max_patterns = 200000;
  };

  /// Mines all frequent itemsets from `transactions`. Each transaction
  /// must be sorted ascending with unique items (asserted in debug mode).
  /// Output is in depth-first lexicographic order, deterministic.
  static std::vector<FrequentItemset> Mine(
      const std::vector<std::vector<uint32_t>>& transactions,
      const Options& options);
};

}  // namespace anot
