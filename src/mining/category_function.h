#pragma once

#include <atomic>
#include <string>
#include <unordered_map>
#include <vector>

#include "tkg/graph.h"

namespace anot {

class Checkpoint;
class ThreadPool;

/// \brief Options controlling category-function construction (§4.3.1).
struct CategoryFunctionOptions {
  /// Maximum categories assigned per entity (the paper's hyper-parameter k,
  /// swept over {1, 3, 5, 10} in Figure 9).
  size_t max_categories_per_entity = 3;
  /// Minimum entities sharing a relation combination for it to count.
  size_t min_support = 3;
  /// Maximum relations per mined combination (paper: 3).
  size_t max_combination_size = 3;
  /// Overlap ratio triggering entity-/relation-based aggregation (paper: 0.9).
  double aggregation_overlap = 0.9;
  /// Fixpoint-loop cap for the aggregation passes.
  size_t max_aggregation_rounds = 4;
  /// Only the top combinations by coverage participate in aggregation
  /// (pairwise comparison is quadratic).
  size_t max_aggregation_candidates = 800;
  /// Safety cap on the total number of categories kept.
  size_t max_categories = 50000;
};

/// \brief The category function C(·): entity -> set of implicit categories.
///
/// Categories are frequent relation combinations (directed tokens) mined by
/// PrefixSpan, refined by the paper's entity-based aggregation (combine
/// combinations whose member sets overlap >90% into a finer category) and
/// relation-based aggregation (combine combinations whose relation sets
/// overlap >90% into a more general category), then selected by descending
/// coverage until every entity holds up to k categories.
///
/// The function is *online-updatable*: when a new fact gives an entity a
/// previously unseen relation token, UpdateEntity implements Algorithm 3
/// lines 5-9 (choose the known combination containing the new token with
/// maximal coverage; fall back to a fresh singleton category).
class CategoryFunction {
 public:
  /// Builds C(·) from the offline-preserved part of the TKG. With a worker
  /// pool the token pass and the pairwise aggregation rounds run sharded
  /// (deterministic shard boundaries, merges replayed in scan order), so
  /// the result is bit-identical for every pool size including nullptr —
  /// the same contract as the candidate-generation pipeline.
  ///
  /// `cancel` (optional) is polled between phases — an abandoned
  /// background rebuild sets it to stop burning CPU. Once it reads true
  /// the returned function is INCOMPLETE and must be discarded.
  static CategoryFunction Build(const TemporalKnowledgeGraph& graph,
                                const CategoryFunctionOptions& options,
                                ThreadPool* workers = nullptr,
                                const std::atomic<bool>* cancel = nullptr);

  /// Categories of entity e (ascending ids; empty for unseen entities).
  const std::vector<CategoryId>& Categories(EntityId e) const
      ANOT_LIFETIME_BOUND;

  /// Total number of categories, |C_E|.
  size_t num_categories() const { return categories_.size(); }

  /// The relation-token combination defining category c.
  const std::vector<uint32_t>& Combination(CategoryId c) const
      ANOT_LIFETIME_BOUND;

  /// Entities currently assigned category c.
  const std::vector<EntityId>& Members(CategoryId c) const
      ANOT_LIFETIME_BOUND;

  /// Human-readable rendering, e.g. "host_visit | ~born_in" where "~"
  /// marks the object side of a relation.
  std::string Describe(CategoryId c,
                       const TemporalKnowledgeGraph& graph) const;

  /// Handles entity semantic changes (Algorithm 3): entity e has gained
  /// `new_token`. Picks the known combination containing the token that
  /// covers the most entities and intersects R(e); creates an anonymous
  /// singleton category when none exists. Returns the category assigned,
  /// or kInvalidId when e already carries it.
  CategoryId UpdateEntity(EntityId e, uint32_t new_token,
                          const TemporalKnowledgeGraph& graph);

  const CategoryFunctionOptions& options() const ANOT_LIFETIME_BOUND {
    return options_;
  }

 private:
  /// The checkpoint codec (io/checkpoint.h) restores the mined state
  /// field-by-field; token_index_ is recomputed from categories_ at load.
  friend class Checkpoint;

  struct CategoryInfo {
    std::vector<uint32_t> tokens;   // ascending
    std::vector<EntityId> members;  // ascending
  };

  CategoryId AddCategory(std::vector<uint32_t> tokens,
                         std::vector<EntityId> members);
  void AssignToEntity(EntityId e, CategoryId c);

  CategoryFunctionOptions options_;
  std::vector<CategoryInfo> categories_;
  std::vector<std::vector<CategoryId>> entity_categories_;
  /// token -> categories whose combination contains it (for UpdateEntity).
  std::unordered_map<uint32_t, std::vector<CategoryId>> token_index_;
  /// token -> singleton fallback category, if one was created.
  std::unordered_map<uint32_t, CategoryId> singleton_categories_;
};

}  // namespace anot
