#include "mining/category_function.h"

#include <algorithm>
#include <set>

#include "mining/prefixspan.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace anot {

namespace {

const std::vector<CategoryId> kNoCategories;

/// |a ∩ b| for ascending vectors.
size_t IntersectionSize(const std::vector<uint32_t>& a,
                        const std::vector<uint32_t>& b) {
  size_t i = 0, j = 0, n = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++n;
      ++i;
      ++j;
    }
  }
  return n;
}

std::vector<uint32_t> Union(const std::vector<uint32_t>& a,
                            const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

std::vector<uint32_t> Intersection(const std::vector<uint32_t>& a,
                                   const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

struct ComboCandidate {
  std::vector<uint32_t> tokens;
  std::vector<uint32_t> members;
};

/// Deterministic dedup key for a token set.
uint64_t TokenSetKey(const std::vector<uint32_t>& tokens) {
  uint64_t h = 1469598103934665603ull;
  for (uint32_t t : tokens) {
    h ^= t + 0x9E3779B9u;
    h *= 1099511628211ull;
  }
  return h ^ tokens.size();
}

}  // namespace

CategoryFunction CategoryFunction::Build(
    const TemporalKnowledgeGraph& graph,
    const CategoryFunctionOptions& options, ThreadPool* workers,
    const std::atomic<bool>* cancel) {
  CategoryFunction fn;
  fn.options_ = options;
  fn.entity_categories_.resize(graph.num_entities());
  const auto cancelled = [cancel] {
    return cancel != nullptr && cancel->load(std::memory_order_relaxed);
  };

  // 1. Transactions: each entity's directed relation token set. Entities
  // are independent, so the token pass shards trivially.
  std::vector<std::vector<uint32_t>> transactions(graph.num_entities());
  ParallelForShards(workers, graph.num_entities(),
                    DeterministicShardCount(graph.num_entities()),
                    [&](size_t /*shard*/, size_t begin, size_t end) {
    for (EntityId e = static_cast<EntityId>(begin);
         e < static_cast<EntityId>(end); ++e) {
      const auto& tokens = graph.RelationTokens(e);
      transactions[e].assign(tokens.begin(), tokens.end());
      std::sort(transactions[e].begin(), transactions[e].end());
    }
  });

  if (cancelled()) return fn;

  // 2. Frequent relation combinations via PrefixSpan.
  PrefixSpan::Options ps;
  ps.min_support = options.min_support;
  ps.max_length = options.max_combination_size;
  auto mined = PrefixSpan::Mine(transactions, ps);

  std::vector<ComboCandidate> combos;
  combos.reserve(mined.size());
  for (auto& m : mined) {
    combos.push_back(ComboCandidate{std::move(m.items), std::move(m.owners)});
  }

  // 3. Aggregation passes (paper §4.3.1). Only the widest-coverage
  // combinations participate: pairwise comparison is quadratic.
  std::sort(combos.begin(), combos.end(),
            [](const ComboCandidate& a, const ComboCandidate& b) {
              if (a.members.size() != b.members.size()) {
                return a.members.size() > b.members.size();
              }
              return a.tokens < b.tokens;
            });
  if (combos.size() > options.max_aggregation_candidates) {
    combos.resize(options.max_aggregation_candidates);
  }

  std::set<uint64_t> seen;
  for (const auto& c : combos) seen.insert(TokenSetKey(c.tokens));

  // Each round shards the quadratic pairwise scan over the outer index.
  // Shards only *read* the frozen combo list and `seen` set and record
  // their qualifying merge proposals in (i, j) scan order; the `seen`
  // insertion — the one piece of state the sequential loop mutates
  // mid-scan — is replayed at merge time in shard order, which equals the
  // sequential scan order because shards are contiguous i-ranges. Keys
  // already in the pre-round `seen`, or repeated within one shard, can
  // never survive the replay, so shards filter them out up front (keeps
  // the proposal buffers at the sequential loop's O(unique keys) instead
  // of O(qualifying pairs)). The surviving `added` list is bit-identical
  // for every worker count.
  for (size_t round = 0;
       round < options.max_aggregation_rounds && !cancelled(); ++round) {
    const size_t n = combos.size();
    const size_t num_shards = DeterministicShardCount(n);
    std::vector<std::vector<std::pair<uint64_t, ComboCandidate>>> proposals(
        num_shards);
    ParallelForShards(workers, n, num_shards,
                      [&](size_t shard_idx, size_t begin, size_t end) {
      auto& local = proposals[shard_idx];
      std::set<uint64_t> local_seen;
      auto fresh = [&](uint64_t key) {
        return seen.count(key) == 0 && local_seen.insert(key).second;
      };
      for (size_t i = begin; i < end; ++i) {
        for (size_t j = i + 1; j < n; ++j) {
          const auto& ci = combos[i];
          const auto& cj = combos[j];
          // Entity-based aggregation: members overlap > 90% => the union
          // of relations describes a finer shared category.
          const size_t member_overlap =
              IntersectionSize(ci.members, cj.members);
          const size_t member_min =
              std::min(ci.members.size(), cj.members.size());
          if (member_min > 0 &&
              static_cast<double>(member_overlap) /
                      static_cast<double>(member_min) >
                  options.aggregation_overlap) {
            ComboCandidate merged;
            merged.tokens = Union(ci.tokens, cj.tokens);
            merged.members = Intersection(ci.members, cj.members);
            if (!merged.members.empty() &&
                merged.members.size() >= options.min_support) {
              const uint64_t key = TokenSetKey(merged.tokens);
              if (fresh(key)) local.emplace_back(key, std::move(merged));
            }
            continue;
          }
          // Relation-based aggregation: relation sets overlap > 90% => a
          // more general category over the member union.
          const size_t token_overlap =
              IntersectionSize(ci.tokens, cj.tokens);
          const size_t token_min =
              std::min(ci.tokens.size(), cj.tokens.size());
          if (token_min > 0 &&
              static_cast<double>(token_overlap) /
                      static_cast<double>(token_min) >
                  options.aggregation_overlap) {
            ComboCandidate merged;
            merged.tokens = Intersection(ci.tokens, cj.tokens);
            if (merged.tokens.empty()) continue;
            merged.members = Union(ci.members, cj.members);
            const uint64_t key = TokenSetKey(merged.tokens);
            if (fresh(key)) local.emplace_back(key, std::move(merged));
          }
        }
      }
    });
    std::vector<ComboCandidate> added;
    // Audited for determinism: `proposals` is a vector of per-shard
    // vectors replayed here in fixed shard order, and each shard appended
    // its candidates in deterministic pair-scan order — so first-wins
    // dedup via `seen` admits the same candidates for every thread count.
    for (auto& local : proposals) {
      for (auto& [key, candidate] : local) {
        if (seen.insert(key).second) added.push_back(std::move(candidate));
      }
    }
    if (added.empty()) break;
    for (auto& c : added) combos.push_back(std::move(c));
    if (combos.size() > 4 * options.max_aggregation_candidates) break;
  }

  if (cancelled()) return fn;

  // 4. Selection: descending coverage, assign until each entity carries
  // up to k categories (paper: "select one by one until each entity has
  // at least k categories" — bounded by the available combinations).
  std::sort(combos.begin(), combos.end(),
            [](const ComboCandidate& a, const ComboCandidate& b) {
              if (a.members.size() != b.members.size()) {
                return a.members.size() > b.members.size();
              }
              if (a.tokens.size() != b.tokens.size()) {
                return a.tokens.size() > b.tokens.size();  // finer first
              }
              return a.tokens < b.tokens;
            });

  const size_t k = std::max<size_t>(1, options.max_categories_per_entity);
  for (auto& combo : combos) {
    if (fn.categories_.size() >= options.max_categories) break;
    // Keep only members that still need categories.
    std::vector<EntityId> takers;
    takers.reserve(combo.members.size());
    for (EntityId e : combo.members) {
      if (fn.entity_categories_[e].size() < k) takers.push_back(e);
    }
    if (takers.size() < options.min_support) continue;
    CategoryId c = fn.AddCategory(std::move(combo.tokens), takers);
    for (EntityId e : takers) fn.AssignToEntity(e, c);
  }

  // 5. Fallback: entities with no category yet get a singleton category
  // for their most frequent relation token, guaranteeing total coverage.
  for (EntityId e = 0; e < graph.num_entities(); ++e) {
    if (!fn.entity_categories_[e].empty()) continue;
    const auto& txn = transactions[e];
    if (txn.empty()) continue;  // isolated entity: stays uncategorized
    uint32_t token = txn.front();
    auto it = fn.singleton_categories_.find(token);
    CategoryId c;
    if (it != fn.singleton_categories_.end()) {
      c = it->second;
      fn.categories_[c].members.push_back(e);
      std::sort(fn.categories_[c].members.begin(),
                fn.categories_[c].members.end());
    } else {
      c = fn.AddCategory({token}, {e});
      fn.singleton_categories_[token] = c;
    }
    fn.AssignToEntity(e, c);
  }

  return fn;
}

CategoryId CategoryFunction::AddCategory(std::vector<uint32_t> tokens,
                                         std::vector<EntityId> members) {
  CategoryId id = static_cast<CategoryId>(categories_.size());
  for (uint32_t t : tokens) token_index_[t].push_back(id);
  categories_.push_back(CategoryInfo{std::move(tokens), std::move(members)});
  return id;
}

void CategoryFunction::AssignToEntity(EntityId e, CategoryId c) {
  if (e >= entity_categories_.size()) {
    entity_categories_.resize(e + 1);
  }
  auto& cats = entity_categories_[e];
  auto pos = std::lower_bound(cats.begin(), cats.end(), c);
  if (pos != cats.end() && *pos == c) return;
  cats.insert(pos, c);
}

const std::vector<CategoryId>& CategoryFunction::Categories(
    EntityId e) const {
  if (e >= entity_categories_.size()) return kNoCategories;
  return entity_categories_[e];
}

const std::vector<uint32_t>& CategoryFunction::Combination(
    CategoryId c) const {
  ANOT_CHECK(c < categories_.size());
  return categories_[c].tokens;
}

const std::vector<EntityId>& CategoryFunction::Members(CategoryId c) const {
  ANOT_CHECK(c < categories_.size());
  return categories_[c].members;
}

std::string CategoryFunction::Describe(
    CategoryId c, const TemporalKnowledgeGraph& graph) const {
  ANOT_CHECK(c < categories_.size());
  std::string out;
  for (size_t i = 0; i < categories_[c].tokens.size(); ++i) {
    if (i > 0) out += " | ";
    const uint32_t token = categories_[c].tokens[i];
    if (!IsOutToken(token)) out += "~";
    out += graph.RelationName(TokenRelation(token));
  }
  return out;
}

CategoryId CategoryFunction::UpdateEntity(
    EntityId e, uint32_t new_token, const TemporalKnowledgeGraph& graph) {
  if (e >= entity_categories_.size()) {
    entity_categories_.resize(e + 1);
  }
  // Candidate categories: combinations containing the new token whose
  // relation set intersects R(e) (Algorithm 3 line 7).
  const auto& entity_tokens = graph.RelationTokens(e);
  CategoryId best = kInvalidId;
  size_t best_members = 0;
  auto it = token_index_.find(new_token);
  if (it != token_index_.end()) {
    for (CategoryId c : it->second) {
      const auto& info = categories_[c];
      bool intersects = false;
      for (uint32_t t : info.tokens) {
        if (entity_tokens.count(t) > 0) {
          intersects = true;
          break;
        }
      }
      if (!intersects) continue;
      if (info.members.size() > best_members ||
          (info.members.size() == best_members && c < best)) {
        best = c;
        best_members = info.members.size();
      }
    }
  }
  if (best == kInvalidId) {
    // Anonymous singleton category for the new behaviour.
    auto sit = singleton_categories_.find(new_token);
    if (sit != singleton_categories_.end()) {
      best = sit->second;
    } else {
      best = AddCategory({new_token}, {});
      singleton_categories_[new_token] = best;
    }
  }
  const auto& cats = entity_categories_[e];
  if (std::binary_search(cats.begin(), cats.end(), best)) {
    return kInvalidId;  // already assigned
  }
  AssignToEntity(e, best);
  auto& members = categories_[best].members;
  auto pos = std::lower_bound(members.begin(), members.end(), e);
  if (pos == members.end() || *pos != e) members.insert(pos, e);
  return best;
}

}  // namespace anot
