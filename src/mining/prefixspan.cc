#include "mining/prefixspan.h"

#include <algorithm>
#include <map>

#include "util/logging.h"

namespace anot {

namespace {

/// A projected database entry: transaction id + offset of the suffix.
struct Projection {
  uint32_t transaction;
  uint32_t offset;
};

struct MineContext {
  // anot-own: all three point into PrefixSpan::Mine's frame, which owns
  // the context and every recursive Grow call reading it.
  const std::vector<std::vector<uint32_t>>* transactions;
  // anot-own: same Mine()-frame contract as transactions.
  const PrefixSpan::Options* options;
  // anot-own: same Mine()-frame contract as transactions.
  std::vector<FrequentItemset>* out;
  std::vector<uint32_t> prefix;
};

void Grow(MineContext* ctx, const std::vector<Projection>& projections) {
  if (ctx->out->size() >= ctx->options->max_patterns) return;
  if (ctx->prefix.size() >= ctx->options->max_length) return;

  // Count per-item support within the projected database. Each transaction
  // contributes at most once per item because items are unique in a set.
  std::map<uint32_t, std::vector<Projection>> extensions;
  for (const Projection& p : projections) {
    const auto& txn = (*ctx->transactions)[p.transaction];
    for (uint32_t i = p.offset; i < txn.size(); ++i) {
      extensions[txn[i]].push_back(Projection{p.transaction, i + 1});
    }
  }

  for (const auto& [item, next] : extensions) {
    if (next.size() < ctx->options->min_support) continue;
    if (ctx->out->size() >= ctx->options->max_patterns) return;
    ctx->prefix.push_back(item);
    FrequentItemset pattern;
    pattern.items = ctx->prefix;
    pattern.owners.reserve(next.size());
    for (const Projection& p : next) pattern.owners.push_back(p.transaction);
    ctx->out->push_back(std::move(pattern));
    Grow(ctx, next);
    ctx->prefix.pop_back();
  }
}

}  // namespace

std::vector<FrequentItemset> PrefixSpan::Mine(
    const std::vector<std::vector<uint32_t>>& transactions,
    const Options& options) {
#ifndef NDEBUG
  for (const auto& txn : transactions) {
    ANOT_DCHECK(std::is_sorted(txn.begin(), txn.end()));
    ANOT_DCHECK(std::adjacent_find(txn.begin(), txn.end()) == txn.end());
  }
#endif
  std::vector<FrequentItemset> out;
  std::vector<Projection> root;
  root.reserve(transactions.size());
  for (uint32_t t = 0; t < transactions.size(); ++t) {
    if (!transactions[t].empty()) root.push_back(Projection{t, 0});
  }
  MineContext ctx{&transactions, &options, &out, {}};
  Grow(&ctx, root);
  return out;
}

}  // namespace anot
