#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

#include "util/lifetime.h"
#include "util/random.h"

namespace anot {

/// \brief Dense embedding table with AdaGrad updates.
///
/// The learned baselines need nothing fancier: lookup, accumulate
/// gradient, adaptive step. Rows grow lazily so online streams with new
/// entities do not crash (new rows score near zero until trained).
class EmbeddingTable {
 public:
  EmbeddingTable(size_t rows, size_t dim, double init_scale, Rng* rng);

  size_t dim() const { return dim_; }
  size_t rows() const { return rows_; }

  /// Pointer to the row (grows the table when id >= rows()).
  float* Row(size_t id) ANOT_LIFETIME_BOUND;
  const float* Row(size_t id) const ANOT_LIFETIME_BOUND;

  /// AdaGrad: w -= lr * g / sqrt(acc + eps), acc += g^2.
  void Update(size_t id, const std::vector<float>& grad, float lr);

 private:
  void Grow(size_t rows);

  size_t rows_;
  size_t dim_;
  double init_scale_;
  // anot-own: the baseline model that constructs this table owns the Rng
  // and destroys the table first (member order in the owner).
  Rng* rng_;
  std::vector<float> data_;
  std::vector<float> accum_;
};

inline float Sigmoid(float x) {
  if (x >= 0) {
    const float z = std::exp(-x);
    return 1.0f / (1.0f + z);
  }
  const float z = std::exp(x);
  return z / (1.0f + z);
}

inline float Dot(const float* a, const float* b, size_t dim) {
  float acc = 0;
  for (size_t i = 0; i < dim; ++i) acc += a[i] * b[i];
  return acc;
}

/// \brief Two-layer MLP with tanh hidden units and AdaGrad training
/// (used by the TADDY-lite baseline).
class Mlp {
 public:
  Mlp(size_t in_dim, size_t hidden_dim, uint64_t seed);

  /// Forward pass; returns the logit.
  float Forward(const std::vector<float>& input) const;

  /// One BCE step: label in {0, 1}. Returns the loss.
  float TrainStep(const std::vector<float>& input, float label, float lr);

 private:
  size_t in_dim_;
  size_t hidden_dim_;
  std::vector<float> w1_, b1_, w2_;
  float b2_ = 0;
  std::vector<float> acc_w1_, acc_b1_, acc_w2_;
  float acc_b2_ = 0;
};

}  // namespace anot
