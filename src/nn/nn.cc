#include "nn/nn.h"

#include "util/logging.h"

namespace anot {

EmbeddingTable::EmbeddingTable(size_t rows, size_t dim, double init_scale,
                               Rng* rng)
    : rows_(0), dim_(dim), init_scale_(init_scale), rng_(rng) {
  ANOT_CHECK(dim_ > 0 && rng_ != nullptr);
  Grow(rows);
}

void EmbeddingTable::Grow(size_t rows) {
  if (rows <= rows_) return;
  data_.resize(rows * dim_);
  accum_.resize(rows * dim_, 0.0f);
  for (size_t i = rows_ * dim_; i < rows * dim_; ++i) {
    data_[i] = static_cast<float>((rng_->UniformDouble() * 2.0 - 1.0) *
                                  init_scale_);
  }
  rows_ = rows;
}

float* EmbeddingTable::Row(size_t id) {
  if (id >= rows_) Grow(id + 1);
  return &data_[id * dim_];
}

const float* EmbeddingTable::Row(size_t id) const {
  ANOT_CHECK(id < rows_);
  return &data_[id * dim_];
}

void EmbeddingTable::Update(size_t id, const std::vector<float>& grad,
                            float lr) {
  ANOT_CHECK(grad.size() == dim_);
  if (id >= rows_) Grow(id + 1);
  float* w = &data_[id * dim_];
  float* acc = &accum_[id * dim_];
  for (size_t i = 0; i < dim_; ++i) {
    acc[i] += grad[i] * grad[i];
    w[i] -= lr * grad[i] / std::sqrt(acc[i] + 1e-8f);
  }
}

Mlp::Mlp(size_t in_dim, size_t hidden_dim, uint64_t seed)
    : in_dim_(in_dim), hidden_dim_(hidden_dim) {
  Rng rng(seed);
  auto init = [&](size_t n, double scale) {
    std::vector<float> v(n);
    for (auto& x : v) {
      x = static_cast<float>((rng.UniformDouble() * 2.0 - 1.0) * scale);
    }
    return v;
  };
  const double scale = 1.0 / std::sqrt(static_cast<double>(in_dim));
  w1_ = init(in_dim * hidden_dim, scale);
  b1_.assign(hidden_dim, 0.0f);
  w2_ = init(hidden_dim, 0.5);
  acc_w1_.assign(w1_.size(), 0.0f);
  acc_b1_.assign(b1_.size(), 0.0f);
  acc_w2_.assign(w2_.size(), 0.0f);
}

float Mlp::Forward(const std::vector<float>& input) const {
  ANOT_CHECK(input.size() == in_dim_);
  float logit = b2_;
  for (size_t h = 0; h < hidden_dim_; ++h) {
    float z = b1_[h];
    for (size_t i = 0; i < in_dim_; ++i) {
      z += w1_[h * in_dim_ + i] * input[i];
    }
    logit += w2_[h] * std::tanh(z);
  }
  return logit;
}

float Mlp::TrainStep(const std::vector<float>& input, float label,
                     float lr) {
  ANOT_CHECK(input.size() == in_dim_);
  // Forward with cached activations.
  std::vector<float> hidden(hidden_dim_);
  float logit = b2_;
  for (size_t h = 0; h < hidden_dim_; ++h) {
    float z = b1_[h];
    for (size_t i = 0; i < in_dim_; ++i) {
      z += w1_[h * in_dim_ + i] * input[i];
    }
    hidden[h] = std::tanh(z);
    logit += w2_[h] * hidden[h];
  }
  const float p = Sigmoid(logit);
  const float dlogit = p - label;  // d(BCE)/d(logit)

  auto adagrad = [lr](float* w, float* acc, float g) {
    *acc += g * g;
    *w -= lr * g / std::sqrt(*acc + 1e-8f);
  };
  for (size_t h = 0; h < hidden_dim_; ++h) {
    const float dh = dlogit * w2_[h] * (1.0f - hidden[h] * hidden[h]);
    adagrad(&w2_[h], &acc_w2_[h], dlogit * hidden[h]);
    adagrad(&b1_[h], &acc_b1_[h], dh);
    for (size_t i = 0; i < in_dim_; ++i) {
      adagrad(&w1_[h * in_dim_ + i], &acc_w1_[h * in_dim_ + i],
              dh * input[i]);
    }
  }
  acc_b2_ += dlogit * dlogit;
  b2_ -= lr * dlogit / std::sqrt(acc_b2_ + 1e-8f);

  const float eps = 1e-7f;
  return label > 0.5f ? -std::log(p + eps) : -std::log(1.0f - p + eps);
}

}  // namespace anot
