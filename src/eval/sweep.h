#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "eval/model.h"
#include "eval/protocol.h"
#include "tkg/graph.h"
#include "tkg/split.h"
#include "util/result.h"

namespace anot {

/// \brief One (workload, model) cell of an experiment grid.
///
/// The factory is invoked *inside the cell's own worker task*, so every
/// model — and every per-model RNG — is born, trained, and destroyed
/// within one cell; no mutable state crosses cells. The workload pointers
/// are shared across cells and must stay valid for the duration of
/// RunSweep; cells only ever read them through const methods (the
/// TemporalKnowledgeGraph documents const access as thread-safe).
struct SweepCell {
  /// Builds the cell's model. May fail (e.g. an unknown registry name);
  /// the failure is recorded on the cell without affecting any other.
  std::function<Result<std::unique_ptr<AnomalyModel>>()> factory;
  // anot-own: the workload (graph + split) belongs to the RunSweep caller
  // and must stay valid for the whole sweep — cells only read it through
  // const methods (see the class comment).
  const TemporalKnowledgeGraph* graph = nullptr;
  // anot-own: same RunSweep-caller contract as graph.
  const TimeSplit* split = nullptr;
  ProtocolOptions protocol;
  /// Stamped onto EvalResult::dataset (RunProtocol only knows the model).
  std::string dataset;
  /// Display name for timing/error reporting; the model's own name()
  /// still labels the EvalResult.
  std::string label;
};

/// \brief A full experiment grid plus the worker budget to run it with.
struct SweepSpec {
  std::vector<SweepCell> cells;
  /// Worker count for the sweep pool: 0 = one per hardware thread,
  /// 1 = the reference serial loop on the calling thread. Inner model
  /// parallelism (AnoTOptions::num_threads) is independent of this knob.
  size_t num_threads = 0;
};

/// \brief Outcome of one cell: an EvalResult, or the error that stopped it.
struct SweepCellResult {
  Status status;        ///< non-OK when the factory failed or fit/eval threw
  EvalResult result;    ///< meaningful iff status.ok()
  double cell_seconds = 0.0;  ///< fit + eval wall-clock of this cell
  std::string dataset;  ///< copied from the cell for reporting
  std::string label;    ///< copied from the cell for reporting
};

/// \brief Everything RunSweep measured, cells in declared order.
struct SweepResult {
  std::vector<SweepCellResult> cells;
  double wall_seconds = 0.0;    ///< whole-sweep wall-clock
  double serial_seconds = 0.0;  ///< sum of per-cell wall-clocks
  size_t num_threads = 1;       ///< resolved worker count actually used

  /// EvalResults of the successful cells, in declared cell order.
  std::vector<EvalResult> Results() const;
  size_t num_failed() const;
  /// Serial-equivalent time over wall time (>= ~1 when the pool helps).
  double Speedup() const;
};

/// Fits and scores every cell of the grid, one ThreadPool task per cell.
///
/// Results land in declared cell order whatever the scheduling, and each
/// cell's metrics are byte-identical to running that cell alone on the
/// calling thread: cells share nothing but const workloads, and every
/// source of randomness (model seeds, injector seeds) is owned by the
/// cell. Only the timing fields (fit/test seconds, throughput, latency
/// percentiles, cell_seconds) vary across thread counts.
///
/// A cell whose factory errors or whose fit/eval throws is recorded as
/// failed on its own slot; the remaining cells run to completion.
SweepResult RunSweep(const SweepSpec& spec);

/// Wraps a concrete AnomalyModel constructor into a SweepCell factory,
/// copying the arguments so the cell owns everything it needs.
template <typename ModelT, typename... Args>
std::function<Result<std::unique_ptr<AnomalyModel>>()> ModelFactory(
    Args... args) {
  return [args...]() -> Result<std::unique_ptr<AnomalyModel>> {
    return std::unique_ptr<AnomalyModel>(new ModelT(args...));
  };
}

}  // namespace anot
