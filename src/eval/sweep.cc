#include "eval/sweep.h"

#include <algorithm>
#include <exception>

#include "util/thread_pool.h"
#include "util/timer.h"

namespace anot {

namespace {

/// Runs one cell end to end. Exceptions are converted to a Status here —
/// on a pool worker an escaped exception would be rethrown by Wait() and
/// abort the whole sweep, poisoning the other cells' results.
Status RunCell(const SweepCell& cell, EvalResult* result) {
  if (cell.graph == nullptr || cell.split == nullptr) {
    return Status::InvalidArgument("sweep cell has no workload");
  }
  if (!cell.factory) {
    return Status::InvalidArgument("sweep cell has no model factory");
  }
  try {
    Result<std::unique_ptr<AnomalyModel>> made = cell.factory();
    if (!made.ok()) return made.status();
    std::unique_ptr<AnomalyModel> model = made.MoveValue();
    if (model == nullptr) {
      return Status::Internal("sweep cell factory returned a null model");
    }
    *result = RunProtocol(*cell.graph, *cell.split, model.get(),
                          cell.protocol);
    if (!cell.dataset.empty()) result->dataset = cell.dataset;
    return Status::OK();
  } catch (const std::exception& e) {
    return Status::Internal(std::string("sweep cell threw: ") + e.what());
  } catch (...) {
    return Status::Internal("sweep cell threw a non-std exception");
  }
}

}  // namespace

std::vector<EvalResult> SweepResult::Results() const {
  std::vector<EvalResult> out;
  out.reserve(cells.size());
  for (const SweepCellResult& cell : cells) {
    if (cell.status.ok()) out.push_back(cell.result);
  }
  return out;
}

size_t SweepResult::num_failed() const {
  size_t failed = 0;
  for (const SweepCellResult& cell : cells) failed += !cell.status.ok();
  return failed;
}

double SweepResult::Speedup() const {
  return wall_seconds > 0.0 ? serial_seconds / wall_seconds : 0.0;
}

SweepResult RunSweep(const SweepSpec& spec) {
  SweepResult out;
  out.num_threads = ResolveNumThreads(spec.num_threads);
  out.cells.resize(spec.cells.size());
  WallTimer wall;
  auto run_cell = [&](size_t i) {
    const SweepCell& cell = spec.cells[i];
    SweepCellResult& slot = out.cells[i];
    slot.dataset = cell.dataset;
    slot.label = cell.label;
    WallTimer timer;
    slot.status = RunCell(cell, &slot.result);
    slot.cell_seconds = timer.ElapsedSeconds();
  };
  if (out.num_threads <= 1 || spec.cells.size() <= 1) {
    // Reference serial loop: declared order on the calling thread.
    for (size_t i = 0; i < spec.cells.size(); ++i) run_cell(i);
  } else {
    ThreadPool pool(std::min(out.num_threads, spec.cells.size()));
    for (size_t i = 0; i < spec.cells.size(); ++i) {
      // anot-lint: shared-ok run_cell (and the spec/out it closes over)
      // outlive the tasks — Wait() below joins every cell before this
      // frame returns, and cell i writes only its own out.cells[i] slot
      pool.Submit([&run_cell, i] { run_cell(i); });
    }
    pool.Wait();
  }
  out.wall_seconds = wall.ElapsedSeconds();
  for (const SweepCellResult& cell : out.cells) {
    out.serial_seconds += cell.cell_seconds;
  }
  return out;
}

}  // namespace anot
