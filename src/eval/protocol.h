#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "anomaly/injector.h"
#include "eval/metrics.h"
#include "eval/model.h"
#include "tkg/graph.h"
#include "tkg/split.h"

namespace anot {

/// \brief Per-anomaly-type results: the columns of Table 2.
struct TaskResult {
  double precision = 0.0;
  double f_beta = 0.0;
  double pr_auc = 0.0;
};

/// \brief Full outcome of one (dataset, model) evaluation.
struct EvalResult {
  std::string model;
  std::string dataset;
  TaskResult conceptual;
  TaskResult time;
  TaskResult missing;
  double fit_seconds = 0.0;
  /// Wall-clock of the whole test window — scoring *and* observe-valid
  /// ingest — the latency budget an online deployment actually pays.
  double test_seconds = 0.0;
  /// Test-stream throughput, samples/second (Figures 7-8), measured over
  /// `test_seconds`.
  double throughput = 0.0;
  /// Micro-batch cap the stream was scored with (1 = sequential).
  size_t score_batch_size = 1;
  /// Per-arrival latency over the test window, microseconds. Scoring cost
  /// is attributed as batch wall-clock / batch size; an ObserveValid
  /// ingest (and any refresh stall it triggers) is charged to the
  /// boundary arrival that paid it, so p99/max expose serving stalls that
  /// throughput averages away — the number the async refresh mode exists
  /// to flatten.
  double latency_p50_us = 0.0;
  double latency_p99_us = 0.0;
  double latency_max_us = 0.0;
};

/// \brief The paper's evaluation protocol (§5.1-5.2): 60/10/30 timestamp
/// split, 15% disjoint injection per anomaly type, thresholds tuned by
/// F_0.5 on validation, metrics reported on test.
struct ProtocolOptions {
  double train_fraction = 0.6;
  double val_fraction = 0.1;
  double beta = 0.5;
  InjectorConfig injector;
  /// Feed knowledge scored as valid back to the model between windows
  /// (AnoT's updater; frequency/recency baselines). The paper's rule-graph
  /// refresh stays disabled during evaluation for fairness.
  bool observe_valid = true;
  /// Micro-batch cap for stream scoring. Arrivals flow through
  /// AnomalyModel::ScoreBatch in windows that *end at each fact fed back
  /// via ObserveValid* — the batch boundary is the updater ingest — so
  /// every fact is scored against exactly the model state the sequential
  /// loop would present and all metrics are bit-identical for every value.
  /// 1 = sequential scoring.
  size_t score_batch_size = 64;
};

/// Scores `arrivals` through model->ScoreBatch in micro-batches that end
/// at each fact fed back via ObserveValid (when `observe_valid`), calling
/// `visit(index, scores)` for every arrival in order. The building block
/// of RunProtocol's stream scoring, exposed for harnesses that bucket or
/// aggregate scores themselves (e.g. the Figure 6 updater experiment).
/// When `latencies_us` is non-null, one per-arrival latency sample (see
/// EvalResult) is appended per arrival, in order.
void ForEachScoredArrival(
    const std::vector<LabeledFact>& arrivals, AnomalyModel* model,
    bool observe_valid, size_t batch_size,
    const std::function<void(size_t, const AnomalyModel::TaskScores&)>&
        visit,
    std::vector<double>* latencies_us = nullptr);

/// Runs the protocol for one model over an already generated full TKG.
EvalResult RunProtocol(const TemporalKnowledgeGraph& full,
                       const TimeSplit& split, AnomalyModel* model,
                       const ProtocolOptions& options);

}  // namespace anot
