#pragma once

#include <string>
#include <vector>

#include "anomaly/injector.h"
#include "eval/metrics.h"
#include "eval/model.h"
#include "tkg/graph.h"
#include "tkg/split.h"

namespace anot {

/// \brief Per-anomaly-type results: the columns of Table 2.
struct TaskResult {
  double precision = 0.0;
  double f_beta = 0.0;
  double pr_auc = 0.0;
};

/// \brief Full outcome of one (dataset, model) evaluation.
struct EvalResult {
  std::string model;
  std::string dataset;
  TaskResult conceptual;
  TaskResult time;
  TaskResult missing;
  double fit_seconds = 0.0;
  /// Test-stream scoring throughput, samples/second (Figures 7-8).
  double throughput = 0.0;
};

/// \brief The paper's evaluation protocol (§5.1-5.2): 60/10/30 timestamp
/// split, 15% disjoint injection per anomaly type, thresholds tuned by
/// F_0.5 on validation, metrics reported on test.
struct ProtocolOptions {
  double train_fraction = 0.6;
  double val_fraction = 0.1;
  double beta = 0.5;
  InjectorConfig injector;
  /// Feed knowledge scored as valid back to the model between windows
  /// (AnoT's updater; frequency/recency baselines). The paper's rule-graph
  /// refresh stays disabled during evaluation for fairness.
  bool observe_valid = true;
};

/// Runs the protocol for one model over an already generated full TKG.
EvalResult RunProtocol(const TemporalKnowledgeGraph& full,
                       const TimeSplit& split, AnomalyModel* model,
                       const ProtocolOptions& options);

}  // namespace anot
