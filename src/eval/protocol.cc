#include "eval/protocol.h"

#include "util/logging.h"
#include "util/timer.h"

namespace anot {

namespace {

/// Scores a labeled stream and splits it into the three task rankings.
struct TaskExamples {
  std::vector<ScoredExample> conceptual;
  std::vector<ScoredExample> time;
  std::vector<ScoredExample> missing;
};

TaskExamples ScoreStream(const EvalStream& stream, AnomalyModel* model,
                         bool observe_valid, double* seconds) {
  TaskExamples out;
  WallTimer timer;
  for (const LabeledFact& lf : stream.arrivals) {
    const AnomalyModel::TaskScores s = model->Score(lf.fact);
    // Conceptual task: conceptual anomalies vs everything else arriving.
    out.conceptual.push_back(
        {s.conceptual, lf.label == AnomalyType::kConceptual});
    // Time task: time anomalies vs everything else arriving.
    out.time.push_back({s.time, lf.label == AnomalyType::kTime});
    if (observe_valid && lf.label == AnomalyType::kValid) {
      model->ObserveValid(lf.fact);
    }
  }
  for (const LabeledFact& lf : stream.missing_candidates) {
    const AnomalyModel::TaskScores s = model->Score(lf.fact);
    out.missing.push_back({s.missing, lf.label == AnomalyType::kMissing});
  }
  if (seconds != nullptr) *seconds = timer.ElapsedSeconds();
  return out;
}

TaskResult Evaluate(const std::vector<ScoredExample>& val,
                    const std::vector<ScoredExample>& test, double beta) {
  TaskResult out;
  const ThresholdMetrics tuned = TuneThreshold(val, beta);
  const ThresholdMetrics at =
      MetricsAtThreshold(test, tuned.threshold, beta);
  out.precision = at.precision;
  out.f_beta = at.f_beta;
  out.pr_auc = PrAuc(test);
  return out;
}

}  // namespace

EvalResult RunProtocol(const TemporalKnowledgeGraph& full,
                       const TimeSplit& split, AnomalyModel* model,
                       const ProtocolOptions& options) {
  EvalResult result;
  result.model = model->name();

  // Offline phase.
  auto train = Subgraph(full, split.train);
  WallTimer fit_timer;
  model->Fit(*train);
  result.fit_seconds = fit_timer.ElapsedSeconds();

  // Validation window: tune thresholds, then let the model absorb it.
  InjectorConfig val_injector = options.injector;
  val_injector.seed = options.injector.seed * 2654435761u + 1;
  AnomalyInjector val_inj(val_injector);
  EvalStream val_stream = val_inj.Inject(full, split.val);
  TaskExamples val_examples =
      ScoreStream(val_stream, model, options.observe_valid, nullptr);

  // Test window.
  AnomalyInjector test_inj(options.injector);
  EvalStream test_stream = test_inj.Inject(full, split.test);
  double seconds = 0.0;
  TaskExamples test_examples =
      ScoreStream(test_stream, model, options.observe_valid, &seconds);
  const size_t scored =
      test_stream.arrivals.size() + test_stream.missing_candidates.size();
  result.throughput =
      seconds > 0 ? static_cast<double>(scored) / seconds : 0.0;

  result.conceptual = Evaluate(val_examples.conceptual,
                               test_examples.conceptual, options.beta);
  result.time =
      Evaluate(val_examples.time, test_examples.time, options.beta);
  result.missing = Evaluate(val_examples.missing, test_examples.missing,
                            options.beta);
  return result;
}

}  // namespace anot
