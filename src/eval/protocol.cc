#include "eval/protocol.h"

#include <algorithm>

#include "util/logging.h"
#include "util/timer.h"

namespace anot {

namespace {

/// Scores a labeled stream and splits it into the three task rankings.
struct TaskExamples {
  std::vector<ScoredExample> conceptual;
  std::vector<ScoredExample> time;
  std::vector<ScoredExample> missing;
};

TaskExamples ScoreStream(const EvalStream& stream, AnomalyModel* model,
                         bool observe_valid, size_t batch_size,
                         std::vector<double>* latencies_us = nullptr) {
  TaskExamples out;
  out.conceptual.reserve(stream.arrivals.size());
  out.time.reserve(stream.arrivals.size());
  ForEachScoredArrival(
      stream.arrivals, model, observe_valid, batch_size,
      [&](size_t i, const AnomalyModel::TaskScores& s) {
        const LabeledFact& lf = stream.arrivals[i];
        // Conceptual task: conceptual anomalies vs everything arriving.
        out.conceptual.push_back(
            {s.conceptual, lf.label == AnomalyType::kConceptual});
        // Time task: time anomalies vs everything else arriving.
        out.time.push_back({s.time, lf.label == AnomalyType::kTime});
      },
      latencies_us);
  // Missing candidates never feed back into the model: with observe_valid
  // off the same helper degenerates to plain fixed-size chunks. Their
  // score-only cost is excluded from the per-arrival latency samples —
  // mixing them in would dilute the arrival tail the stats exist to
  // expose.
  out.missing.reserve(stream.missing_candidates.size());
  ForEachScoredArrival(
      stream.missing_candidates, model, /*observe_valid=*/false, batch_size,
      [&](size_t i, const AnomalyModel::TaskScores& s) {
        out.missing.push_back(
            {s.missing,
             stream.missing_candidates[i].label == AnomalyType::kMissing});
      });
  return out;
}

/// Nearest-rank percentile (p in [0, 1]) of an already-sorted sample.
double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const size_t idx = static_cast<size_t>(rank + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

TaskResult Evaluate(const std::vector<ScoredExample>& val,
                    const std::vector<ScoredExample>& test, double beta) {
  TaskResult out;
  const ThresholdMetrics tuned = TuneThreshold(val, beta);
  const ThresholdMetrics at =
      MetricsAtThreshold(test, tuned.threshold, beta);
  out.precision = at.precision;
  out.f_beta = at.f_beta;
  out.pr_auc = PrAuc(test);
  return out;
}

}  // namespace

void ForEachScoredArrival(
    const std::vector<LabeledFact>& arrivals, AnomalyModel* model,
    bool observe_valid, size_t batch_size,
    const std::function<void(size_t, const AnomalyModel::TaskScores&)>&
        visit,
    std::vector<double>* latencies_us) {
  const size_t cap = std::max<size_t>(1, batch_size);
  std::vector<Fact> batch;
  batch.reserve(cap);
  size_t i = 0;
  while (i < arrivals.size()) {
    // Collect up to `cap` facts, cutting the batch at the first fact the
    // protocol will feed back: the next score must see the ingested fact,
    // so the ingest is the batch boundary.
    batch.clear();
    const size_t begin = i;
    bool ends_with_ingest = false;
    while (i < arrivals.size() && batch.size() < cap) {
      const LabeledFact& lf = arrivals[i];
      batch.push_back(lf.fact);
      ++i;
      if (observe_valid && lf.label == AnomalyType::kValid) {
        ends_with_ingest = true;
        break;
      }
    }
    WallTimer score_timer;
    const std::vector<AnomalyModel::TaskScores> scores =
        model->ScoreBatch(batch);
    const double score_us = score_timer.ElapsedSeconds() * 1e6;
    ANOT_CHECK(scores.size() == batch.size());
    for (size_t k = 0; k < batch.size(); ++k) visit(begin + k, scores[k]);
    if (latencies_us != nullptr) {
      // Attribute the batch's scoring wall-clock evenly across its facts.
      const double per_fact_us =
          score_us / static_cast<double>(batch.size());
      for (size_t k = 0; k < batch.size(); ++k) {
        latencies_us->push_back(per_fact_us);
      }
    }
    // The boundary fact was scored against the pre-ingest state (exactly
    // as in the sequential loop, where Score precedes ObserveValid).
    if (ends_with_ingest) {
      WallTimer ingest_timer;
      model->ObserveValid(arrivals[i - 1].fact);
      if (latencies_us != nullptr) {
        // The ingest — and any refresh stall behind it — is latency the
        // boundary arrival paid.
        latencies_us->back() += ingest_timer.ElapsedSeconds() * 1e6;
      }
    }
  }
}

EvalResult RunProtocol(const TemporalKnowledgeGraph& full,
                       const TimeSplit& split, AnomalyModel* model,
                       const ProtocolOptions& options) {
  EvalResult result;
  result.model = model->name();
  result.score_batch_size = std::max<size_t>(1, options.score_batch_size);

  // Offline phase.
  auto train = Subgraph(full, split.train);
  WallTimer fit_timer;
  model->Fit(*train);
  result.fit_seconds = fit_timer.ElapsedSeconds();

  // Validation window: tune thresholds, then let the model absorb it.
  InjectorConfig val_injector = options.injector;
  val_injector.seed = options.injector.seed * 2654435761u + 1;
  AnomalyInjector val_inj(val_injector);
  EvalStream val_stream = val_inj.Inject(full, split.val);
  TaskExamples val_examples = ScoreStream(
      val_stream, model, options.observe_valid, result.score_batch_size);

  // Test window. Throughput is wall-clock over the *whole* window —
  // scoring plus observe-valid ingest — not just the scoring calls: an
  // online deployment pays for both.
  AnomalyInjector test_inj(options.injector);
  EvalStream test_stream = test_inj.Inject(full, split.test);
  WallTimer test_timer;
  std::vector<double> latencies_us;
  TaskExamples test_examples =
      ScoreStream(test_stream, model, options.observe_valid,
                  result.score_batch_size, &latencies_us);
  result.test_seconds = test_timer.ElapsedSeconds();
  const size_t scored =
      test_stream.arrivals.size() + test_stream.missing_candidates.size();
  result.throughput = result.test_seconds > 0
                          ? static_cast<double>(scored) / result.test_seconds
                          : 0.0;
  if (!latencies_us.empty()) {
    std::sort(latencies_us.begin(), latencies_us.end());
    result.latency_p50_us = Percentile(latencies_us, 0.50);
    result.latency_p99_us = Percentile(latencies_us, 0.99);
    result.latency_max_us = latencies_us.back();
  }

  result.conceptual = Evaluate(val_examples.conceptual,
                               test_examples.conceptual, options.beta);
  result.time =
      Evaluate(val_examples.time, test_examples.time, options.beta);
  result.missing = Evaluate(val_examples.missing, test_examples.missing,
                            options.beta);
  return result;
}

}  // namespace anot
