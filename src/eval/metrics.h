#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace anot {

/// \brief A scored binary-classification example: (anomaly score, label).
/// Higher scores must indicate the positive class.
using ScoredExample = std::pair<double, bool>;

/// Area under the precision-recall curve (the paper's "AUC", §5.2),
/// computed by sweeping the ranking. Ties are broken pessimistically by
/// processing equal scores as one block. Returns 0 when no positives.
double PrAuc(std::vector<ScoredExample> examples);

/// F_beta score from counts (paper: beta = 0.5 to emphasize precision).
double FBeta(double precision, double recall, double beta);

struct ThresholdMetrics {
  double threshold = 0.0;
  double precision = 0.0;
  double recall = 0.0;
  double f_beta = 0.0;
};

/// Metrics at a fixed decision threshold (score >= threshold => positive).
ThresholdMetrics MetricsAtThreshold(const std::vector<ScoredExample>& examples,
                                    double threshold, double beta);

/// Picks the threshold maximizing F_beta (validation-set tuning, §5.2).
/// Candidate thresholds are the observed scores.
ThresholdMetrics TuneThreshold(std::vector<ScoredExample> examples,
                               double beta);

}  // namespace anot
