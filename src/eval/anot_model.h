#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/anot.h"
#include "core/duration.h"
#include "eval/model.h"

namespace anot {

/// \brief AnomalyModel adapter around the AnoT system.
///
/// Task mapping (§4.3.4): conceptual task uses the static score, time task
/// the temporal score, missing task the combined support
/// (static + temporal evidence — high support on an absent fact marks a
/// missing error).
class AnoTModel : public AnomalyModel {
 public:
  explicit AnoTModel(const AnoTOptions& options, std::string name = "AnoT")
      : options_(options), name_(std::move(name)) {}

  std::string name() const override { return name_; }

  void Fit(const TemporalKnowledgeGraph& train) override {
    system_.emplace(AnoT::Build(train, options_));
  }

  TaskScores Score(const Fact& fact) override {
    const Scores s = system_->Score(fact);
    return TaskScores{s.static_score, s.temporal_score,
                      s.missing_support()};
  }

  std::vector<TaskScores> ScoreBatch(
      const std::vector<Fact>& facts) override {
    const std::vector<Scores> scores = system_->ScoreBatch(facts);
    std::vector<TaskScores> out;
    out.reserve(scores.size());
    for (const Scores& s : scores) {
      out.push_back(TaskScores{s.static_score, s.temporal_score,
                               s.missing_support()});
    }
    return out;
  }

  void ObserveValid(const Fact& fact) override {
    if (options_.enable_updater) system_->IngestValid(fact);
  }

  const AnoT& system() const ANOT_LIFETIME_BOUND { return *system_; }

 private:
  AnoTOptions options_;
  std::string name_;
  std::optional<AnoT> system_;
};

/// \brief Adapter for the duration-TKG variant (§4.7, Table 7).
class DurationAnoTModel : public AnomalyModel {
 public:
  DurationAnoTModel(const AnoTOptions& options, DurationStrategy strategy,
                    std::string name = "AnoT")
      : options_(options), strategy_(strategy), name_(std::move(name)) {}

  std::string name() const override { return name_; }

  void Fit(const TemporalKnowledgeGraph& train) override {
    system_.emplace(DurationAnoT::Build(train, options_, strategy_));
  }

  TaskScores Score(const Fact& fact) override {
    const Scores s = system_->Score(fact);
    return TaskScores{s.static_score, s.temporal_score,
                      s.missing_support()};
  }

  void ObserveValid(const Fact& fact) override {
    if (options_.enable_updater) system_->IngestValid(fact);
  }

  const DurationAnoT& system() const ANOT_LIFETIME_BOUND {
    return *system_;
  }

 private:
  AnoTOptions options_;
  DurationStrategy strategy_;
  std::string name_;
  std::optional<DurationAnoT> system_;
};

}  // namespace anot
