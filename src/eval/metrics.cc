#include "eval/metrics.h"

#include <algorithm>
#include <cmath>

namespace anot {

double PrAuc(std::vector<ScoredExample> examples) {
  double total_pos = 0;
  for (const auto& [score, label] : examples) total_pos += label;
  if (total_pos == 0 || examples.empty()) return 0.0;

  std::sort(examples.begin(), examples.end(),
            [](const ScoredExample& a, const ScoredExample& b) {
              return a.first > b.first;
            });
  double tp = 0, fp = 0, auc = 0, prev_recall = 0;
  size_t i = 0;
  while (i < examples.size()) {
    // Process blocks of tied scores together.
    size_t j = i;
    while (j < examples.size() && examples[j].first == examples[i].first) {
      if (examples[j].second) ++tp; else ++fp;
      ++j;
    }
    const double recall = tp / total_pos;
    const double precision = tp / (tp + fp);
    auc += precision * (recall - prev_recall);
    prev_recall = recall;
    i = j;
  }
  return auc;
}

double FBeta(double precision, double recall, double beta) {
  const double b2 = beta * beta;
  const double denom = b2 * precision + recall;
  if (denom <= 0.0) return 0.0;
  return (1.0 + b2) * precision * recall / denom;
}

ThresholdMetrics MetricsAtThreshold(
    const std::vector<ScoredExample>& examples, double threshold,
    double beta) {
  double tp = 0, fp = 0, fn = 0;
  for (const auto& [score, label] : examples) {
    const bool predicted = score >= threshold;
    if (predicted && label) ++tp;
    if (predicted && !label) ++fp;
    if (!predicted && label) ++fn;
  }
  ThresholdMetrics out;
  out.threshold = threshold;
  out.precision = (tp + fp) > 0 ? tp / (tp + fp) : 0.0;
  out.recall = (tp + fn) > 0 ? tp / (tp + fn) : 0.0;
  out.f_beta = FBeta(out.precision, out.recall, beta);
  return out;
}

ThresholdMetrics TuneThreshold(std::vector<ScoredExample> examples,
                               double beta) {
  double total_pos = 0;
  for (const auto& [score, label] : examples) total_pos += label;
  if (total_pos == 0 || examples.empty()) return {};

  std::sort(examples.begin(), examples.end(),
            [](const ScoredExample& a, const ScoredExample& b) {
              return a.first > b.first;
            });
  // Sweep thresholds at block boundaries; the prefix [0, i) is predicted
  // positive when the threshold equals examples[i-1].first.
  ThresholdMetrics best;
  double tp = 0, fp = 0;
  size_t i = 0;
  while (i < examples.size()) {
    size_t j = i;
    while (j < examples.size() && examples[j].first == examples[i].first) {
      if (examples[j].second) ++tp; else ++fp;
      ++j;
    }
    const double precision = tp / (tp + fp);
    const double recall = tp / total_pos;
    const double f = FBeta(precision, recall, beta);
    if (f > best.f_beta) {
      best.threshold = examples[i].first;
      best.precision = precision;
      best.recall = recall;
      best.f_beta = f;
    }
    i = j;
  }
  return best;
}

}  // namespace anot
