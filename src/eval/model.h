#pragma once

#include <string>
#include <vector>

#include "tkg/graph.h"

namespace anot {

/// \brief Common interface for every anomaly detector in the benchmark
/// (AnoT and all nine baselines).
///
/// Scores are anomaly scores: higher = more anomalous — except `missing`,
/// which is a *plausibility/support* score where higher = more likely a
/// genuinely missing valid fact (§4.3.4: low static and time scores mark
/// missing errors).
class AnomalyModel {
 public:
  virtual ~AnomalyModel() = default;

  virtual std::string name() const = 0;

  /// Offline phase on the preserved TKG.
  virtual void Fit(const TemporalKnowledgeGraph& train) = 0;

  struct TaskScores {
    double conceptual = 0.0;
    double time = 0.0;
    double missing = 0.0;
  };

  /// Scores one arriving (or candidate) piece of knowledge.
  virtual TaskScores Score(const Fact& fact) = 0;

  /// Scores a micro-batch of arrivals, committing results in arrival
  /// order. The protocol guarantees no ObserveValid lands between the
  /// facts of one batch, so models whose Score is const over model state
  /// (AnoT) may score the window concurrently; the default just loops —
  /// baselines whose Score mutates state keep their sequential semantics.
  /// Either way the returned scores are identical to per-fact Score calls.
  virtual std::vector<TaskScores> ScoreBatch(const std::vector<Fact>& facts) {
    std::vector<TaskScores> out;
    out.reserve(facts.size());
    for (const Fact& f : facts) out.push_back(Score(f));
    return out;
  }

  /// Online hook: knowledge accepted as valid. Models that cannot adapt
  /// online (the fixed-vector embedding baselines) ignore it.
  virtual void ObserveValid(const Fact& fact) { (void)fact; }
};

}  // namespace anot
