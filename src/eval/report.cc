#include "eval/report.h"

#include <algorithm>
#include <map>

#include "eval/sweep.h"
#include "util/string_util.h"

namespace anot {

std::string Reporter::RenderTable(
    const std::vector<std::string>& header,
    const std::vector<std::vector<std::string>>& rows) {
  std::vector<size_t> widths(header.size(), 0);
  for (size_t c = 0; c < header.size(); ++c) widths[c] = header[c].size();
  for (const auto& row : rows) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string out = "|";
    for (size_t c = 0; c < widths.size(); ++c) {
      std::string cell = c < row.size() ? row[c] : "";
      cell.resize(widths[c], ' ');
      out += " " + cell + " |";
    }
    return out + "\n";
  };
  std::string out = render_row(header);
  std::string sep = "|";
  for (size_t c = 0; c < widths.size(); ++c) {
    sep += std::string(widths[c] + 2, '-') + "|";
  }
  out += sep + "\n";
  for (const auto& row : rows) out += render_row(row);
  return out;
}

std::string Reporter::RenderComparison(
    const std::vector<EvalResult>& results) {
  // Group by dataset, preserving first-seen order.
  std::vector<std::string> datasets;
  for (const auto& r : results) {
    if (std::find(datasets.begin(), datasets.end(), r.dataset) ==
        datasets.end()) {
      datasets.push_back(r.dataset);
    }
  }
  std::string out;
  for (const auto& dataset : datasets) {
    out += "== " + dataset + " ==\n";
    std::vector<std::vector<std::string>> rows;
    for (const auto& r : results) {
      if (r.dataset != dataset) continue;
      auto add = [&](const char* task, const TaskResult& t) {
        rows.push_back({r.model, task, FormatDouble(t.precision, 3),
                        FormatDouble(t.f_beta, 3),
                        FormatDouble(t.pr_auc, 3)});
      };
      add("conceptual", r.conceptual);
      add("time", r.time);
      add("missing", r.missing);
    }
    out += RenderTable({"model", "anomaly", "precision", "F0.5", "AUC"},
                       rows);
    out += "\n";
  }
  return out;
}

std::string Reporter::RenderSweepTiming(const SweepResult& sweep) {
  std::vector<std::vector<std::string>> rows;
  for (const SweepCellResult& cell : sweep.cells) {
    rows.push_back(
        {cell.dataset, cell.label,
         cell.status.ok() ? "ok" : cell.status.ToString(),
         FormatDouble(cell.result.fit_seconds, 2),
         FormatDouble(cell.result.test_seconds, 2),
         FormatDouble(cell.cell_seconds, 2)});
  }
  std::string out = RenderTable(
      {"dataset", "cell", "status", "fit_s", "test_s", "cell_s"}, rows);
  out += StrFormat(
      "sweep: %zu cells (%zu failed) on %zu workers, wall %.2fs, "
      "serial-equivalent %.2fs, speedup %.2fx\n",
      sweep.cells.size(), sweep.num_failed(), sweep.num_threads,
      sweep.wall_seconds, sweep.serial_seconds, sweep.Speedup());
  return out;
}

std::string Reporter::RenderTiming(const std::vector<EvalResult>& results) {
  std::vector<std::vector<std::string>> rows;
  for (const auto& r : results) {
    rows.push_back({r.dataset, r.model, FormatDouble(r.fit_seconds, 2),
                    FormatDouble(r.test_seconds, 2),
                    FormatDouble(r.throughput, 0),
                    FormatDouble(r.latency_p50_us, 1),
                    FormatDouble(r.latency_p99_us, 1),
                    FormatDouble(r.latency_max_us, 1)});
  }
  return RenderTable({"dataset", "model", "fit_s", "test_s", "samples/s",
                      "p50_us", "p99_us", "max_us"},
                     rows);
}

}  // namespace anot
