#pragma once

#include <string>
#include <vector>

#include "eval/protocol.h"

namespace anot {

struct SweepResult;

/// \brief Plain-text table rendering for the experiment harnesses.
class Reporter {
 public:
  /// One Table-2-style block: rows = model x anomaly type, columns =
  /// Precision / F_beta / AUC per dataset.
  static std::string RenderComparison(
      const std::vector<EvalResult>& results);

  /// Serving-cost block: fit/test wall-clock, throughput and the
  /// per-arrival latency tail (p50/p99/max, test window) per run.
  static std::string RenderTiming(const std::vector<EvalResult>& results);

  /// Per-cell fit/eval wall-clock of a sweep plus a footer with the
  /// whole-grid wall time, serial-equivalent time, and speedup. Timing
  /// only — the metric tables come from RenderComparison and are
  /// byte-identical across worker counts; this block is not.
  static std::string RenderSweepTiming(const SweepResult& sweep);

  /// Simple aligned table given header + rows.
  static std::string RenderTable(
      const std::vector<std::string>& header,
      const std::vector<std::vector<std::string>>& rows);
};

}  // namespace anot
