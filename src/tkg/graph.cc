#include "tkg/graph.h"

#include <algorithm>

#include "util/logging.h"

namespace anot {

namespace {
const std::vector<FactId> kEmptyFactList;
const std::unordered_set<uint32_t> kEmptyTokenSet;
}  // namespace

void TemporalKnowledgeGraph::InsertSortedByTime(std::vector<FactId>* list,
                                                FactId id) {
  // Streaming appends arrive in (mostly) ascending time order, so the
  // common case is push_back; out-of-order facts pay a short backward scan.
  const Timestamp t = facts_[id].time;
  if (list->empty() || facts_[list->back()].time <= t) {
    list->push_back(id);
    return;
  }
  auto pos = std::upper_bound(
      list->begin(), list->end(), t,
      [this](Timestamp lhs, FactId rhs) { return lhs < facts_[rhs].time; });
  list->insert(pos, id);
}

FactId TemporalKnowledgeGraph::AddFact(const Fact& fact) {
  ANOT_CHECK(fact.subject != kInvalidId && fact.object != kInvalidId &&
             fact.relation != kInvalidId)
      << "AddFact requires valid ids";
  ANOT_CHECK(fact.end >= fact.time)
      << "fact end time precedes start time";

  const FactId id = static_cast<FactId>(facts_.size());
  facts_.push_back(fact);

  num_entities_ = std::max(
      num_entities_,
      static_cast<size_t>(std::max(fact.subject, fact.object)) + 1);
  num_relations_ =
      std::max(num_relations_, static_cast<size_t>(fact.relation) + 1);
  if (fact.end != fact.time) has_durations_ = true;
  if (min_time_ == kNoTimestamp || fact.time < min_time_) {
    min_time_ = fact.time;
  }
  if (max_time_ == kNoTimestamp || fact.time > max_time_) {
    max_time_ = fact.time;
  }

  by_time_[fact.time].push_back(id);
  InsertSortedByTime(&pair_index_[PairKey(fact.subject, fact.object)], id);
  InsertSortedByTime(&subject_index_[fact.subject], id);
  InsertSortedByTime(&object_index_[fact.object], id);

  if (relation_tokens_.size() < num_entities_) {
    relation_tokens_.resize(num_entities_);
  }
  relation_tokens_[fact.subject].insert(OutRelationToken(fact.relation));
  relation_tokens_[fact.object].insert(InRelationToken(fact.relation));

  ++triple_counts_[Triple{fact.subject, fact.relation, fact.object}];
  fact_set_.insert(fact);
  return id;
}

FactId TemporalKnowledgeGraph::AddFact(std::string_view subject,
                                       std::string_view relation,
                                       std::string_view object,
                                       Timestamp time) {
  return AddFact(subject, relation, object, time, time);
}

FactId TemporalKnowledgeGraph::AddFact(std::string_view subject,
                                       std::string_view relation,
                                       std::string_view object,
                                       Timestamp start, Timestamp end) {
  const EntityId s = entity_dict_.GetOrAdd(subject);
  const RelationId r = relation_dict_.GetOrAdd(relation);
  const EntityId o = entity_dict_.GetOrAdd(object);
  return AddFact(Fact(s, r, o, start, end));
}

const std::vector<FactId>& TemporalKnowledgeGraph::FactsAt(
    Timestamp t) const {
  auto it = by_time_.find(t);
  return it == by_time_.end() ? kEmptyFactList : it->second;
}

const std::vector<FactId>* TemporalKnowledgeGraph::FactsForPair(
    EntityId s, EntityId o) const {
  auto it = pair_index_.find(PairKey(s, o));
  return it == pair_index_.end() ? nullptr : &it->second;
}

const std::vector<FactId>* TemporalKnowledgeGraph::FactsBySubject(
    EntityId e) const {
  auto it = subject_index_.find(e);
  return it == subject_index_.end() ? nullptr : &it->second;
}

const std::vector<FactId>* TemporalKnowledgeGraph::FactsByObject(
    EntityId e) const {
  auto it = object_index_.find(e);
  return it == object_index_.end() ? nullptr : &it->second;
}

const std::unordered_set<uint32_t>& TemporalKnowledgeGraph::RelationTokens(
    EntityId e) const {
  if (e >= relation_tokens_.size()) return kEmptyTokenSet;
  return relation_tokens_[e];
}

bool TemporalKnowledgeGraph::Contains(const Fact& fact) const {
  return fact_set_.count(fact) > 0;
}

bool TemporalKnowledgeGraph::ContainsTriple(EntityId s, RelationId r,
                                            EntityId o) const {
  return triple_counts_.count(Triple{s, r, o}) > 0;
}

uint32_t TemporalKnowledgeGraph::TripleCount(EntityId s, RelationId r,
                                             EntityId o) const {
  auto it = triple_counts_.find(Triple{s, r, o});
  return it == triple_counts_.end() ? 0 : it->second;
}

std::string TemporalKnowledgeGraph::EntityName(EntityId e) const {
  if (e < entity_dict_.size()) return entity_dict_.Name(e);
  return "E" + std::to_string(e);
}

std::string TemporalKnowledgeGraph::RelationName(RelationId r) const {
  if (r < relation_dict_.size()) return relation_dict_.Name(r);
  return "R" + std::to_string(r);
}

}  // namespace anot
