#include "tkg/graph.h"

#include <algorithm>

#include "util/logging.h"

namespace anot {

namespace {
const std::vector<FactId> kEmptyFactList;
const TemporalKnowledgeGraph::TokenSet kEmptyTokenSet;
}  // namespace

void TemporalKnowledgeGraph::InsertSortedByTime(std::vector<FactId>* list,
                                                FactId id) {
  // Streaming appends arrive in (mostly) ascending time order, so the
  // common case is push_back; out-of-order facts pay a short backward scan.
  const Timestamp t = facts_[id].time;
  if (list->empty() || facts_[list->back()].time <= t) {
    list->push_back(id);
    return;
  }
  auto pos = std::upper_bound(
      list->begin(), list->end(), t,
      [this](Timestamp lhs, FactId rhs) { return lhs < facts_[rhs].time; });
  list->insert(pos, id);
}

FactId TemporalKnowledgeGraph::AddFact(const Fact& fact) {
  ANOT_CHECK(fact.subject != kInvalidId && fact.object != kInvalidId &&
             fact.relation != kInvalidId)
      << "AddFact requires valid ids";
  ANOT_CHECK(fact.end >= fact.time)
      << "fact end time precedes start time";

  const FactId id = static_cast<FactId>(facts_.size());
  facts_.push_back(fact);

  num_entities_ = std::max(
      num_entities_,
      static_cast<size_t>(std::max(fact.subject, fact.object)) + 1);
  num_relations_ =
      std::max(num_relations_, static_cast<size_t>(fact.relation) + 1);
  if (fact.end != fact.time) has_durations_ = true;
  if (min_time_ == kNoTimestamp || fact.time < min_time_) {
    min_time_ = fact.time;
  }
  if (max_time_ == kNoTimestamp || fact.time > max_time_) {
    max_time_ = fact.time;
  }

  by_time_[fact.time].push_back(id);
  InsertSortedByTime(&pair_index_[PairKey(fact.subject, fact.object)], id);
  InsertSortedByTime(&subject_index_[fact.subject], id);
  InsertSortedByTime(&object_index_[fact.object], id);

  if (relation_tokens_.size() < num_entities_) {
    relation_tokens_.resize(num_entities_);
  }
  relation_tokens_[fact.subject].insert(OutRelationToken(fact.relation));
  relation_tokens_[fact.object].insert(InRelationToken(fact.relation));

  ++triple_counts_[Triple{fact.subject, fact.relation, fact.object}];
  fact_set_.insert(fact);
  return id;
}

FactId TemporalKnowledgeGraph::AddFact(std::string_view subject,
                                       std::string_view relation,
                                       std::string_view object,
                                       Timestamp time) {
  return AddFact(subject, relation, object, time, time);
}

FactId TemporalKnowledgeGraph::AddFact(std::string_view subject,
                                       std::string_view relation,
                                       std::string_view object,
                                       Timestamp start, Timestamp end) {
  const EntityId s = entity_dict_.GetOrAdd(subject);
  const RelationId r = relation_dict_.GetOrAdd(relation);
  const EntityId o = entity_dict_.GetOrAdd(object);
  return AddFact(Fact(s, r, o, start, end));
}

const std::vector<FactId>& TemporalKnowledgeGraph::FactsAt(
    Timestamp t) const {
  auto it = by_time_.find(t);
  return it == by_time_.end() ? kEmptyFactList : it->second;
}

const std::vector<FactId>* TemporalKnowledgeGraph::FactsForPair(
    EntityId s, EntityId o) const {
  auto it = pair_index_.find(PairKey(s, o));
  return it == pair_index_.end() ? nullptr : &it->second;
}

const std::vector<FactId>* TemporalKnowledgeGraph::FactsBySubject(
    EntityId e) const {
  auto it = subject_index_.find(e);
  return it == subject_index_.end() ? nullptr : &it->second;
}

const std::vector<FactId>* TemporalKnowledgeGraph::FactsByObject(
    EntityId e) const {
  auto it = object_index_.find(e);
  return it == object_index_.end() ? nullptr : &it->second;
}

const TemporalKnowledgeGraph::TokenSet& TemporalKnowledgeGraph::RelationTokens(
    EntityId e) const {
  if (e >= relation_tokens_.size()) return kEmptyTokenSet;
  return relation_tokens_[e];
}

bool TemporalKnowledgeGraph::Contains(const Fact& fact) const {
  return fact_set_.count(fact) > 0;
}

bool TemporalKnowledgeGraph::ContainsTriple(EntityId s, RelationId r,
                                            EntityId o) const {
  return triple_counts_.count(Triple{s, r, o}) > 0;
}

uint32_t TemporalKnowledgeGraph::TripleCount(EntityId s, RelationId r,
                                             EntityId o) const {
  auto it = triple_counts_.find(Triple{s, r, o});
  return it == triple_counts_.end() ? 0 : it->second;
}

void TemporalKnowledgeGraph::Reserve(size_t expected_facts) {
  facts_.reserve(expected_facts);
  // Distinct facts / triples can approach the fact count, so their tables
  // get the full bound (zero rehashes during the load).
  fact_set_.reserve(expected_facts);
  triple_counts_.reserve(expected_facts);
  // Distinct pairs and entities sit well below the fact count on every
  // real TKG; heuristic pre-sizes absorb most growth without committing
  // a fact-count slot array per index (growth still works past them).
  pair_index_.reserve(expected_facts / 2 + 1);
  subject_index_.reserve(expected_facts / 8 + 1);
  object_index_.reserve(expected_facts / 8 + 1);
}

std::string TemporalKnowledgeGraph::EntityName(EntityId e) const {
  if (e < entity_dict_.size()) return entity_dict_.Name(e);
  return "E" + std::to_string(e);
}

std::string TemporalKnowledgeGraph::RelationName(RelationId r) const {
  if (r < relation_dict_.size()) return relation_dict_.Name(r);
  return "R" + std::to_string(r);
}

void TemporalKnowledgeGraph::CheckInvariants() const {
#ifdef ANOT_VALIDATE
  // Recompute every secondary index from the primary fact store and demand
  // exact agreement. AddFact maintains all of them incrementally; any
  // divergence means a mutation corrupted an index.
  size_t want_entities = 0;
  size_t want_relations = 0;
  bool want_durations = false;
  Timestamp want_min = kNoTimestamp;
  Timestamp want_max = kNoTimestamp;
  std::map<Timestamp, std::vector<FactId>> want_by_time;
  dense_map<uint64_t, std::vector<FactId>> want_pairs;
  dense_map<EntityId, std::vector<FactId>> want_subjects;
  dense_map<EntityId, std::vector<FactId>> want_objects;
  dense_map<Triple, uint32_t, TripleHash> want_triples;

  for (FactId id = 0; id < facts_.size(); ++id) {
    const Fact& f = facts_[id];
    ANOT_CHECK(f.subject != kInvalidId && f.relation != kInvalidId &&
               f.object != kInvalidId)
        << "fact " << id << " carries invalid ids";
    ANOT_CHECK(f.end >= f.time) << "fact " << id << " ends before it starts";
    want_entities = std::max(
        want_entities,
        static_cast<size_t>(std::max(f.subject, f.object)) + 1);
    want_relations =
        std::max(want_relations, static_cast<size_t>(f.relation) + 1);
    if (f.end != f.time) want_durations = true;
    if (want_min == kNoTimestamp || f.time < want_min) want_min = f.time;
    if (want_max == kNoTimestamp || f.time > want_max) want_max = f.time;
    want_by_time[f.time].push_back(id);
    want_pairs[PairKey(f.subject, f.object)].push_back(id);
    want_subjects[f.subject].push_back(id);
    want_objects[f.object].push_back(id);
    ++want_triples[Triple{f.subject, f.relation, f.object}];
    ANOT_CHECK(fact_set_.count(f) > 0)
        << "fact " << id << " missing from the membership set";
  }
  ANOT_CHECK(num_entities_ == want_entities) << "entity universe diverged";
  ANOT_CHECK(num_relations_ == want_relations)
      << "relation universe diverged";
  ANOT_CHECK(has_durations_ == want_durations) << "duration flag diverged";
  ANOT_CHECK(min_time_ == want_min && max_time_ == want_max)
      << "time bounds diverged";

  // by_time_ buckets are push_back'd in arrival (= id) order, exactly how
  // the recompute appends them; the pair/role lists are stably sorted by
  // (time, id), so sort the recomputed lists the same way before the exact
  // comparison — equality then covers content and order at once.
  ANOT_CHECK(by_time_ == want_by_time) << "by-time index diverged";
  auto sort_by_time_id = [this](std::vector<FactId>* list) {
    std::sort(list->begin(), list->end(), [this](FactId a, FactId b) {
      if (facts_[a].time != facts_[b].time) {
        return facts_[a].time < facts_[b].time;
      }
      return a < b;
    });
  };
  // anot-lint: ordered-ok validation only: each bucket is sorted in place
  // independently; no cross-bucket state accumulates
  for (auto& [key, list] : want_pairs) {
    (void)key;
    sort_by_time_id(&list);
  }
  // anot-lint: ordered-ok validation only: per-bucket in-place sort,
  // order-independent
  for (auto& [e, list] : want_subjects) {
    (void)e;
    sort_by_time_id(&list);
  }
  // anot-lint: ordered-ok validation only: per-bucket in-place sort,
  // order-independent
  for (auto& [e, list] : want_objects) {
    (void)e;
    sort_by_time_id(&list);
  }
  auto check_sorted_lists =
      [this](const dense_map<uint64_t, std::vector<FactId>>& got,
             const char* what) {
        // anot-lint: ordered-ok validation only: each bucket's sortedness
        // check is independent of every other bucket
        for (const auto& [key, list] : got) {
          (void)key;
          ANOT_CHECK(!list.empty()) << what << " holds an empty bucket";
          for (size_t i = 1; i < list.size(); ++i) {
            const Fact& a = facts_[list[i - 1]];
            const Fact& b = facts_[list[i]];
            ANOT_CHECK(a.time < b.time ||
                       (a.time == b.time && list[i - 1] < list[i]))
                << what << " bucket not sorted by (time, id)";
          }
        }
      };
  check_sorted_lists(pair_index_, "pair index");
  ANOT_CHECK(pair_index_.size() == want_pairs.size() &&
             [&] {
               // anot-lint: ordered-ok validation only: per-key lookup and
               // compare, conjunction over all keys is order-independent
               for (const auto& [key, list] : want_pairs) {
                 auto it = pair_index_.find(key);
                 if (it == pair_index_.end() || it->second != list) {
                   return false;
                 }
               }
               return true;
             }())
      << "pair index diverged";
  auto check_role_index =
      [](const dense_map<EntityId, std::vector<FactId>>& got,
         const dense_map<EntityId, std::vector<FactId>>& want,
         const char* what) {
        ANOT_CHECK(got.size() == want.size()) << what << " size diverged";
        // anot-lint: ordered-ok validation only: per-entity lookup and
        // compare, order-independent
        for (const auto& [e, list] : want) {
          auto it = got.find(e);
          ANOT_CHECK(it != got.end() && it->second == list)
              << what << " diverged for entity " << e;
        }
      };
  check_role_index(subject_index_, want_subjects, "subject index");
  check_role_index(object_index_, want_objects, "object index");

  ANOT_CHECK(relation_tokens_.size() == num_entities_)
      << "relation-token table size diverged";
  std::vector<TokenSet> want_tokens(want_entities);
  for (const Fact& f : facts_) {
    want_tokens[f.subject].insert(OutRelationToken(f.relation));
    want_tokens[f.object].insert(InRelationToken(f.relation));
  }
  for (EntityId e = 0; e < want_entities; ++e) {
    ANOT_CHECK(relation_tokens_[e] == want_tokens[e])
        << "relation tokens diverged for entity " << e;
  }

  ANOT_CHECK(triple_counts_.size() == want_triples.size())
      << "triple-count table size diverged";
  // anot-lint: ordered-ok validation only: per-triple lookup and compare,
  // order-independent
  for (const auto& [triple, count] : want_triples) {
    auto it = triple_counts_.find(triple);
    ANOT_CHECK(it != triple_counts_.end() && it->second == count)
        << "triple count diverged for (" << triple.subject << ", "
        << triple.relation << ", " << triple.object << ")";
  }
#endif  // ANOT_VALIDATE
}

}  // namespace anot
