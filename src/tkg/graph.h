#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "tkg/dictionary.h"
#include "tkg/types.h"
#include "util/containers.h"

namespace anot {

/// \brief In-memory temporal knowledge graph G = (E, R, T, F).
///
/// The store is append-only (facts are never removed; real TKGs only grow,
/// see paper §3.1) and maintains the secondary indexes every AnoT component
/// needs:
///
///  * by-timestamp index                      — candidate generation, monitor
///  * per-(s,o)-pair interaction sequences    — chain-occurring patterns
///  * per-entity subject/object fact lists    — triadic patterns, baselines
///  * per-entity directed relation token sets — category mining (R(e))
///  * (s,r,o) triple counts                   — membership and statistics
///
/// All indexes are updated incrementally by AddFact, which is what makes
/// the online updater O(|C(s)|·|C(o)| + f_max) per new fact (paper §4.6).
///
/// Thread compatibility: const methods are safe to call concurrently;
/// AddFact requires external synchronization.
class TemporalKnowledgeGraph {
 public:
  TemporalKnowledgeGraph() = default;

  /// Appends a fact by raw ids; grows entity/relation universes as needed.
  /// Returns the new fact's id.
  FactId AddFact(const Fact& fact);

  /// Appends a fact by symbol names (interned into the dictionaries).
  FactId AddFact(std::string_view subject, std::string_view relation,
                 std::string_view object, Timestamp time);
  FactId AddFact(std::string_view subject, std::string_view relation,
                 std::string_view object, Timestamp start, Timestamp end);

  // -- Universe sizes -------------------------------------------------------

  size_t num_facts() const { return facts_.size(); }
  /// Number of distinct entity ids (max id + 1; ids are dense).
  size_t num_entities() const { return num_entities_; }
  size_t num_relations() const { return num_relations_; }
  size_t num_timestamps() const { return by_time_.size(); }

  // -- Fact access ----------------------------------------------------------

  const std::vector<Fact>& facts() const ANOT_LIFETIME_BOUND {
    return facts_;
  }
  const Fact& fact(FactId id) const ANOT_LIFETIME_BOUND {
    return facts_[id];
  }

  /// Facts observed at exactly timestamp t (empty if none).
  const std::vector<FactId>& FactsAt(Timestamp t) const ANOT_LIFETIME_BOUND;

  /// All observed timestamps in ascending order with their facts.
  const std::map<Timestamp, std::vector<FactId>>& by_time() const
      ANOT_LIFETIME_BOUND {
    return by_time_;
  }

  /// Interaction sequence of the ordered pair (s, o): fact ids sorted by
  /// (time, id). Returns nullptr when the pair never interacted.
  const std::vector<FactId>* FactsForPair(EntityId s, EntityId o) const
      ANOT_LIFETIME_BOUND;

  /// All pair interaction sequences, keyed by PairKey(s, o). Iteration
  /// order is the pairs' first-interaction order (a container-history
  /// artifact, deterministic but not meaningful); callers needing a
  /// canonical order must still sort.
  const dense_map<uint64_t, std::vector<FactId>>& pair_sequences() const
      ANOT_LIFETIME_BOUND {
    return pair_index_;
  }

  /// Facts with `e` as subject / object, sorted by (time, id).
  const std::vector<FactId>* FactsBySubject(EntityId e) const
      ANOT_LIFETIME_BOUND;
  const std::vector<FactId>* FactsByObject(EntityId e) const
      ANOT_LIFETIME_BOUND;

  /// Directed relation tokens R(e) the entity has interacted with
  /// (OutRelationToken for subject roles, InRelationToken for object roles).
  /// Sets are tiny (≤ 2·|R| entries) and probe-heavy, so they are sorted
  /// flat sets: ascending iteration, binary-search membership, inline
  /// storage for the common small case.
  using TokenSet = sorted_small_set<uint32_t, 8>;
  const TokenSet& RelationTokens(EntityId e) const ANOT_LIFETIME_BOUND;

  /// Exact membership of a (s, r, o, t[, end]) fact.
  bool Contains(const Fact& fact) const;
  /// Whether the triple (s, r, o) occurs at any timestamp.
  bool ContainsTriple(EntityId s, RelationId r, EntityId o) const;
  /// Number of facts carrying the triple (s, r, o).
  uint32_t TripleCount(EntityId s, RelationId r, EntityId o) const;

  /// Pre-sizes the fact log and every hash-backed secondary index for
  /// `expected_facts` appends, so bulk loads (TkgIo::LoadTsv) avoid
  /// rehash/regrow churn. The by-time index is tree-backed and needs no
  /// reservation. Safe to call at any point; never shrinks.
  void Reserve(size_t expected_facts);

  Timestamp min_time() const { return min_time_; }
  Timestamp max_time() const { return max_time_; }

  /// True when any fact has end != time (duration-based TKG).
  bool has_durations() const { return has_durations_; }

  // -- Symbol names ---------------------------------------------------------

  Dictionary& entity_dict() ANOT_LIFETIME_BOUND { return entity_dict_; }
  Dictionary& relation_dict() ANOT_LIFETIME_BOUND { return relation_dict_; }
  const Dictionary& entity_dict() const ANOT_LIFETIME_BOUND {
    return entity_dict_;
  }
  const Dictionary& relation_dict() const ANOT_LIFETIME_BOUND {
    return relation_dict_;
  }

  /// Human-readable names with an "E<id>" / "R<id>" fallback for graphs
  /// built from raw ids.
  std::string EntityName(EntityId e) const;
  std::string RelationName(RelationId r) const;

  /// Debug validator (compiled behind ANOT_VALIDATE, no-op otherwise):
  /// recomputes every secondary index from facts_ and ANOT_CHECK-fails on
  /// the first divergence — bucket/pair/role lists complete and sorted by
  /// (time, id), relation-token sets exact, triple counts exact, universe
  /// sizes and time bounds exact. O(|F| log |F|); call at commit
  /// boundaries in tests, not per arrival.
  void CheckInvariants() const;

 private:
  std::vector<Fact> facts_;
  size_t num_entities_ = 0;
  size_t num_relations_ = 0;
  bool has_durations_ = false;
  Timestamp min_time_ = kNoTimestamp;
  Timestamp max_time_ = kNoTimestamp;

  // by_time_ stays a std::map: split/monitor/candidate passes consume it
  // through ordered ascending iteration, which a hash table cannot serve
  // without a sort per scan. The five hash-backed indexes below are
  // dense_map/dense_set (open addressing, contiguous slots) — the
  // scorer/updater hot path probes them per arrival.
  std::map<Timestamp, std::vector<FactId>> by_time_;
  dense_map<uint64_t, std::vector<FactId>> pair_index_;
  dense_map<EntityId, std::vector<FactId>> subject_index_;
  dense_map<EntityId, std::vector<FactId>> object_index_;
  std::vector<TokenSet> relation_tokens_;
  dense_map<Triple, uint32_t, TripleHash> triple_counts_;
  dense_set<Fact, FactHash> fact_set_;

  Dictionary entity_dict_;
  Dictionary relation_dict_;

  void InsertSortedByTime(std::vector<FactId>* list, FactId id);
};

}  // namespace anot
