#pragma once

#include <memory>
#include <string>

#include "tkg/graph.h"
#include "util/result.h"
#include "util/status.h"

namespace anot {

/// \brief Readers/writers for the standard TKG text formats.
///
/// Quadruple files (ICEWS / GDELT convention) are tab-separated
/// `subject  relation  object  time`; quintuple files (Wikidata-style
/// durations) append `end_time`. Time fields are either integer ticks or
/// ISO dates `YYYY-MM-DD` (converted to days since 1970-01-01).
class TkgIo {
 public:
  /// Loads a quadruple or quintuple TSV into a fresh graph. The arity is
  /// detected per file from the first data row and enforced afterwards.
  static Result<std::unique_ptr<TemporalKnowledgeGraph>> LoadTsv(
      const std::string& path);

  /// Writes a graph as quadruples (or quintuples when it has durations).
  /// Names that cannot round-trip through the format — containing a tab,
  /// newline, or carriage return, or a subject starting with '#' (the
  /// reader's comment marker) — are rejected with InvalidArgument before
  /// anything is written.
  static Status SaveTsv(const TemporalKnowledgeGraph& graph,
                        const std::string& path);

  /// Parses an integer tick or ISO date into a Timestamp. Parsing is
  /// strict: digits only (ticks may carry one leading '-'), no
  /// whitespace, no '+', and out-of-range values are errors — a field a
  /// canonical save never writes never loads.
  static Result<Timestamp> ParseTime(const std::string& field);
};

}  // namespace anot
