#pragma once

#include <string>

#include "tkg/graph.h"

namespace anot {

/// \brief Summary statistics of a TKG, matching the columns of the paper's
/// Table 1.
struct TkgStats {
  size_t num_entities = 0;
  size_t num_relations = 0;
  size_t num_timestamps = 0;
  size_t num_facts = 0;
  double mean_facts_per_timestamp = 0.0;
  double mean_pair_sequence_length = 0.0;
  bool has_durations = false;

  std::string ToString() const;
};

/// Computes statistics over `graph`.
TkgStats ComputeStats(const TemporalKnowledgeGraph& graph);

}  // namespace anot
