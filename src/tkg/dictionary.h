#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/containers.h"

namespace anot {

/// \brief String interner mapping symbol names to dense uint32 ids.
///
/// Ids are assigned in first-seen order and are stable for the lifetime of
/// the dictionary, which makes them safe to persist alongside fact files.
///
/// The index is a string_map with a transparent string_view hasher: probes
/// (GetOrAdd on a known name, TryGet) never allocate — a std::string key
/// is built only when a genuinely new name is interned.
class Dictionary {
 public:
  /// Returns the id of `name`, inserting it if unseen.
  uint32_t GetOrAdd(std::string_view name);

  /// Returns the id of `name` if present.
  std::optional<uint32_t> TryGet(std::string_view name) const;

  /// Returns the interned name for `id`. `id` must be < size().
  const std::string& Name(uint32_t id) const ANOT_LIFETIME_BOUND;

  /// Pre-sizes the index and name table for `n` symbols (bulk loads).
  void Reserve(size_t n);

  size_t size() const { return names_.size(); }
  bool empty() const { return names_.empty(); }

 private:
  string_map<uint32_t> index_;
  std::vector<std::string> names_;
};

}  // namespace anot
