#include "tkg/stats.h"

#include <unordered_set>

#include "util/string_util.h"

namespace anot {

TkgStats ComputeStats(const TemporalKnowledgeGraph& graph) {
  TkgStats stats;
  stats.num_entities = graph.num_entities();
  stats.num_relations = graph.num_relations();
  stats.num_timestamps = graph.num_timestamps();
  stats.num_facts = graph.num_facts();
  stats.has_durations = graph.has_durations();
  if (stats.num_timestamps > 0) {
    stats.mean_facts_per_timestamp =
        static_cast<double>(stats.num_facts) /
        static_cast<double>(stats.num_timestamps);
  }
  std::unordered_set<uint64_t> pairs;
  for (const Fact& f : graph.facts()) {
    pairs.insert(PairKey(f.subject, f.object));
  }
  if (!pairs.empty()) {
    stats.mean_pair_sequence_length =
        static_cast<double>(stats.num_facts) /
        static_cast<double>(pairs.size());
  }
  return stats;
}

std::string TkgStats::ToString() const {
  return StrFormat(
      "|E|=%zu |R|=%zu |T|=%zu |F|=%zu facts/ts=%.1f seq_len=%.2f%s",
      num_entities, num_relations, num_timestamps, num_facts,
      mean_facts_per_timestamp, mean_pair_sequence_length,
      has_durations ? " (durations)" : "");
}

}  // namespace anot
