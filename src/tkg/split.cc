#include "tkg/split.h"

#include <algorithm>

#include "util/logging.h"

namespace anot {

TimeSplit SplitByTimestamps(const TemporalKnowledgeGraph& graph,
                            double train_fraction, double val_fraction) {
  ANOT_CHECK(train_fraction > 0.0 && val_fraction >= 0.0 &&
             train_fraction + val_fraction < 1.0)
      << "invalid split fractions";
  TimeSplit split;
  const auto& by_time = graph.by_time();
  const size_t num_ts = by_time.size();
  if (num_ts == 0) return split;

  const size_t train_ts = std::max<size_t>(
      1, static_cast<size_t>(static_cast<double>(num_ts) * train_fraction));
  const size_t val_ts = static_cast<size_t>(
      static_cast<double>(num_ts) * val_fraction);

  size_t idx = 0;
  for (const auto& [t, fact_ids] : by_time) {
    std::vector<FactId>* bucket = nullptr;
    if (idx < train_ts) {
      bucket = &split.train;
      split.train_end = t;
    } else if (idx < train_ts + val_ts) {
      bucket = &split.val;
      split.val_end = t;
    } else {
      bucket = &split.test;
    }
    bucket->insert(bucket->end(), fact_ids.begin(), fact_ids.end());
    ++idx;
  }
  if (split.val_end == kNoTimestamp) split.val_end = split.train_end;
  return split;
}

std::unique_ptr<TemporalKnowledgeGraph> Subgraph(
    const TemporalKnowledgeGraph& graph, const std::vector<FactId>& facts) {
  auto out = std::make_unique<TemporalKnowledgeGraph>();
  // Preserve symbol tables so ids remain comparable across windows.
  for (size_t e = 0; e < graph.entity_dict().size(); ++e) {
    out->entity_dict().GetOrAdd(graph.entity_dict().Name(e));
  }
  for (size_t r = 0; r < graph.relation_dict().size(); ++r) {
    out->relation_dict().GetOrAdd(graph.relation_dict().Name(r));
  }
  std::vector<FactId> ordered = facts;
  std::sort(ordered.begin(), ordered.end(), [&](FactId a, FactId b) {
    const Fact& fa = graph.fact(a);
    const Fact& fb = graph.fact(b);
    if (fa.time != fb.time) return fa.time < fb.time;
    return a < b;
  });
  for (FactId id : ordered) out->AddFact(graph.fact(id));
  return out;
}

}  // namespace anot
