#include "tkg/dictionary.h"

#include "util/logging.h"

namespace anot {

uint32_t Dictionary::GetOrAdd(std::string_view name) {
  const uint32_t next_id = static_cast<uint32_t>(names_.size());
  auto [it, inserted] = index_.try_emplace(name, next_id);
  if (inserted) names_.emplace_back(it->first);
  return it->second;
}

std::optional<uint32_t> Dictionary::TryGet(std::string_view name) const {
  auto it = index_.find(name);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

const std::string& Dictionary::Name(uint32_t id) const {
  ANOT_CHECK(id < names_.size()) << "dictionary id out of range: " << id;
  return names_[id];
}

void Dictionary::Reserve(size_t n) {
  index_.reserve(n);
  names_.reserve(n);
}

}  // namespace anot
