#include "tkg/dictionary.h"

#include "util/logging.h"

namespace anot {

uint32_t Dictionary::GetOrAdd(std::string_view name) {
  auto it = index_.find(std::string(name));
  if (it != index_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), id);
  return id;
}

std::optional<uint32_t> Dictionary::TryGet(std::string_view name) const {
  auto it = index_.find(std::string(name));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

const std::string& Dictionary::Name(uint32_t id) const {
  ANOT_CHECK(id < names_.size()) << "dictionary id out of range: " << id;
  return names_[id];
}

}  // namespace anot
