#include "tkg/loader.h"

#include <cstdlib>

#include "util/string_util.h"
#include "util/tsv.h"

namespace anot {

namespace {

// Days from 1970-01-01 to y-m-d using the civil-days algorithm
// (Howard Hinnant's days_from_civil).
int64_t DaysFromCivil(int64_t y, unsigned m, unsigned d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

bool IsLeapYear(int64_t y) {
  return y % 4 == 0 && (y % 100 != 0 || y % 400 == 0);
}

/// Number of days in month `m` (1-12) of year `y`, Gregorian.
int64_t DaysInMonth(int64_t y, int64_t m) {
  static constexpr int64_t kDays[12] = {31, 28, 31, 30, 31, 30,
                                        31, 31, 30, 31, 30, 31};
  if (m == 2 && IsLeapYear(y)) return 29;
  return kDays[m - 1];
}

}  // namespace

Result<Timestamp> TkgIo::ParseTime(const std::string& field) {
  // ISO date?
  const auto parts = Split(field, '-');
  if (parts.size() == 3 && !parts[0].empty()) {
    char* end = nullptr;
    int64_t y = std::strtoll(parts[0].c_str(), &end, 10);
    if (*end != '\0') {
      return Status::InvalidArgument("bad year in date: " + field);
    }
    int64_t m = std::strtoll(parts[1].c_str(), &end, 10);
    if (*end != '\0' || m < 1 || m > 12) {
      return Status::InvalidArgument("bad month in date: " + field);
    }
    int64_t d = std::strtoll(parts[2].c_str(), &end, 10);
    if (*end != '\0' || d < 1 || d > 31) {
      return Status::InvalidArgument("bad day in date: " + field);
    }
    // Reject impossible calendar dates (2023-02-31, 2021-04-31, Feb 29 in
    // a non-leap year, ...). DaysFromCivil would silently normalize them
    // into the next month, loading a fact at a timestamp that never
    // appears in the source data.
    if (d > DaysInMonth(y, m)) {
      return Status::InvalidArgument(
          StrFormat("impossible day of month in date: %s (month %lld has "
                    "%lld days in %lld)",
                    field.c_str(), static_cast<long long>(m),
                    static_cast<long long>(DaysInMonth(y, m)),
                    static_cast<long long>(y)));
    }
    return DaysFromCivil(y, static_cast<unsigned>(m),
                         static_cast<unsigned>(d));
  }
  char* end = nullptr;
  int64_t ticks = std::strtoll(field.c_str(), &end, 10);
  if (field.empty() || *end != '\0') {
    return Status::InvalidArgument("bad time field: " + field);
  }
  return ticks;
}

Result<std::unique_ptr<TemporalKnowledgeGraph>> TkgIo::LoadTsv(
    const std::string& path) {
  auto graph = std::make_unique<TemporalKnowledgeGraph>();
  // Pre-size the fact log and secondary indexes from a cheap newline
  // count so multi-million-fact loads perform no rehash/regrow churn.
  const size_t estimated_rows = TsvReader::EstimateRows(path);
  if (estimated_rows > 0) graph->Reserve(estimated_rows);
  size_t expected_arity = 0;
  size_t line_no = 0;
  Status st = TsvReader::ForEachRow(
      path, [&](const std::vector<std::string>& row) -> Status {
        ++line_no;
        if (expected_arity == 0) {
          if (row.size() != 4 && row.size() != 5) {
            return Status::InvalidArgument(
                StrFormat("%s: expected 4 or 5 columns, got %zu",
                          path.c_str(), row.size()));
          }
          expected_arity = row.size();
        }
        if (row.size() != expected_arity) {
          return Status::InvalidArgument(
              StrFormat("%s:%zu: inconsistent arity %zu (expected %zu)",
                        path.c_str(), line_no, row.size(), expected_arity));
        }
        auto start = ParseTime(row[3]);
        if (!start.ok()) return start.status();
        Timestamp end_time = start.value();
        if (expected_arity == 5) {
          auto end_res = ParseTime(row[4]);
          if (!end_res.ok()) return end_res.status();
          end_time = end_res.value();
          if (end_time < start.value()) {
            return Status::InvalidArgument(
                StrFormat("%s:%zu: end before start", path.c_str(),
                          line_no));
          }
        }
        graph->AddFact(row[0], row[1], row[2], start.value(), end_time);
        return Status::OK();
      });
  if (!st.ok()) return st;
  return graph;
}

Status TkgIo::SaveTsv(const TemporalKnowledgeGraph& graph,
                      const std::string& path) {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(graph.num_facts());
  const bool durations = graph.has_durations();
  for (const Fact& f : graph.facts()) {
    std::vector<std::string> row{
        graph.EntityName(f.subject), graph.RelationName(f.relation),
        graph.EntityName(f.object), std::to_string(f.time)};
    if (durations) row.push_back(std::to_string(f.end));
    rows.push_back(std::move(row));
  }
  return TsvWriter::WriteAll(path, rows);
}

}  // namespace anot
