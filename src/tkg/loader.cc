#include "tkg/loader.h"

#include <cstdint>
#include <limits>

#include "util/string_util.h"
#include "util/tsv.h"

namespace anot {

namespace {

/// Strict integer-field parser shared by the tick and date paths: the
/// field must be digits only (one leading '-' allowed when
/// `allow_negative`), with no whitespace, no '+', no trailing junk, and
/// overflow is an error. strtoll accepted " 12" and "+5" — encodings a
/// canonical save never writes — and silently clamped out-of-range years
/// to LLONG_MAX, which DaysFromCivil then fed into signed arithmetic.
bool ParseStrictInt(const std::string& field, bool allow_negative,
                    int64_t* out) {
  size_t i = 0;
  bool negative = false;
  if (allow_negative && !field.empty() && field[0] == '-') {
    negative = true;
    i = 1;
  }
  if (i >= field.size()) return false;  // empty, or a bare '-'
  uint64_t magnitude = 0;
  // Largest magnitude representable: |INT64_MIN| for negatives, INT64_MAX
  // for positives.
  const uint64_t limit =
      negative ? static_cast<uint64_t>(
                     std::numeric_limits<int64_t>::max()) +
                     1
               : static_cast<uint64_t>(std::numeric_limits<int64_t>::max());
  for (; i < field.size(); ++i) {
    const char c = field[i];
    if (c < '0' || c > '9') return false;
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (magnitude > (limit - digit) / 10) return false;  // overflow
    magnitude = magnitude * 10 + digit;
  }
  *out = negative ? -static_cast<int64_t>(magnitude - 1) - 1
                  : static_cast<int64_t>(magnitude);
  return true;
}

// Days from 1970-01-01 to y-m-d using the civil-days algorithm
// (Howard Hinnant's days_from_civil).
int64_t DaysFromCivil(int64_t y, unsigned m, unsigned d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

bool IsLeapYear(int64_t y) {
  return y % 4 == 0 && (y % 100 != 0 || y % 400 == 0);
}

/// Number of days in month `m` (1-12) of year `y`, Gregorian.
int64_t DaysInMonth(int64_t y, int64_t m) {
  static constexpr int64_t kDays[12] = {31, 28, 31, 30, 31, 30,
                                        31, 31, 30, 31, 30, 31};
  if (m == 2 && IsLeapYear(y)) return 29;
  return kDays[m - 1];
}

}  // namespace

Result<Timestamp> TkgIo::ParseTime(const std::string& field) {
  // ISO date?
  const auto parts = Split(field, '-');
  if (parts.size() == 3 && !parts[0].empty()) {
    int64_t y = 0;
    int64_t m = 0;
    int64_t d = 0;
    // Date components are digits only (a leading '-' on the year would
    // have produced a fourth Split part, so negative years never reach
    // this path). The year cap keeps DaysFromCivil's era/day-of-era
    // arithmetic far from int64 overflow — strtoll used to clamp an
    // over-long year to LLONG_MAX and feed it straight in.
    if (!ParseStrictInt(parts[0], /*allow_negative=*/false, &y) ||
        y > 1000000000) {
      return Status::InvalidArgument("bad year in date: " + field);
    }
    if (!ParseStrictInt(parts[1], /*allow_negative=*/false, &m) || m < 1 ||
        m > 12) {
      return Status::InvalidArgument("bad month in date: " + field);
    }
    if (!ParseStrictInt(parts[2], /*allow_negative=*/false, &d) || d < 1 ||
        d > 31) {
      return Status::InvalidArgument("bad day in date: " + field);
    }
    // Reject impossible calendar dates (2023-02-31, 2021-04-31, Feb 29 in
    // a non-leap year, ...). DaysFromCivil would silently normalize them
    // into the next month, loading a fact at a timestamp that never
    // appears in the source data.
    if (d > DaysInMonth(y, m)) {
      return Status::InvalidArgument(
          StrFormat("impossible day of month in date: %s (month %lld has "
                    "%lld days in %lld)",
                    field.c_str(), static_cast<long long>(m),
                    static_cast<long long>(DaysInMonth(y, m)),
                    static_cast<long long>(y)));
    }
    return DaysFromCivil(y, static_cast<unsigned>(m),
                         static_cast<unsigned>(d));
  }
  int64_t ticks = 0;
  // Integer ticks: digits with an optional leading '-' (pre-epoch ticks
  // are legitimate), same strictness as the date components.
  if (!ParseStrictInt(field, /*allow_negative=*/true, &ticks)) {
    return Status::InvalidArgument("bad time field: " + field);
  }
  return ticks;
}

Result<std::unique_ptr<TemporalKnowledgeGraph>> TkgIo::LoadTsv(
    const std::string& path) {
  auto graph = std::make_unique<TemporalKnowledgeGraph>();
  // Pre-size the fact log and secondary indexes from a cheap newline
  // count so multi-million-fact loads perform no rehash/regrow churn.
  const size_t estimated_rows = TsvReader::EstimateRows(path);
  if (estimated_rows > 0) graph->Reserve(estimated_rows);
  size_t expected_arity = 0;
  size_t line_no = 0;
  Status st = TsvReader::ForEachRow(
      path, [&](const std::vector<std::string>& row) -> Status {
        ++line_no;
        if (expected_arity == 0) {
          if (row.size() != 4 && row.size() != 5) {
            return Status::InvalidArgument(
                StrFormat("%s: expected 4 or 5 columns, got %zu",
                          path.c_str(), row.size()));
          }
          expected_arity = row.size();
        }
        if (row.size() != expected_arity) {
          return Status::InvalidArgument(
              StrFormat("%s:%zu: inconsistent arity %zu (expected %zu)",
                        path.c_str(), line_no, row.size(), expected_arity));
        }
        auto start = ParseTime(row[3]);
        if (!start.ok()) return start.status();
        Timestamp end_time = start.value();
        if (expected_arity == 5) {
          auto end_res = ParseTime(row[4]);
          if (!end_res.ok()) return end_res.status();
          end_time = end_res.value();
          if (end_time < start.value()) {
            return Status::InvalidArgument(
                StrFormat("%s:%zu: end before start", path.c_str(),
                          line_no));
          }
        }
        graph->AddFact(row[0], row[1], row[2], start.value(), end_time);
        return Status::OK();
      });
  if (!st.ok()) return st;
  return graph;
}

namespace {

/// The TSV format cannot carry these names: a tab or newline inside a name
/// splits the row into extra columns (arity error — or worse, a silent
/// misparse into a different fact) and a trailing '\r' is CRLF-stripped on
/// some readers; a subject starting with '#' makes the whole line a
/// comment on reload, silently dropping the fact. Rejecting at save time
/// keeps every file SaveTsv produces loadable back to the identical graph.
Status ValidateTsvName(const std::string& name, const char* role,
                       bool starts_line) {
  if (name.find_first_of("\t\n\r") != std::string::npos) {
    return Status::InvalidArgument(
        StrFormat("SaveTsv: %s name %s contains a tab, newline, or carriage "
                  "return and cannot round-trip through TSV",
                  role, name.c_str()));
  }
  if (starts_line && !name.empty() && name[0] == '#') {
    return Status::InvalidArgument(
        StrFormat("SaveTsv: subject name %s starts with '#'; the reloaded "
                  "row would be skipped as a comment",
                  name.c_str()));
  }
  return Status::OK();
}

}  // namespace

Status TkgIo::SaveTsv(const TemporalKnowledgeGraph& graph,
                      const std::string& path) {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(graph.num_facts());
  const bool durations = graph.has_durations();
  for (const Fact& f : graph.facts()) {
    std::vector<std::string> row{
        graph.EntityName(f.subject), graph.RelationName(f.relation),
        graph.EntityName(f.object), std::to_string(f.time)};
    ANOT_RETURN_NOT_OK(ValidateTsvName(row[0], "entity",
                                       /*starts_line=*/true));
    ANOT_RETURN_NOT_OK(ValidateTsvName(row[1], "relation",
                                       /*starts_line=*/false));
    ANOT_RETURN_NOT_OK(ValidateTsvName(row[2], "entity",
                                       /*starts_line=*/false));
    if (durations) row.push_back(std::to_string(f.end));
    rows.push_back(std::move(row));
  }
  return TsvWriter::WriteAll(path, rows);
}

}  // namespace anot
