#include "tkg/loader.h"

#include <cstdlib>

#include "util/string_util.h"
#include "util/tsv.h"

namespace anot {

namespace {

// Days from 1970-01-01 to y-m-d using the civil-days algorithm
// (Howard Hinnant's days_from_civil).
int64_t DaysFromCivil(int64_t y, unsigned m, unsigned d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

}  // namespace

Result<Timestamp> TkgIo::ParseTime(const std::string& field) {
  // ISO date?
  const auto parts = Split(field, '-');
  if (parts.size() == 3 && !parts[0].empty()) {
    char* end = nullptr;
    int64_t y = std::strtoll(parts[0].c_str(), &end, 10);
    if (*end != '\0') {
      return Status::InvalidArgument("bad year in date: " + field);
    }
    int64_t m = std::strtoll(parts[1].c_str(), &end, 10);
    if (*end != '\0' || m < 1 || m > 12) {
      return Status::InvalidArgument("bad month in date: " + field);
    }
    int64_t d = std::strtoll(parts[2].c_str(), &end, 10);
    if (*end != '\0' || d < 1 || d > 31) {
      return Status::InvalidArgument("bad day in date: " + field);
    }
    return DaysFromCivil(y, static_cast<unsigned>(m),
                         static_cast<unsigned>(d));
  }
  char* end = nullptr;
  int64_t ticks = std::strtoll(field.c_str(), &end, 10);
  if (field.empty() || *end != '\0') {
    return Status::InvalidArgument("bad time field: " + field);
  }
  return ticks;
}

Result<std::unique_ptr<TemporalKnowledgeGraph>> TkgIo::LoadTsv(
    const std::string& path) {
  auto graph = std::make_unique<TemporalKnowledgeGraph>();
  size_t expected_arity = 0;
  size_t line_no = 0;
  Status st = TsvReader::ForEachRow(
      path, [&](const std::vector<std::string>& row) -> Status {
        ++line_no;
        if (expected_arity == 0) {
          if (row.size() != 4 && row.size() != 5) {
            return Status::InvalidArgument(
                StrFormat("%s: expected 4 or 5 columns, got %zu",
                          path.c_str(), row.size()));
          }
          expected_arity = row.size();
        }
        if (row.size() != expected_arity) {
          return Status::InvalidArgument(
              StrFormat("%s:%zu: inconsistent arity %zu (expected %zu)",
                        path.c_str(), line_no, row.size(), expected_arity));
        }
        auto start = ParseTime(row[3]);
        if (!start.ok()) return start.status();
        Timestamp end_time = start.value();
        if (expected_arity == 5) {
          auto end_res = ParseTime(row[4]);
          if (!end_res.ok()) return end_res.status();
          end_time = end_res.value();
          if (end_time < start.value()) {
            return Status::InvalidArgument(
                StrFormat("%s:%zu: end before start", path.c_str(),
                          line_no));
          }
        }
        graph->AddFact(row[0], row[1], row[2], start.value(), end_time);
        return Status::OK();
      });
  if (!st.ok()) return st;
  return graph;
}

Status TkgIo::SaveTsv(const TemporalKnowledgeGraph& graph,
                      const std::string& path) {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(graph.num_facts());
  const bool durations = graph.has_durations();
  for (const Fact& f : graph.facts()) {
    std::vector<std::string> row{
        graph.EntityName(f.subject), graph.RelationName(f.relation),
        graph.EntityName(f.object), std::to_string(f.time)};
    if (durations) row.push_back(std::to_string(f.end));
    rows.push_back(std::move(row));
  }
  return TsvWriter::WriteAll(path, rows);
}

}  // namespace anot
