#pragma once

#include <cstdint>
#include <functional>
#include <limits>

namespace anot {

/// Integer handles for interned symbols. 32 bits comfortably covers the
/// paper's datasets (|E| <= ~13k, |R| <= ~251) and leaves room for
/// web-scale graphs.
using EntityId = uint32_t;
using RelationId = uint32_t;
using CategoryId = uint32_t;
using FactId = uint32_t;

/// Timestamps are integer ticks whose granularity the dataset defines
/// (days for ICEWS/YAGO, minutes for GDELT, years for Wikidata).
using Timestamp = int64_t;

inline constexpr uint32_t kInvalidId = std::numeric_limits<uint32_t>::max();
inline constexpr Timestamp kNoTimestamp =
    std::numeric_limits<Timestamp>::min();

/// \brief A unit of knowledge (s, r, o, t) — or (s, r, o, t_start, t_end)
/// for time-duration TKGs; point facts have end == time.
struct Fact {
  EntityId subject = kInvalidId;
  RelationId relation = kInvalidId;
  EntityId object = kInvalidId;
  Timestamp time = 0;
  Timestamp end = 0;

  Fact() = default;
  Fact(EntityId s, RelationId r, EntityId o, Timestamp t)
      : subject(s), relation(r), object(o), time(t), end(t) {}
  Fact(EntityId s, RelationId r, EntityId o, Timestamp t_start,
       Timestamp t_end)
      : subject(s), relation(r), object(o), time(t_start), end(t_end) {}

  bool operator==(const Fact& other) const {
    return subject == other.subject && relation == other.relation &&
           object == other.object && time == other.time && end == other.end;
  }
};

/// \brief (s, r, o) triple identity, used for ContainsTriple lookups.
struct Triple {
  EntityId subject;
  RelationId relation;
  EntityId object;

  bool operator==(const Triple& other) const {
    return subject == other.subject && relation == other.relation &&
           object == other.object;
  }
};

/// Directed relation token: entity category mining distinguishes an entity
/// appearing as the *subject* of r from appearing as the *object* of r
/// (the paper's [Born_out] vs [Born_in] in Figure 3).
inline uint32_t OutRelationToken(RelationId r) { return 2u * r; }
inline uint32_t InRelationToken(RelationId r) { return 2u * r + 1u; }
inline bool IsOutToken(uint32_t token) { return (token & 1u) == 0; }
inline RelationId TokenRelation(uint32_t token) { return token >> 1; }

/// Packs an entity pair into a 64-bit index key.
inline uint64_t PairKey(EntityId s, EntityId o) {
  return (static_cast<uint64_t>(s) << 32) | o;
}

namespace internal {
inline uint64_t HashMix(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}
}  // namespace internal

struct TripleHash {
  size_t operator()(const Triple& t) const {
    uint64_t h = internal::HashMix(PairKey(t.subject, t.object));
    return internal::HashMix(h ^ (static_cast<uint64_t>(t.relation) << 1));
  }
};

struct FactHash {
  size_t operator()(const Fact& f) const {
    uint64_t h = internal::HashMix(PairKey(f.subject, f.object));
    h = internal::HashMix(h ^ (static_cast<uint64_t>(f.relation) << 1));
    h = internal::HashMix(h ^ static_cast<uint64_t>(f.time));
    return internal::HashMix(h ^ static_cast<uint64_t>(f.end) * 31u);
  }
};

}  // namespace anot
