#pragma once

#include <memory>
#include <vector>

#include "tkg/graph.h"

namespace anot {

/// \brief A train/validation/test partition of a TKG by timestamp.
///
/// The paper's protocol (§5.1): facts in the first 60% of observed
/// timestamps build the model, the next 10% tune thresholds, the last 30%
/// are the test stream.
struct TimeSplit {
  std::vector<FactId> train;
  std::vector<FactId> val;
  std::vector<FactId> test;
  /// Last timestamp (inclusive) of each window; kNoTimestamp when empty.
  Timestamp train_end = kNoTimestamp;
  Timestamp val_end = kNoTimestamp;
};

/// Splits on *distinct observed timestamps* (not fact counts), matching
/// the paper's "former 60% timestamps" wording.
TimeSplit SplitByTimestamps(const TemporalKnowledgeGraph& graph,
                            double train_fraction, double val_fraction);

/// Builds a graph containing only the given facts (same symbol tables).
/// Used to materialize the offline-preserved part of a TKG.
std::unique_ptr<TemporalKnowledgeGraph> Subgraph(
    const TemporalKnowledgeGraph& graph, const std::vector<FactId>& facts);

}  // namespace anot
