#pragma once

/// \file
/// Clang thread-safety capability annotations + annotated synchronization
/// wrappers for every shared-state path in the repo.
///
/// The locking and ownership contracts that keep the parallel paths
/// (ThreadPool, batched serving, async refresh, sweeps) race-free used to
/// live only in comments. This header turns them into compiler-checked
/// facts: under Clang with `-Wthread-safety` (the `ANOT_THREAD_SAFETY`
/// CMake option builds with `-Werror=thread-safety`), reading a
/// `ANOT_GUARDED_BY(mu_)` member without holding `mu_`, calling a
/// `ANOT_REQUIRES(mu_)` function unlocked, or leaking a lock out of a
/// scope is a compile error. Under GCC (which has no capability
/// analysis) every macro expands to nothing and the wrappers compile to
/// exactly the std primitives they hold — zero overhead either way.
///
/// Raw `std::mutex` / `std::lock_guard` / `std::condition_variable` are
/// banned outside this header (enforced by tools/concurrency_lint.py):
/// the analysis can only check capabilities it can see, so every lock in
/// `src/` must be an `anot::Mutex` acquired through `anot::MutexLock`.
///
/// Macro set (modeled on the Clang documentation's mutex.h and Abseil's
/// thread_annotations.h — same attribute spellings, ANOT_ prefix):
///
///   ANOT_CAPABILITY(name)      class is a capability (a lock)
///   ANOT_SCOPED_CAPABILITY     RAII class acquiring in ctor / dtor
///   ANOT_GUARDED_BY(mu)        data member readable/writable only with mu
///   ANOT_PT_GUARDED_BY(mu)     pointee (not the pointer) guarded by mu
///   ANOT_REQUIRES(...)         function must be called with locks held
///   ANOT_REQUIRES_SHARED(...)  ... in shared (reader) mode
///   ANOT_ACQUIRE(...)          function acquires the locks, caller frees
///   ANOT_RELEASE(...)          function releases the locks
///   ANOT_TRY_ACQUIRE(b, ...)   acquires iff the return value equals b
///   ANOT_EXCLUDES(...)         caller must NOT hold the locks (deadlock)
///   ANOT_ASSERT_CAPABILITY(x)  runtime assertion that x is held
///   ANOT_RETURN_CAPABILITY(x)  function returns a reference to x
///   ANOT_NO_THREAD_SAFETY_ANALYSIS  opt a function body out (last resort;
///                              every use needs a comment saying why the
///                              analysis cannot express the invariant)

#include <condition_variable>
#include <mutex>

#include "util/lifetime.h"

#if defined(__clang__) && (!defined(SWIG))
#define ANOT_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define ANOT_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op outside Clang
#endif

#define ANOT_CAPABILITY(x) \
  ANOT_THREAD_ANNOTATION_ATTRIBUTE(capability(x))
#define ANOT_SCOPED_CAPABILITY \
  ANOT_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)
#define ANOT_GUARDED_BY(x) \
  ANOT_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))
#define ANOT_PT_GUARDED_BY(x) \
  ANOT_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))
#define ANOT_REQUIRES(...) \
  ANOT_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define ANOT_REQUIRES_SHARED(...) \
  ANOT_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))
#define ANOT_ACQUIRE(...) \
  ANOT_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define ANOT_RELEASE(...) \
  ANOT_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))
#define ANOT_TRY_ACQUIRE(...) \
  ANOT_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))
#define ANOT_EXCLUDES(...) \
  ANOT_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))
#define ANOT_ASSERT_CAPABILITY(x) \
  ANOT_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))
#define ANOT_RETURN_CAPABILITY(x) \
  ANOT_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))
#define ANOT_NO_THREAD_SAFETY_ANALYSIS \
  ANOT_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

namespace anot {

class CondVar;

/// \brief Annotated exclusive mutex over std::mutex.
///
/// Prefer acquiring through MutexLock; the raw Lock/Unlock pair exists
/// for the rare non-scoped protocol and stays capability-checked.
class ANOT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ANOT_ACQUIRE() { raw_.lock(); }
  void Unlock() ANOT_RELEASE() { raw_.unlock(); }
  bool TryLock() ANOT_TRY_ACQUIRE(true) { return raw_.try_lock(); }

  /// Negative-capability form for ANOT_EXCLUDES-style assertions.
  const Mutex& operator!() const ANOT_LIFETIME_BOUND { return *this; }

 private:
  friend class CondVar;  // waits on the underlying std::mutex
  std::mutex raw_;
};

/// \brief RAII lock over Mutex; the scope of the object is the extent of
/// the critical section, and the analysis checks it cannot leak.
class ANOT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ANOT_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() ANOT_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  // anot-own: the caller's Mutex outlives the lock — a MutexLock is a
  // scoped local whose extent is the critical section it guards.
  Mutex& mu_;
};

/// \brief Condition variable bound to an anot::Mutex at each wait.
///
/// Wait() takes the Mutex explicitly and is annotated ANOT_REQUIRES(mu),
/// so waiting without the lock is a compile error. There is deliberately
/// no predicate overload: a lambda predicate runs outside the analysis's
/// view of the critical section, whereas the idiomatic
///
///     MutexLock lock(mu_);
///     while (!condition) cv_.Wait(mu_);
///
/// keeps every read of guarded state inside the checked scope.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and reacquires `mu` before
  /// returning (spurious wakeups possible — always wait in a loop).
  void Wait(Mutex& mu) ANOT_REQUIRES(mu) {
    // Adopt the already-held lock for the wait protocol, then release
    // ownership back to the caller's MutexLock so it is unlocked exactly
    // once. The capability never changes hands as far as callers see.
    std::unique_lock<std::mutex> reacquire(mu.raw_, std::adopt_lock);
    raw_.wait(reacquire);
    reacquire.release();
  }

  void NotifyOne() { raw_.notify_one(); }
  void NotifyAll() { raw_.notify_all(); }

 private:
  std::condition_variable raw_;
};

}  // namespace anot
