#pragma once

#include <string>
#include <utility>

#include "util/lifetime.h"

namespace anot {

/// \brief Error codes used across the public API.
///
/// Following the database-engine idiom (RocksDB / Arrow), fallible public
/// operations return a Status (or Result<T>) instead of throwing.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kIoError,
  kFailedPrecondition,
  kInternal,
};

/// \brief A lightweight success-or-error value.
///
/// Status is cheap to copy in the OK case (no allocation) and carries a
/// human-readable message otherwise. Class-level [[nodiscard]]: a dropped
/// Status is a swallowed error, so every fallible call must be checked,
/// propagated (ANOT_RETURN_NOT_OK), or asserted (ANOT_CHECK_OK).
class ANOT_NODISCARD Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  /// Factory helpers, one per error code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const ANOT_LIFETIME_BOUND { return message_; }

  /// Renders "OK" or "<code>: <message>".
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(CodeName(code_)) + ": " + message_;
  }

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  // Fully covered: -Wswitch-enum (on for the whole tree) forces a new
  // StatusCode to show up here before it compiles, so no dead fallback
  // return is needed — an out-of-range value is a caller bug.
  // anot-lint: lifetime-ok returns string literals (static storage).
  static const char* CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kNotFound: return "NotFound";
      case StatusCode::kAlreadyExists: return "AlreadyExists";
      case StatusCode::kOutOfRange: return "OutOfRange";
      case StatusCode::kIoError: return "IoError";
      case StatusCode::kFailedPrecondition: return "FailedPrecondition";
      case StatusCode::kInternal: return "Internal";
    }
    __builtin_unreachable();
  }

  StatusCode code_;
  std::string message_;
};

/// \brief Propagate a non-OK Status to the caller.
///
/// Hygiene: the temporary's name is line-unique (ANOT_CONCAT + __LINE__),
/// so an `expr` that mentions a caller-scope `_st` cannot silently bind to
/// the macro's own freshly declared (and at that point uninitialized)
/// variable, and the expression is parenthesized before evaluation.
#define ANOT_RETURN_NOT_OK(expr)                                     \
  do {                                                               \
    ::anot::Status ANOT_CONCAT(_anot_st_, __LINE__) = (expr);        \
    if (!ANOT_CONCAT(_anot_st_, __LINE__).ok())                      \
      return ANOT_CONCAT(_anot_st_, __LINE__);                       \
  } while (0)

}  // namespace anot
