#pragma once

#include <cstdint>
#include <vector>

namespace anot {

/// MDL encoding-cost primitives (all costs are in bits, i.e. log base 2).
/// These follow the standard two-part MDL toolkit used by KGist-style
/// summarizers: binomial codes for "choose B of A", optimal prefix codes
/// for categorical draws, and the Elias-style universal integer code.

/// log2(x) guarded for x <= 0 (returns 0, used for empty-set costs).
double Log2(double x);

/// log2(n!) via lgamma; exact enough for n up to ~1e15.
double Log2Factorial(double n);

/// log2 C(a, b): bits to identify a b-subset of an a-set.
/// Returns 0 when b <= 0 or b >= a (degenerate choices carry no information).
double Log2Binomial(double a, double b);

/// Optimal prefix-code length -log2(count / total) for a symbol seen
/// `count` times out of `total`. Returns 0 for degenerate inputs.
double PrefixCodeBits(double count, double total);

/// Elias-gamma-flavoured universal code length for a non-negative integer;
/// L_N(0) is defined as 1 bit.
double UniversalIntBits(uint64_t n);

/// Shannon entropy (bits) of a histogram of non-negative counts.
double EntropyBits(const std::vector<double>& counts);

/// Numerically stable log2(2^a + 2^b).
double Log2Add(double a, double b);

}  // namespace anot
