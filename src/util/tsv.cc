#include "util/tsv.h"

#include <fstream>

#include "util/string_util.h"

namespace anot {

Status TsvReader::ForEachRow(
    const std::string& path,
    const std::function<Status(const std::vector<std::string>&)>& row_cb) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IoError("cannot open for reading: " + path);
  }
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    ANOT_RETURN_NOT_OK(row_cb(Split(line, '\t')));
  }
  if (in.bad()) {
    return Status::IoError("read error on: " + path);
  }
  return Status::OK();
}

size_t TsvReader::EstimateRows(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return 0;
  char buf[1 << 16];
  size_t rows = 0;
  bool last_char_was_newline = true;
  while (in) {
    in.read(buf, sizeof(buf));
    const std::streamsize got = in.gcount();
    for (std::streamsize i = 0; i < got; ++i) {
      rows += buf[i] == '\n';
      last_char_was_newline = buf[i] == '\n';
    }
  }
  // A final line without a trailing newline is still a row.
  if (!last_char_was_newline) ++rows;
  return rows;
}

Status TsvWriter::WriteAll(
    const std::string& path,
    const std::vector<std::vector<std::string>>& rows) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::IoError("cannot open for writing: " + path);
  }
  for (const auto& row : rows) {
    out << Join(row, "\t") << '\n';
  }
  out.flush();
  if (!out.good()) {
    return Status::IoError("write error on: " + path);
  }
  return Status::OK();
}

}  // namespace anot
