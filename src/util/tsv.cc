#include "util/tsv.h"

#include <fstream>

#include "util/string_util.h"

namespace anot {

Status TsvReader::ForEachRow(
    const std::string& path,
    const std::function<Status(const std::vector<std::string>&)>& row_cb) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IoError("cannot open for reading: " + path);
  }
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    ANOT_RETURN_NOT_OK(row_cb(Split(line, '\t')));
  }
  if (in.bad()) {
    return Status::IoError("read error on: " + path);
  }
  return Status::OK();
}

Status TsvWriter::WriteAll(
    const std::string& path,
    const std::vector<std::vector<std::string>>& rows) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::IoError("cannot open for writing: " + path);
  }
  for (const auto& row : rows) {
    out << Join(row, "\t") << '\n';
  }
  out.flush();
  if (!out.good()) {
    return Status::IoError("write error on: " + path);
  }
  return Status::OK();
}

}  // namespace anot
