#include "util/string_util.h"

#include <cctype>
#include <cstdio>

namespace anot {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string FormatDouble(double value, int digits) {
  char fmt[16];
  std::snprintf(fmt, sizeof(fmt), "%%.%df", digits);
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, value);
  return buf;
}

}  // namespace anot
