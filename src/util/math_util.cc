#include "util/math_util.h"

#include <algorithm>
#include <cmath>

namespace anot {

namespace {
constexpr double kLn2 = 0.6931471805599453;
}

double Log2(double x) {
  if (x <= 0.0) return 0.0;
  return std::log2(x);
}

double Log2Factorial(double n) {
  if (n <= 1.0) return 0.0;
#if defined(__GLIBC__) || defined(__APPLE__)
  // std::lgamma writes the global `signgam` — a data race when pool
  // workers (or the background rebuild) price costs concurrently. The
  // reentrant variant returns the identical value for positive inputs.
  int sign = 0;
  return ::lgamma_r(n + 1.0, &sign) / kLn2;
#else
  return std::lgamma(n + 1.0) / kLn2;
#endif
}

double Log2Binomial(double a, double b) {
  if (b <= 0.0 || b >= a) return 0.0;
  return Log2Factorial(a) - Log2Factorial(b) - Log2Factorial(a - b);
}

double PrefixCodeBits(double count, double total) {
  if (count <= 0.0 || total <= 0.0 || count >= total) return 0.0;
  return -std::log2(count / total);
}

double UniversalIntBits(uint64_t n) {
  // Rissanen's L_N(n) ~ log2*(n) + log2(c0); we use the common truncation
  // log2(n+1) + 2*log2(log2(n+2)) + 1 which is monotone and >= 1.
  double x = static_cast<double>(n);
  return std::log2(x + 1.0) + 2.0 * std::log2(std::log2(x + 2.0)) + 1.0;
}

double EntropyBits(const std::vector<double>& counts) {
  double total = 0.0;
  for (double c : counts) total += std::max(c, 0.0);
  if (total <= 0.0) return 0.0;
  double h = 0.0;
  for (double c : counts) {
    if (c <= 0.0) continue;
    double p = c / total;
    h -= p * std::log2(p);
  }
  return h;
}

double Log2Add(double a, double b) {
  if (a < b) std::swap(a, b);
  return a + std::log2(1.0 + std::exp2(b - a));
}

}  // namespace anot
