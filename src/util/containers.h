#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <iterator>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/lifetime.h"

/// \file Hot-path container library (vendored, single header).
///
/// The scorer/updater hot paths probe hash tables millions of times per
/// second; std::unordered_map pays a pointer chase per bucket node and
/// (for string keys in C++17) a heap-allocated temporary std::string per
/// heterogeneous probe. This header provides the replacements the
/// container-overhaul gates were built around:
///
///  * dense_map / dense_set — open-addressing robin-hood tables whose
///    elements live contiguously in a std::vector (the
///    ankerl::unordered_dense layout). Lookups touch one flat bucket
///    array plus one dense slot; iteration walks the slot vector in
///    *insertion order*, which — unlike std:: hash-order — is a
///    deterministic function of the operation sequence alone (erase
///    swap-removes, so post-erase order is still determined by the
///    mutation history, never by hash seeds or library versions).
///  * string_map / string_set — dense tables over std::string keys with a
///    transparent string_view hasher: probes take a string_view and never
///    materialize a temporary std::string (a Key is constructed only on
///    actual insertion).
///  * small_vec<T, N> — a vector with N elements of inline storage, for
///    adjacency / witness lists that are almost always tiny.
///
/// Determinism contract: iteration order is insertion order (amended by
/// swap-remove on erase) — reproducible across runs, platforms, and
/// standard-library versions, which is why tools/determinism_lint.py does
/// not treat these types as unordered containers. Code whose *results*
/// depend on iteration order must still be audited: the order is stable,
/// but it is a container-history artifact, not a meaningful sort key.
///
/// Invalidation rules differ from std::unordered_map: any insertion may
/// reallocate the slot vector (all iterators/references invalidated, like
/// std::vector), and erase moves the last element into the hole. Do not
/// hold references across mutations.

namespace anot {

namespace container_internal {

/// Finalizing mix (splitmix64). Applied by the table on top of the user
/// hash so identity hashes (std::hash<int> in libstdc++) still spread
/// over the high bits the bucket index is taken from.
inline uint64_t MixHash(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

template <class Slot>
struct KeyOfPair {
  const auto& operator()(const Slot& s ANOT_LIFETIME_BOUND) const {
    return s.first;
  }
};

template <class Key>
struct KeyIdentity {
  const Key& operator()(const Key& k ANOT_LIFETIME_BOUND) const { return k; }
};

/// \brief Core open-addressing table: dense slot storage + a flat bucket
/// array of (distance-from-home | fingerprint, slot index) pairs with
/// robin-hood displacement and backward-shift deletion.
template <class Slot, class KeyOf, class Hash, class KeyEqual>
class DenseTable {
 public:
  using iterator = typename std::vector<Slot>::iterator;
  using const_iterator = typename std::vector<Slot>::const_iterator;

  DenseTable() = default;

  iterator begin() { return slots_.begin(); }
  iterator end() { return slots_.end(); }
  const_iterator begin() const { return slots_.begin(); }
  const_iterator end() const { return slots_.end(); }

  size_t size() const { return slots_.size(); }
  bool empty() const { return slots_.empty(); }

  void clear() {
    slots_.clear();
    std::fill(buckets_.begin(), buckets_.end(), Bucket{});
  }

  /// Pre-sizes both the slot vector and the bucket array for `n` elements
  /// so a bulk load performs no rehash.
  void reserve(size_t n) {
    slots_.reserve(n);
    const size_t needed = BucketCountFor(n);
    if (needed > buckets_.size()) Rehash(needed);
  }

  template <class K>
  const_iterator find(const K& key) const {
    const size_t b = FindBucket(key);
    return b == kNpos ? end() : begin() + buckets_[b].slot;
  }
  template <class K>
  iterator find(const K& key) {
    const size_t b = FindBucket(key);
    return b == kNpos ? end() : begin() + buckets_[b].slot;
  }
  template <class K>
  size_t count(const K& key) const {
    return FindBucket(key) == kNpos ? 0 : 1;
  }
  template <class K>
  bool contains(const K& key) const {
    return FindBucket(key) != kNpos;
  }

  /// Finds `key`, or inserts the slot produced by `make()` (which must
  /// carry a key equal to `key`). Returns (slot index, inserted).
  template <class K, class MakeSlot>
  std::pair<size_t, bool> FindOrEmplace(const K& key, MakeSlot&& make) {
    // The capacity check lives on the insertion path (not per call), so
    // pure find-hits pay only the probe loop.
    if (slots_.size() >= capacity_) {
      if (FindBucket(key) == kNpos) Grow();
    }
    const uint64_t h = HashOf(key);
    uint32_t dist_fp = kDistInc | (h & kFpMask);
    size_t idx = HomeBucket(h);
    while (true) {
      Bucket& b = buckets_[idx];
      if (dist_fp == b.dist_and_fp && eq_(KeyOf{}(slots_[b.slot]), key)) {
        return {static_cast<size_t>(b.slot), false};
      }
      if (dist_fp > b.dist_and_fp) {
        slots_.push_back(make());
        const uint32_t slot = static_cast<uint32_t>(slots_.size() - 1);
        PlaceAndShiftUp(Bucket{dist_fp, slot}, idx);
        return {static_cast<size_t>(slot), true};
      }
      dist_fp += kDistInc;
      idx = NextBucket(idx);
    }
  }

  template <class K>
  size_t erase(const K& key) {
    size_t idx = FindBucket(key);
    if (idx == kNpos) return 0;
    const uint32_t hole = buckets_[idx].slot;
    // Backward-shift deletion keeps every remaining probe chain compact,
    // so the table never accumulates tombstones.
    size_t next = NextBucket(idx);
    while (buckets_[next].dist_and_fp >= 2 * kDistInc) {
      buckets_[idx] =
          Bucket{buckets_[next].dist_and_fp - kDistInc, buckets_[next].slot};
      idx = next;
      next = NextBucket(idx);
    }
    buckets_[idx] = Bucket{};
    const uint32_t last = static_cast<uint32_t>(slots_.size() - 1);
    if (hole != last) {
      slots_[hole] = std::move(slots_[last]);
      // Repoint the bucket that referenced the moved slot. Its probe
      // chain starts at its home bucket and is contiguous, so a plain
      // walk terminates.
      size_t b = HomeBucket(HashOf(KeyOf{}(slots_[hole])));
      while (buckets_[b].slot != last) b = NextBucket(b);
      buckets_[b].slot = hole;
    }
    slots_.pop_back();
    return 1;
  }

 private:
  // Low 8 bucket bits carry a hash fingerprint; the rest count the probe
  // distance from the home bucket (starting at 1, so 0 == empty bucket).
  static constexpr uint32_t kDistInc = 1u << 8;
  static constexpr uint32_t kFpMask = kDistInc - 1;
  static constexpr size_t kNpos = static_cast<size_t>(-1);
  static constexpr size_t kInitialBuckets = 16;
  // Max load factor 0.8, as numerator/denominator of bucket count.
  static constexpr size_t kLoadNum = 4;
  static constexpr size_t kLoadDen = 5;

  struct Bucket {
    uint32_t dist_and_fp = 0;
    uint32_t slot = 0;
  };

  template <class K>
  uint64_t HashOf(const K& key) const {
    return MixHash(static_cast<uint64_t>(hash_(key)));
  }
  size_t HomeBucket(uint64_t h) const { return h >> shift_; }
  size_t NextBucket(size_t idx) const {
    return idx + 1 < buckets_.size() ? idx + 1 : 0;
  }

  static size_t BucketCountFor(size_t n) {
    size_t buckets = kInitialBuckets;
    while (buckets * kLoadNum / kLoadDen < n) buckets *= 2;
    return buckets;
  }

  template <class K>
  size_t FindBucket(const K& key) const {
    if (buckets_.empty()) return kNpos;
    const uint64_t h = HashOf(key);
    uint32_t dist_fp = kDistInc | (h & kFpMask);
    size_t idx = HomeBucket(h);
    while (true) {
      const Bucket& b = buckets_[idx];
      if (dist_fp == b.dist_and_fp && eq_(KeyOf{}(slots_[b.slot]), key)) {
        return idx;
      }
      // Robin-hood invariant: entries along a chain carry non-decreasing
      // displacement, so the first poorer bucket proves absence.
      if (dist_fp > b.dist_and_fp) return kNpos;
      dist_fp += kDistInc;
      idx = NextBucket(idx);
    }
  }

  void PlaceAndShiftUp(Bucket b, size_t idx) {
    while (buckets_[idx].dist_and_fp != 0) {
      std::swap(b, buckets_[idx]);
      b.dist_and_fp += kDistInc;
      idx = NextBucket(idx);
    }
    buckets_[idx] = b;
  }

  void Grow() {
    Rehash(buckets_.empty() ? kInitialBuckets : buckets_.size() * 2);
  }

  void Rehash(size_t bucket_count) {
    buckets_.assign(bucket_count, Bucket{});
    capacity_ = bucket_count * kLoadNum / kLoadDen;
    uint8_t shift = 64;
    for (size_t b = 1; b < bucket_count; b *= 2) --shift;
    shift_ = shift;
    for (uint32_t slot = 0; slot < slots_.size(); ++slot) {
      const uint64_t h = HashOf(KeyOf{}(slots_[slot]));
      uint32_t dist_fp = kDistInc | (h & kFpMask);
      size_t idx = HomeBucket(h);
      while (dist_fp <= buckets_[idx].dist_and_fp) {
        dist_fp += kDistInc;
        idx = NextBucket(idx);
      }
      PlaceAndShiftUp(Bucket{dist_fp, slot}, idx);
    }
  }

  std::vector<Slot> slots_;
  std::vector<Bucket> buckets_;
  size_t capacity_ = 0;  // buckets * max-load, cached at rehash
  uint8_t shift_ = 64;   // 64 - log2(buckets_.size()); unused while empty
  Hash hash_{};
  KeyEqual eq_{};
};

}  // namespace container_internal

/// Default hasher: std::hash, finalized by the table's avalanche mix.
template <class Key>
struct DenseHash {
  size_t operator()(const Key& key) const { return std::hash<Key>{}(key); }
};

/// Transparent string hasher: probes hash a string_view directly, so a
/// lookup with a string_view (or char*) never builds a std::string.
struct TransparentStringHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const {
    return std::hash<std::string_view>{}(s);
  }
};

/// \brief Open-addressing map with dense (insertion-ordered) storage.
///
/// API subset of std::unordered_map, with two deviations: value_type is
/// pair<Key, T> (non-const Key — required by swap-remove erase; do not
/// mutate keys through iterators), and insertion invalidates iterators
/// like std::vector does.
template <class Key, class T, class Hash = DenseHash<Key>,
          class KeyEqual = std::equal_to<>>
class dense_map {
  using Slot = std::pair<Key, T>;
  using Table =
      container_internal::DenseTable<Slot, container_internal::KeyOfPair<Slot>,
                                     Hash, KeyEqual>;

 public:
  using key_type = Key;
  using mapped_type = T;
  using value_type = Slot;
  using iterator = typename Table::iterator;
  using const_iterator = typename Table::const_iterator;

  dense_map() = default;

  iterator begin() { return table_.begin(); }
  iterator end() { return table_.end(); }
  const_iterator begin() const { return table_.begin(); }
  const_iterator end() const { return table_.end(); }

  size_t size() const { return table_.size(); }
  bool empty() const { return table_.empty(); }
  void clear() { table_.clear(); }
  void reserve(size_t n) { table_.reserve(n); }

  template <class K>
  iterator find(const K& key) {
    return table_.find(key);
  }
  template <class K>
  const_iterator find(const K& key) const {
    return table_.find(key);
  }
  template <class K>
  size_t count(const K& key) const {
    return table_.count(key);
  }
  template <class K>
  bool contains(const K& key) const {
    return table_.contains(key);
  }
  template <class K>
  size_t erase(const K& key) {
    return table_.erase(key);
  }

  /// try_emplace: `key` may be any type hashable/comparable against Key
  /// (e.g. string_view against std::string); Key is constructed from it
  /// only when the entry is actually inserted.
  template <class K, class... Args>
  std::pair<iterator, bool> try_emplace(K&& key, Args&&... args) {
    auto [slot, inserted] = table_.FindOrEmplace(key, [&] {
      return Slot(std::piecewise_construct,
                  std::forward_as_tuple(std::forward<K>(key)),
                  std::forward_as_tuple(std::forward<Args>(args)...));
    });
    return {table_.begin() + slot, inserted};
  }

  template <class K, class V>
  std::pair<iterator, bool> emplace(K&& key, V&& value) {
    return try_emplace(std::forward<K>(key), std::forward<V>(value));
  }
  std::pair<iterator, bool> insert(const value_type& v) {
    return try_emplace(v.first, v.second);
  }
  std::pair<iterator, bool> insert(value_type&& v) {
    return try_emplace(std::move(v.first), std::move(v.second));
  }

  template <class K>
  T& operator[](K&& key) ANOT_LIFETIME_BOUND {
    return try_emplace(std::forward<K>(key)).first->second;
  }

  template <class K>
  const T& at(const K& key) const ANOT_LIFETIME_BOUND {
    auto it = find(key);
    if (it == end()) throw std::out_of_range("dense_map::at: key not found");
    return it->second;
  }
  template <class K>
  T& at(const K& key) ANOT_LIFETIME_BOUND {
    auto it = find(key);
    if (it == end()) throw std::out_of_range("dense_map::at: key not found");
    return it->second;
  }

 private:
  Table table_;
};

/// \brief Open-addressing set with dense (insertion-ordered) storage.
/// Iteration is const-only: mutating a stored key would corrupt the index.
template <class Key, class Hash = DenseHash<Key>,
          class KeyEqual = std::equal_to<>>
class dense_set {
  using Table =
      container_internal::DenseTable<Key, container_internal::KeyIdentity<Key>,
                                     Hash, KeyEqual>;

 public:
  using key_type = Key;
  using value_type = Key;
  using iterator = typename Table::const_iterator;
  using const_iterator = typename Table::const_iterator;

  dense_set() = default;

  const_iterator begin() const { return table_.begin(); }
  const_iterator end() const { return table_.end(); }

  size_t size() const { return table_.size(); }
  bool empty() const { return table_.empty(); }
  void clear() { table_.clear(); }
  void reserve(size_t n) { table_.reserve(n); }

  template <class K>
  const_iterator find(const K& key) const {
    return table_.find(key);
  }
  template <class K>
  size_t count(const K& key) const {
    return table_.count(key);
  }
  template <class K>
  bool contains(const K& key) const {
    return table_.contains(key);
  }
  template <class K>
  size_t erase(const K& key) {
    return table_.erase(key);
  }

  template <class K>
  std::pair<const_iterator, bool> insert(K&& key) {
    auto [slot, inserted] = table_.FindOrEmplace(
        key, [&] { return Key(std::forward<K>(key)); });
    return {table_.begin() + slot, inserted};
  }

  /// Order-insensitive equality (matches std::unordered_set semantics).
  friend bool operator==(const dense_set& a, const dense_set& b) {
    if (a.size() != b.size()) return false;
    for (const Key& k : a) {
      if (!b.contains(k)) return false;
    }
    return true;
  }
  friend bool operator!=(const dense_set& a, const dense_set& b) {
    return !(a == b);
  }

 private:
  Table table_;
};

/// Dense map over interned string keys with allocation-free string_view
/// probes.
template <class T>
using string_map =
    dense_map<std::string, T, TransparentStringHash, std::equal_to<>>;

using string_set =
    dense_set<std::string, TransparentStringHash, std::equal_to<>>;

/// \brief Vector with N elements of inline storage; spills to the heap
/// beyond that. Covers the std::vector API surface the adjacency and
/// witness-list call sites use.
template <class T, size_t N = 8>
class small_vec {
  static_assert(N > 0, "small_vec requires at least one inline slot");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  small_vec() noexcept : data_(InlinePtr()) {}
  small_vec(std::initializer_list<T> init) : small_vec() {
    assign(init.begin(), init.end());
  }
  small_vec(const small_vec& other) : small_vec() {
    assign(other.begin(), other.end());
  }
  small_vec(small_vec&& other) noexcept : small_vec() {
    StealOrMove(std::move(other));
  }
  small_vec& operator=(const small_vec& other) {
    if (this != &other) assign(other.begin(), other.end());
    return *this;
  }
  small_vec& operator=(small_vec&& other) noexcept {
    if (this != &other) {
      Reset();
      StealOrMove(std::move(other));
    }
    return *this;
  }
  small_vec& operator=(std::initializer_list<T> init) {
    assign(init.begin(), init.end());
    return *this;
  }
  template <class Alloc>
  small_vec& operator=(const std::vector<T, Alloc>& v) {
    assign(v.begin(), v.end());
    return *this;
  }
  ~small_vec() { Reset(); }

  iterator begin() { return data_; }
  iterator end() { return data_ + size_; }
  const_iterator begin() const { return data_; }
  const_iterator end() const { return data_ + size_; }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return capacity_; }

  T& operator[](size_t i) ANOT_LIFETIME_BOUND { return data_[i]; }
  const T& operator[](size_t i) const ANOT_LIFETIME_BOUND {
    return data_[i];
  }
  T& front() ANOT_LIFETIME_BOUND { return data_[0]; }
  const T& front() const ANOT_LIFETIME_BOUND { return data_[0]; }
  T& back() ANOT_LIFETIME_BOUND { return data_[size_ - 1]; }
  const T& back() const ANOT_LIFETIME_BOUND { return data_[size_ - 1]; }

  void clear() {
    DestroyRange(data_, data_ + size_);
    size_ = 0;
  }

  void reserve(size_t n) {
    if (n <= capacity_) return;
    size_t cap = capacity_;
    while (cap < n) cap *= 2;
    T* fresh = std::allocator<T>{}.allocate(cap);
    for (size_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(fresh + i)) T(std::move(data_[i]));
    }
    DestroyRange(data_, data_ + size_);
    ReleaseHeap();
    data_ = fresh;
    capacity_ = cap;
  }

  void push_back(const T& v) { emplace_back(v); }
  void push_back(T&& v) { emplace_back(std::move(v)); }
  template <class... Args>
  T& emplace_back(Args&&... args) ANOT_LIFETIME_BOUND {
    if (size_ == capacity_) reserve(size_ + 1);
    ::new (static_cast<void*>(data_ + size_)) T(std::forward<Args>(args)...);
    return data_[size_++];
  }

  void pop_back() {
    --size_;
    data_[size_].~T();
  }

  iterator insert(const_iterator pos, const T& v) {
    const size_t idx = static_cast<size_t>(pos - data_);
    if (size_ == capacity_) reserve(size_ + 1);
    if (idx == size_) {
      emplace_back(v);
    } else {
      ::new (static_cast<void*>(data_ + size_)) T(std::move(data_[size_ - 1]));
      for (size_t i = size_ - 1; i > idx; --i) data_[i] = std::move(data_[i - 1]);
      data_[idx] = v;
      ++size_;
    }
    return data_ + idx;
  }

  iterator erase(const_iterator first, const_iterator last) {
    T* f = data_ + (first - data_);
    T* l = data_ + (last - data_);
    T* new_end = std::move(l, data_ + size_, f);
    DestroyRange(new_end, data_ + size_);
    size_ = static_cast<size_t>(new_end - data_);
    return f;
  }

  template <class It>
  void assign(It first, It last) {
    clear();
    const size_t n = static_cast<size_t>(std::distance(first, last));
    reserve(n);
    for (; first != last; ++first) emplace_back(*first);
  }

  friend bool operator==(const small_vec& a, const small_vec& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator!=(const small_vec& a, const small_vec& b) {
    return !(a == b);
  }
  template <class Alloc>
  friend bool operator==(const small_vec& a, const std::vector<T, Alloc>& b) {
    return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
  }
  template <class Alloc>
  friend bool operator==(const std::vector<T, Alloc>& a, const small_vec& b) {
    return b == a;
  }
  template <class Alloc>
  friend bool operator!=(const small_vec& a, const std::vector<T, Alloc>& b) {
    return !(a == b);
  }
  template <class Alloc>
  friend bool operator!=(const std::vector<T, Alloc>& a, const small_vec& b) {
    return !(b == a);
  }

 private:
  T* InlinePtr() ANOT_LIFETIME_BOUND {
    return reinterpret_cast<T*>(inline_storage_);
  }
  bool IsInline() const {
    return data_ == reinterpret_cast<const T*>(inline_storage_);
  }

  static void DestroyRange(T* first, T* last) {
    for (; first != last; ++first) first->~T();
  }

  void ReleaseHeap() {
    if (!IsInline()) std::allocator<T>{}.deallocate(data_, capacity_);
  }

  /// Destroys contents and returns to the empty inline state.
  void Reset() {
    DestroyRange(data_, data_ + size_);
    ReleaseHeap();
    data_ = InlinePtr();
    size_ = 0;
    capacity_ = N;
  }

  /// Adopts `other`'s heap buffer when it has one, else moves the inline
  /// elements. `other` is left empty and inline either way.
  void StealOrMove(small_vec&& other) noexcept {
    if (other.IsInline()) {
      for (size_t i = 0; i < other.size_; ++i) {
        ::new (static_cast<void*>(data_ + i)) T(std::move(other.data_[i]));
      }
      size_ = other.size_;
      DestroyRange(other.data_, other.data_ + other.size_);
      other.size_ = 0;
    } else {
      data_ = other.data_;
      size_ = other.size_;
      capacity_ = other.capacity_;
      other.data_ = other.InlinePtr();
      other.size_ = 0;
      other.capacity_ = N;
    }
  }

  // anot-own: points at inline_storage_ below or at a heap block this
  // small_vec allocated and frees in Reset(); never borrows external memory.
  T* data_;
  size_t size_ = 0;
  size_t capacity_ = N;
  alignas(T) unsigned char inline_storage_[N * sizeof(T)];
};

/// \brief Sorted flat set over a small_vec: ascending unique elements,
/// binary-search membership, inline storage for the first N.
///
/// The right shape for sets that stay tiny and are probed often (e.g.
/// per-entity directed relation-token sets R(e)): membership is a branch
/// over one or two cache lines, iteration is ascending — deterministic
/// AND meaningful, unlike any hash order — and tiny sets allocate
/// nothing.
template <class T, size_t N = 8>
class sorted_small_set {
 public:
  using value_type = T;
  using const_iterator = const T*;

  sorted_small_set() = default;

  const_iterator begin() const { return vec_.begin(); }
  const_iterator end() const { return vec_.end(); }
  size_t size() const { return vec_.size(); }
  bool empty() const { return vec_.empty(); }
  void clear() { vec_.clear(); }
  void reserve(size_t n) { vec_.reserve(n); }

  /// Inserts keeping ascending order; returns false when already present.
  bool insert(const T& v) {
    auto it = std::lower_bound(vec_.begin(), vec_.end(), v);
    if (it != vec_.end() && *it == v) return false;
    vec_.insert(it, v);
    return true;
  }

  size_t count(const T& v) const {
    return std::binary_search(vec_.begin(), vec_.end(), v) ? 1 : 0;
  }
  bool contains(const T& v) const { return count(v) != 0; }

  friend bool operator==(const sorted_small_set& a,
                         const sorted_small_set& b) {
    return a.vec_ == b.vec_;
  }
  friend bool operator!=(const sorted_small_set& a,
                         const sorted_small_set& b) {
    return !(a == b);
  }

 private:
  small_vec<T, N> vec_;
};

}  // namespace anot
