#include "util/random.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/logging.h"

namespace anot {

namespace {
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  ANOT_DCHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  ANOT_DCHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

double Rng::Normal(double mean, double stddev) {
  // Box-Muller; one draw per call keeps the state sequence simple to reason
  // about for reproducibility.
  double u1 = UniformDouble();
  double u2 = UniformDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return mean + stddev * z;
}

double Rng::Exponential(double mean) {
  ANOT_DCHECK(mean > 0);
  double u = UniformDouble();
  if (u < 1e-300) u = 1e-300;
  return -mean * std::log(u);
}

uint64_t Rng::Zipf(uint64_t n, double s) {
  ANOT_DCHECK(n > 0);
  if (zipf_n_ != n || zipf_s_ != s) {
    zipf_n_ = n;
    zipf_s_ = s;
    zipf_cdf_.resize(n);
    double acc = 0.0;
    for (uint64_t i = 0; i < n; ++i) {
      acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
      zipf_cdf_[i] = acc;
    }
    for (auto& c : zipf_cdf_) c /= acc;
  }
  double u = UniformDouble();
  auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  return static_cast<uint64_t>(it - zipf_cdf_.begin());
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  ANOT_CHECK(k <= n) << "cannot sample " << k << " from " << n;
  if (k == 0) return {};
  if (k * 3 >= n) {
    // Dense case: shuffle a full index vector and truncate.
    std::vector<size_t> idx(n);
    for (size_t i = 0; i < n; ++i) idx[i] = i;
    Shuffle(&idx);
    idx.resize(k);
    return idx;
  }
  // Sparse case: rejection into a hash set.
  std::unordered_set<size_t> seen;
  std::vector<size_t> out;
  out.reserve(k);
  while (out.size() < k) {
    size_t candidate = static_cast<size_t>(Uniform(n));
    if (seen.insert(candidate).second) out.push_back(candidate);
  }
  return out;
}

size_t Rng::Weighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    ANOT_DCHECK(w >= 0.0);
    total += w;
  }
  ANOT_CHECK(total > 0.0) << "Weighted() requires positive total weight";
  double u = UniformDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u < acc) return i;
  }
  return weights.size() - 1;
}

ZipfSampler::ZipfSampler(uint64_t n, double s) : n_(n), cdf_(n) {
  ANOT_CHECK(n > 0);
  double acc = 0.0;
  for (uint64_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = acc;
  }
  for (auto& c : cdf_) c /= acc;
}

uint64_t ZipfSampler::Sample(Rng* rng) const {
  double u = rng->UniformDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace anot
