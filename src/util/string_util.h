#pragma once

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

namespace anot {

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Strips ASCII whitespace from both ends.
std::string Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Renders a double with `digits` decimals (fixed notation).
std::string FormatDouble(double value, int digits = 3);

}  // namespace anot
