#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace anot {

/// \brief Fixed-size worker pool used by the experiment driver to run
/// independent (dataset, model) configurations in parallel.
///
/// Tasks are plain std::function<void()>; the pool joins on destruction.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads) {
    if (num_threads == 0) num_threads = 1;
    workers_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& t : workers_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; never blocks.
  void Submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      tasks_.push(std::move(task));
      ++pending_;
    }
    cv_.notify_one();
  }

  /// Blocks until every submitted task has finished.
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return pending_ == 0; });
  }

 private:
  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
        if (stop_ && tasks_.empty()) return;
        task = std::move(tasks_.front());
        tasks_.pop();
      }
      task();
      {
        std::lock_guard<std::mutex> lock(mu_);
        --pending_;
        if (pending_ == 0) done_cv_.notify_all();
      }
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  std::queue<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
  size_t pending_ = 0;
  bool stop_ = false;
};

}  // namespace anot
