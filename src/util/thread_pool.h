#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace anot {

/// \brief Fixed-size worker pool for the offline construction pipeline and
/// the experiment driver.
///
/// Tasks are plain std::function<void()>; the pool joins on destruction,
/// draining any still-queued tasks first. A task that throws does not kill
/// the worker: the first exception is captured and rethrown by the next
/// Wait() call, so ANOT_CHECK failures inside parallel sections surface on
/// the submitting thread instead of terminating the process silently.
/// An exception still pending at destruction (no final Wait()) cannot be
/// rethrown from the destructor; it is logged and dropped — call Wait()
/// before destroying the pool if task failures must be observed.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads) {
    if (num_threads == 0) num_threads = 1;
    workers_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& t : workers_) t.join();
    if (error_) {
      try {
        std::rethrow_exception(error_);
      } catch (const std::exception& e) {
        ANOT_LOG(Error) << "ThreadPool destroyed with unobserved task "
                           "exception: " << e.what();
      } catch (...) {
        ANOT_LOG(Error)
            << "ThreadPool destroyed with unobserved task exception";
      }
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueue a task; never blocks.
  void Submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      tasks_.push(std::move(task));
      ++pending_;
    }
    cv_.notify_one();
  }

  /// Blocks until every submitted task has finished. Rethrows the first
  /// exception thrown by a task since the previous Wait(), if any.
  void Wait() {
    std::exception_ptr error;
    {
      std::unique_lock<std::mutex> lock(mu_);
      done_cv_.wait(lock, [this] { return pending_ == 0; });
      std::swap(error, error_);
    }
    if (error) std::rethrow_exception(error);
  }

 private:
  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
        if (stop_ && tasks_.empty()) return;
        task = std::move(tasks_.front());
        tasks_.pop();
      }
      std::exception_ptr error;
      try {
        task();
      } catch (...) {
        error = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (error && !error_) error_ = std::move(error);
        --pending_;
        if (pending_ == 0) done_cv_.notify_all();
      }
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  std::queue<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
  std::exception_ptr error_;
  size_t pending_ = 0;
  bool stop_ = false;
};

/// Maps the AnoTOptions::num_threads convention (0 = auto) to a concrete
/// worker count; never returns 0.
inline size_t ResolveNumThreads(size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

/// Number of deterministic shards for `n` work items. Depends only on the
/// data size — never on the thread count — so a 1-thread and an N-thread
/// run partition (and therefore merge) identically.
inline size_t DeterministicShardCount(size_t n) {
  constexpr size_t kMaxShards = 32;
  constexpr size_t kMinPerShard = 256;
  if (n == 0) return 1;
  const size_t by_work = (n + kMinPerShard - 1) / kMinPerShard;
  return std::min(kMaxShards, std::max<size_t>(1, by_work));
}

/// Runs fn(shard, begin, end) over `num_shards` contiguous ranges of
/// [0, n). With a pool the shards run concurrently (call order is
/// unspecified); without one they run serially in shard order. Callers
/// needing deterministic output must make shards independent and merge
/// their results in shard-index order after this returns.
template <typename Fn>
void ParallelForShards(ThreadPool* pool, size_t n, size_t num_shards,
                       Fn&& fn) {
  if (num_shards == 0) num_shards = 1;
  const size_t per_shard = (n + num_shards - 1) / num_shards;
  if (pool == nullptr || num_shards == 1 || pool->num_threads() <= 1) {
    for (size_t s = 0; s < num_shards; ++s) {
      const size_t begin = std::min(n, s * per_shard);
      const size_t end = std::min(n, begin + per_shard);
      fn(s, begin, end);
    }
    return;
  }
  for (size_t s = 0; s < num_shards; ++s) {
    const size_t begin = std::min(n, s * per_shard);
    const size_t end = std::min(n, begin + per_shard);
    pool->Submit([&fn, s, begin, end] { fn(s, begin, end); });
  }
  pool->Wait();
}

}  // namespace anot
