#pragma once

#include <algorithm>
#include <cstddef>
#include <exception>
#include <functional>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

#include "util/logging.h"
#include "util/thread_annotations.h"

namespace anot {

/// \brief Fixed-size worker pool for the offline construction pipeline and
/// the experiment driver.
///
/// Tasks are plain std::function<void()>; the pool joins on destruction,
/// draining any still-queued tasks first. A task that throws does not kill
/// the worker: the first exception is captured and rethrown by the next
/// Wait() call, so ANOT_CHECK failures inside parallel sections surface on
/// the submitting thread instead of terminating the process silently.
/// An exception still pending at destruction (no final Wait()) cannot be
/// rethrown from the destructor; it is logged and dropped — call Wait()
/// before destroying the pool if task failures must be observed.
///
/// Lock discipline (compiler-checked under -Wthread-safety): `mu_` guards
/// the queue, the pending counter, the stop flag, and the captured
/// exception. `workers_` is written only by the constructor and joined
/// only by the destructor — construction/destruction happen-before and
/// happen-after every worker, so it needs no lock; `num_threads()` reads
/// its size, which is immutable in between.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads) {
    if (num_threads == 0) num_threads = 1;
    workers_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() {
    {
      MutexLock lock(mu_);
      stop_ = true;
    }
    cv_.NotifyAll();
    for (auto& t : workers_) t.join();
    // The joins above order every worker's writes before this point, but
    // the capability analysis (rightly) has no join-awareness: error_ is
    // guarded data, so read it under the lock. Uncontended by now.
    std::exception_ptr error;
    {
      MutexLock lock(mu_);
      std::swap(error, error_);
    }
    if (error) {
      try {
        std::rethrow_exception(error);
      } catch (const std::exception& e) {
        ANOT_LOG(Error) << "ThreadPool destroyed with unobserved task "
                           "exception: " << e.what();
      } catch (...) {
        ANOT_LOG(Error)
            << "ThreadPool destroyed with unobserved task exception";
      }
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueue a task; never blocks. Safe to call from any thread,
  /// including concurrently with Wait().
  void Submit(std::function<void()> task) ANOT_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      tasks_.push(std::move(task));
      ++pending_;
    }
    cv_.NotifyOne();
  }

  /// Blocks until every submitted task has finished. Rethrows the first
  /// exception thrown by a task since the previous Wait(), if any.
  void Wait() ANOT_EXCLUDES(mu_) {
    std::exception_ptr error;
    {
      MutexLock lock(mu_);
      while (pending_ != 0) done_cv_.Wait(mu_);
      std::swap(error, error_);
    }
    if (error) std::rethrow_exception(error);
  }

 private:
  void WorkerLoop() ANOT_EXCLUDES(mu_) {
    for (;;) {
      std::function<void()> task;
      {
        MutexLock lock(mu_);
        while (!stop_ && tasks_.empty()) cv_.Wait(mu_);
        if (stop_ && tasks_.empty()) return;
        task = std::move(tasks_.front());
        tasks_.pop();
      }
      std::exception_ptr error;
      try {
        task();
      } catch (...) {
        error = std::current_exception();
      }
      {
        MutexLock lock(mu_);
        if (error && !error_) error_ = std::move(error);
        --pending_;
        if (pending_ == 0) done_cv_.NotifyAll();
      }
    }
  }

  Mutex mu_;
  /// Signaled on task arrival and on stop.
  CondVar cv_;
  /// Signaled when the pending count drains to zero.
  CondVar done_cv_;
  std::queue<std::function<void()>> tasks_ ANOT_GUARDED_BY(mu_);
  std::vector<std::thread> workers_;
  std::exception_ptr error_ ANOT_GUARDED_BY(mu_);
  size_t pending_ ANOT_GUARDED_BY(mu_) = 0;
  bool stop_ ANOT_GUARDED_BY(mu_) = false;
};

/// Maps the AnoTOptions::num_threads convention (0 = auto) to a concrete
/// worker count; never returns 0.
inline size_t ResolveNumThreads(size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

/// Number of deterministic shards for `n` work items. Depends only on the
/// data size — never on the thread count — so a 1-thread and an N-thread
/// run partition (and therefore merge) identically.
inline size_t DeterministicShardCount(size_t n) {
  constexpr size_t kMaxShards = 32;
  constexpr size_t kMinPerShard = 256;
  if (n == 0) return 1;
  const size_t by_work = (n + kMinPerShard - 1) / kMinPerShard;
  return std::min(kMaxShards, std::max<size_t>(1, by_work));
}

/// Runs fn(shard, begin, end) over `num_shards` contiguous ranges of
/// [0, n). With a pool the shards run concurrently (call order is
/// unspecified); without one they run serially in shard order. Callers
/// needing deterministic output must make shards independent and merge
/// their results in shard-index order after this returns.
template <typename Fn>
void ParallelForShards(ThreadPool* pool, size_t n, size_t num_shards,
                       Fn&& fn) {
  if (num_shards == 0) num_shards = 1;
  const size_t per_shard = (n + num_shards - 1) / num_shards;
  if (pool == nullptr || num_shards == 1 || pool->num_threads() <= 1) {
    for (size_t s = 0; s < num_shards; ++s) {
      const size_t begin = std::min(n, s * per_shard);
      const size_t end = std::min(n, begin + per_shard);
      fn(s, begin, end);
    }
    return;
  }
  for (size_t s = 0; s < num_shards; ++s) {
    const size_t begin = std::min(n, s * per_shard);
    const size_t end = std::min(n, begin + per_shard);
    // anot-lint: shared-ok fn outlives the tasks — Wait() below joins
    // every shard before this frame returns, and shards write disjoint
    // state by the merge contract documented above
    pool->Submit([&fn, s, begin, end] { fn(s, begin, end); });
  }
  pool->Wait();
}

}  // namespace anot
