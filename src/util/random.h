#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace anot {

/// \brief Deterministic 64-bit PRNG (xoshiro256** seeded via splitmix64).
///
/// All stochastic components of the library draw from an explicitly seeded
/// Rng so that every experiment is reproducible bit-for-bit. The generator
/// is not cryptographically secure; it is fast and has good statistical
/// quality for simulation workloads.
class Rng {
 public:
  /// Seeds the four-word state from `seed` via splitmix64 expansion.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit draw.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p);

  /// Standard normal via Box-Muller.
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Geometric-ish exponential draw with given mean (> 0).
  double Exponential(double mean);

  /// Zipf-distributed rank in [0, n) with exponent `s` (s >= 0).
  /// Uses an inverted-CDF table cached per (n, s) instance call; intended
  /// for repeated draws, so prefer ZipfSampler for hot loops.
  uint64_t Zipf(uint64_t n, double s);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(Uniform(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Sample k distinct indices from [0, n) (k <= n), order unspecified.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Draw an index proportional to non-negative weights (sum > 0).
  size_t Weighted(const std::vector<double>& weights);

 private:
  uint64_t state_[4];
  // Cache for Zipf draws keyed by (n, s).
  uint64_t zipf_n_ = 0;
  double zipf_s_ = -1.0;
  std::vector<double> zipf_cdf_;
};

/// \brief Precomputed Zipf sampler for hot loops (e.g. datagen).
class ZipfSampler {
 public:
  /// Ranks [0, n) with exponent s; rank 0 is the most popular.
  ZipfSampler(uint64_t n, double s);
  uint64_t Sample(Rng* rng) const;
  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  std::vector<double> cdf_;
};

}  // namespace anot
