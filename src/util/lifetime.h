#pragma once

/// \file
/// Compile-time lifetime and error-discipline annotations.
///
/// The worst bug this codebase has shipped was a lifetime bug: Scorer and
/// Updater once held pointers into AnoT's inline options struct, which
/// dangled when the AnoT was moved and silently corrupted every protocol
/// score. This header is the third static-analysis layer (after the
/// sanitizer matrix and the thread-safety capability analysis) and makes
/// that bug class a *compile* error instead of a debugging session:
///
///   ANOT_LIFETIME_BOUND  `[[clang::lifetimebound]]` under Clang, a no-op
///                        elsewhere. Placed on the implicit `this` of an
///                        accessor that returns a reference/pointer/view
///                        into the object, or on a parameter whose referent
///                        the return value aliases. Clang's `-Wdangling` /
///                        `-Wreturn-stack-address` family then reports, at
///                        the call site, any binding of the result to a
///                        longer-lived variable than the owner — e.g.
///                        `const std::string& n = MakeDict().Name(0);`.
///                        The `ANOT_LIFETIME` CMake option promotes the
///                        family to -Werror on the pinned-clang CI job.
///   ANOT_NODISCARD       `[[nodiscard]]` (both CI compilers). Applied at
///                        class level to Status and Result<T>, so ignoring
///                        a fallible call is a -Werror=unused-result error.
///   not_null<T*>         a borrowed, never-null pointer. The constructor
///                        rejects nullptr at compile time (deleted
///                        overload) and asserts at runtime; the wrapper
///                        documents "borrowed from a longer-lived owner"
///                        at the type level where a raw `T*` member says
///                        nothing. Pointer members that cannot use it
///                        (rebinding, optional) carry an `// anot-own:`
///                        contract instead (enforced by
///                        tools/lifetime_lint.py).
///
/// Annotation discipline (enforced lexically by tools/lifetime_lint.py):
/// every function returning a reference/pointer/string_view into an owner
/// carries ANOT_LIFETIME_BOUND (or an audited `// anot-lint: lifetime-ok
/// <reason>` when the referent has static storage); every raw
/// pointer/reference/view *member* carries an `// anot-own: <owner
/// outlives holder because ...>` contract.

#include <cassert>
#include <cstddef>
#include <type_traits>

#if defined(__has_cpp_attribute)
#if __has_cpp_attribute(clang::lifetimebound)
#define ANOT_LIFETIME_BOUND [[clang::lifetimebound]]
#endif
#endif
#ifndef ANOT_LIFETIME_BOUND
#define ANOT_LIFETIME_BOUND  // no-op: GCC has no lifetime analysis
#endif

#define ANOT_NODISCARD [[nodiscard]]

/// Token pasting with a round of macro expansion, so
/// `ANOT_CONCAT(_st_, __LINE__)` yields `_st_42` — the direct
/// `a##__LINE__` paste suppresses expansion and yields the literal token
/// `a__LINE__` for every use, which is exactly the shadowing bug the
/// statement macros below existed to avoid.
#define ANOT_CONCAT_IMPL(a, b) a##b
#define ANOT_CONCAT(a, b) ANOT_CONCAT_IMPL(a, b)

namespace anot {

/// \brief A borrowed pointer that is never null.
///
/// Modeled on gsl::not_null, cut down to what the borrowed-dependency
/// pattern here needs: implicit construction from a raw pointer (call
/// sites keep passing `&owner` or `graph`), implicit conversion back out,
/// and a hard ban on null. A `not_null<const X*>` member says "I borrow an
/// X that my constructor's caller guarantees outlives me" — the matching
/// `// anot-own:` contract names the owner.
template <typename T>
class not_null {
  static_assert(std::is_pointer<T>::value,
                "not_null<T> requires a pointer type, e.g. not_null<int*>");

 public:
  not_null(T ptr) : ptr_(ptr) {  // NOLINT(runtime/explicit)
    assert(ptr_ != nullptr && "not_null constructed from nullptr");
  }
  not_null(std::nullptr_t) = delete;
  not_null& operator=(std::nullptr_t) = delete;

  T get() const { return ptr_; }
  operator T() const { return ptr_; }  // NOLINT(runtime/explicit)
  T operator->() const { return ptr_; }
  // anot-lint: lifetime-ok dereference yields the pointee, whose lifetime
  // is the borrow contract of the holder (anot-own), not of this wrapper.
  typename std::remove_pointer<T>::type& operator*() const { return *ptr_; }

 private:
  T ptr_;  // not_null's whole point: this is the borrow it guards
};

}  // namespace anot
