#pragma once

#include <cassert>
#include <optional>
#include <utility>

#include "util/lifetime.h"
#include "util/status.h"

namespace anot {

/// \brief A value-or-Status union, the Result idiom from Arrow.
///
/// A Result<T> holds either a T (status().ok()) or an error Status.
/// Accessing the value of an errored Result is a programming error and
/// asserts in debug builds. Class-level [[nodiscard]]: a dropped Result
/// drops both the value and the error it may carry.
template <typename T>
class ANOT_NODISCARD Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error Status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires an error status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const ANOT_LIFETIME_BOUND { return status_; }

  const T& value() const& ANOT_LIFETIME_BOUND {
    assert(ok());
    return *value_;
  }
  T& value() & ANOT_LIFETIME_BOUND {
    assert(ok());
    return *value_;
  }
  T&& MoveValue() ANOT_LIFETIME_BOUND {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the value, or `fallback` when errored.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// \brief Assign the value of a Result expression or propagate its error.
///
/// The temporary's name goes through ANOT_CONCAT so __LINE__ actually
/// expands: the previous direct `_res_##__LINE__` paste produced the
/// literal token `_res___LINE__` for every use, so two expansions in one
/// scope collided (## suppresses argument expansion).
#define ANOT_ASSIGN_OR_RETURN(lhs, expr)                             \
  auto&& ANOT_CONCAT(_anot_res_, __LINE__) = (expr);                 \
  if (!ANOT_CONCAT(_anot_res_, __LINE__).ok())                       \
    return ANOT_CONCAT(_anot_res_, __LINE__).status();               \
  lhs = ANOT_CONCAT(_anot_res_, __LINE__).MoveValue();

}  // namespace anot
