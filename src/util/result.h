#pragma once

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace anot {

/// \brief A value-or-Status union, the Result idiom from Arrow.
///
/// A Result<T> holds either a T (status().ok()) or an error Status.
/// Accessing the value of an errored Result is a programming error and
/// asserts in debug builds.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error Status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires an error status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& MoveValue() {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the value, or `fallback` when errored.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// \brief Assign the value of a Result expression or propagate its error.
#define ANOT_ASSIGN_OR_RETURN(lhs, expr)       \
  auto&& _res_##__LINE__ = (expr);             \
  if (!_res_##__LINE__.ok()) return _res_##__LINE__.status(); \
  lhs = _res_##__LINE__.MoveValue();

}  // namespace anot
