#include "util/logging.h"

#include "util/status.h"
#include "util/thread_annotations.h"

namespace anot {

namespace {
/// Serializes whole messages onto std::cerr so concurrent threads never
/// interleave mid-line. The stream itself is the guarded resource; every
/// emit path below takes the lock for exactly one rendered message.
Mutex g_log_mutex;

// anot-lint: lifetime-ok returns string literals (static storage).
const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  // relaxed: see internal::ShouldLog — standalone knob, publishes nothing.
  internal::g_min_level.store(static_cast<int>(level),
                              std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(
      internal::g_min_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  // ANOT_LOG already filtered, but LogMessage is constructible directly;
  // re-check so a level raised mid-message is still honored.
  if (!ShouldLog(level_)) return;
  MutexLock lock(g_log_mutex);
  std::cerr << stream_.str() << std::endl;
}

FatalMessage::FatalMessage(const char* file, int line, const char* expr) {
  stream_ << "[FATAL " << file << ":" << line << "] Check failed: " << expr
          << " ";
}

FatalMessage::~FatalMessage() {
  {
    MutexLock lock(g_log_mutex);
    std::cerr << stream_.str() << std::endl;
  }
  std::abort();
}

}  // namespace internal
}  // namespace anot
