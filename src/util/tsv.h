#pragma once

#include <functional>
#include <string>
#include <vector>

#include "util/status.h"

namespace anot {

/// \brief Minimal TSV reader/writer for TKG dataset files.
///
/// TKG quadruple files are tab-separated `subject relation object time`
/// (ICEWS convention); quintuple files append an end time. The reader
/// streams line-by-line so multi-million-fact files never fully reside in
/// memory.
class TsvReader {
 public:
  /// Invokes `row_cb` for each non-empty, non-comment ('#') line with the
  /// tab-split fields. Stops and returns an error if the callback returns
  /// a non-OK Status.
  static Status ForEachRow(
      const std::string& path,
      const std::function<Status(const std::vector<std::string>&)>& row_cb);

  /// Cheap upper-bound estimate of the number of data rows in `path`:
  /// a buffered newline count, no splitting or allocation per line.
  /// Comment/blank lines are counted too (it is a reserve hint, not a
  /// parse). Returns 0 when the file cannot be opened — the subsequent
  /// real read reports the error.
  static size_t EstimateRows(const std::string& path);
};

class TsvWriter {
 public:
  /// Writes all rows, tab-joined, one per line. Overwrites `path`.
  static Status WriteAll(const std::string& path,
                         const std::vector<std::vector<std::string>>& rows);
};

}  // namespace anot
