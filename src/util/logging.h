#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace anot {

/// \brief Severity levels for the library logger.
enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// \brief Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink that emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Sink that aborts the process after emitting (fatal checks).
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* expr);
  [[noreturn]] ~FatalMessage();
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal

#define ANOT_LOG(level)                                                   \
  ::anot::internal::LogMessage(::anot::LogLevel::k##level, __FILE__,      \
                               __LINE__)                                  \
      .stream()

/// Invariant check active in all build types. Use for programmer errors
/// that must never ship silently (Google style: fail fast and loudly).
#define ANOT_CHECK(expr)                                                  \
  if (!(expr))                                                            \
  ::anot::internal::FatalMessage(__FILE__, __LINE__, #expr).stream()

#define ANOT_CHECK_OK(expr)                                               \
  do {                                                                    \
    ::anot::Status _st = (expr);                                          \
    ANOT_CHECK(_st.ok()) << _st.ToString();                               \
  } while (0)

/// Debug-only check.
#ifdef NDEBUG
#define ANOT_DCHECK(expr) ANOT_CHECK(true)
#else
#define ANOT_DCHECK(expr) ANOT_CHECK(expr)
#endif

}  // namespace anot
