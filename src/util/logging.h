#pragma once

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

#include "util/lifetime.h"

namespace anot {

/// \brief Severity levels for the library logger.
enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// \brief Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Minimum emitted level, read on every ANOT_LOG call site.
/// anot-sync: standalone level knob — loaded/stored memory_order_relaxed
/// (see ShouldLog for why relaxed is sufficient); no data is published
/// through it.
inline std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

/// ANOT_LOG's fast path: decides whether a call site builds a LogMessage
/// at all. memory_order_relaxed is sufficient because the level is a
/// standalone configuration value: no other memory is published via this
/// atomic (nothing is ordered "before the level changed"), every load
/// still sees a coherent value from the variable's own modification
/// order, and the only effect of a momentarily stale read is emitting or
/// dropping a borderline message around a SetLogLevel() race — which is
/// inherently racy at the call-site level anyway. Using seq_cst here
/// would buy no additional guarantee and put a fence on every log-macro
/// hit in the serving path.
inline bool ShouldLog(LogLevel level) {
  return static_cast<int>(level) >=
         g_min_level.load(std::memory_order_relaxed);
}

/// Stream-style log sink that emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  std::ostream& stream() ANOT_LIFETIME_BOUND { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Sink that aborts the process after emitting (fatal checks).
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* expr);
  [[noreturn]] ~FatalMessage();
  std::ostream& stream() ANOT_LIFETIME_BOUND { return stream_; }

 private:
  std::ostringstream stream_;
};

/// Swallows the stream expression in ANOT_LOG's disabled branch so both
/// arms of the conditional have type void ('&' binds looser than '<<').
struct LogVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal

/// Filtered-out messages cost one relaxed atomic load — the LogMessage
/// (and its ostringstream) is only constructed when the level passes.
#define ANOT_LOG(level)                                                   \
  !::anot::internal::ShouldLog(::anot::LogLevel::k##level)                \
      ? (void)0                                                           \
      : ::anot::internal::LogVoidify() &                                  \
        ::anot::internal::LogMessage(::anot::LogLevel::k##level,          \
                                     __FILE__, __LINE__)                  \
            .stream()

/// Invariant check active in all build types. Use for programmer errors
/// that must never ship silently (Google style: fail fast and loudly).
#define ANOT_CHECK(expr)                                                  \
  if (!(expr))                                                            \
  ::anot::internal::FatalMessage(__FILE__, __LINE__, #expr).stream()

// Line-unique temporary (same hygiene as ANOT_RETURN_NOT_OK): an `expr`
// that names a caller-scope `_st` must not bind to the macro's own.
#define ANOT_CHECK_OK(expr)                                               \
  do {                                                                    \
    ::anot::Status ANOT_CONCAT(_anot_ck_, __LINE__) = (expr);             \
    ANOT_CHECK(ANOT_CONCAT(_anot_ck_, __LINE__).ok())                     \
        << ANOT_CONCAT(_anot_ck_, __LINE__).ToString();                   \
  } while (0)

/// Debug-only check.
#ifdef NDEBUG
#define ANOT_DCHECK(expr) ANOT_CHECK(true)
#else
#define ANOT_DCHECK(expr) ANOT_CHECK(expr)
#endif

}  // namespace anot
