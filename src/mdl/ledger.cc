#include "mdl/ledger.h"

#include <algorithm>
#include <cmath>

#include "mdl/encoding.h"
#include "util/logging.h"

namespace anot {

NegativeErrorLedger::NegativeErrorLedger(double tier1_universe,
                                         double tier2_universe)
    : tier1_universe_(tier1_universe),
      tier2_universe_(tier2_universe > 0.0
                          ? tier2_universe
                          : std::max(2.0, std::cbrt(tier1_universe))) {
  ANOT_CHECK(tier1_universe_ >= 1.0);
}

double NegativeErrorLedger::CostAt(uint32_t total, uint32_t mapped,
                                   uint32_t associated) const {
  return NegativeErrorBitsAt(tier1_universe_, tier2_universe_, total, mapped,
                             associated);
}

void NegativeErrorLedger::SetTimestampTotal(Timestamp t, uint32_t total) {
  Counters& c = per_timestamp_[t];
  total_cost_ -= c.cost;
  c.total = total;
  c.mapped = std::min(c.mapped, total);
  c.associated = std::min(c.associated, c.mapped);
  c.cost = CostAt(c.total, c.mapped, c.associated);
  c.epoch = ++epoch_;
  total_cost_ += c.cost;
}

void NegativeErrorLedger::Apply(Timestamp t, int32_t delta_mapped,
                                int32_t delta_associated) {
  auto it = per_timestamp_.find(t);
  ANOT_CHECK(it != per_timestamp_.end())
      << "Apply on unregistered timestamp " << t;
  Counters& c = it->second;
  total_cost_ -= c.cost;
  const int64_t mapped = static_cast<int64_t>(c.mapped) + delta_mapped;
  const int64_t assoc = static_cast<int64_t>(c.associated) + delta_associated;
  ANOT_CHECK(mapped >= 0 && mapped <= c.total) << "mapped out of range";
  ANOT_CHECK(assoc >= 0 && assoc <= mapped) << "associated out of range";
  c.mapped = static_cast<uint32_t>(mapped);
  c.associated = static_cast<uint32_t>(assoc);
  c.cost = CostAt(c.total, c.mapped, c.associated);
  c.epoch = ++epoch_;
  total_cost_ += c.cost;
}

double NegativeErrorLedger::PreviewOne(const Counters& c,
                                       const Delta& d) const {
  const int64_t mapped = static_cast<int64_t>(c.mapped) + d.mapped;
  const int64_t assoc = static_cast<int64_t>(c.associated) + d.associated;
  ANOT_CHECK(mapped >= 0 && mapped <= c.total)
      << "previewed mapped out of range";
  ANOT_CHECK(assoc >= 0 && assoc <= mapped)
      << "previewed associated out of range";
  return CostAt(c.total, static_cast<uint32_t>(mapped),
                static_cast<uint32_t>(assoc)) -
         c.cost;
}

double NegativeErrorLedger::CostDelta(
    const std::unordered_map<Timestamp, Delta>& deltas) const {
  double delta_cost = 0.0;
  // anot-lint: ordered-ok documented contract (see header): this overload
  // sums in hash order, which is deterministic only per identically-built
  // map; callers needing cross-construction bit-identity use the ordered
  // TimestampDelta overload below
  for (const auto& [t, d] : deltas) {
    auto it = per_timestamp_.find(t);
    if (it == per_timestamp_.end()) continue;
    delta_cost += PreviewOne(it->second, d);
  }
  return delta_cost;
}

double NegativeErrorLedger::CostDelta(
    const std::vector<TimestampDelta>& ordered_deltas) const {
  double delta_cost = 0.0;
  for (const TimestampDelta& td : ordered_deltas) {
    auto it = per_timestamp_.find(td.t);
    if (it == per_timestamp_.end()) continue;
    delta_cost += PreviewOne(it->second, td.d);
  }
  return delta_cost;
}

uint64_t NegativeErrorLedger::epoch_at(Timestamp t) const {
  auto it = per_timestamp_.find(t);
  return it == per_timestamp_.end() ? 0 : it->second.epoch;
}

uint32_t NegativeErrorLedger::mapped_at(Timestamp t) const {
  auto it = per_timestamp_.find(t);
  return it == per_timestamp_.end() ? 0 : it->second.mapped;
}

uint32_t NegativeErrorLedger::associated_at(Timestamp t) const {
  auto it = per_timestamp_.find(t);
  return it == per_timestamp_.end() ? 0 : it->second.associated;
}

uint32_t NegativeErrorLedger::total_at(Timestamp t) const {
  auto it = per_timestamp_.find(t);
  return it == per_timestamp_.end() ? 0 : it->second.total;
}

void NegativeErrorLedger::CheckInvariants() const {
#ifdef ANOT_VALIDATE
  double sum = 0.0;
  // anot-lint: ordered-ok validation only: per-entry checks are
  // independent, and the float sum is compared under a tolerance that
  // absorbs ordering drift
  for (const auto& [t, c] : per_timestamp_) {
    ANOT_CHECK(c.mapped <= c.total)
        << "timestamp " << t << ": mapped " << c.mapped << " > total "
        << c.total;
    ANOT_CHECK(c.associated <= c.mapped)
        << "timestamp " << t << ": associated " << c.associated
        << " > mapped " << c.mapped;
    // The cached cost was assigned from this exact pure call, so it must
    // match bit for bit — any difference means a counter moved without a
    // reprice.
    ANOT_CHECK(c.cost == CostAt(c.total, c.mapped, c.associated))
        << "timestamp " << t << ": cached cost stale";
    ANOT_CHECK(c.epoch <= epoch_)
        << "timestamp " << t << ": epoch " << c.epoch
        << " ahead of ledger epoch " << epoch_;
    sum += c.cost;
  }
  // total_cost_ is maintained incrementally (+= new - old per mutation),
  // so allow float drift; the summation order over the hash map varies,
  // which the tolerance also absorbs.
  ANOT_CHECK(std::abs(total_cost_ - sum) <=
             1e-6 * std::max(1.0, std::abs(sum)))
      << "total cost " << total_cost_ << " diverged from per-timestamp sum "
      << sum;
#endif  // ANOT_VALIDATE
}

#ifdef ANOT_VALIDATE
void NegativeErrorLedger::TestOnlyCorruptCountersForValidation(
    Timestamp t, uint32_t total, uint32_t mapped, uint32_t associated) {
  Counters& c = per_timestamp_[t];
  c.total = total;
  c.mapped = mapped;
  c.associated = associated;
}
#endif

}  // namespace anot
