#include "mdl/encoding.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/logging.h"

namespace anot {

double ModelHeaderBits(const MdlUniverse& universe) {
  const double rule_universe = std::max(
      2.0, 2.0 * universe.num_categories * universe.num_categories *
               universe.num_relations);
  // Eq. 2: log(2|C_E|^2|R|) + log C(2|C_E|^2|R|, 3).
  return Log2(rule_universe) + Log2Binomial(rule_universe, 3.0);
}

double AtomicRuleBits(const MdlUniverse& universe, double subject_cat_count,
                      double subject_cat_total, double object_cat_count,
                      double object_cat_total, double relation_count) {
  // Eq. 3: log|C_E| + subject-category code + object-category code +
  // relation code + 1 direction bit.
  double bits = Log2(std::max(2.0, universe.num_categories));
  bits += PrefixCodeBits(subject_cat_count, subject_cat_total);
  bits += PrefixCodeBits(object_cat_count, object_cat_total);
  bits += PrefixCodeBits(relation_count, universe.num_facts);
  bits += 1.0;
  return bits;
}

double RuleEdgeBits(const MdlUniverse& universe, bool triadic) {
  // Eq. 4 with the endpoint code fixed to the candidate-rule universe:
  // identifying each endpoint costs log2 of the candidate pool, plus one
  // direction bit.
  const double pool = std::max(2.0, universe.num_candidate_rules);
  return (triadic ? 3.0 : 2.0) * Log2(pool) + 1.0;
}

double NegativeErrorBitsAt(double tier1_universe, double tier2_universe,
                           double total, double mapped, double associated) {
  mapped = std::min(mapped, total);
  associated = std::min(associated, mapped);
  const double unmapped = total - mapped;
  const double unassociated = mapped - associated;
  double bits = 0.0;
  if (unmapped > 0) {
    bits += Log2Binomial(std::max(tier1_universe - mapped, unmapped + 1),
                         unmapped);
  }
  if (unassociated > 0) {
    bits += Log2Binomial(
        std::max(tier2_universe - associated, unassociated + 1),
        unassociated);
  }
  return bits;
}

void EntropyAccumulator::Add(uint64_t symbol) {
  uint64_t& count = counts_[symbol];
  if (count > 0) {
    sum_clog2c_ -= static_cast<double>(count) *
                   std::log2(static_cast<double>(count));
  }
  ++count;
  sum_clog2c_ += static_cast<double>(count) *
                 std::log2(static_cast<double>(count));
  if (!log_dropped_) events_.push_back(symbol);
  ++total_;
}

void EntropyAccumulator::Merge(const EntropyAccumulator& other) {
  ANOT_CHECK(!log_dropped_ && !other.log_dropped_)
      << "EntropyAccumulator::Merge after DropReplayLog";
  // Replaying the events (instead of folding the count table) keeps the
  // incremental FP sum bitwise equal to a single sequential Add stream.
  events_.reserve(events_.size() + other.events_.size());
  for (uint64_t symbol : other.events_) Add(symbol);
}

void EntropyAccumulator::DropReplayLog() {
  log_dropped_ = true;
  std::vector<uint64_t>().swap(events_);  // actually release the capacity
}

double EntropyAccumulator::TotalBits() const {
  if (total_ == 0) return 0.0;
  const double n = static_cast<double>(total_);
  return std::max(0.0, n * std::log2(n) - sum_clog2c_);
}

}  // namespace anot
