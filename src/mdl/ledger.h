#pragma once

#include <unordered_map>
#include <vector>

#include "tkg/types.h"

namespace anot {

/// \brief Incremental bookkeeping of the negative-error cost L(N_G)
/// (Eq. 8, two-tier realization — see mdl/encoding.h).
///
/// The greedy builder asks two questions per candidate: "what is the total
/// cost now?" and "what would it be if these timestamps gained x mapped /
/// y associated facts?". The ledger answers both in O(affected timestamps)
/// by caching each timestamp's cost term.
class NegativeErrorLedger {
 public:
  /// `tier1_universe` is U1 = |E|^2 * |R|, the per-timestamp position
  /// universe of Eq. 8; `tier2_universe` (default U1^(1/3), roughly |E|)
  /// prices an unassociated-but-mapped fact.
  explicit NegativeErrorLedger(double tier1_universe,
                               double tier2_universe = 0.0);

  /// Registers the number of facts observed at `t`. Must be called before
  /// mutating that timestamp.
  void SetTimestampTotal(Timestamp t, uint32_t total);

  /// Applies permanent deltas to the mapped/associated counters of `t`.
  void Apply(Timestamp t, int32_t delta_mapped, int32_t delta_associated);

  /// Cost change if `deltas` (t -> {delta_mapped, delta_associated}) were
  /// applied, without mutating state. Negative = cost reduction.
  struct Delta {
    int32_t mapped = 0;
    int32_t associated = 0;
  };
  double CostDelta(
      const std::unordered_map<Timestamp, Delta>& deltas) const;

  double total_cost() const { return total_cost_; }
  uint32_t mapped_at(Timestamp t) const;
  uint32_t associated_at(Timestamp t) const;
  uint32_t total_at(Timestamp t) const;
  double tier1_universe() const { return tier1_universe_; }
  double tier2_universe() const { return tier2_universe_; }

  /// Cost of a single timestamp given explicit counters (used by the
  /// monitor on unseen timestamps).
  double CostAt(uint32_t total, uint32_t mapped, uint32_t associated) const;

 private:
  struct Counters {
    uint32_t total = 0;
    uint32_t mapped = 0;
    uint32_t associated = 0;
    double cost = 0.0;
  };

  double tier1_universe_;
  double tier2_universe_;
  double total_cost_ = 0.0;
  std::unordered_map<Timestamp, Counters> per_timestamp_;
};

}  // namespace anot
