#pragma once

#include <unordered_map>
#include <vector>

#include "tkg/types.h"
#include "util/containers.h"

namespace anot {

/// \brief Incremental bookkeeping of the negative-error cost L(N_G)
/// (Eq. 8, two-tier realization — see mdl/encoding.h).
///
/// The greedy builder asks two questions per candidate: "what is the total
/// cost now?" and "what would it be if these timestamps gained x mapped /
/// y associated facts?". The ledger answers both in O(affected timestamps)
/// by caching each timestamp's cost term.
class NegativeErrorLedger {
 public:
  /// `tier1_universe` is U1 = |E|^2 * |R|, the per-timestamp position
  /// universe of Eq. 8; `tier2_universe` (default U1^(1/3), roughly |E|)
  /// prices an unassociated-but-mapped fact.
  explicit NegativeErrorLedger(double tier1_universe,
                               double tier2_universe = 0.0);

  /// Registers the number of facts observed at `t`. Must be called before
  /// mutating that timestamp.
  void SetTimestampTotal(Timestamp t, uint32_t total);

  /// Applies permanent deltas to the mapped/associated counters of `t`.
  void Apply(Timestamp t, int32_t delta_mapped, int32_t delta_associated);

  /// Cost change if `deltas` (t -> {delta_mapped, delta_associated}) were
  /// applied, without mutating state. Negative = cost reduction. Previews
  /// enforce the same counter-range invariants as Apply (a preview that
  /// would crash on apply is a programmer error and fails fast here too);
  /// deltas on unregistered timestamps contribute zero — there are no
  /// counters to move, so applying them is meaningless, not previewable.
  struct Delta {
    int32_t mapped = 0;
    int32_t associated = 0;
  };
  double CostDelta(
      const std::unordered_map<Timestamp, Delta>& deltas) const;

  /// Batch-preview overload over a pre-grouped delta list. Accumulation
  /// follows the list order, so a caller that always presents timestamps
  /// in ascending order gets bit-identical sums regardless of how the
  /// list was produced — the ordering contract the builder's speculative
  /// Δ-evaluation relies on (the unordered_map overload sums in hash
  /// order, which is deterministic only per identically-built map).
  struct TimestampDelta {
    Timestamp t = 0;
    Delta d;
  };
  double CostDelta(const std::vector<TimestampDelta>& ordered_deltas) const;

  /// Monotone mutation counter, incremented by every Apply (and by
  /// SetTimestampTotal). A speculative sweep snapshots it, evaluates
  /// candidate deltas against the frozen state, and later recomputes only
  /// the candidates whose timestamps report a newer epoch — i.e. were
  /// dirtied by an admission after the snapshot.
  uint64_t epoch() const { return epoch_; }
  /// Epoch stamped by the last mutation touching `t` (0 = never touched).
  uint64_t epoch_at(Timestamp t) const;

  double total_cost() const { return total_cost_; }
  uint32_t mapped_at(Timestamp t) const;
  uint32_t associated_at(Timestamp t) const;
  uint32_t total_at(Timestamp t) const;
  double tier1_universe() const { return tier1_universe_; }
  double tier2_universe() const { return tier2_universe_; }

  /// Cost of a single timestamp given explicit counters (used by the
  /// monitor on unseen timestamps).
  double CostAt(uint32_t total, uint32_t mapped, uint32_t associated) const;

  /// Debug validator (compiled behind ANOT_VALIDATE, no-op otherwise):
  /// per-timestamp counter ranges (associated <= mapped <= total), cached
  /// cost bit-identical to a CostAt recompute, per-timestamp epochs <= the
  /// ledger epoch, and total_cost_ equal to the per-timestamp sum within
  /// float tolerance. ANOT_CHECK-fails on the first violation.
  void CheckInvariants() const;

#ifdef ANOT_VALIDATE
  /// Test-only back door (exists only under ANOT_VALIDATE): overwrites the
  /// raw counters of `t` without repricing, fabricating the corrupt state
  /// the validator death tests assert on. Never call outside tests.
  void TestOnlyCorruptCountersForValidation(Timestamp t, uint32_t total,
                                            uint32_t mapped,
                                            uint32_t associated);
#endif

 private:
  struct Counters {
    uint32_t total = 0;
    uint32_t mapped = 0;
    uint32_t associated = 0;
    double cost = 0.0;
    uint64_t epoch = 0;  // ledger epoch of the last mutation
  };

  /// Previewed cost change of one timestamp; CHECKs the same range
  /// invariants Apply enforces.
  double PreviewOne(const Counters& c, const Delta& d) const;

  double tier1_universe_;
  double tier2_universe_;
  double total_cost_ = 0.0;
  uint64_t epoch_ = 0;
  // dense_map: the greedy builder probes a timestamp's counters once per
  // candidate delta, and CostDelta previews touch a handful of timestamps
  // per call. (The unordered_map in the CostDelta overload above is the
  // caller's container, part of the public API — unrelated to storage.)
  dense_map<Timestamp, Counters> per_timestamp_;
};

}  // namespace anot
