#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/math_util.h"

namespace anot {

/// \brief MDL cost terms for rule-graph model selection (paper §4.2).
///
/// Implementation notes (documented deviations in DESIGN.md §3):
///  * Code-length denominators are fixed to quantities of the *data* (G)
///    or the candidate universe rather than the evolving model, keeping
///    every candidate's model cost a precomputable constant so the greedy
///    Δ-evaluation stays local. This is the standard trick in MDL pattern
///    mining (Galbrun 2022) and does not change which candidates win.
struct MdlUniverse {
  double num_entities = 0;        // |E|
  double num_relations = 0;       // |R|
  double num_categories = 0;      // |C_E|
  double num_facts = 0;           // |F|
  double num_candidate_rules = 0; // ranking universe for edge endpoints
};

/// First two terms of Eq. 2: bits to transmit the node/edge counts against
/// their candidate upper bounds. Constant across models with the same
/// category function.
double ModelHeaderBits(const MdlUniverse& universe);

/// Eq. 3 — L(v): identify one atomic rule.
/// `subject_cat_count` / `object_cat_count` are the occurrence counts of
/// the rule's categories among fact subjects/objects; the totals are the
/// corresponding occurrence sums. `relation_count` counts the relation's
/// facts.
double AtomicRuleBits(const MdlUniverse& universe, double subject_cat_count,
                      double subject_cat_total, double object_cat_count,
                      double object_cat_total, double relation_count);

/// Eq. 4 — L(e): identify one rule edge (chain: two endpoints; triadic:
/// three). Endpoint codes use the candidate-rule universe.
double RuleEdgeBits(const MdlUniverse& universe, bool triadic);

/// Per-timestamp negative-error bits, Eq. 8 two-tier realization:
///   tier 1 (unmapped):     log2 C(U1 - mapped, total - mapped)
///   tier 2 (unassociated): log2 C(U2 - associated, mapped - associated)
/// with U1 = |E|^2 * |R| the position universe of one timestamp and
/// U2 = |E| the universe for identifying the missing association partner.
/// U2 << U1 makes explaining *concepts* (atomic rules) strictly more
/// valuable than explaining *order* (rule edges), which realizes the
/// paper's rules-then-edges selection order.
double NegativeErrorBitsAt(double tier1_universe, double tier2_universe,
                           double total, double mapped, double associated);

/// \brief Streaming optimal-prefix-code accounting (Eqs. 6-7).
///
/// For a rule's assertion set, the total subject-side cost is
///   sum_s n_s * (-log2(n_s / |A|)) = |A| log2 |A| - sum_s n_s log2 n_s,
/// maintained incrementally as assertions are added.
///
/// The floating-point value of the incremental sum depends on the Add
/// order, so sharded parallel candidate generation records each shard's
/// symbol sequence and Merge() *replays* it. Merging shard accumulators in
/// shard-index order therefore reproduces the sequential scan's
/// accumulation bit for bit, which is what makes N-thread builds
/// byte-identical to 1-thread builds.
class EntropyAccumulator {
 public:
  void Add(uint64_t symbol);

  /// Replays the other accumulator's Add sequence into this one. The
  /// result is bitwise equal to having issued the same Adds here directly.
  /// Fatal when either side has dropped its replay log: a dropped source
  /// cannot be replayed, and replaying into a dropped target would leave
  /// it with a partial log that silently breaks *its* future merges.
  void Merge(const EntropyAccumulator& other);

  /// Discards the replay log once deterministic merging is finished,
  /// reclaiming the one-entry-per-Add footprint (on large graphs the logs
  /// roughly double the candidate pool's memory). TotalBits()/total() are
  /// unaffected; subsequent Adds still update the counts but are no longer
  /// logged, and any further Merge involving this accumulator is fatal.
  void DropReplayLog();
  bool replay_log_dropped() const { return log_dropped_; }

  /// Total bits = n log2 n - sum_c c log2 c.
  double TotalBits() const;
  uint64_t total() const { return total_; }

 private:
  std::unordered_map<uint64_t, uint64_t> counts_;
  /// Symbols in Add order (replay log for Merge); one entry per Add — the
  /// same footprint as the assertion list the caller already keeps.
  std::vector<uint64_t> events_;
  double sum_clog2c_ = 0.0;
  uint64_t total_ = 0;
  bool log_dropped_ = false;
};

}  // namespace anot
