#pragma once

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "tkg/graph.h"
#include "util/random.h"

namespace anot {

/// \brief Configuration of the synthetic TKG world model.
///
/// The generator plants exactly the structures AnoT exploits — latent
/// entity categories, relation schemas over categories, chain-occurring
/// rules with characteristic timespans, and triadic-closure rules — plus a
/// controllable fraction of schema-free noise facts. See DESIGN.md §3 for
/// why this substitution preserves the paper's experimental behaviour.
struct GeneratorConfig {
  std::string name = "synthetic";
  uint64_t seed = 42;

  size_t num_entities = 1000;
  size_t num_relations = 50;
  size_t num_timestamps = 365;
  size_t num_facts = 20000;
  size_t num_categories = 12;

  /// Zipf exponents for entity popularity within a category and for
  /// relation frequency.
  double entity_zipf = 0.9;
  double relation_zipf = 0.8;

  /// Planted sequential patterns.
  size_t num_chain_rules = 12;
  size_t num_triadic_rules = 6;
  double chain_follow_prob = 0.55;
  double triadic_follow_prob = 0.45;

  /// Fraction of facts drawn uniformly at random (schema-free noise).
  double noise_fraction = 0.05;

  /// Probability a base fact recurs (same s, r, o after a characteristic
  /// per-relation gap) — event KGs like ICEWS/GDELT are recurrence-heavy
  /// ("consult", "make_statement" repeat between the same pairs), which is
  /// what makes r->r self-chain edges informative.
  double recurrence_prob = 0.35;

  /// Probability an entity also joins a second category.
  double secondary_category_prob = 0.25;

  /// Triadic co-occurrence window, in ticks.
  size_t triadic_window = 3;

  /// Duration-based TKG (Wikidata-style): facts get end = start + Exp(mean).
  bool durations = false;
  double mean_duration = 50.0;
};

/// A planted chain rule: head relation followed by tail relation on the
/// same (s, o) pair after ~Normal(mean_gap, jitter) ticks.
struct ChainRuleTemplate {
  RelationId head;
  RelationId tail;
  double mean_gap;
  double jitter;
};

/// A planted triadic rule: (s, head, o) and (h, mid, o) co-occurring within
/// the window trigger (s, close, h) after ~mean_gap ticks.
struct TriadicRuleTemplate {
  RelationId head;
  RelationId mid;
  RelationId close;
  double mean_gap;
};

/// \brief Ground truth of the generated world (for white-box tests).
struct WorldModel {
  std::vector<std::string> category_names;
  /// Primary (and optional secondary) category per entity id.
  std::vector<CategoryId> entity_primary_category;
  std::vector<CategoryId> entity_secondary_category;  // kInvalidId if none
  std::vector<std::vector<EntityId>> category_members;
  /// (subject category, object category) per relation id.
  std::vector<std::pair<CategoryId, CategoryId>> relation_schema;
  /// Characteristic recurrence gap per relation id (ticks).
  std::vector<double> relation_recurrence_gap;
  std::vector<ChainRuleTemplate> chain_rules;
  std::vector<TriadicRuleTemplate> triadic_rules;
};

/// \brief Deterministic synthetic TKG generator.
///
/// Usage:
///   SyntheticGenerator gen(config);
///   auto graph = gen.Generate();
///   const WorldModel& truth = gen.world();
class SyntheticGenerator {
 public:
  explicit SyntheticGenerator(const GeneratorConfig& config);

  /// Generates the full TKG. Entities and relations carry human-readable
  /// names ("PERSON_12", "host_visit") for the interpretability tables.
  std::unique_ptr<TemporalKnowledgeGraph> Generate();

  const WorldModel& world() const ANOT_LIFETIME_BOUND { return world_; }
  const GeneratorConfig& config() const ANOT_LIFETIME_BOUND {
    return config_;
  }

 private:
  void BuildWorld();
  std::string EntityNameFor(EntityId e) const;

  GeneratorConfig config_;
  Rng rng_;
  WorldModel world_;
  std::vector<std::string> relation_names_;
};

}  // namespace anot
