#include "datagen/presets.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace anot {

namespace {

std::string Lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

size_t Scaled(size_t full, double scale, size_t min_value) {
  return std::max(min_value,
                  static_cast<size_t>(static_cast<double>(full) * scale));
}

}  // namespace

GeneratorConfig DatasetPresets::Icews14(double scale) {
  GeneratorConfig cfg;
  cfg.name = "ICEWS14";
  cfg.seed = 1401;
  cfg.num_entities = Scaled(7128, scale, 60);
  cfg.num_relations = 230;
  cfg.num_timestamps = 365;  // daily granularity, one year
  cfg.num_facts = Scaled(90730, scale, 2000);
  cfg.num_categories = 14;
  cfg.num_chain_rules = 20;
  cfg.num_triadic_rules = 10;
  return cfg;
}

GeneratorConfig DatasetPresets::Icews0515(double scale) {
  GeneratorConfig cfg;
  cfg.name = "ICEWS05-15";
  cfg.seed = 515;
  cfg.num_entities = Scaled(10488, scale, 60);
  cfg.num_relations = 251;
  cfg.num_timestamps = 4017;  // daily granularity, eleven years
  cfg.num_facts = Scaled(461329, scale, 3000);
  cfg.num_categories = 14;
  cfg.num_chain_rules = 22;
  cfg.num_triadic_rules = 10;
  return cfg;
}

GeneratorConfig DatasetPresets::Yago11k(double scale) {
  GeneratorConfig cfg;
  cfg.name = "YAGO11k";
  cfg.seed = 11000;
  cfg.num_entities = Scaled(9736, scale, 60);
  cfg.num_relations = 10;  // few relations, like the real YAGO11k
  cfg.num_timestamps = 2801;  // monthly granularity
  cfg.num_facts = Scaled(161540, scale, 2500);
  cfg.num_categories = 8;
  cfg.num_chain_rules = 3;
  cfg.num_triadic_rules = 1;
  cfg.noise_fraction = 0.03;
  return cfg;
}

GeneratorConfig DatasetPresets::Gdelt(double scale) {
  GeneratorConfig cfg;
  cfg.name = "GDELT";
  cfg.seed = 20150219;
  cfg.num_entities = Scaled(7691, scale, 60);
  cfg.num_relations = 240;
  cfg.num_timestamps = 2975;  // 15-minute granularity
  cfg.num_facts = Scaled(3419607, scale, 4000);
  cfg.num_categories = 14;
  cfg.num_chain_rules = 20;
  cfg.num_triadic_rules = 10;
  cfg.noise_fraction = 0.08;  // GDELT is the noisiest source
  return cfg;
}

GeneratorConfig DatasetPresets::Wikidata(double scale) {
  GeneratorConfig cfg;
  cfg.name = "Wikidata";
  cfg.seed = 12554;
  cfg.num_entities = Scaled(12554, scale, 60);
  cfg.num_relations = 24;
  cfg.num_timestamps = 2270;  // yearly-ish granularity in the benchmark
  cfg.num_facts = Scaled(669934, scale, 3000);
  cfg.num_categories = 10;
  cfg.num_chain_rules = 6;
  cfg.num_triadic_rules = 3;
  cfg.durations = true;
  cfg.mean_duration = 80.0;
  return cfg;
}

Result<GeneratorConfig> DatasetPresets::ByName(const std::string& name,
                                               double scale) {
  const std::string key = Lower(name);
  if (key == "icews14") return Icews14(scale);
  if (key == "icews05-15" || key == "icews0515") return Icews0515(scale);
  if (key == "yago11k" || key == "yago") return Yago11k(scale);
  if (key == "gdelt") return Gdelt(scale);
  if (key == "wikidata") return Wikidata(scale);
  return Status::NotFound("unknown dataset preset: " + name);
}

double DatasetPresets::DefaultBenchScale(const std::string& name) {
  const std::string key = Lower(name);
  // Chosen so each dataset lands at roughly 20-30k facts by default.
  if (key == "icews14") return 0.25;
  if (key == "icews05-15" || key == "icews0515") return 0.06;
  if (key == "yago11k" || key == "yago") return 0.15;
  if (key == "gdelt") return 0.008;
  if (key == "wikidata") return 0.04;
  return 1.0;
}

double DatasetPresets::EnvScale() {
  const char* env = std::getenv("ANOT_SCALE");
  if (env == nullptr) return 1.0;
  char* end = nullptr;
  double v = std::strtod(env, &end);
  if (end == env || v <= 0.0) return 1.0;
  return v;
}

std::vector<GeneratorConfig> DatasetPresets::MainBenchmarkSuite() {
  const double env = EnvScale();
  std::vector<GeneratorConfig> out;
  for (const char* name : {"icews14", "icews05-15", "yago11k", "gdelt"}) {
    out.push_back(
        ByName(name, DefaultBenchScale(name) * env).MoveValue());
  }
  return out;
}

}  // namespace anot
