#include "datagen/generator.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "util/logging.h"
#include "util/string_util.h"

namespace anot {

namespace {

const char* const kCategoryPool[] = {
    "PERSON",     "COUNTRY",  "ORGANIZATION", "CITY",     "COMPANY",
    "PRIZE",      "PRODUCT",  "GROUP",        "UNIVERSITY", "BOOK",
    "MOVIE",      "PARTY",    "AGENCY",       "LEADER",   "REBEL_GROUP",
    "BANK",       "MINISTRY", "ATHLETE",      "ARTIST",   "JOURNALIST",
    "COURT",      "UNION",    "REGION",       "MILITARY",
};
constexpr size_t kCategoryPoolSize =
    sizeof(kCategoryPool) / sizeof(kCategoryPool[0]);

const char* const kVerbPool[] = {
    "make_statement",     "host_visit",        "consult",
    "express_intent_to_cooperate", "appeal_for_aid", "accuse",
    "praise_or_endorse",  "sign_agreement",    "provide_military_aid",
    "engage_in_negotiation", "threaten",       "demand",
    "reduce_relations",   "impose_sanctions",  "investigate",
    "arrest_or_detain",   "release_persons",   "win_election",
    "president_of",       "outgoing_president", "born_in",
    "died_in",            "created",           "owns",
    "plays_for",          "transfer_to",       "nominated_for",
    "win_prize",          "write_book",        "direct_movie",
    "graduated_from",     "married_to",        "works_at",
    "chairman_of",        "criticize",         "halt_negotiations",
    "express_intent_to_meet", "provide_economic_aid", "mobilize_forces",
    "return_persons",     "grant_asylum",      "impose_embargo",
    "ratify_treaty",      "veto_resolution",   "deploy_peacekeepers",
    "recall_ambassador",  "open_embassy",      "close_border",
    "extend_invitation",  "reject_proposal",
};
constexpr size_t kVerbPoolSize = sizeof(kVerbPool) / sizeof(kVerbPool[0]);

}  // namespace

SyntheticGenerator::SyntheticGenerator(const GeneratorConfig& config)
    : config_(config), rng_(config.seed) {
  ANOT_CHECK(config_.num_entities >= 4);
  ANOT_CHECK(config_.num_relations >= 2);
  ANOT_CHECK(config_.num_timestamps >= 2);
  ANOT_CHECK(config_.num_categories >= 2);
  BuildWorld();
}

std::string SyntheticGenerator::EntityNameFor(EntityId e) const {
  const CategoryId c = world_.entity_primary_category[e];
  return world_.category_names[c] + "_" + std::to_string(e);
}

void SyntheticGenerator::BuildWorld() {
  const size_t num_cats =
      std::min(config_.num_categories, config_.num_entities / 2);

  world_.category_names.reserve(num_cats);
  for (size_t c = 0; c < num_cats; ++c) {
    if (c < kCategoryPoolSize) {
      world_.category_names.emplace_back(kCategoryPool[c]);
    } else {
      world_.category_names.emplace_back("CAT_" + std::to_string(c));
    }
  }

  // Entities: primary category round-robin weighted towards low category
  // ids (mild Zipf over categories keeps some categories large, mirroring
  // the PERSON/COUNTRY dominance of real event KGs).
  world_.entity_primary_category.resize(config_.num_entities);
  world_.entity_secondary_category.assign(config_.num_entities, kInvalidId);
  world_.category_members.assign(num_cats, {});
  ZipfSampler cat_sampler(num_cats, 0.6);
  for (EntityId e = 0; e < config_.num_entities; ++e) {
    CategoryId c = static_cast<CategoryId>(cat_sampler.Sample(&rng_));
    world_.entity_primary_category[e] = c;
    world_.category_members[c].push_back(e);
    if (rng_.Bernoulli(config_.secondary_category_prob)) {
      CategoryId c2 = static_cast<CategoryId>(cat_sampler.Sample(&rng_));
      if (c2 != c) {
        world_.entity_secondary_category[e] = c2;
        world_.category_members[c2].push_back(e);
      }
    }
  }
  // Guarantee every category is inhabited so relation schemas are valid.
  for (CategoryId c = 0; c < num_cats; ++c) {
    if (world_.category_members[c].empty()) {
      EntityId e = static_cast<EntityId>(rng_.Uniform(config_.num_entities));
      world_.category_members[c].push_back(e);
      if (world_.entity_secondary_category[e] == kInvalidId &&
          world_.entity_primary_category[e] != c) {
        world_.entity_secondary_category[e] = c;
      }
    }
  }

  // Relations: names from the verb pool, schema over categories.
  relation_names_.reserve(config_.num_relations);
  for (RelationId r = 0; r < config_.num_relations; ++r) {
    std::string base = kVerbPool[r % kVerbPoolSize];
    if (r >= kVerbPoolSize) {
      base += "_" + std::to_string(r / kVerbPoolSize);
    }
    relation_names_.push_back(base);
  }
  world_.relation_schema.resize(config_.num_relations);
  world_.relation_recurrence_gap.resize(config_.num_relations);
  for (RelationId r = 0; r < config_.num_relations; ++r) {
    CategoryId cs = static_cast<CategoryId>(cat_sampler.Sample(&rng_));
    CategoryId co = static_cast<CategoryId>(cat_sampler.Sample(&rng_));
    world_.relation_schema[r] = {cs, co};
    world_.relation_recurrence_gap[r] =
        2.0 + static_cast<double>(rng_.Uniform(std::max<uint64_t>(
                  2, config_.num_timestamps / 10)));
  }

  // Plant chain and triadic rules on disjoint relation sets so the ground
  // truth stays unambiguous for white-box tests.
  std::vector<RelationId> pool(config_.num_relations);
  for (RelationId r = 0; r < config_.num_relations; ++r) pool[r] = r;
  rng_.Shuffle(&pool);

  size_t chain_count = std::min(config_.num_chain_rules, pool.size() / 2);
  size_t cursor = 0;
  const Timestamp span = static_cast<Timestamp>(config_.num_timestamps);
  for (size_t i = 0; i < chain_count; ++i) {
    // Length-3 extensions below consume extra pool slots.
    if (cursor + 1 >= pool.size()) break;
    RelationId head = pool[cursor++];
    RelationId tail = pool[cursor++];
    // Tail inherits the head's schema so chains are type-consistent.
    world_.relation_schema[tail] = world_.relation_schema[head];
    double gap = 3.0 + static_cast<double>(rng_.Uniform(
                           std::max<uint64_t>(2, span / 8)));
    ChainRuleTemplate rule{head, tail, gap, std::max(1.0, gap / 6.0)};
    world_.chain_rules.push_back(rule);
    // ~40% of chains extend to length 3 (election -> president ->
    // outgoing); length-3 chains are what make the paper's recursive
    // evidence strategy matter when middles go missing.
    if (cursor + 1 < pool.size() && rng_.Bernoulli(0.4)) {
      RelationId ext = pool[cursor++];
      world_.relation_schema[ext] = world_.relation_schema[head];
      double gap2 = 3.0 + static_cast<double>(rng_.Uniform(
                              std::max<uint64_t>(2, span / 8)));
      world_.chain_rules.push_back(
          ChainRuleTemplate{tail, ext, gap2, std::max(1.0, gap2 / 6.0)});
    }
  }

  size_t triadic_count = std::min(config_.num_triadic_rules,
                                  (pool.size() - cursor) / 3);
  for (size_t i = 0; i < triadic_count; ++i) {
    RelationId head = pool[cursor++];
    RelationId mid = pool[cursor++];
    RelationId close = pool[cursor++];
    // mid shares the head's object category; close connects the two
    // subject categories.
    world_.relation_schema[mid].second = world_.relation_schema[head].second;
    world_.relation_schema[close] = {world_.relation_schema[head].first,
                                     world_.relation_schema[mid].first};
    double gap = 1.0 + static_cast<double>(rng_.Uniform(
                           std::max<uint64_t>(2, span / 40)));
    world_.triadic_rules.push_back(TriadicRuleTemplate{head, mid, close, gap});
  }
}

std::unique_ptr<TemporalKnowledgeGraph> SyntheticGenerator::Generate() {
  auto graph = std::make_unique<TemporalKnowledgeGraph>();

  // Pre-intern every symbol so entity/relation ids match WorldModel indexes.
  for (EntityId e = 0; e < config_.num_entities; ++e) {
    EntityId got = graph->entity_dict().GetOrAdd(EntityNameFor(e));
    ANOT_CHECK(got == e);
  }
  for (RelationId r = 0; r < config_.num_relations; ++r) {
    RelationId got = graph->relation_dict().GetOrAdd(relation_names_[r]);
    ANOT_CHECK(got == r);
  }

  // Per-category Zipf samplers for entity popularity.
  std::vector<ZipfSampler> member_samplers;
  member_samplers.reserve(world_.category_members.size());
  for (const auto& members : world_.category_members) {
    member_samplers.emplace_back(std::max<uint64_t>(1, members.size()),
                                 config_.entity_zipf);
  }
  auto sample_member = [&](CategoryId c) -> EntityId {
    const auto& members = world_.category_members[c];
    return members[member_samplers[c].Sample(&rng_)];
  };

  // Index rules by their trigger relation.
  std::unordered_map<RelationId, std::vector<const ChainRuleTemplate*>>
      chain_by_head;
  for (const auto& rule : world_.chain_rules) {
    chain_by_head[rule.head].push_back(&rule);
  }
  // Chain relations are one-shot per entity pair (election -> president ->
  // outgoing happens once between a person and a country); this is what
  // makes occurrence-order conflicts detectable, mirroring real TKGs.
  std::unordered_set<RelationId> oneshot_relations;
  // Chain tails only ever occur as consequences of their head (one does
  // not become president_of without win_election), so they are excluded
  // from spontaneous base-event sampling.
  std::unordered_set<RelationId> consequence_relations;
  for (const auto& rule : world_.chain_rules) {
    oneshot_relations.insert(rule.head);
    oneshot_relations.insert(rule.tail);
    consequence_relations.insert(rule.tail);
  }
  std::unordered_map<RelationId, std::unordered_set<uint64_t>> used_pairs;
  std::unordered_map<RelationId, std::vector<const TriadicRuleTemplate*>>
      triadic_by_head;
  for (const auto& rule : world_.triadic_rules) {
    triadic_by_head[rule.head].push_back(&rule);
  }

  // Base events sample only relations that can occur spontaneously
  // (consequence relations appear exclusively as chain follow-ups), so
  // the fact budget is not silently eroded by skipped draws.
  std::vector<RelationId> spontaneous;
  spontaneous.reserve(config_.num_relations);
  for (RelationId r = 0; r < config_.num_relations; ++r) {
    if (consequence_relations.count(r) == 0) spontaneous.push_back(r);
  }
  ANOT_CHECK(!spontaneous.empty());
  ZipfSampler spontaneous_sampler(spontaneous.size(), config_.relation_zipf);

  const Timestamp horizon =
      static_cast<Timestamp>(config_.num_timestamps) - 1;

  // Estimate the base-event rate so that base + follow-up facts land near
  // the requested |F|.
  double chain_head_mass = 0.0;
  for (const auto& rule : world_.chain_rules) {
    (void)rule;
  }
  chain_head_mass = world_.chain_rules.empty()
                        ? 0.0
                        : static_cast<double>(world_.chain_rules.size()) /
                              static_cast<double>(config_.num_relations);
  const double overhead = chain_head_mass * config_.chain_follow_prob * 2.5 +
                          config_.recurrence_prob + 0.05;
  const double base_per_tick =
      static_cast<double>(config_.num_facts) /
      (static_cast<double>(config_.num_timestamps) * (1.0 + overhead));

  std::map<Timestamp, std::vector<Fact>> scheduled;
  // Recent facts per object entity for triadic closure search.
  std::unordered_map<EntityId, std::deque<Fact>> recent_by_object;

  auto duration_end = [&](Timestamp start) -> Timestamp {
    if (!config_.durations) return start;
    Timestamp end =
        start +
        static_cast<Timestamp>(rng_.Exponential(config_.mean_duration));
    return std::min(end, horizon);
  };

  auto emit = [&](const Fact& f, bool allow_chain, bool allow_recurrence) {
    graph->AddFact(f);
    // Recurrence: the same interaction repeats after its characteristic
    // gap (single recurrence per base fact keeps the budget predictable).
    // One-shot chain relations never recur.
    if (allow_recurrence && oneshot_relations.count(f.relation) == 0 &&
        rng_.Bernoulli(config_.recurrence_prob)) {
      const double gap = world_.relation_recurrence_gap[f.relation];
      Timestamp t2 = f.time + static_cast<Timestamp>(std::llround(
                                  std::max(1.0, rng_.Normal(gap, gap / 6.0))));
      if (t2 <= horizon) {
        Fact repeat(f.subject, f.relation, f.object, t2);
        repeat.end = duration_end(t2);
        scheduled[t2].push_back(repeat);
      }
    }
    if (!allow_chain) return;
    // Chain rule follow-up on the same pair.
    auto cit = chain_by_head.find(f.relation);
    if (cit != chain_by_head.end()) {
      for (const ChainRuleTemplate* rule : cit->second) {
        if (!rng_.Bernoulli(config_.chain_follow_prob)) continue;
        Timestamp t2 = f.time + static_cast<Timestamp>(std::llround(
                                    std::max(1.0, rng_.Normal(rule->mean_gap,
                                                              rule->jitter))));
        if (t2 > horizon) continue;
        Fact follow(f.subject, rule->tail, f.object, t2);
        follow.end = duration_end(t2);
        scheduled[t2].push_back(follow);
      }
    }
    // Triadic closure: look for a recent (h, mid, o) to close with.
    auto tit = triadic_by_head.find(f.relation);
    if (tit != triadic_by_head.end()) {
      auto rit = recent_by_object.find(f.object);
      if (rit != recent_by_object.end()) {
        for (const TriadicRuleTemplate* rule : tit->second) {
          for (const Fact& g : rit->second) {
            if (g.relation != rule->mid || g.subject == f.subject) continue;
            if (!rng_.Bernoulli(config_.triadic_follow_prob)) continue;
            Timestamp t2 = f.time + static_cast<Timestamp>(std::llround(
                                        std::max(1.0, rule->mean_gap)));
            if (t2 > horizon) break;
            Fact close(f.subject, rule->close, g.subject, t2);
            close.end = duration_end(t2);
            scheduled[t2].push_back(close);
            break;
          }
        }
      }
    }
    auto& recents = recent_by_object[f.object];
    recents.push_back(f);
    while (!recents.empty() &&
           f.time - recents.front().time >
               static_cast<Timestamp>(config_.triadic_window)) {
      recents.pop_front();
    }
  };

  double carry = 0.0;
  for (Timestamp t = 0; t <= horizon; ++t) {
    // Scheduled follow-ups first (they do not re-trigger rules, which keeps
    // cascade depth bounded at 1 and the fact budget predictable).
    auto sit = scheduled.find(t);
    if (sit != scheduled.end()) {
      for (const Fact& f : sit->second) {
        emit(f, /*allow_chain=*/true, /*allow_recurrence=*/false);
      }
      scheduled.erase(sit);
    }

    carry += base_per_tick;
    size_t events = static_cast<size_t>(carry);
    carry -= static_cast<double>(events);

    for (size_t i = 0; i < events; ++i) {
      if (rng_.Bernoulli(config_.noise_fraction)) {
        EntityId s = static_cast<EntityId>(rng_.Uniform(config_.num_entities));
        EntityId o = static_cast<EntityId>(rng_.Uniform(config_.num_entities));
        if (o == s) o = (o + 1) % config_.num_entities;
        RelationId r =
            static_cast<RelationId>(rng_.Uniform(config_.num_relations));
        Fact f(s, r, o, t);
        f.end = duration_end(t);
        emit(f, /*allow_chain=*/false, /*allow_recurrence=*/false);
        continue;
      }
      RelationId r = spontaneous[spontaneous_sampler.Sample(&rng_)];
      const auto [cs, co] = world_.relation_schema[r];
      EntityId s = sample_member(cs);
      EntityId o = sample_member(co);
      for (int retry = 0; retry < 4 && o == s; ++retry) o = sample_member(co);
      if (o == s) continue;
      if (oneshot_relations.count(r) > 0) {
        // Find a fresh pair for one-shot relations.
        auto& used = used_pairs[r];
        int retry = 0;
        while (used.count(PairKey(s, o)) > 0 && retry < 6) {
          s = sample_member(cs);
          o = sample_member(co);
          ++retry;
        }
        if (used.count(PairKey(s, o)) > 0 || o == s) continue;
        used.insert(PairKey(s, o));
      }
      Fact f(s, r, o, t);
      f.end = duration_end(t);
      emit(f, /*allow_chain=*/true, /*allow_recurrence=*/true);
    }
  }

  return graph;
}

}  // namespace anot
