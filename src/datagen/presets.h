#pragma once

#include <string>
#include <vector>

#include "datagen/generator.h"
#include "util/result.h"

namespace anot {

/// \brief Named dataset presets mirroring the statistics of the paper's
/// Table 1 (ICEWS14, ICEWS05-15, YAGO11k, GDELT, Wikidata).
///
/// `scale` multiplies |E| and |F| (|R| and the timestamp granularity are
/// kept intact); scale = 1.0 reproduces the paper-scale sizes. Each preset
/// also has a *default bench scale* chosen so the full experiment suite
/// runs in minutes on a laptop — harnesses report the scale they used.
class DatasetPresets {
 public:
  static GeneratorConfig Icews14(double scale = 1.0);
  static GeneratorConfig Icews0515(double scale = 1.0);
  static GeneratorConfig Yago11k(double scale = 1.0);
  static GeneratorConfig Gdelt(double scale = 1.0);
  static GeneratorConfig Wikidata(double scale = 1.0);

  /// Lookup by case-insensitive name ("icews14", "icews05-15", "yago11k",
  /// "gdelt", "wikidata").
  static Result<GeneratorConfig> ByName(const std::string& name,
                                        double scale = 1.0);

  /// The four point-timestamp datasets of Table 2, at bench scale
  /// multiplied by the ANOT_SCALE environment variable (default 1.0).
  static std::vector<GeneratorConfig> MainBenchmarkSuite();

  /// Default bench scale for a preset (applied by MainBenchmarkSuite).
  static double DefaultBenchScale(const std::string& name);

  /// Reads the ANOT_SCALE environment override (default 1.0).
  static double EnvScale();
};

}  // namespace anot
