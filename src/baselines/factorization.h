#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "eval/model.h"
#include "nn/nn.h"
#include "tkg/types.h"
#include "util/random.h"

namespace anot {

/// \brief Shared scaffold for the TKG-embedding baselines (§2).
///
/// Fit() runs logistic-loss SGD with negative sampling (corrupting the
/// object or the relation, mirroring the injector's conceptual
/// perturbations); subclasses implement the scoring function and its
/// gradient step. Anomaly mapping: conceptual and time scores are the
/// negated plausibility (these models have no dedicated order signal —
/// exactly the weakness Table 2 shows); the missing score is the
/// plausibility itself.
class FactorizationBaseline : public AnomalyModel {
 public:
  struct Config {
    size_t dim = 16;
    size_t epochs = 8;
    size_t negatives = 4;
    float lr = 0.1f;
    size_t time_buckets = 64;
    uint64_t seed = 13;
  };

  explicit FactorizationBaseline(const Config& config) : config_(config) {}

  void Fit(const TemporalKnowledgeGraph& train) override;
  TaskScores Score(const Fact& fact) override;

 protected:
  /// Plausibility of a tuple. Called after Init().
  virtual double ScoreTuple(const Fact& fact) const = 0;
  /// One SGD step towards label (1 = observed, 0 = corrupted).
  virtual void SgdStep(const Fact& fact, float label) = 0;
  /// Allocates tables once universe sizes are known.
  virtual void Init(size_t num_entities, size_t num_relations) = 0;

  /// Train-time normalization of timestamps into [0, 1] / bucket index.
  double NormalizeTime(Timestamp t) const;
  size_t TimeBucket(Timestamp t) const;

  Config config_;
  Rng rng_{13};
  Timestamp min_time_ = 0;
  Timestamp max_time_ = 1;
  size_t num_entities_ = 0;
  size_t num_relations_ = 0;
};

/// DE (DE-SimplE-style): diachronic entity embeddings — half static, half
/// a·sin(w t + b) — under a DistMult scorer.
class DeSimpleBaseline : public FactorizationBaseline {
 public:
  explicit DeSimpleBaseline(const Config& config);
  std::string name() const override { return "DE"; }

 protected:
  void Init(size_t num_entities, size_t num_relations) override;
  double ScoreTuple(const Fact& fact) const override;
  void SgdStep(const Fact& fact, float label) override;

 private:
  std::vector<float> EntityAt(EntityId e, Timestamp t) const;
  std::unique_ptr<EmbeddingTable> ent_static_, ent_amp_, ent_freq_,
      ent_phase_, rel_;
};

/// TA (TA-DistMult-style): relation composed with a learned time-bucket
/// embedding, DistMult scorer.
class TaDistmultBaseline : public FactorizationBaseline {
 public:
  explicit TaDistmultBaseline(const Config& config);
  std::string name() const override { return "TA"; }

 protected:
  void Init(size_t num_entities, size_t num_relations) override;
  double ScoreTuple(const Fact& fact) const override;
  void SgdStep(const Fact& fact, float label) override;

 private:
  std::unique_ptr<EmbeddingTable> ent_, rel_, time_;
};

/// TNT (TNTComplEx-style): ComplEx with temporal + non-temporal relation
/// components r + r_t ∘ w_bucket.
class TntComplexBaseline : public FactorizationBaseline {
 public:
  explicit TntComplexBaseline(const Config& config);
  std::string name() const override { return "TNT"; }

 protected:
  void Init(size_t num_entities, size_t num_relations) override;
  double ScoreTuple(const Fact& fact) const override;
  void SgdStep(const Fact& fact, float label) override;

 protected:
  // Real/imaginary halves stored in one row of width 2*dim.
  std::unique_ptr<EmbeddingTable> ent_, rel_, rel_t_, time_;
};

/// TimePlex-style: the TNT scorer plus a pair-recurrence time-gap feature
/// with a learned weight (captures the recurrent nature of relations).
class TimeplexBaseline : public TntComplexBaseline {
 public:
  explicit TimeplexBaseline(const Config& config);
  std::string name() const override { return "Timeplex"; }

  void Fit(const TemporalKnowledgeGraph& train) override;
  TaskScores Score(const Fact& fact) override;
  void ObserveValid(const Fact& fact) override;

 private:
  double RecurrenceFeature(const Fact& fact) const;
  /// (s, r, o) -> last observed timestamp.
  std::unordered_map<uint64_t, Timestamp> last_seen_;
  double alpha_ = 0.5;
  double tau_ = 10.0;
};

/// TELM-style: two-block multivector embeddings with a linear temporal
/// regularizer pulling adjacent time-bucket embeddings together.
class TelmBaseline : public FactorizationBaseline {
 public:
  explicit TelmBaseline(const Config& config);
  std::string name() const override { return "TELM"; }

 protected:
  void Init(size_t num_entities, size_t num_relations) override;
  double ScoreTuple(const Fact& fact) const override;
  void SgdStep(const Fact& fact, float label) override;

 private:
  std::unique_ptr<EmbeddingTable> ent_a_, ent_b_, rel_a_, rel_b_, time_;
};

}  // namespace anot
