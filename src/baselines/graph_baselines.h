#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "eval/model.h"
#include "nn/nn.h"
#include "util/random.h"

namespace anot {

/// \brief RE-GCN (lite): auto-regressive temporal message passing.
///
/// Entity states evolve timestamp by timestamp via relation-typed
/// (diagonal-transform) neighbourhood aggregation with a gated update;
/// a DistMult-style decoder over the evolved states is trained with
/// negative sampling. Captures graph structure (strong on conceptual
/// errors, per Table 2) but carries no occurrence-order signal.
class ReGcnLiteBaseline : public AnomalyModel {
 public:
  struct Config {
    size_t dim = 16;
    size_t epochs = 3;
    size_t negatives = 4;
    float lr = 0.1f;
    float gate = 0.3f;
    uint64_t seed = 17;
  };
  explicit ReGcnLiteBaseline(const Config& config) : config_(config) {}

  std::string name() const override { return "RE-GCN"; }
  void Fit(const TemporalKnowledgeGraph& train) override;
  TaskScores Score(const Fact& fact) override;

 private:
  double Phi(const Fact& fact) const;
  void EvolveTimestamp(const std::vector<FactId>& facts,
                       const TemporalKnowledgeGraph& graph, bool train_step);

  Config config_;
  Rng rng_{17};
  size_t num_entities_ = 0;
  size_t num_relations_ = 0;
  std::unique_ptr<EmbeddingTable> base_;      // entity base embeddings
  std::unique_ptr<EmbeddingTable> rel_;       // decoder relation diagonals
  std::unique_ptr<EmbeddingTable> rel_msg_;   // message transforms
  std::vector<float> state_;                  // evolved entity states
};

/// \brief DynAnom (lite): dynamic personalized-PageRank anomaly tracking.
///
/// Maintains an undirected weighted adjacency; an arriving edge is scored
/// by the (approximate, forward-push) PPR proximity of its endpoints —
/// structurally unexpected connections get low proximity.
class DynAnomBaseline : public AnomalyModel {
 public:
  struct Config {
    double alpha = 0.15;     // teleport
    double epsilon = 1e-4;   // push threshold (relative to degree)
    size_t max_pushes = 400;
    uint64_t seed = 19;
  };
  explicit DynAnomBaseline(const Config& config) : config_(config) {}

  std::string name() const override { return "DynAnom"; }
  void Fit(const TemporalKnowledgeGraph& train) override;
  TaskScores Score(const Fact& fact) override;
  void ObserveValid(const Fact& fact) override;

 private:
  void AddEdge(EntityId a, EntityId b);
  double PprProximity(EntityId source, EntityId target) const;

  Config config_;
  std::unordered_map<EntityId, std::unordered_map<EntityId, float>> adj_;
  std::unordered_map<EntityId, float> degree_;
};

/// \brief F-FADE (lite): frequency factorization of interaction streams.
///
/// Models each (s, o) pair and each (s, r) channel as a Poisson process
/// with an online-estimated intensity; an arrival's anomaly score is its
/// negative log-likelihood under those intensities.
class FFadeBaseline : public AnomalyModel {
 public:
  struct Config {
    double cold_rate = 0.02;  // prior intensity for unseen channels
    uint64_t seed = 23;
  };
  explicit FFadeBaseline(const Config& config) : config_(config) {}

  std::string name() const override { return "F-FADE"; }
  void Fit(const TemporalKnowledgeGraph& train) override;
  TaskScores Score(const Fact& fact) override;
  void ObserveValid(const Fact& fact) override;

 private:
  struct Channel {
    uint32_t count = 0;
    Timestamp first = 0;
    Timestamp last = 0;
    double intensity(const Config& config) const;
  };
  double ChannelNll(const std::unordered_map<uint64_t, Channel>& table,
                    uint64_t key, Timestamp t) const;
  void Touch(std::unordered_map<uint64_t, Channel>* table, uint64_t key,
             Timestamp t);

  Config config_;
  std::unordered_map<uint64_t, Channel> pair_channels_;
  std::unordered_map<uint64_t, Channel> subject_rel_channels_;
  std::unordered_map<uint64_t, Channel> rel_object_channels_;
};

/// \brief TADDY (lite): anonymized structural features + a small MLP.
///
/// Edges are described by local structure only (degrees, common
/// neighbours, pair history, recency, relation frequency) — no symbol
/// identity — and classified against sampled negatives.
class TaddyLiteBaseline : public AnomalyModel {
 public:
  struct Config {
    size_t hidden = 16;
    size_t epochs = 3;
    size_t negatives = 3;
    float lr = 0.05f;
    uint64_t seed = 29;
  };
  explicit TaddyLiteBaseline(const Config& config) : config_(config) {}

  std::string name() const override { return "TADDY"; }
  void Fit(const TemporalKnowledgeGraph& train) override;
  TaskScores Score(const Fact& fact) override;
  void ObserveValid(const Fact& fact) override;

 private:
  std::vector<float> Features(const Fact& fact) const;
  void Absorb(const Fact& fact);

  Config config_;
  std::unique_ptr<Mlp> mlp_;
  std::unordered_map<EntityId, std::unordered_set<EntityId>> neighbours_;
  std::unordered_map<uint64_t, uint32_t> pair_counts_;
  std::unordered_map<uint64_t, Timestamp> pair_last_;
  std::unordered_map<RelationId, uint32_t> relation_counts_;
  std::unordered_map<uint64_t, uint32_t> subject_rel_counts_;
  size_t total_facts_ = 0;
};

}  // namespace anot
