#include "baselines/graph_baselines.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "util/logging.h"

namespace anot {

namespace {
uint64_t SubjectRelKey(EntityId s, RelationId r) {
  return (static_cast<uint64_t>(s) << 32) | r;
}
uint64_t RelObjectKey(RelationId r, EntityId o) {
  return (static_cast<uint64_t>(o) << 32) | (0x80000000ull | r);
}
}  // namespace

// -------------------------------------------------------------- RE-GCN

void ReGcnLiteBaseline::Fit(const TemporalKnowledgeGraph& train) {
  rng_ = Rng(config_.seed);
  num_entities_ = std::max<size_t>(2, train.num_entities());
  num_relations_ = std::max<size_t>(2, train.num_relations());
  const double scale = 1.0 / std::sqrt(static_cast<double>(config_.dim));
  base_ = std::make_unique<EmbeddingTable>(num_entities_, config_.dim,
                                           scale, &rng_);
  rel_ = std::make_unique<EmbeddingTable>(num_relations_, config_.dim,
                                          scale, &rng_);
  rel_msg_ = std::make_unique<EmbeddingTable>(num_relations_, config_.dim,
                                              scale, &rng_);

  for (size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    // Reset states to the base embeddings, then roll forward in time.
    state_.assign(num_entities_ * config_.dim, 0.0f);
    for (size_t e = 0; e < num_entities_; ++e) {
      const float* b = base_->Row(e);
      std::copy(b, b + config_.dim, &state_[e * config_.dim]);
    }
    for (const auto& [t, facts] : train.by_time()) {
      EvolveTimestamp(facts, train, /*train_step=*/true);
    }
  }
}

void ReGcnLiteBaseline::EvolveTimestamp(
    const std::vector<FactId>& facts, const TemporalKnowledgeGraph& graph,
    bool train_step) {
  const size_t d = config_.dim;
  // Decoder training against the *previous* states (predict this step).
  if (train_step) {
    for (FactId id : facts) {
      const Fact& f = graph.fact(id);
      auto step = [&](const Fact& fact, float label) {
        const float* s = &state_[fact.subject * d];
        const float* o = &state_[fact.object * d];
        const float* r = rel_->Row(fact.relation);
        double phi = 0;
        for (size_t i = 0; i < d; ++i) phi += s[i] * r[i] * o[i];
        const float g = Sigmoid(static_cast<float>(phi)) - label;
        std::vector<float> gr(d);
        for (size_t i = 0; i < d; ++i) gr[i] = g * s[i] * o[i];
        rel_->Update(fact.relation, gr, config_.lr);
        // Base embeddings receive the decoder gradient through the state.
        std::vector<float> gs(d), go(d);
        for (size_t i = 0; i < d; ++i) {
          gs[i] = g * r[i] * o[i];
          go[i] = g * r[i] * s[i];
        }
        base_->Update(fact.subject, gs, config_.lr);
        base_->Update(fact.object, go, config_.lr);
      };
      step(f, 1.0f);
      for (size_t k = 0; k < config_.negatives; ++k) {
        Fact neg = f;
        neg.object = static_cast<EntityId>(rng_.Uniform(num_entities_));
        if (!(neg == f)) step(neg, 0.0f);
      }
    }
  }
  // Gated relational aggregation: h <- (1-g) h + g * mean(h_nbr ∘ w_r).
  std::unordered_map<EntityId, std::pair<std::vector<float>, uint32_t>>
      messages;
  for (FactId id : facts) {
    const Fact& f = graph.fact(id);
    if (f.subject >= num_entities_ || f.object >= num_entities_) continue;
    const float* w = rel_msg_->Row(
        f.relation < num_relations_ ? f.relation : 0);
    auto& to_subject = messages[f.subject];
    auto& to_object = messages[f.object];
    if (to_subject.first.empty()) to_subject.first.assign(d, 0.0f);
    if (to_object.first.empty()) to_object.first.assign(d, 0.0f);
    const float* hs = &state_[f.subject * d];
    const float* ho = &state_[f.object * d];
    for (size_t i = 0; i < d; ++i) {
      to_subject.first[i] += ho[i] * w[i];
      to_object.first[i] += hs[i] * w[i];
    }
    ++to_subject.second;
    ++to_object.second;
  }
  // anot-lint: ordered-ok each iteration reads and writes only entity e's
  // own state row and message slot (disjoint per-entity effects; the
  // cross-entity reads all happened in the fact loop above), so hash order
  // cannot change any h[] result
  for (auto& [e, msg] : messages) {
    float* h = &state_[e * d];
    double norm = 0;
    for (size_t i = 0; i < d; ++i) {
      h[i] = (1.0f - config_.gate) * h[i] +
             config_.gate * msg.first[i] / static_cast<float>(msg.second);
      norm += h[i] * h[i];
    }
    norm = std::sqrt(std::max(norm, 1e-12));
    for (size_t i = 0; i < d; ++i) {
      h[i] = static_cast<float>(h[i] / norm);
    }
  }
}

double ReGcnLiteBaseline::Phi(const Fact& f) const {
  const size_t d = config_.dim;
  if (f.subject >= num_entities_ || f.object >= num_entities_ ||
      f.relation >= num_relations_) {
    return 0.0;
  }
  const float* s = &state_[f.subject * d];
  const float* o = &state_[f.object * d];
  const float* r = rel_->Row(f.relation);
  double phi = 0;
  for (size_t i = 0; i < d; ++i) phi += s[i] * r[i] * o[i];
  return phi;
}

AnomalyModel::TaskScores ReGcnLiteBaseline::Score(const Fact& fact) {
  const double phi = Phi(fact);
  return TaskScores{-phi, -phi, phi};
}

// ------------------------------------------------------------- DynAnom

void DynAnomBaseline::AddEdge(EntityId a, EntityId b) {
  adj_[a][b] += 1.0f;
  adj_[b][a] += 1.0f;
  degree_[a] += 1.0f;
  degree_[b] += 1.0f;
}

void DynAnomBaseline::Fit(const TemporalKnowledgeGraph& train) {
  adj_.clear();
  degree_.clear();
  for (const Fact& f : train.facts()) AddEdge(f.subject, f.object);
}

double DynAnomBaseline::PprProximity(EntityId source,
                                     EntityId target) const {
  // Bounded forward push (Andersen et al.) from `source`.
  std::unordered_map<EntityId, double> p, r;
  std::deque<EntityId> queue;
  r[source] = 1.0;
  queue.push_back(source);
  size_t pushes = 0;
  while (!queue.empty() && pushes < config_.max_pushes) {
    const EntityId u = queue.front();
    queue.pop_front();
    auto rit = r.find(u);
    if (rit == r.end()) continue;
    auto dit = degree_.find(u);
    const double deg = dit == degree_.end() ? 0.0 : dit->second;
    if (deg <= 0.0 || rit->second < config_.epsilon * std::max(deg, 1.0)) {
      continue;
    }
    const double residue = rit->second;
    rit->second = 0.0;
    p[u] += config_.alpha * residue;
    const double push = (1.0 - config_.alpha) * residue;
    ++pushes;
    auto ait = adj_.find(u);
    if (ait == adj_.end()) continue;
    for (const auto& [v, w] : ait->second) {
      double& rv = r[v];
      const bool was_small = rv < config_.epsilon;
      rv += push * w / deg;
      if (was_small && rv >= config_.epsilon) queue.push_back(v);
    }
  }
  auto it = p.find(target);
  return it == p.end() ? 0.0 : it->second;
}

AnomalyModel::TaskScores DynAnomBaseline::Score(const Fact& fact) {
  const double ppr = PprProximity(fact.subject, fact.object);
  const double anomaly = -std::log(ppr + 1e-9);
  return TaskScores{anomaly, anomaly, -anomaly};
}

void DynAnomBaseline::ObserveValid(const Fact& fact) {
  AddEdge(fact.subject, fact.object);
}

// -------------------------------------------------------------- F-FADE

double FFadeBaseline::Channel::intensity(const Config& config) const {
  if (count < 2) return config.cold_rate;
  const double span = std::max<double>(1.0, static_cast<double>(last - first));
  return static_cast<double>(count - 1) / span;
}

void FFadeBaseline::Touch(std::unordered_map<uint64_t, Channel>* table,
                          uint64_t key, Timestamp t) {
  Channel& c = (*table)[key];
  if (c.count == 0) {
    c.first = t;
    c.last = t;
  } else {
    c.first = std::min(c.first, t);
    c.last = std::max(c.last, t);
  }
  ++c.count;
}

void FFadeBaseline::Fit(const TemporalKnowledgeGraph& train) {
  pair_channels_.clear();
  subject_rel_channels_.clear();
  rel_object_channels_.clear();
  for (const Fact& f : train.facts()) {
    Touch(&pair_channels_, PairKey(f.subject, f.object), f.time);
    Touch(&subject_rel_channels_, SubjectRelKey(f.subject, f.relation),
          f.time);
    Touch(&rel_object_channels_, RelObjectKey(f.relation, f.object),
          f.time);
  }
}

double FFadeBaseline::ChannelNll(
    const std::unordered_map<uint64_t, Channel>& table, uint64_t key,
    Timestamp t) const {
  auto it = table.find(key);
  if (it == table.end()) {
    // A never-seen channel: surprise of the channel existing at all.
    return -std::log(config_.cold_rate);
  }
  const double rate = it->second.intensity(config_);
  double gap = std::max<double>(1.0, std::llabs(t - it->second.last));
  // Cap the inter-arrival term: a long-quiet *known* channel must stay
  // less surprising than a channel that never existed.
  gap = std::min(gap, 2.0 / std::max(rate, 1e-6));
  return rate * gap - std::log(rate + 1e-12);
}

AnomalyModel::TaskScores FFadeBaseline::Score(const Fact& fact) {
  const double nll =
      0.4 * ChannelNll(pair_channels_, PairKey(fact.subject, fact.object),
                       fact.time) +
      0.2 * ChannelNll(subject_rel_channels_,
                       SubjectRelKey(fact.subject, fact.relation),
                       fact.time) +
      0.4 * ChannelNll(rel_object_channels_,
                       RelObjectKey(fact.relation, fact.object), fact.time);
  return TaskScores{nll, nll, -nll};
}

void FFadeBaseline::ObserveValid(const Fact& fact) {
  Touch(&pair_channels_, PairKey(fact.subject, fact.object), fact.time);
  Touch(&subject_rel_channels_, SubjectRelKey(fact.subject, fact.relation),
        fact.time);
  Touch(&rel_object_channels_, RelObjectKey(fact.relation, fact.object),
        fact.time);
}

// --------------------------------------------------------------- TADDY

std::vector<float> TaddyLiteBaseline::Features(const Fact& fact) const {
  auto deg = [&](EntityId e) -> float {
    auto it = neighbours_.find(e);
    return it == neighbours_.end()
               ? 0.0f
               : static_cast<float>(it->second.size());
  };
  float common = 0;
  auto sit = neighbours_.find(fact.subject);
  auto oit = neighbours_.find(fact.object);
  if (sit != neighbours_.end() && oit != neighbours_.end()) {
    const auto& smaller =
        sit->second.size() < oit->second.size() ? sit->second : oit->second;
    const auto& larger =
        sit->second.size() < oit->second.size() ? oit->second : sit->second;
    size_t scanned = 0;
    for (EntityId n : smaller) {
      if (larger.count(n)) ++common;
      if (++scanned > 256) break;
    }
  }
  auto count_of = [](const auto& table, uint64_t key) -> float {
    auto it = table.find(key);
    return it == table.end() ? 0.0f : static_cast<float>(it->second);
  };
  const float pair_count =
      count_of(pair_counts_, PairKey(fact.subject, fact.object));
  float recency = 0.0f;
  auto lit = pair_last_.find(PairKey(fact.subject, fact.object));
  if (lit != pair_last_.end()) {
    recency = 1.0f / (1.0f + std::abs(static_cast<float>(
                                 fact.time - lit->second)));
  }
  float rel_freq = 0.0f;
  {
    auto it = relation_counts_.find(fact.relation);
    if (it != relation_counts_.end() && total_facts_ > 0) {
      rel_freq = static_cast<float>(it->second) /
                 static_cast<float>(total_facts_);
    }
  }
  const float sr_seen =
      count_of(subject_rel_counts_,
               SubjectRelKey(fact.subject, fact.relation)) > 0
          ? 1.0f
          : 0.0f;
  return {std::log1p(deg(fact.subject)), std::log1p(deg(fact.object)),
          std::log1p(common),            std::log1p(pair_count),
          recency,                       rel_freq,
          sr_seen,                       1.0f};
}

void TaddyLiteBaseline::Absorb(const Fact& fact) {
  neighbours_[fact.subject].insert(fact.object);
  neighbours_[fact.object].insert(fact.subject);
  ++pair_counts_[PairKey(fact.subject, fact.object)];
  auto& last = pair_last_[PairKey(fact.subject, fact.object)];
  last = std::max(last, fact.time);
  ++relation_counts_[fact.relation];
  ++subject_rel_counts_[SubjectRelKey(fact.subject, fact.relation)];
  ++total_facts_;
}

void TaddyLiteBaseline::Fit(const TemporalKnowledgeGraph& train) {
  neighbours_.clear();
  pair_counts_.clear();
  pair_last_.clear();
  relation_counts_.clear();
  subject_rel_counts_.clear();
  total_facts_ = 0;
  for (const Fact& f : train.facts()) Absorb(f);

  mlp_ = std::make_unique<Mlp>(8, config_.hidden, config_.seed);
  Rng rng(config_.seed);
  const size_t num_entities = std::max<size_t>(2, train.num_entities());
  const size_t num_relations = std::max<size_t>(2, train.num_relations());
  for (size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    for (const Fact& f : train.facts()) {
      mlp_->TrainStep(Features(f), 1.0f, config_.lr);
      for (size_t k = 0; k < config_.negatives; ++k) {
        Fact neg = f;
        if (rng.Bernoulli(0.5)) {
          neg.object = static_cast<EntityId>(rng.Uniform(num_entities));
        } else {
          neg.relation =
              static_cast<RelationId>(rng.Uniform(num_relations));
        }
        if (!(neg == f)) mlp_->TrainStep(Features(neg), 0.0f, config_.lr);
      }
    }
  }
}

AnomalyModel::TaskScores TaddyLiteBaseline::Score(const Fact& fact) {
  const float logit = mlp_->Forward(Features(fact));
  const double anomaly = 1.0 - Sigmoid(logit);
  return TaskScores{anomaly, anomaly, -anomaly};
}

void TaddyLiteBaseline::ObserveValid(const Fact& fact) { Absorb(fact); }

}  // namespace anot
