#include "baselines/factorization.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace anot {

namespace {
constexpr double kPi = 3.14159265358979323846;

uint64_t TripleKey64(EntityId s, RelationId r, EntityId o) {
  uint64_t h = internal::HashMix(PairKey(s, o));
  return internal::HashMix(h ^ (static_cast<uint64_t>(r) << 1));
}
}  // namespace

// ------------------------------------------------------------------ base

double FactorizationBaseline::NormalizeTime(Timestamp t) const {
  const double span =
      std::max<double>(1.0, static_cast<double>(max_time_ - min_time_));
  double x = static_cast<double>(t - min_time_) / span;
  return std::clamp(x, 0.0, 1.0);
}

size_t FactorizationBaseline::TimeBucket(Timestamp t) const {
  const double x = NormalizeTime(t);
  const size_t b = static_cast<size_t>(x * static_cast<double>(
                                               config_.time_buckets));
  return std::min(b, config_.time_buckets - 1);
}

void FactorizationBaseline::Fit(const TemporalKnowledgeGraph& train) {
  rng_ = Rng(config_.seed);
  num_entities_ = std::max<size_t>(2, train.num_entities());
  num_relations_ = std::max<size_t>(2, train.num_relations());
  min_time_ = train.min_time();
  max_time_ = std::max(train.max_time(), min_time_ + 1);
  Init(num_entities_, num_relations_);

  const auto& facts = train.facts();
  if (facts.empty()) return;
  for (size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    for (const Fact& f : facts) {
      SgdStep(f, 1.0f);
      for (size_t k = 0; k < config_.negatives; ++k) {
        Fact neg = f;
        if (rng_.Bernoulli(0.5)) {
          neg.object = static_cast<EntityId>(rng_.Uniform(num_entities_));
        } else {
          neg.relation =
              static_cast<RelationId>(rng_.Uniform(num_relations_));
        }
        if (neg == f) continue;
        SgdStep(neg, 0.0f);
      }
    }
  }
}

AnomalyModel::TaskScores FactorizationBaseline::Score(const Fact& fact) {
  const double phi = ScoreTuple(fact);
  return TaskScores{-phi, -phi, phi};
}

// -------------------------------------------------------------------- DE

DeSimpleBaseline::DeSimpleBaseline(const Config& config)
    : FactorizationBaseline(config) {}

void DeSimpleBaseline::Init(size_t num_entities, size_t num_relations) {
  const size_t half = std::max<size_t>(2, config_.dim / 2);
  const double scale = 1.0 / std::sqrt(static_cast<double>(config_.dim));
  ent_static_ =
      std::make_unique<EmbeddingTable>(num_entities, half, scale, &rng_);
  ent_amp_ =
      std::make_unique<EmbeddingTable>(num_entities, half, scale, &rng_);
  ent_freq_ =
      std::make_unique<EmbeddingTable>(num_entities, half, 4.0, &rng_);
  ent_phase_ =
      std::make_unique<EmbeddingTable>(num_entities, half, kPi, &rng_);
  rel_ = std::make_unique<EmbeddingTable>(num_relations, 2 * half, scale,
                                          &rng_);
}

std::vector<float> DeSimpleBaseline::EntityAt(EntityId e,
                                              Timestamp t) const {
  const size_t half = ent_static_->dim();
  std::vector<float> out(2 * half);
  const float* st = ent_static_->Row(e < ent_static_->rows() ? e : 0);
  const float* amp = ent_amp_->Row(e < ent_amp_->rows() ? e : 0);
  const float* freq = ent_freq_->Row(e < ent_freq_->rows() ? e : 0);
  const float* phase = ent_phase_->Row(e < ent_phase_->rows() ? e : 0);
  const float x = static_cast<float>(NormalizeTime(t));
  for (size_t i = 0; i < half; ++i) {
    out[i] = st[i];
    out[half + i] = amp[i] * std::sin(freq[i] * x + phase[i]);
  }
  return out;
}

double DeSimpleBaseline::ScoreTuple(const Fact& f) const {
  const auto s = EntityAt(f.subject, f.time);
  const auto o = EntityAt(f.object, f.time);
  const float* r = rel_->Row(f.relation < rel_->rows() ? f.relation : 0);
  double phi = 0;
  for (size_t i = 0; i < s.size(); ++i) phi += s[i] * r[i] * o[i];
  return phi;
}

void DeSimpleBaseline::SgdStep(const Fact& f, float label) {
  const size_t half = ent_static_->dim();
  const auto s = EntityAt(f.subject, f.time);
  const auto o = EntityAt(f.object, f.time);
  const float* r = rel_->Row(f.relation);
  double phi = 0;
  for (size_t i = 0; i < s.size(); ++i) phi += s[i] * r[i] * o[i];
  const float g = Sigmoid(static_cast<float>(phi)) - label;
  const float x = static_cast<float>(NormalizeTime(f.time));

  std::vector<float> grad_r(2 * half), grad_s_static(half),
      grad_o_static(half), grad_s_amp(half), grad_o_amp(half);
  for (size_t i = 0; i < 2 * half; ++i) grad_r[i] = g * s[i] * o[i];
  for (size_t i = 0; i < half; ++i) {
    grad_s_static[i] = g * r[i] * o[i];
    grad_o_static[i] = g * r[i] * s[i];
  }
  const float* s_freq = ent_freq_->Row(f.subject);
  const float* s_phase = ent_phase_->Row(f.subject);
  const float* o_freq = ent_freq_->Row(f.object);
  const float* o_phase = ent_phase_->Row(f.object);
  for (size_t i = 0; i < half; ++i) {
    grad_s_amp[i] = g * r[half + i] * o[half + i] *
                    std::sin(s_freq[i] * x + s_phase[i]);
    grad_o_amp[i] = g * r[half + i] * s[half + i] *
                    std::sin(o_freq[i] * x + o_phase[i]);
  }
  rel_->Update(f.relation, grad_r, config_.lr);
  ent_static_->Update(f.subject, grad_s_static, config_.lr);
  ent_static_->Update(f.object, grad_o_static, config_.lr);
  ent_amp_->Update(f.subject, grad_s_amp, config_.lr);
  ent_amp_->Update(f.object, grad_o_amp, config_.lr);
}

// -------------------------------------------------------------------- TA

TaDistmultBaseline::TaDistmultBaseline(const Config& config)
    : FactorizationBaseline(config) {}

void TaDistmultBaseline::Init(size_t num_entities, size_t num_relations) {
  const double scale = 1.0 / std::sqrt(static_cast<double>(config_.dim));
  ent_ = std::make_unique<EmbeddingTable>(num_entities, config_.dim, scale,
                                          &rng_);
  rel_ = std::make_unique<EmbeddingTable>(num_relations, config_.dim, scale,
                                          &rng_);
  time_ = std::make_unique<EmbeddingTable>(config_.time_buckets,
                                           config_.dim, scale, &rng_);
}

double TaDistmultBaseline::ScoreTuple(const Fact& f) const {
  const size_t d = config_.dim;
  const float* s = ent_->Row(f.subject < ent_->rows() ? f.subject : 0);
  const float* o = ent_->Row(f.object < ent_->rows() ? f.object : 0);
  const float* r = rel_->Row(f.relation < rel_->rows() ? f.relation : 0);
  const float* w = time_->Row(TimeBucket(f.time));
  double phi = 0;
  for (size_t i = 0; i < d; ++i) phi += s[i] * (r[i] + w[i]) * o[i];
  return phi;
}

void TaDistmultBaseline::SgdStep(const Fact& f, float label) {
  const size_t d = config_.dim;
  const size_t bucket = TimeBucket(f.time);
  const float* s = ent_->Row(f.subject);
  const float* o = ent_->Row(f.object);
  const float* r = rel_->Row(f.relation);
  const float* w = time_->Row(bucket);
  double phi = 0;
  for (size_t i = 0; i < d; ++i) phi += s[i] * (r[i] + w[i]) * o[i];
  const float g = Sigmoid(static_cast<float>(phi)) - label;

  std::vector<float> gs(d), go(d), gr(d);
  for (size_t i = 0; i < d; ++i) {
    const float rt = r[i] + w[i];
    gs[i] = g * rt * o[i];
    go[i] = g * rt * s[i];
    gr[i] = g * s[i] * o[i];
  }
  ent_->Update(f.subject, gs, config_.lr);
  ent_->Update(f.object, go, config_.lr);
  rel_->Update(f.relation, gr, config_.lr);
  time_->Update(bucket, gr, config_.lr);  // same gradient form
}

// ------------------------------------------------------------------- TNT

TntComplexBaseline::TntComplexBaseline(const Config& config)
    : FactorizationBaseline(config) {}

void TntComplexBaseline::Init(size_t num_entities, size_t num_relations) {
  const size_t width = 2 * config_.dim;  // re | im halves
  const double scale = 1.0 / std::sqrt(static_cast<double>(config_.dim));
  ent_ = std::make_unique<EmbeddingTable>(num_entities, width, scale, &rng_);
  rel_ = std::make_unique<EmbeddingTable>(num_relations, width, scale,
                                          &rng_);
  rel_t_ = std::make_unique<EmbeddingTable>(num_relations, width, scale,
                                            &rng_);
  time_ = std::make_unique<EmbeddingTable>(config_.time_buckets, width,
                                           scale, &rng_);
}

double TntComplexBaseline::ScoreTuple(const Fact& f) const {
  const size_t d = config_.dim;
  const float* s = ent_->Row(f.subject < ent_->rows() ? f.subject : 0);
  const float* o = ent_->Row(f.object < ent_->rows() ? f.object : 0);
  const float* r = rel_->Row(f.relation < rel_->rows() ? f.relation : 0);
  const float* rt =
      rel_t_->Row(f.relation < rel_t_->rows() ? f.relation : 0);
  const float* w = time_->Row(TimeBucket(f.time));
  double phi = 0;
  for (size_t i = 0; i < d; ++i) {
    // r_full = r + r_t ∘ w (complex elementwise product).
    const float rr = r[i] + rt[i] * w[i] - rt[d + i] * w[d + i];
    const float ri = r[d + i] + rt[i] * w[d + i] + rt[d + i] * w[i];
    // Re(<s, r_full, conj(o)>)
    phi += s[i] * (rr * o[i] + ri * o[d + i]) +
           s[d + i] * (rr * o[d + i] - ri * o[i]);
  }
  return phi;
}

void TntComplexBaseline::SgdStep(const Fact& f, float label) {
  const size_t d = config_.dim;
  const size_t bucket = TimeBucket(f.time);
  const float* s = ent_->Row(f.subject);
  const float* o = ent_->Row(f.object);
  const float* r = rel_->Row(f.relation);
  const float* rt = rel_t_->Row(f.relation);
  const float* w = time_->Row(bucket);

  double phi = 0;
  std::vector<float> rr(d), ri(d);
  for (size_t i = 0; i < d; ++i) {
    rr[i] = r[i] + rt[i] * w[i] - rt[d + i] * w[d + i];
    ri[i] = r[d + i] + rt[i] * w[d + i] + rt[d + i] * w[i];
    phi += s[i] * (rr[i] * o[i] + ri[i] * o[d + i]) +
           s[d + i] * (rr[i] * o[d + i] - ri[i] * o[i]);
  }
  const float g = Sigmoid(static_cast<float>(phi)) - label;

  std::vector<float> gs(2 * d), go(2 * d), gr(2 * d), grt(2 * d);
  for (size_t i = 0; i < d; ++i) {
    // d(phi)/d(rr), d(phi)/d(ri)
    const float d_rr = s[i] * o[i] + s[d + i] * o[d + i];
    const float d_ri = s[i] * o[d + i] - s[d + i] * o[i];
    gs[i] = g * (rr[i] * o[i] + ri[i] * o[d + i]);
    gs[d + i] = g * (rr[i] * o[d + i] - ri[i] * o[i]);
    go[i] = g * (rr[i] * s[i] - ri[i] * s[d + i]);
    go[d + i] = g * (rr[i] * s[d + i] + ri[i] * s[i]);
    gr[i] = g * d_rr;
    gr[d + i] = g * d_ri;
    grt[i] = g * (d_rr * w[i] + d_ri * w[d + i]);
    grt[d + i] = g * (-d_rr * w[d + i] + d_ri * w[i]);
  }
  ent_->Update(f.subject, gs, config_.lr);
  ent_->Update(f.object, go, config_.lr);
  rel_->Update(f.relation, gr, config_.lr);
  rel_t_->Update(f.relation, grt, config_.lr);
}

// -------------------------------------------------------------- TimePlex

TimeplexBaseline::TimeplexBaseline(const Config& config)
    : TntComplexBaseline(config) {}

void TimeplexBaseline::Fit(const TemporalKnowledgeGraph& train) {
  TntComplexBaseline::Fit(train);
  last_seen_.clear();
  // Characteristic recurrence scale from the data.
  double gap_sum = 0;
  size_t gap_count = 0;
  for (const Fact& f : train.facts()) {
    const uint64_t key = TripleKey64(f.subject, f.relation, f.object);
    auto it = last_seen_.find(key);
    if (it != last_seen_.end() && f.time > it->second) {
      gap_sum += static_cast<double>(f.time - it->second);
      ++gap_count;
      it->second = f.time;
    } else {
      last_seen_[key] = f.time;
    }
  }
  tau_ = gap_count > 0 ? std::max(1.0, gap_sum / gap_count) : 10.0;
}

double TimeplexBaseline::RecurrenceFeature(const Fact& f) const {
  auto it = last_seen_.find(TripleKey64(f.subject, f.relation, f.object));
  if (it == last_seen_.end()) return 0.0;
  const double gap = std::abs(static_cast<double>(f.time - it->second));
  return std::exp(-gap / tau_);
}

AnomalyModel::TaskScores TimeplexBaseline::Score(const Fact& f) {
  const double phi = ScoreTuple(f) + alpha_ * RecurrenceFeature(f);
  return TaskScores{-phi, -phi, phi};
}

void TimeplexBaseline::ObserveValid(const Fact& f) {
  auto& t = last_seen_[TripleKey64(f.subject, f.relation, f.object)];
  t = std::max(t, f.time);
}

// ------------------------------------------------------------------ TELM

TelmBaseline::TelmBaseline(const Config& config)
    : FactorizationBaseline(config) {}

void TelmBaseline::Init(size_t num_entities, size_t num_relations) {
  const double scale = 1.0 / std::sqrt(static_cast<double>(config_.dim));
  ent_a_ = std::make_unique<EmbeddingTable>(num_entities, config_.dim,
                                            scale, &rng_);
  ent_b_ = std::make_unique<EmbeddingTable>(num_entities, config_.dim,
                                            scale, &rng_);
  rel_a_ = std::make_unique<EmbeddingTable>(num_relations, config_.dim,
                                            scale, &rng_);
  rel_b_ = std::make_unique<EmbeddingTable>(num_relations, config_.dim,
                                            scale, &rng_);
  time_ = std::make_unique<EmbeddingTable>(config_.time_buckets,
                                           config_.dim, scale, &rng_);
}

double TelmBaseline::ScoreTuple(const Fact& f) const {
  const size_t d = config_.dim;
  const float* sa = ent_a_->Row(f.subject < ent_a_->rows() ? f.subject : 0);
  const float* sb = ent_b_->Row(f.subject < ent_b_->rows() ? f.subject : 0);
  const float* oa = ent_a_->Row(f.object < ent_a_->rows() ? f.object : 0);
  const float* ob = ent_b_->Row(f.object < ent_b_->rows() ? f.object : 0);
  const float* ra = rel_a_->Row(f.relation < rel_a_->rows() ? f.relation : 0);
  const float* rb = rel_b_->Row(f.relation < rel_b_->rows() ? f.relation : 0);
  const float* w = time_->Row(TimeBucket(f.time));
  double phi = 0;
  for (size_t i = 0; i < d; ++i) {
    phi += sa[i] * (ra[i] + w[i]) * oa[i] + sb[i] * rb[i] * ob[i];
  }
  return phi;
}

void TelmBaseline::SgdStep(const Fact& f, float label) {
  const size_t d = config_.dim;
  const size_t bucket = TimeBucket(f.time);
  const float* sa = ent_a_->Row(f.subject);
  const float* sb = ent_b_->Row(f.subject);
  const float* oa = ent_a_->Row(f.object);
  const float* ob = ent_b_->Row(f.object);
  const float* ra = rel_a_->Row(f.relation);
  const float* rb = rel_b_->Row(f.relation);
  const float* w = time_->Row(bucket);
  double phi = 0;
  for (size_t i = 0; i < d; ++i) {
    phi += sa[i] * (ra[i] + w[i]) * oa[i] + sb[i] * rb[i] * ob[i];
  }
  const float g = Sigmoid(static_cast<float>(phi)) - label;

  std::vector<float> gsa(d), gsb(d), goa(d), gob(d), gra(d), grb(d), gw(d);
  for (size_t i = 0; i < d; ++i) {
    gsa[i] = g * (ra[i] + w[i]) * oa[i];
    goa[i] = g * (ra[i] + w[i]) * sa[i];
    gra[i] = g * sa[i] * oa[i];
    gw[i] = gra[i];
    gsb[i] = g * rb[i] * ob[i];
    gob[i] = g * rb[i] * sb[i];
    grb[i] = g * sb[i] * ob[i];
  }
  // Linear temporal regularizer: pull the bucket towards its neighbour.
  if (bucket + 1 < config_.time_buckets) {
    const float* w_next = time_->Row(bucket + 1);
    for (size_t i = 0; i < d; ++i) {
      gw[i] += 0.01f * (w[i] - w_next[i]);
    }
  }
  ent_a_->Update(f.subject, gsa, config_.lr);
  ent_a_->Update(f.object, goa, config_.lr);
  ent_b_->Update(f.subject, gsb, config_.lr);
  ent_b_->Update(f.object, gob, config_.lr);
  rel_a_->Update(f.relation, gra, config_.lr);
  rel_b_->Update(f.relation, grb, config_.lr);
  time_->Update(bucket, gw, config_.lr);
}

}  // namespace anot
