#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "eval/model.h"
#include "util/result.h"

namespace anot {

/// \brief Cross-model construction knobs for sweep cells.
///
/// Every baseline carries its own paper-default RNG seed; a sweep that
/// wants independent repetitions overrides it here. Seeds only matter to
/// the stochastic models (the factorization family, RE-GCN, TADDY);
/// DynAnom and F-FADE are deterministic and ignore them.
struct BaselineConfig {
  /// RNG seed override; 0 keeps the model's paper-default seed.
  uint64_t seed = 0;
};

/// \brief Factory for the benchmark baselines.
///
/// Names (Table 2): "DE", "TA", "Timeplex", "TNT", "TELM", "RE-GCN",
/// "DynAnom", "F-FADE", "TADDY".
///
/// Thread compatibility: a constructed model is confined to one thread
/// (Fit/Score/ObserveValid mutate model state), but distinct models may
/// fit and score *concurrently* against one shared const
/// TemporalKnowledgeGraph — Fit reads the graph through const accessors
/// only, which the graph documents as safe. This is what lets an
/// experiment sweep run one model per worker over a shared workload.
Result<std::unique_ptr<AnomalyModel>> MakeBaseline(const std::string& name);
Result<std::unique_ptr<AnomalyModel>> MakeBaseline(
    const std::string& name, const BaselineConfig& config);

/// All nine baseline names in the paper's Table 2 row order.
std::vector<std::string> AllBaselineNames();

}  // namespace anot
