#pragma once

#include <memory>
#include <string>
#include <vector>

#include "eval/model.h"
#include "util/result.h"

namespace anot {

/// \brief Factory for the benchmark baselines.
///
/// Names (Table 2): "DE", "TA", "Timeplex", "TNT", "TELM", "RE-GCN",
/// "DynAnom", "F-FADE", "TADDY".
Result<std::unique_ptr<AnomalyModel>> MakeBaseline(const std::string& name);

/// All nine baseline names in the paper's Table 2 row order.
std::vector<std::string> AllBaselineNames();

}  // namespace anot
