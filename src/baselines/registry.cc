#include "baselines/registry.h"

#include "baselines/factorization.h"
#include "baselines/graph_baselines.h"

namespace anot {

Result<std::unique_ptr<AnomalyModel>> MakeBaseline(const std::string& name) {
  FactorizationBaseline::Config fc;
  if (name == "DE") {
    return std::unique_ptr<AnomalyModel>(new DeSimpleBaseline(fc));
  }
  if (name == "TA") {
    return std::unique_ptr<AnomalyModel>(new TaDistmultBaseline(fc));
  }
  if (name == "Timeplex") {
    return std::unique_ptr<AnomalyModel>(new TimeplexBaseline(fc));
  }
  if (name == "TNT") {
    return std::unique_ptr<AnomalyModel>(new TntComplexBaseline(fc));
  }
  if (name == "TELM") {
    return std::unique_ptr<AnomalyModel>(new TelmBaseline(fc));
  }
  if (name == "RE-GCN") {
    return std::unique_ptr<AnomalyModel>(
        new ReGcnLiteBaseline(ReGcnLiteBaseline::Config{}));
  }
  if (name == "DynAnom") {
    return std::unique_ptr<AnomalyModel>(
        new DynAnomBaseline(DynAnomBaseline::Config{}));
  }
  if (name == "F-FADE") {
    return std::unique_ptr<AnomalyModel>(
        new FFadeBaseline(FFadeBaseline::Config{}));
  }
  if (name == "TADDY") {
    return std::unique_ptr<AnomalyModel>(
        new TaddyLiteBaseline(TaddyLiteBaseline::Config{}));
  }
  return Status::NotFound("unknown baseline: " + name);
}

std::vector<std::string> AllBaselineNames() {
  return {"DE",     "TA",      "Timeplex", "TNT",  "TELM",
          "RE-GCN", "DynAnom", "F-FADE",   "TADDY"};
}

}  // namespace anot
