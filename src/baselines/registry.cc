#include "baselines/registry.h"

#include "baselines/factorization.h"
#include "baselines/graph_baselines.h"

namespace anot {

Result<std::unique_ptr<AnomalyModel>> MakeBaseline(const std::string& name) {
  return MakeBaseline(name, BaselineConfig{});
}

Result<std::unique_ptr<AnomalyModel>> MakeBaseline(
    const std::string& name, const BaselineConfig& config) {
  FactorizationBaseline::Config fc;
  if (config.seed != 0) fc.seed = config.seed;
  if (name == "DE") {
    return std::unique_ptr<AnomalyModel>(new DeSimpleBaseline(fc));
  }
  if (name == "TA") {
    return std::unique_ptr<AnomalyModel>(new TaDistmultBaseline(fc));
  }
  if (name == "Timeplex") {
    return std::unique_ptr<AnomalyModel>(new TimeplexBaseline(fc));
  }
  if (name == "TNT") {
    return std::unique_ptr<AnomalyModel>(new TntComplexBaseline(fc));
  }
  if (name == "TELM") {
    return std::unique_ptr<AnomalyModel>(new TelmBaseline(fc));
  }
  if (name == "RE-GCN") {
    ReGcnLiteBaseline::Config rc;
    if (config.seed != 0) rc.seed = config.seed;
    return std::unique_ptr<AnomalyModel>(new ReGcnLiteBaseline(rc));
  }
  if (name == "DynAnom") {
    DynAnomBaseline::Config dc;
    if (config.seed != 0) dc.seed = config.seed;
    return std::unique_ptr<AnomalyModel>(new DynAnomBaseline(dc));
  }
  if (name == "F-FADE") {
    FFadeBaseline::Config ffc;
    if (config.seed != 0) ffc.seed = config.seed;
    return std::unique_ptr<AnomalyModel>(new FFadeBaseline(ffc));
  }
  if (name == "TADDY") {
    TaddyLiteBaseline::Config tc;
    if (config.seed != 0) tc.seed = config.seed;
    return std::unique_ptr<AnomalyModel>(new TaddyLiteBaseline(tc));
  }
  return Status::NotFound("unknown baseline: " + name);
}

std::vector<std::string> AllBaselineNames() {
  return {"DE",     "TA",      "Timeplex", "TNT",  "TELM",
          "RE-GCN", "DynAnom", "F-FADE",   "TADDY"};
}

}  // namespace anot
